#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Dispatches on the file's "bench" field:

sim_engine — CI's bench-smoke job runs `sim_engine --quick` and feeds the
result here. The gate fails when any mix's timing-wheel events/sec falls
below `--min-ratio` (default 0.8, i.e. a >20% regression) of the committed
baseline for that mix. Because absolute rates depend on the host, the gate
also checks a machine-independent invariant: the wheel must not fall behind
the reference heap run in the *same* fresh measurement on the mixes the
design promises to win (bursty, cancel_heavy, open_loop).

scale_sweep — CI's scale-smoke job runs `scale_sweep --quick` (the 64-node
subset). Model outputs (offered/delivered/drops, p50/p99 update latency,
trace digest) are pure functions of (config, seed), so for every point
present in both files they must match the baseline EXACTLY — a drift means
the executed schedule changed and the baseline must be deliberately
regenerated, same policy as tests/integration/digest_pins.txt. Host
throughput (events/sec) is gated by `--min-ratio` like sim_engine, plus the
machine-independent invariant p99 >= p50.

Usage: bench_compare.py --baseline BENCH_x.json --fresh fresh.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_sim_engine(baseline, fresh, min_ratio):
    base_mixes = {m["name"]: m for m in baseline["mixes"]}
    fresh_mixes = {m["name"]: m for m in fresh["mixes"]}

    failures = []
    for name, base in sorted(base_mixes.items()):
        if name not in fresh_mixes:
            failures.append(f"{name}: missing from fresh run")
            continue
        base_rate = base["timing_wheel"]["events_per_sec"]
        fresh_rate = fresh_mixes[name]["timing_wheel"]["events_per_sec"]
        ratio = fresh_rate / base_rate if base_rate else 0.0
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(f"{name:13s} wheel {fresh_rate:12.0f} ev/s vs baseline "
              f"{base_rate:12.0f} ev/s  ratio {ratio:4.2f}  {status}")
        if ratio < min_ratio:
            failures.append(
                f"{name}: wheel {fresh_rate:.0f} ev/s is {ratio:.2f}x the "
                f"baseline {base_rate:.0f} ev/s (floor {min_ratio})")

    # Machine-independent sanity: within the fresh run itself, the wheel
    # must still beat the heap on the mixes the redesign targets.
    for name in ("bursty", "cancel_heavy", "open_loop"):
        if name not in fresh_mixes:
            continue
        speedup = fresh_mixes[name]["speedup_events_per_sec"]
        status = "ok" if speedup >= 1.0 else "REGRESSED"
        print(f"{name:13s} wheel/heap speedup {speedup:4.2f}  {status}")
        if speedup < 1.0:
            failures.append(
                f"{name}: timing wheel slower than reference heap "
                f"({speedup:.2f}x)")
    return failures


# Deterministic model outputs: exact match required between a fresh point
# and its committed twin. events_per_sec / wall_seconds are host-dependent
# and deliberately excluded.
EXACT_POINT_KEYS = ("offered", "delivered", "drops", "p50_update_ns",
                    "p99_update_ns", "events_fired", "trace_digest")


def compare_scale_sweep(baseline, fresh, min_ratio):
    base_points = {p["name"]: p for p in baseline["points"]}
    fresh_points = {p["name"]: p for p in fresh["points"]}

    failures = []
    for name, got in sorted(fresh_points.items()):
        if name not in base_points:
            failures.append(
                f"{name}: not in the baseline — regenerate "
                f"BENCH_scale_sweep.json with a full (non --quick) run")
            continue
        base = base_points[name]

        drifted = [k for k in EXACT_POINT_KEYS if base[k] != got[k]]
        base_rate = base["events_per_sec"]
        fresh_rate = got["events_per_sec"]
        ratio = fresh_rate / base_rate if base_rate else 0.0
        tail_ok = got["p99_update_ns"] >= got["p50_update_ns"]

        status = "ok"
        if drifted:
            status = "DRIFTED"
            failures.append(
                f"{name}: deterministic outputs drifted from baseline "
                f"({', '.join(drifted)}) — the executed schedule changed; "
                f"regenerate the baseline only for understood changes")
        if ratio < min_ratio:
            status = "REGRESSED"
            failures.append(
                f"{name}: {fresh_rate:.0f} ev/s is {ratio:.2f}x the "
                f"baseline {base_rate:.0f} ev/s (floor {min_ratio})")
        if not tail_ok:
            status = "BROKEN"
            failures.append(
                f"{name}: p99 {got['p99_update_ns']:.0f} ns below p50 "
                f"{got['p50_update_ns']:.0f} ns")
        print(f"{name:28s} {fresh_rate:9.0f} ev/s  ratio {ratio:4.2f}  "
              f"p50 {got['p50_update_ns']:9.0f} ns  "
              f"p99 {got['p99_update_ns']:9.0f} ns  {status}")
    if not fresh_points:
        failures.append("fresh run contains no points")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="freshly measured JSON (e.g. from --quick)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum fresh/baseline events-per-sec ratio")
    args = ap.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    kind = baseline.get("bench")
    if fresh.get("bench") != kind:
        raise SystemExit(
            f"bench kind mismatch: baseline is {kind!r}, "
            f"fresh is {fresh.get('bench')!r}")
    if kind == "sim_engine":
        failures = compare_sim_engine(baseline, fresh, args.min_ratio)
    elif kind == "scale_sweep":
        failures = compare_scale_sweep(baseline, fresh, args.min_ratio)
    else:
        raise SystemExit(f"{args.baseline}: unknown bench kind {kind!r}")

    if failures:
        print(f"\n{kind} gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\n{kind} gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
