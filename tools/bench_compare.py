#!/usr/bin/env python3
"""Compare a fresh BENCH_sim_engine.json run against the committed baseline.

CI's bench-smoke job runs `sim_engine --quick` and feeds the result here.
The gate fails when any mix's timing-wheel events/sec falls below
`--min-ratio` (default 0.8, i.e. a >20% regression) of the committed
baseline for that mix. Because absolute rates depend on the host, the gate
also checks a machine-independent invariant: the wheel must not fall behind
the reference heap run in the *same* fresh measurement on the mixes the
design promises to win (bursty, cancel_heavy).

Usage: bench_compare.py --baseline BENCH_sim_engine.json --fresh fresh.json
"""

import argparse
import json
import sys


def load_mixes(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "sim_engine":
        raise SystemExit(f"{path}: not a sim_engine bench file")
    return {m["name"]: m for m in doc["mixes"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_sim_engine.json")
    ap.add_argument("--fresh", required=True,
                    help="freshly measured JSON (e.g. from --quick)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum fresh/baseline events-per-sec ratio")
    args = ap.parse_args()

    baseline = load_mixes(args.baseline)
    fresh = load_mixes(args.fresh)

    failures = []
    for name, base in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        base_rate = base["timing_wheel"]["events_per_sec"]
        fresh_rate = fresh[name]["timing_wheel"]["events_per_sec"]
        ratio = fresh_rate / base_rate if base_rate else 0.0
        status = "ok" if ratio >= args.min_ratio else "REGRESSED"
        print(f"{name:13s} wheel {fresh_rate:12.0f} ev/s vs baseline "
              f"{base_rate:12.0f} ev/s  ratio {ratio:4.2f}  {status}")
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: wheel {fresh_rate:.0f} ev/s is {ratio:.2f}x the "
                f"baseline {base_rate:.0f} ev/s (floor {args.min_ratio})")

    # Machine-independent sanity: within the fresh run itself, the wheel
    # must still beat the heap on the mixes the redesign targets.
    for name in ("bursty", "cancel_heavy"):
        if name not in fresh:
            continue
        speedup = fresh[name]["speedup_events_per_sec"]
        status = "ok" if speedup >= 1.0 else "REGRESSED"
        print(f"{name:13s} wheel/heap speedup {speedup:4.2f}  {status}")
        if speedup < 1.0:
            failures.append(
                f"{name}: timing wheel slower than reference heap "
                f"({speedup:.2f}x)")

    if failures:
        print("\nbench-smoke gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench-smoke gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
