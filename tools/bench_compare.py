#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Dispatches on the file's "bench" field:

sim_engine — CI's bench-smoke job runs `sim_engine --quick` and feeds the
result here. The gate fails when any mix's timing-wheel events/sec falls
below `--min-ratio` (default 0.8, i.e. a >20% regression) of the committed
baseline for that mix. Because absolute rates depend on the host, the gate
also checks a machine-independent invariant: the wheel must not fall behind
the reference heap run in the *same* fresh measurement on the mixes the
design promises to win (bursty, cancel_heavy, open_loop).

scale_sweep — CI's scale-smoke job runs `scale_sweep --quick` (the 64-node
subset). Model outputs (offered/delivered/drops, p50/p99 update latency,
trace digest) are pure functions of (config, seed), so for every point
present in both files they must match the baseline EXACTLY — a drift means
the executed schedule changed and the baseline must be deliberately
regenerated, same policy as tests/integration/digest_pins.txt. Host
throughput (events/sec) is gated by `--min-ratio` like sim_engine, plus the
machine-independent invariant p99 >= p50.

regcache — CI's mem job runs `ablation_regcache --quick` (the calibrated
registration-cost subset). Per-policy simulated send-loop time, ledger
counters (copies, registrations, regcache hits/misses/evictions), the
trace digest, and each cell's winning policy are pure functions of
(config, seed), so for every cell present in both files they must match
EXACTLY. The fresh run must also preserve the crossover: each policy
still wins at least one cell it won in the baseline's quick subset.
Hit-rate is exact-derived (from hits/misses) while host events/sec is
gated by `--min-ratio`.

slo — CI's slo-smoke job runs `slo_guarantees --quick` (the controlled vs
uncontrolled 16-node degraded run). Model outputs (offered/delivered/
drops/throttled counts, latency percentiles, the controller's action and
demotion counts, final actuator settings, trace digest) are pure functions
of (config, seed): for each run present in both files they must match the
baseline EXACTLY. The gate also enforces the machine-independent SLO
contrast itself: the controlled run holds p99 at or under the target
("held": true) while the uncontrolled run violates it by at least 2x —
the bench's reason to exist. Host events/sec is gated by `--min-ratio`.

Usage: bench_compare.py --baseline BENCH_x.json --fresh fresh.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_sim_engine(baseline, fresh, min_ratio):
    base_mixes = {m["name"]: m for m in baseline["mixes"]}
    fresh_mixes = {m["name"]: m for m in fresh["mixes"]}

    failures = []
    for name, base in sorted(base_mixes.items()):
        if name not in fresh_mixes:
            failures.append(f"{name}: missing from fresh run")
            continue
        base_rate = base["timing_wheel"]["events_per_sec"]
        fresh_rate = fresh_mixes[name]["timing_wheel"]["events_per_sec"]
        ratio = fresh_rate / base_rate if base_rate else 0.0
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(f"{name:13s} wheel {fresh_rate:12.0f} ev/s vs baseline "
              f"{base_rate:12.0f} ev/s  ratio {ratio:4.2f}  {status}")
        if ratio < min_ratio:
            failures.append(
                f"{name}: wheel {fresh_rate:.0f} ev/s is {ratio:.2f}x the "
                f"baseline {base_rate:.0f} ev/s (floor {min_ratio})")

    # Machine-independent sanity: within the fresh run itself, the wheel
    # must still beat the heap on the mixes the redesign targets.
    for name in ("bursty", "cancel_heavy", "open_loop"):
        if name not in fresh_mixes:
            continue
        speedup = fresh_mixes[name]["speedup_events_per_sec"]
        status = "ok" if speedup >= 1.0 else "REGRESSED"
        print(f"{name:13s} wheel/heap speedup {speedup:4.2f}  {status}")
        if speedup < 1.0:
            failures.append(
                f"{name}: timing wheel slower than reference heap "
                f"({speedup:.2f}x)")
    return failures


# Deterministic model outputs: exact match required between a fresh point
# and its committed twin. events_per_sec / wall_seconds are host-dependent
# and deliberately excluded.
EXACT_POINT_KEYS = ("offered", "delivered", "drops", "p50_update_ns",
                    "p99_update_ns", "events_fired", "trace_digest")


def compare_scale_sweep(baseline, fresh, min_ratio):
    base_points = {p["name"]: p for p in baseline["points"]}
    fresh_points = {p["name"]: p for p in fresh["points"]}

    failures = []
    for name, got in sorted(fresh_points.items()):
        if name not in base_points:
            failures.append(
                f"{name}: not in the baseline — regenerate "
                f"BENCH_scale_sweep.json with a full (non --quick) run")
            continue
        base = base_points[name]

        drifted = [k for k in EXACT_POINT_KEYS if base[k] != got[k]]
        base_rate = base["events_per_sec"]
        fresh_rate = got["events_per_sec"]
        ratio = fresh_rate / base_rate if base_rate else 0.0
        tail_ok = got["p99_update_ns"] >= got["p50_update_ns"]

        status = "ok"
        if drifted:
            status = "DRIFTED"
            failures.append(
                f"{name}: deterministic outputs drifted from baseline "
                f"({', '.join(drifted)}) — the executed schedule changed; "
                f"regenerate the baseline only for understood changes")
        if ratio < min_ratio:
            status = "REGRESSED"
            failures.append(
                f"{name}: {fresh_rate:.0f} ev/s is {ratio:.2f}x the "
                f"baseline {base_rate:.0f} ev/s (floor {min_ratio})")
        if not tail_ok:
            status = "BROKEN"
            failures.append(
                f"{name}: p99 {got['p99_update_ns']:.0f} ns below p50 "
                f"{got['p50_update_ns']:.0f} ns")
        print(f"{name:28s} {fresh_rate:9.0f} ev/s  ratio {ratio:4.2f}  "
              f"p50 {got['p50_update_ns']:9.0f} ns  "
              f"p99 {got['p99_update_ns']:9.0f} ns  {status}")
    if not fresh_points:
        failures.append("fresh run contains no points")
    return failures


# Deterministic per-policy outputs inside a regcache cell: exact match
# required. wall-clock fields (events_per_sec) are host-dependent and
# ratio-gated instead.
EXACT_POLICY_KEYS = ("send_loop_ns", "delivered", "copies", "copy_bytes",
                     "registrations", "deregistrations", "regcache_hits",
                     "regcache_misses", "regcache_evictions", "events_fired",
                     "trace_digest")


def compare_regcache(baseline, fresh, min_ratio):
    base_cells = {c["name"]: c for c in baseline["cells"]}
    fresh_cells = {c["name"]: c for c in fresh["cells"]}

    failures = []
    for name, got in sorted(fresh_cells.items()):
        if name not in base_cells:
            failures.append(
                f"{name}: not in the baseline — regenerate "
                f"BENCH_regcache.json with a full (non --quick) run")
            continue
        base = base_cells[name]
        base_pols = {p["policy"]: p for p in base["policies"]}

        status = "ok"
        if got["winner"] != base["winner"]:
            status = "DRIFTED"
            failures.append(
                f"{name}: winner changed {base['winner']} -> "
                f"{got['winner']} — the policy crossover moved")
        worst_ratio = None
        for pol in got["policies"]:
            pname = pol["policy"]
            if pname not in base_pols:
                failures.append(f"{name}/{pname}: missing from baseline")
                continue
            bpol = base_pols[pname]
            drifted = [k for k in EXACT_POLICY_KEYS if bpol[k] != pol[k]]
            if drifted:
                status = "DRIFTED"
                failures.append(
                    f"{name}/{pname}: deterministic outputs drifted "
                    f"({', '.join(drifted)}) — the policy bill changed; "
                    f"regenerate the baseline only for understood changes")
            base_rate = bpol["events_per_sec"]
            ratio = pol["events_per_sec"] / base_rate if base_rate else 0.0
            if worst_ratio is None or ratio < worst_ratio:
                worst_ratio = ratio
            if ratio < min_ratio:
                status = "REGRESSED"
                failures.append(
                    f"{name}/{pname}: {pol['events_per_sec']:.0f} ev/s is "
                    f"{ratio:.2f}x the baseline "
                    f"{base_rate:.0f} ev/s (floor {min_ratio})")
        print(f"{name:26s} winner {got['winner']:15s} "
              f"worst ev/s ratio {worst_ratio or 0.0:4.2f}  {status}")

    if not fresh_cells:
        failures.append("fresh run contains no cells")
    else:
        # Machine-independent crossover invariant: on the cells both runs
        # cover, every policy that won somewhere in the baseline subset
        # must still win somewhere in the fresh run.
        shared = [n for n in fresh_cells if n in base_cells]
        base_winners = {base_cells[n]["winner"] for n in shared}
        fresh_winners = {fresh_cells[n]["winner"] for n in shared}
        for policy in sorted(base_winners - fresh_winners):
            failures.append(
                f"crossover lost: {policy} wins a baseline cell but no "
                f"fresh cell")
        print(f"crossover winners: {', '.join(sorted(fresh_winners))}")
    return failures


# Deterministic per-run outputs of the SLO guarantee bench: exact match
# required. wall-clock fields are host-dependent and ratio-gated.
EXACT_SLO_KEYS = ("controlled", "offered", "delivered", "drops", "throttled",
                  "p50_update_ns", "p99_update_ns", "slo_actions",
                  "demotions", "promotions", "final_admit_permille",
                  "final_chunk_bytes", "events_fired", "trace_digest")


def compare_slo(baseline, fresh, min_ratio):
    base_runs = {r["name"]: r for r in baseline["runs"]}
    fresh_runs = {r["name"]: r for r in fresh["runs"]}

    failures = []
    for name, got in sorted(fresh_runs.items()):
        if name not in base_runs:
            failures.append(
                f"{name}: not in the baseline — regenerate BENCH_slo.json")
            continue
        base = base_runs[name]
        drifted = [k for k in EXACT_SLO_KEYS if base[k] != got[k]]
        base_rate = base["events_per_sec"]
        ratio = got["events_per_sec"] / base_rate if base_rate else 0.0
        status = "ok"
        if drifted:
            status = "DRIFTED"
            failures.append(
                f"{name}: deterministic outputs drifted from baseline "
                f"({', '.join(drifted)}) — the controller made different "
                f"decisions or the schedule changed; regenerate the "
                f"baseline only for understood changes")
        if ratio < min_ratio:
            status = "REGRESSED"
            failures.append(
                f"{name}: {got['events_per_sec']:.0f} ev/s is {ratio:.2f}x "
                f"the baseline {base_rate:.0f} ev/s (floor {min_ratio})")
        print(f"{name:13s} p99 {got['p99_update_ns']:10.0f} ns  "
              f"{got['slo_actions']:3.0f} actions  "
              f"shed {got['throttled']:6.0f}  ratio {ratio:4.2f}  {status}")

    for name in ("controlled", "uncontrolled"):
        if name not in fresh_runs:
            failures.append(f"fresh run is missing the {name} arm")
    if failures and any("missing the" in f for f in failures):
        return failures

    # The machine-independent guarantee the bench exists to demonstrate:
    # under the same faults, the controlled run holds the SLO and the
    # uncontrolled run violates it by at least 2x.
    target = fresh["target_p99_ns"]
    controlled_p99 = fresh_runs["controlled"]["p99_update_ns"]
    uncontrolled_p99 = fresh_runs["uncontrolled"]["p99_update_ns"]
    if not fresh.get("held") or controlled_p99 > target:
        failures.append(
            f"SLO not held: controlled p99 {controlled_p99:.0f} ns vs "
            f"target {target} ns")
    if uncontrolled_p99 < 2 * target:
        failures.append(
            f"contrast lost: uncontrolled p99 {uncontrolled_p99:.0f} ns is "
            f"under 2x the {target} ns target — the fault plan no longer "
            f"stresses the system")
    if fresh_runs["controlled"]["slo_actions"] < 1:
        failures.append("controlled run recorded no controller actions")
    print(f"held: controlled p99 {controlled_p99:.0f} ns <= target {target} "
          f"ns; uncontrolled {uncontrolled_p99 / target:.1f}x target")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json")
    ap.add_argument("--fresh", required=True,
                    help="freshly measured JSON (e.g. from --quick)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum fresh/baseline events-per-sec ratio")
    args = ap.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    kind = baseline.get("bench")
    if fresh.get("bench") != kind:
        raise SystemExit(
            f"bench kind mismatch: baseline is {kind!r}, "
            f"fresh is {fresh.get('bench')!r}")
    if kind == "sim_engine":
        failures = compare_sim_engine(baseline, fresh, args.min_ratio)
    elif kind == "scale_sweep":
        failures = compare_scale_sweep(baseline, fresh, args.min_ratio)
    elif kind == "regcache":
        failures = compare_regcache(baseline, fresh, args.min_ratio)
    elif kind == "slo":
        failures = compare_slo(baseline, fresh, args.min_ratio)
    else:
        raise SystemExit(f"{args.baseline}: unknown bench kind {kind!r}")

    if failures:
        print(f"\n{kind} gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\n{kind} gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
