// Token-level front end for svlint.
//
// Every rule used to re-derive lexical structure from raw lines with its own
// regex, which meant comments, string literals and raw strings had to be
// (imperfectly) re-stripped per rule and nothing could match across a line
// break. The lexer does that work exactly once: it turns a translation unit
// into a flat token stream (identifiers, numbers, literals, punctuation)
// with per-token line numbers, harvests `svlint:allow(...)` suppression
// comments per line, and records #include directives separately so the
// include-graph builder and the layering rule (SV009) see resolved paths
// instead of text.
//
// The lexer is deliberately not a full C++ phase-3 implementation: trigraphs,
// line splices and #define bodies are out of scope for a linter that scans
// one style-consistent tree. Raw strings (R"(...)"), encoding prefixes,
// escapes, and nested block comments' line accounting are handled, because
// svlint scans its own sources and those appear there.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace sv::lint {

enum class Tok {
  kIdent,   // identifier or keyword
  kNumber,  // numeric literal, suffix included ("0ull")
  kString,  // string literal; text is the *content*, quotes/prefix removed
  kChar,    // character literal; text is the content
  kPunct,   // one operator/punctuator; "::", "->", "+=", "-=" kept whole
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based
};

/// One #include directive. Quoted includes feed the include graph and the
/// layering rule; angled includes feed SV011 (<thread>, <mutex>, ...).
struct Include {
  std::string path;
  bool angled = false;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<std::string> raw_lines;          // original text, per line
  std::vector<std::set<std::string>> allows;   // per line: allowed rule ids
};

/// Lexes one file's contents. Never fails: unterminated constructs are
/// closed at end-of-file (a linter must degrade, not abort).
LexedFile lex(const std::string& text);

}  // namespace sv::lint
