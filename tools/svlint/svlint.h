// svlint: a determinism-hazard checker for the socketvia source tree.
//
// The simulator's contract (DESIGN.md §8) is that every seeded experiment is
// bit-identical across runs and platforms. That contract is easy to break
// silently: iterating an unordered container in an ordered-output context,
// reading a wall clock inside simulation code, or accumulating simulated
// time through floating point all produce runs that *look* fine but are no
// longer reproducible. svlint scans the source tree for those hazard
// patterns before they reach CI.
//
// svlint is a lexical checker, not a compiler plugin: it strips comments and
// string literals, then applies per-rule pattern matching. That keeps it
// dependency-free and fast, at the cost of needing a suppression escape
// hatch for false positives:
//
//   do_hazardous_thing();  // svlint:allow(SV002): justification here
//
// (on the offending line or the line directly above it).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace sv::lint {

struct Finding {
  std::string rel_path;  // path relative to the scan root, '/'-separated
  int line = 0;          // 1-based
  std::string rule;      // e.g. "SV001"
  std::string message;
  bool suppressed = false;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule table, in id order.
const std::vector<RuleInfo>& rules();

/// Scans one file's contents. `rel_path` must be the '/'-separated path
/// relative to the repository root; several rules are path-scoped (SV001
/// only fires in ordered-output directories, SV004 has an allowlist).
std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text);

/// Reads `root / rel_path` and scans it. Throws std::runtime_error if the
/// file cannot be read.
std::vector<Finding> scan_file(const std::filesystem::path& root,
                               const std::string& rel_path);

}  // namespace sv::lint
