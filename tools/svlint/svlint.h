// svlint: a static-analysis engine for the socketvia source tree.
//
// The simulator's contract (DESIGN.md §8) is that every seeded experiment is
// bit-identical across runs and platforms, that payload bytes only move
// through audited copies (§10), and that every statistic lives in the obs
// registry (§9). Those contracts are easy to break silently during a
// refactor; svlint mechanically enforces them before a change reaches
// ctest.
//
// v2 is token-level rather than line-regex: one lexer (lexer.h) strips
// comments/strings/raw strings exactly once, rules consume token streams
// (so multi-line constructs match), and an include-graph builder
// (include_graph.h) gives rules the architecture view — the declared
// layering DAG (SV009) and the reverse dependency closure behind --since.
// It is still not a compiler plugin: no preprocessing, no name lookup.
// False positives have a suppression escape hatch:
//
//   do_hazardous_thing();  // svlint:allow(SV002): justification here
//
// (on the offending line or the line directly above it). Pre-existing
// findings can instead be grandfathered in a committed baseline file
// (tools/svlint/baseline.txt, one "path rule" pair per finding) that CI
// only ever lets shrink.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace sv::lint {

struct Finding {
  std::string rel_path;  // path relative to the scan root, '/'-separated
  int line = 0;          // 1-based
  std::string rule;      // e.g. "SV001"
  std::string message;
  std::string snippet;       // the offending source line, trimmed
  bool suppressed = false;   // an svlint:allow(...) covers it
  bool baselined = false;    // grandfathered by the baseline file
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule table, in id order.
const std::vector<RuleInfo>& rules();

/// Cross-file state the per-file rules can consult. Only SV012 (metric
/// manifest) needs it today; rules degrade gracefully without one.
struct ProjectContext {
  bool manifest_loaded = false;
  /// Declared metric family -> 1-based line in the manifest file.
  std::map<std::string, int> metric_manifest;
};

/// Loads src/obs/metrics_manifest.txt under `root` (missing file leaves
/// manifest_loaded false, disabling SV012).
ProjectContext load_project(const std::filesystem::path& root);

/// Scans one file's contents. `rel_path` must be the '/'-separated path
/// relative to the repository root; most rules are path-scoped (SV001 only
/// fires in ordered-output directories, SV009 only under src/, ...).
std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text,
                                 const ProjectContext* ctx = nullptr);

/// Same, over an already-lexed file (the CLI lexes each file once for both
/// the include graph and the rules).
std::vector<Finding> scan_lexed(const std::string& rel_path,
                                const LexedFile& lx,
                                const ProjectContext* ctx = nullptr);

/// Reads `root / rel_path` and scans it. Throws std::runtime_error if the
/// file cannot be read.
std::vector<Finding> scan_file(const std::filesystem::path& root,
                               const std::string& rel_path,
                               const ProjectContext* ctx = nullptr);

/// Metric families (name up to any '{') created in this file via
/// .counter("...")/.gauge("...")/.histogram("...") — the forward half of
/// the manifest check; the orphan half compares the union against the
/// manifest.
std::set<std::string> collect_metric_families(const LexedFile& lx);

/// Grandfathered findings: a multiset of (rel_path, rule) pairs loaded from
/// the committed baseline file. CI enforces that the file only shrinks.
class Baseline {
 public:
  /// Missing file -> empty baseline. Lines are "<rel_path> <rule>";
  /// '#'-comments and blanks ignored.
  static Baseline load(const std::filesystem::path& path);

  /// True if (rel_path, rule) is still grandfathered; consumes one slot so
  /// a file with one baselined SV007 still fails on the second.
  bool absorb(const std::string& rel_path, const std::string& rule);

  /// Serialises `findings` (unsuppressed only) as baseline lines.
  static void write(std::ostream& os, const std::vector<Finding>& findings);

  [[nodiscard]] std::size_t size() const { return total_; }

 private:
  std::map<std::pair<std::string, std::string>, int> entries_;
  std::size_t total_ = 0;
};

/// Machine-readable findings: a JSON array of {file, line, rule, message,
/// snippet, suppressed, baselined}, sorted by (file, line, rule).
void write_findings_json(std::ostream& os,
                         const std::vector<Finding>& findings);

}  // namespace sv::lint
