// Include graph + declared layering DAG over src/.
//
// The source tree is layered (DESIGN.md §11): a module may include itself
// and strictly lower layers only, so refactors cannot silently tangle e.g.
// the simulator core into the transport implementations. The table below IS
// the declaration — changing the architecture means changing this table in
// the same commit, where the diff is visible.
//
// The graph itself (file-level edges, resolved against the scanned file
// set) powers `--since`: when a header changes, every file that transitively
// includes it is re-scanned, so an incremental run can never miss a finding
// that a full run would report.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace sv::lint {

/// Layer rank of a src/ module name ("common", "sim", ...), or -1 when the
/// module is not in the declared layering table. Lower rank = lower layer.
int module_rank(const std::string& module);

/// The module a repo-relative path belongs to ("src/net/fabric.cc" ->
/// "net"), or "" when the path is not under src/.
std::string module_of(const std::string& rel_path);

/// Human-readable "common < obs < sim < ..." rendering of the declared DAG,
/// for rule messages and --list-rules.
std::string layering_description();

class IncludeGraph {
 public:
  /// Registers one scanned file and its #include directives. Quoted
  /// includes are resolved later, against the set of files added.
  void add_file(const std::string& rel_path,
                const std::vector<Include>& includes);

  /// Resolves every quoted include: a path is looked up as src/-relative
  /// ("common/result.h"), includer-directory-relative ("svlint.h"), then
  /// repo-root-relative. Unresolvable includes (system headers spelled with
  /// quotes, generated files) are dropped.
  void finalize();

  /// Resolved forward edges of one file, sorted. finalize() first.
  const std::vector<std::string>& includes_of(const std::string& rel_path)
      const;

  /// `changed` plus every added file that transitively includes a member of
  /// `changed` — the minimal sound re-scan set for an incremental run.
  std::set<std::string> dependents_of(const std::set<std::string>& changed)
      const;

  /// Module-level projection of the file edges: module -> set of modules it
  /// includes (src/ files only, self-edges dropped). Sorted by construction.
  std::map<std::string, std::set<std::string>> module_edges() const;

 private:
  std::map<std::string, std::vector<Include>> raw_;       // as added
  std::map<std::string, std::vector<std::string>> fwd_;   // resolved
  std::map<std::string, std::set<std::string>> rev_;      // included -> includers
};

}  // namespace sv::lint
