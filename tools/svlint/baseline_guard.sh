#!/usr/bin/env bash
# Guard: the svlint baseline may only ever shrink.
#
# Compares tools/svlint/baseline.txt against the version at a base ref
# (default origin/main) and fails if any entry was added. Grandfathering is
# for pre-existing findings only; new code fixes its findings or suppresses
# them inline with a justified svlint:allow comment.
#
# usage: baseline_guard.sh [base-ref]
set -euo pipefail

base_ref="${1:-origin/main}"
baseline="tools/svlint/baseline.txt"

strip() { grep -vE '^[[:space:]]*(#|$)' | sort; }

if ! old=$(git show "${base_ref}:${baseline}" 2>/dev/null); then
  echo "baseline_guard: ${baseline} does not exist at ${base_ref}; nothing to guard"
  exit 0
fi

added=$(comm -13 <(printf '%s\n' "$old" | strip) <(strip < "$baseline") || true)
if [ -n "$added" ]; then
  echo "baseline_guard: FAIL — entries added to ${baseline}:"
  printf '  %s\n' $added
  echo "The baseline only shrinks. Fix the finding or add an inline"
  echo "svlint:allow(...) with a justification instead."
  exit 1
fi

old_n=$(printf '%s\n' "$old" | strip | wc -l)
new_n=$(strip < "$baseline" | wc -l)
echo "baseline_guard: OK (${old_n} -> ${new_n} entries)"
