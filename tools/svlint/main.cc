// svlint CLI. Scans C++ sources under a repository root for determinism
// hazards and exits nonzero if any unsuppressed finding remains.
//
//   svlint --root <repo> [--verbose] [--list-rules] [paths...]
//
// Paths are directories or files relative to --root; the default scan set is
// "src bench". Run from CTest as the `svlint_src` test and from CI.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "svlint.h"

namespace fs = std::filesystem;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::string to_rel(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "svlint: --root needs an argument\n";
        return 2;
      }
      root = fs::path(argv[i]);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : sv::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: svlint [--root DIR] [--verbose] [--list-rules] "
                   "[paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "svlint: unknown option " << arg << "\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "bench"};

  // Expand targets to a sorted, de-duplicated file list so output (and any
  // future baseline diffing) is stable.
  std::vector<std::string> files;
  for (const std::string& t : targets) {
    const fs::path p = root / t;
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
          files.push_back(to_rel(root, entry.path()));
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(to_rel(root, p));
    } else {
      std::cerr << "svlint: no such file or directory: " << p.string()
                << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const std::string& rel : files) {
    for (const auto& f : sv::lint::scan_file(root, rel)) {
      if (f.suppressed) {
        ++suppressed;
        if (verbose) {
          std::cout << f.rel_path << ":" << f.line << ": " << f.rule
                    << " (suppressed): " << f.message << "\n";
        }
        continue;
      }
      ++unsuppressed;
      std::cout << f.rel_path << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    }
  }

  std::cout << "svlint: " << files.size() << " files, " << unsuppressed
            << " finding(s), " << suppressed << " suppressed\n";
  return unsuppressed == 0 ? 0 : 1;
}
