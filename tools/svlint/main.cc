// svlint CLI. Scans C++ sources under a repository root with the
// token-level rule engine and exits nonzero if any finding is neither
// suppressed (svlint:allow) nor grandfathered (baseline file).
//
//   svlint --root <repo> [--verbose] [--list-rules] [--json FILE]
//          [--baseline FILE] [--write-baseline FILE] [--since REF]
//          [--check-manifest] [paths...]
//
// Paths are directories or files relative to --root; the default scan set
// is "src bench examples tools" (the tool scans itself). --since REF scans
// only files changed versus the git ref *plus every file that transitively
// includes a changed header* (the include graph makes incremental runs
// sound). Run from CTest as `svlint_src`/`svlint_manifest` and from CI.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "include_graph.h"
#include "svlint.h"

namespace fs = std::filesystem;

namespace {

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

std::string to_rel(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Repo-relative paths changed versus `ref`, per git. Empty on git failure
// (the caller then falls back to a full scan).
std::vector<std::string> changed_since(const fs::path& root,
                                       const std::string& ref, bool* ok) {
  const std::string cmd = "git -C '" + root.string() +
                          "' diff --name-only '" + ref + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  *ok = false;
  if (pipe == nullptr) return {};
  std::string output;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) output.append(buf, n);
  *ok = pclose(pipe) == 0;
  std::vector<std::string> files;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) files.push_back(line);
  }
  return files;
}

struct Options {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  bool verbose = false;
  std::string json_path;
  std::string baseline_path = "tools/svlint/baseline.txt";
  std::string write_baseline_path;
  std::string since_ref;
  bool check_manifest = false;
};

int usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: svlint [--root DIR] [--verbose] [--list-rules] "
         "[--json FILE] [--baseline FILE] [--write-baseline FILE] "
         "[--since REF] [--check-manifest] [paths...]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const auto need_arg = [&](int& i) -> const char* {
    if (++i >= argc) {
      std::cerr << "svlint: " << argv[i - 1] << " needs an argument\n";
      return nullptr;
    }
    return argv[i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      const char* v = need_arg(i);
      if (v == nullptr) return 2;
      opt.root = fs::path(v);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--json") {
      const char* v = need_arg(i);
      if (v == nullptr) return 2;
      opt.json_path = v;
    } else if (arg == "--baseline") {
      const char* v = need_arg(i);
      if (v == nullptr) return 2;
      opt.baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = need_arg(i);
      if (v == nullptr) return 2;
      opt.write_baseline_path = v;
    } else if (arg == "--since") {
      const char* v = need_arg(i);
      if (v == nullptr) return 2;
      opt.since_ref = v;
    } else if (arg == "--check-manifest") {
      opt.check_manifest = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : sv::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      std::cout << "layering DAG: " << sv::lint::layering_description()
                << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "svlint: unknown option " << arg << "\n";
      return usage(2);
    } else {
      opt.targets.push_back(arg);
    }
  }
  if (opt.targets.empty()) {
    opt.targets = {"src", "bench", "examples", "tools"};
  }

  // Expand targets to a sorted, de-duplicated file list so output (and
  // baseline diffing) is stable.
  std::vector<std::string> files;
  for (const std::string& t : opt.targets) {
    const fs::path p = opt.root / t;
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
          files.push_back(to_rel(opt.root, entry.path()));
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(to_rel(opt.root, p));
    } else {
      std::cerr << "svlint: no such file or directory: " << p.string()
                << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lex every file once: the include graph always covers the full scan set
  // (an incremental run must see edges through unchanged headers), the
  // rules then run on the selected subset.
  std::map<std::string, sv::lint::LexedFile> lexed;
  sv::lint::IncludeGraph graph;
  for (const std::string& rel : files) {
    lexed[rel] = sv::lint::lex(read_file(opt.root / rel));
    graph.add_file(rel, lexed[rel].includes);
  }
  graph.finalize();

  std::set<std::string> selected(files.begin(), files.end());
  if (!opt.since_ref.empty()) {
    bool git_ok = false;
    const std::vector<std::string> changed =
        changed_since(opt.root, opt.since_ref, &git_ok);
    if (!git_ok) {
      std::cerr << "svlint: git diff against '" << opt.since_ref
                << "' failed; scanning everything\n";
    } else {
      std::set<std::string> seeds;
      for (const std::string& f : changed) {
        if (selected.count(f) != 0) seeds.insert(f);
      }
      selected = graph.dependents_of(seeds);
    }
  }

  const sv::lint::ProjectContext ctx = sv::lint::load_project(opt.root);
  sv::lint::Baseline baseline =
      sv::lint::Baseline::load(opt.root / opt.baseline_path);

  std::vector<sv::lint::Finding> all;
  std::size_t failing = 0, baselined = 0, suppressed = 0;
  for (const std::string& rel : files) {
    if (selected.count(rel) == 0) continue;
    for (auto& f : sv::lint::scan_lexed(rel, lexed[rel], &ctx)) {
      if (!f.suppressed && baseline.absorb(f.rel_path, f.rule)) {
        f.baselined = true;
      }
      all.push_back(std::move(f));
    }
  }

  // The manifest must also be free of orphans: every declared family has to
  // be created somewhere in the scan set, or the declaration is dead and
  // dashboards silently chart nothing.
  if (opt.check_manifest) {
    if (!ctx.manifest_loaded) {
      std::cerr << "svlint: --check-manifest but src/obs/metrics_manifest"
                   ".txt is missing\n";
      return 2;
    }
    std::set<std::string> created;
    for (const auto& [rel, lx] : lexed) {
      const auto fams = sv::lint::collect_metric_families(lx);
      created.insert(fams.begin(), fams.end());
    }
    for (const auto& [family, line] : ctx.metric_manifest) {
      if (created.count(family) == 0) {
        all.push_back({"src/obs/metrics_manifest.txt", line, "SV012",
                       "orphaned manifest entry '" + family +
                           "': no .counter/.gauge/.histogram call in the "
                           "scan set creates it; delete the entry or wire "
                           "the metric up",
                       family, false, false});
      }
    }
  }

  for (const auto& f : all) {
    if (f.suppressed) {
      ++suppressed;
      if (opt.verbose) {
        std::cout << f.rel_path << ":" << f.line << ": " << f.rule
                  << " (suppressed): " << f.message << "\n";
      }
      continue;
    }
    if (f.baselined) {
      ++baselined;
      if (opt.verbose) {
        std::cout << f.rel_path << ":" << f.line << ": " << f.rule
                  << " (baselined): " << f.message << "\n";
      }
      continue;
    }
    ++failing;
    std::cout << f.rel_path << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  }

  if (!opt.json_path.empty()) {
    std::ofstream js(opt.json_path);
    if (!js) {
      std::cerr << "svlint: cannot write " << opt.json_path << "\n";
      return 2;
    }
    sv::lint::write_findings_json(js, all);
  }
  if (!opt.write_baseline_path.empty()) {
    std::ofstream bs(opt.write_baseline_path);
    if (!bs) {
      std::cerr << "svlint: cannot write " << opt.write_baseline_path
                << "\n";
      return 2;
    }
    sv::lint::Baseline::write(bs, all);
  }

  std::cout << "svlint: " << selected.size() << "/" << files.size()
            << " files scanned, " << failing << " finding(s), " << baselined
            << " baselined, " << suppressed << " suppressed\n";
  return failing == 0 ? 0 : 1;
}
