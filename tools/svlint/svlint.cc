#include "svlint.h"

#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sv::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"SV001",
     "iteration over std::unordered_map/unordered_set in an ordered-output "
     "context (src/sim, src/net, src/datacutter, src/vizapp): element order "
     "is implementation-defined and varies across libstdc++ versions"},
    {"SV002",
     "call to rand()/srand(): unseeded process-global RNG; use sv::Rng "
     "(common/rng.h) so streams are seeded and splittable"},
    {"SV003",
     "std::random_device: reads OS entropy, different on every run; use a "
     "seeded sv::Rng"},
    {"SV004",
     "wall-clock read (std::chrono::{system,steady,high_resolution}_clock, "
     "gettimeofday, clock_gettime, time(nullptr)) outside src/harness and "
     "src/common/rng.cc: simulated code must only observe SimTime"},
    {"SV005",
     "pointer-keyed std::map/std::set (or std::less<T*>): iteration order "
     "follows allocation addresses, which differ across runs under ASLR"},
    {"SV006",
     "float/double accumulation of simulated time (+= over .us()/.ms()/"
     ".sec(), or SimTime built back from a floating expression): rounding "
     "is order-dependent; accumulate integer .ns() instead"},
    {"SV007",
     "direct console output (std::cout/std::cerr/printf/puts) or raw "
     "uint64_t counter member in simulation code (src/ outside src/obs and "
     "src/common): print from bench mains or the harness, and register "
     "statistics as obs::Registry counters so snapshots see them"},
    {"SV008",
     "raw payload byte copy (memcpy/memmove, or std::vector<std::byte> "
     "copy-construction) outside src/mem/: payload bytes move only through "
     "mem::Payload (copy_of/copy_to) or a BufferPool lease so every copy is "
     "charged to the mem ledger (DESIGN.md §10)"},
};

// Directories whose output feeds deterministic event ordering: iterating an
// unordered container here is a hazard even if it "looks" read-only.
constexpr const char* kOrderedContexts[] = {"src/sim/", "src/net/",
                                            "src/datacutter/", "src/vizapp/"};

// Files allowed to read wall clocks (measurement harness; RNG seeding).
constexpr const char* kWallClockAllowPrefixes[] = {"src/harness/"};
constexpr const char* kWallClockAllowFiles[] = {"src/common/rng.cc"};

// SV007 exemptions: the observability layer *implements* the counters, and
// src/common is infrastructure below it (CLI/log/table formatting must
// write somewhere).
constexpr const char* kObsAllowPrefixes[] = {"src/obs/", "src/common/"};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool in_ordered_context(const std::string& rel_path) {
  for (const char* dir : kOrderedContexts) {
    if (starts_with(rel_path, dir)) return true;
  }
  return false;
}

bool wall_clock_allowed(const std::string& rel_path) {
  for (const char* dir : kWallClockAllowPrefixes) {
    if (starts_with(rel_path, dir)) return true;
  }
  for (const char* f : kWallClockAllowFiles) {
    if (rel_path == f) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Comment/string stripping + suppression harvesting
// ---------------------------------------------------------------------------

struct StrippedSource {
  std::vector<std::string> code;                 // per line, literals blanked
  std::vector<std::set<std::string>> allows;     // per line, allowed rule ids
};

// Parses "svlint:allow(SV001, SV004)" occurrences inside one comment.
void harvest_allows(const std::string& comment, std::set<std::string>* out) {
  static const std::regex kAllow(R"(svlint:allow\(([^)]*)\))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
       it != std::sregex_iterator(); ++it) {
    std::stringstream ids((*it)[1].str());
    std::string id;
    while (std::getline(ids, id, ',')) {
      std::string trimmed;
      for (char c : id) {
        if (!std::isspace(static_cast<unsigned char>(c))) trimmed += c;
      }
      if (!trimmed.empty()) out->insert(trimmed);
    }
  }
}

// Removes comments and the contents of string/char literals, keeping line
// structure (so findings carry correct line numbers) and recording
// suppression comments per line.
StrippedSource strip(const std::string& text) {
  StrippedSource out;
  enum class St { kCode, kLine, kBlock, kStr, kChr };
  St st = St::kCode;
  std::string code_line;
  std::string comment;  // accumulates the current comment's text

  auto end_line = [&] {
    out.code.push_back(code_line);
    out.allows.emplace_back();
    harvest_allows(comment, &out.allows.back());
    code_line.clear();
    comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLine) st = St::kCode;
      end_line();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          // Raw strings are not handled specially; rare in this tree.
          st = St::kStr;
          code_line += '"';
        } else if (c == '\'') {
          st = St::kChr;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case St::kLine:
        comment += c;
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case St::kStr:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          code_line += '"';
        }
        break;
      case St::kChr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          code_line += '\'';
        }
        break;
    }
  }
  end_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Small lexical helpers
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Whole-word search for `word` in `s`; returns npos if absent.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t pos = s.find(word, from); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

// Starting at s[open] == '<', returns the index just past the matching '>',
// or npos if unbalanced. Treats '>>' as two closers (good enough for types).
std::size_t skip_template_args(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// SV001: unordered-container iteration
// ---------------------------------------------------------------------------

// Collects names of variables/members declared with an unordered container
// type anywhere in the file (declaration and use may be lines apart).
std::set<std::string> collect_unordered_names(
    const std::vector<std::string>& code) {
  std::set<std::string> names;
  for (const std::string& line : code) {
    for (const char* kw : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
      for (std::size_t pos = find_word(line, kw); pos != std::string::npos;
           pos = find_word(line, kw, pos + 1)) {
        std::size_t i = pos + std::string(kw).size();
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i >= line.size() || line[i] != '<') continue;
        i = skip_template_args(line, i);
        if (i == std::string::npos) break;  // declaration spans lines; skip
        // Skip refs/pointers/cv and whitespace before the identifier.
        while (i < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[i])) ||
                line[i] == '&' || line[i] == '*')) {
          ++i;
        }
        std::string ident;
        while (i < line.size() && is_ident_char(line[i])) ident += line[i++];
        if (ident == "const") {
          // "unordered_map<...> const x" is not written in this tree; skip.
          continue;
        }
        if (!ident.empty()) names.insert(ident);
      }
    }
  }
  return names;
}

// Extracts the range expression of a range-for on `line`, or empty string.
std::string range_for_expr(const std::string& line) {
  for (std::size_t pos = find_word(line, "for"); pos != std::string::npos;
       pos = find_word(line, "for", pos + 1)) {
    std::size_t i = pos + 3;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t j = i; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (c == ':' && depth == 1) {
        const bool scope = (j > 0 && line[j - 1] == ':') ||
                           (j + 1 < line.size() && line[j + 1] == ':');
        if (!scope && colon == std::string::npos) colon = j;
      }
    }
    if (colon != std::string::npos && close != std::string::npos &&
        colon < close) {
      return line.substr(colon + 1, close - colon - 1);
    }
  }
  return {};
}

void check_sv001(const std::string& rel_path,
                 const std::vector<std::string>& code,
                 std::vector<Finding>* out) {
  if (!in_ordered_context(rel_path)) return;
  const std::set<std::string> names = collect_unordered_names(code);
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    std::string hit;
    const std::string range = range_for_expr(line);
    if (!range.empty()) {
      if (range.find("unordered_") != std::string::npos) {
        hit = trim(range);
      } else {
        for (const std::string& name : names) {
          if (find_word(range, name) != std::string::npos) {
            hit = name;
            break;
          }
        }
      }
    }
    if (hit.empty()) {
      for (const std::string& name : names) {
        // Only begin()/cbegin(): iteration always needs one, while a bare
        // .end() is the ubiquitous (and order-safe) find() membership idiom.
        for (const char* m : {".begin(", ".cbegin("}) {
          const std::size_t p = line.find(name + m);
          if (p != std::string::npos &&
              (p == 0 || !is_ident_char(line[p - 1]))) {
            hit = name;
            break;
          }
        }
        if (!hit.empty()) break;
      }
    }
    if (!hit.empty()) {
      out->push_back({rel_path, static_cast<int>(ln + 1), "SV001",
                      "iteration over unordered container '" + hit +
                          "' in an ordered-output context",
                      false});
    }
  }
}

// ---------------------------------------------------------------------------
// Regex-driven rules (SV002..SV006)
// ---------------------------------------------------------------------------

struct RegexRule {
  const char* id;
  std::regex re;
  const char* message;
};

const std::vector<RegexRule>& regex_rules() {
  static const std::vector<RegexRule> rules = [] {
    std::vector<RegexRule> r;
    r.push_back({"SV002",
                 std::regex(R"((^|[^\w.])s?rand\s*\()"),
                 "call to rand()/srand(); use a seeded sv::Rng"});
    r.push_back({"SV003", std::regex(R"(\brandom_device\b)"),
                 "std::random_device is nondeterministic; use a seeded "
                 "sv::Rng"});
    r.push_back(
        {"SV004",
         std::regex(
             R"(std\s*::\s*chrono\s*::\s*(system_clock|steady_clock|high_resolution_clock))"),
         "wall-clock read in simulation code; only src/harness may measure "
         "real time"});
    r.push_back({"SV004",
                 std::regex(
                     R"(\b(gettimeofday|clock_gettime)\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
                 "wall-clock read in simulation code; only src/harness may "
                 "measure real time"});
    r.push_back({"SV006",
                 std::regex(R"((\+=|-=)[^;]*\.(us|ms|sec)\(\))"),
                 "accumulating floating-point time; accumulate integer "
                 ".ns() or SimTime instead"});
    r.push_back({"SV006",
                 std::regex(
                     R"(SimTime\s*\(\s*static_cast<[^>]*>\s*\([^;]*\.(us|ms|sec)\(\))"),
                 "SimTime rebuilt from a floating-point time expression; "
                 "keep time in integer nanoseconds"});
    return r;
  }();
  return rules;
}

void check_regex_rules(const std::string& rel_path,
                       const std::vector<std::string>& code,
                       std::vector<Finding>* out) {
  const bool skip_wall_clock = wall_clock_allowed(rel_path);
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    for (const RegexRule& rule : regex_rules()) {
      if (skip_wall_clock && std::string(rule.id) == "SV004") continue;
      if (std::regex_search(code[ln], rule.re)) {
        out->push_back({rel_path, static_cast<int>(ln + 1), rule.id,
                        rule.message, false});
      }
    }
  }
}

// SV005: pointer-keyed ordered containers.
void check_sv005(const std::string& rel_path,
                 const std::vector<std::string>& code,
                 std::vector<Finding>* out) {
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    for (const char* kw : {"map", "set", "multimap", "multiset", "less",
                           "greater"}) {
      for (std::size_t pos = find_word(line, kw); pos != std::string::npos;
           pos = find_word(line, kw, pos + 1)) {
        // Require a std:: qualifier so member names like "bitset" or local
        // types called "map" don't trip the rule.
        const std::size_t qual = line.rfind("std", pos);
        if (qual == std::string::npos ||
            trim(line.substr(qual + 3, pos - qual - 3)) != "::") {
          continue;
        }
        std::size_t i = pos + std::string(kw).size();
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i >= line.size() || line[i] != '<') continue;
        // First template argument: up to a depth-1 comma or the closer.
        int depth = 0;
        std::string arg;
        for (std::size_t j = i; j < line.size(); ++j) {
          const char c = line[j];
          if (c == '<') {
            ++depth;
            if (depth == 1) continue;
          }
          if (c == '>') {
            --depth;
            if (depth == 0) break;
          }
          if (c == ',' && depth == 1) break;
          if (depth >= 1) arg += c;
        }
        const std::string key = trim(arg);
        if (!key.empty() && key.back() == '*') {
          out->push_back(
              {rel_path, static_cast<int>(ln + 1), "SV005",
               "ordered container keyed by pointer type '" + key +
                   "': iteration order depends on allocation addresses",
               false});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SV007: bypassing the observability layer
// ---------------------------------------------------------------------------

bool obs_rule_applies(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return false;
  for (const char* dir : kObsAllowPrefixes) {
    if (starts_with(rel_path, dir)) return false;
  }
  return true;
}

// Counter-ish identifier suffixes: a uint64_t member named like one of
// these is a statistic someone will want in a snapshot.
constexpr const char* kCounterSuffixes[] = {
    "sent",    "received",      "count",       "seen",
    "dropped", "delayed",       "retransmitted", "retransmits",
    "expirations", "timeouts"};

// True when `ident` (with any trailing '_' stripped) is, or ends in
// '_' + one of, the counter suffixes: "timeouts", "bytes_sent_", ...
bool counter_like(const std::string& ident) {
  std::string name = ident;
  while (!name.empty() && name.back() == '_') name.pop_back();
  for (const char* suffix : kCounterSuffixes) {
    const std::string suf(suffix);
    if (name == suf) return true;
    if (name.size() > suf.size() + 1 &&
        name.compare(name.size() - suf.size(), suf.size(), suf) == 0 &&
        name[name.size() - suf.size() - 1] == '_') {
      return true;
    }
  }
  return false;
}

void check_sv007(const std::string& rel_path,
                 const std::vector<std::string>& code,
                 std::vector<Finding>* out) {
  if (!obs_rule_applies(rel_path)) return;
  // (a) Direct console output. `[^\w.]` before printf/puts keeps
  // snprintf/strcat-style names and member calls out; std::fprintf still
  // matches via the ':' before the name.
  static const std::regex kStream(R"(std\s*::\s*(cout|cerr)\b)");
  static const std::regex kStdio(R"((^|[^\w.])(f?printf|f?puts)\s*\()");
  // (b) A uint64_t member/variable with a counter-ish name: statistics
  // belong in the registry, where snapshot() and the accessors can see
  // one authoritative value.
  static const std::regex kDecl(
      R"((?:std\s*::\s*)?uint64_t\s+([A-Za-z_]\w*)\s*(?:=\s*0(?:u|U|ull|ULL)?\s*)?;)");
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    if (std::regex_search(line, kStream) || std::regex_search(line, kStdio)) {
      out->push_back({rel_path, static_cast<int>(ln + 1), "SV007",
                      "direct console output in simulation code; print from "
                      "bench mains/harness or export via obs",
                      false});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      const std::string ident = (*it)[1].str();
      if (counter_like(ident)) {
        out->push_back({rel_path, static_cast<int>(ln + 1), "SV007",
                        "raw counter member '" + ident +
                            "'; register an obs::Counter in the simulation "
                            "registry so snapshots include it",
                        false});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SV008: payload byte copies outside the mem layer
// ---------------------------------------------------------------------------

bool mem_rule_applies(const std::string& rel_path) {
  // src/mem implements the sanctioned copy primitives; everything else in
  // src/ (and the benches, which model applications) must route through it.
  if (starts_with(rel_path, "src/mem/")) return false;
  return starts_with(rel_path, "src/") || starts_with(rel_path, "bench/");
}

void check_sv008(const std::string& rel_path,
                 const std::vector<std::string>& code,
                 std::vector<Finding>* out) {
  if (!mem_rule_applies(rel_path)) return;
  // (a) memcpy/memmove — the classic smuggled copy. `[^\w.]` admits the
  // "std::" qualifier (via the ':') while excluding members like
  // x.memcpy and names like wmemcpy.
  static const std::regex kMemfn(R"((^|[^\w.])(memcpy|memmove)\s*\()");
  // (b) std::vector<std::byte> built from existing bytes: deref copy
  // "vector<std::byte>(*p)" or iterator-range copy "(x.begin(), ...)".
  // Size construction "(n)" and default construction stay legal.
  static const std::regex kVecCopy(
      R"(vector\s*<\s*(std\s*::\s*)?byte\s*>\s*\w*\s*[({]\s*(\*|[A-Za-z_]\w*\s*(\.|->)\s*c?begin\s*\())");
  for (std::size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    if (std::regex_search(line, kMemfn)) {
      out->push_back({rel_path, static_cast<int>(ln + 1), "SV008",
                      "memcpy/memmove outside src/mem/; copy through "
                      "mem::Payload so the mem ledger records it",
                      false});
    }
    if (std::regex_search(line, kVecCopy)) {
      out->push_back({rel_path, static_cast<int>(ln + 1), "SV008",
                      "std::vector<std::byte> copy-constructed from existing "
                      "bytes outside src/mem/; use Payload::copy_of or a "
                      "BufferPool lease so the copy is charged",
                      false});
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text) {
  const StrippedSource src = strip(text);
  std::vector<Finding> findings;
  check_sv001(rel_path, src.code, &findings);
  check_regex_rules(rel_path, src.code, &findings);
  check_sv005(rel_path, src.code, &findings);
  check_sv007(rel_path, src.code, &findings);
  check_sv008(rel_path, src.code, &findings);

  // Apply suppressions: an allow on the finding's line or the line above.
  for (Finding& f : findings) {
    const auto idx = static_cast<std::size_t>(f.line - 1);
    const auto allowed = [&](std::size_t i) {
      return i < src.allows.size() && src.allows[i].count(f.rule) != 0;
    };
    if (allowed(idx) || (idx > 0 && allowed(idx - 1))) f.suppressed = true;
  }

  // Stable order: by line, then rule id.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

std::vector<Finding> scan_file(const std::filesystem::path& root,
                               const std::string& rel_path) {
  std::ifstream in(root / rel_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("svlint: cannot read " +
                             (root / rel_path).string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return scan_source(rel_path, ss.str());
}

}  // namespace sv::lint
