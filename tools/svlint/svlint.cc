#include "svlint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "include_graph.h"

namespace sv::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"SV001",
     "iteration over std::unordered_map/unordered_set in an ordered-output "
     "context (src/sim, src/net, src/datacutter, src/vizapp): element order "
     "is implementation-defined and varies across libstdc++ versions"},
    {"SV002",
     "call to rand()/srand(): unseeded process-global RNG; use sv::Rng "
     "(common/rng.h) so streams are seeded and splittable"},
    {"SV003",
     "std::random_device: reads OS entropy, different on every run; use a "
     "seeded sv::Rng"},
    {"SV004",
     "wall-clock read (std::chrono::{system,steady,high_resolution}_clock, "
     "gettimeofday, clock_gettime, time(nullptr)) outside src/harness and "
     "src/common/rng.cc: simulated code must only observe SimTime"},
    {"SV005",
     "pointer-keyed std::map/std::set (or std::less<T*>): iteration order "
     "follows allocation addresses, which differ across runs under ASLR"},
    {"SV006",
     "float/double accumulation of simulated time (+= over .us()/.ms()/"
     ".sec(), or SimTime built back from a floating expression): rounding "
     "is order-dependent; accumulate integer .ns() instead"},
    {"SV007",
     "direct console output (std::cout/std::cerr/printf/puts) or raw "
     "uint64_t counter member in simulation code (src/ outside src/obs and "
     "src/common): print from bench mains or the harness, and register "
     "statistics as obs::Registry counters so snapshots see them"},
    {"SV008",
     "raw payload byte copy (memcpy/memmove, or std::vector<std::byte> "
     "copy-construction) outside src/mem/: payload bytes move only through "
     "mem::Payload (copy_of/copy_to) or a BufferPool lease so every copy is "
     "charged to the mem ledger (DESIGN.md §10)"},
    {"SV009",
     "include edge that violates the declared layering DAG (common < obs < "
     "control < sim < mem < net < tcpstack = via < sockets < datacutter < "
     "vizapp < harness): a src/ module may include itself and strictly "
     "lower layers only (DESIGN.md §11)"},
    {"SV010",
     "discarded Result<T> from a timed operation (send_for/recv_for/"
     "wait_completion_for): a dropped timeout silently turns a detected "
     "stall back into a hang; assign the result or cast to (void) with a "
     "reason"},
    {"SV011",
     "raw OS concurrency (std::thread/mutex/atomic/condition_variable or "
     "their headers) outside src/sim: simulated processes must go through "
     "the sim scheduler or determinism dies with the thread interleaving"},
    {"SV012",
     "metric name passed to the obs registry whose family is not declared "
     "in src/obs/metrics_manifest.txt: typo'd or orphaned counters corrupt "
     "dashboards and SLO controllers silently"},
    {"SV013",
     "direct memory registration or BufferPool acquisition "
     "(register_memory(), BufferPool::acquire()) outside src/mem/: outbound "
     "staging must route through mem::CopyPolicy so copies, pins and cache "
     "hits are charged to the ledger (DESIGN.md §14); the sanctioned "
     "modeled-DMA setup sites carry an explicit svlint:allow"},
    {"SV014",
     "SLO actuator invoked outside src/control/ (set_admit_permille(), or "
     "calling an apply_chunk_bytes/apply_demotion/apply_promotion "
     "callback): only the slo::Controller may mutate admission rates, "
     "chunk sizing or replica membership, so every control action is in "
     "its audited, deterministic action log (DESIGN.md §15); harnesses "
     "install the callbacks and query admit(), they never fire them"},
};

// Directories whose output feeds deterministic event ordering: iterating an
// unordered container here is a hazard even if it "looks" read-only.
constexpr const char* kOrderedContexts[] = {"src/sim/", "src/net/",
                                            "src/datacutter/", "src/vizapp/"};

// Files allowed to read wall clocks (measurement harness; RNG seeding).
constexpr const char* kWallClockAllowPrefixes[] = {"src/harness/"};
constexpr const char* kWallClockAllowFiles[] = {"src/common/rng.cc"};

// SV007 exemptions: the observability layer *implements* the counters, and
// src/common is infrastructure below it (CLI/log/table formatting must
// write somewhere).
constexpr const char* kObsAllowPrefixes[] = {"src/obs/", "src/common/"};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool in_ordered_context(const std::string& rel_path) {
  for (const char* dir : kOrderedContexts) {
    if (starts_with(rel_path, dir)) return true;
  }
  return false;
}

bool wall_clock_allowed(const std::string& rel_path) {
  for (const char* dir : kWallClockAllowPrefixes) {
    if (starts_with(rel_path, dir)) return true;
  }
  for (const char* f : kWallClockAllowFiles) {
    if (rel_path == f) return true;
  }
  return false;
}

bool obs_rule_applies(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return false;
  for (const char* dir : kObsAllowPrefixes) {
    if (starts_with(rel_path, dir)) return false;
  }
  return true;
}

bool mem_rule_applies(const std::string& rel_path) {
  // src/mem implements the sanctioned copy primitives; everything else in
  // src/ (and the benches, which model applications) must route through it.
  if (starts_with(rel_path, "src/mem/")) return false;
  return starts_with(rel_path, "src/") || starts_with(rel_path, "bench/");
}

bool result_rule_applies(const std::string& rel_path) {
  return starts_with(rel_path, "src/") || starts_with(rel_path, "bench/") ||
         starts_with(rel_path, "examples/");
}

bool thread_rule_applies(const std::string& rel_path) {
  // src/sim implements the sanctioned thread-per-process scheduler; it is
  // the only place OS concurrency may appear.
  if (starts_with(rel_path, "src/sim/")) return false;
  return starts_with(rel_path, "src/");
}

bool metric_rule_applies(const std::string& rel_path) {
  return starts_with(rel_path, "src/") || starts_with(rel_path, "bench/");
}

bool pool_rule_applies(const std::string& rel_path) {
  // src/mem owns the policy engine that decides copy-vs-pin per message;
  // only it may touch registration or pool acquisition directly. Benches
  // and examples model raw-VIA applications, so they stay out of scope.
  if (starts_with(rel_path, "src/mem/")) return false;
  return starts_with(rel_path, "src/");
}

bool actuator_rule_applies(const std::string& rel_path) {
  // src/control owns the SLO actuators (DESIGN.md §15); everywhere else in
  // src/ and bench/ may install and query them but never fire them.
  if (starts_with(rel_path, "src/control/")) return false;
  return starts_with(rel_path, "src/") || starts_with(rel_path, "bench/");
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

using Tokens = std::vector<Token>;
constexpr std::size_t npos = std::string::npos;

bool P(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == Tok::kPunct && t[i].text == text;
}
bool I(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == Tok::kIdent && t[i].text == text;
}
bool is_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Tok::kIdent;
}

bool punct_any(const Tokens& t, std::size_t i,
               std::initializer_list<const char*> texts) {
  if (i >= t.size() || t[i].kind != Tok::kPunct) return false;
  for (const char* s : texts) {
    if (t[i].text == s) return true;
  }
  return false;
}

bool ident_any(const Tokens& t, std::size_t i,
               std::initializer_list<const char*> texts) {
  if (i >= t.size() || t[i].kind != Tok::kIdent) return false;
  for (const char* s : texts) {
    if (t[i].text == s) return true;
  }
  return false;
}

// t[open] is "(" / "[" / "{": index of the matching closer, or npos.
std::size_t close_bracket(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (punct_any(t, i, {"(", "[", "{"})) ++depth;
    if (punct_any(t, i, {")", "]", "}"})) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

// t[close] is ")": index of the matching "(", or npos.
std::size_t open_bracket_before(const Tokens& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (punct_any(t, i, {")", "]", "}"})) ++depth;
    if (punct_any(t, i, {"(", "[", "{"})) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

// t[open] is "<" opening a template argument list: index of the matching
// ">", or npos. Paren groups inside are skipped whole; a ';' aborts (it was
// a comparison, not a template).
std::size_t close_angle(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (P(t, i, ";")) return npos;
    if (P(t, i, "(")) {
      const std::size_t close = close_bracket(t, i);
      if (close == npos) return npos;
      i = close;
      continue;
    }
    if (P(t, i, "<")) ++depth;
    if (P(t, i, ">")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

// Joins token texts into a readable snippet ("const Node *").
std::string join_tokens(const Tokens& t, std::size_t from, std::size_t to) {
  std::string out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (!out.empty() && (t[i].kind == Tok::kIdent ||
                         t[i].kind == Tok::kNumber)) {
      out += ' ';
    }
    out += t[i].text;
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void add(std::vector<Finding>* out, const std::string& rel_path, int line,
         const char* rule, std::string message) {
  out->push_back({rel_path, line, rule, std::move(message), "", false, false});
}

// ---------------------------------------------------------------------------
// SV001: unordered-container iteration in ordered-output contexts
// ---------------------------------------------------------------------------

bool is_unordered_kw(const Tokens& t, std::size_t i) {
  return ident_any(t, i, {"unordered_map", "unordered_set",
                          "unordered_multimap", "unordered_multiset"});
}

// Names of variables/members declared with an unordered container type
// anywhere in the file (declaration and use may be far apart).
std::set<std::string> collect_unordered_names(const Tokens& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_unordered_kw(t, i) || !P(t, i + 1, "<")) continue;
    const std::size_t close = close_angle(t, i + 1);
    if (close == npos) continue;
    std::size_t j = close + 1;
    while (punct_any(t, j, {"&", "*"})) ++j;
    if (is_ident(t, j) && t[j].text != "const") names.insert(t[j].text);
  }
  return names;
}

void check_sv001(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!in_ordered_context(rel_path)) return;
  const std::set<std::string> names = collect_unordered_names(t);
  std::set<int> reported;  // one finding per line, like a reader reads it

  // Range-for whose range expression mentions an unordered container (by
  // declared name or as a temporary).
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!I(t, i, "for") || !P(t, i + 1, "(")) continue;
    const std::size_t close = close_bracket(t, i + 1);
    if (close == npos) continue;
    // The range-for ':' sits at depth 1 relative to the for's '('.
    std::size_t colon = npos;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (punct_any(t, j, {"(", "[", "{"})) ++depth;
      if (punct_any(t, j, {")", "]", "}"})) --depth;
      if (depth == 1 && P(t, j, ":")) {
        colon = j;
        break;
      }
    }
    if (colon == npos) continue;
    std::string hit;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (is_unordered_kw(t, j)) {
        hit = trim(join_tokens(t, colon + 1, close));
        break;
      }
      if (is_ident(t, j) && names.count(t[j].text) != 0) {
        hit = t[j].text;
        break;
      }
    }
    if (!hit.empty() && reported.insert(t[i].line).second) {
      add(out, rel_path, t[i].line, "SV001",
          "iteration over unordered container '" + hit +
              "' in an ordered-output context");
    }
  }

  // Only begin()/cbegin(): iteration always needs one, while a bare .end()
  // is the ubiquitous (and order-safe) find() membership idiom.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i) || names.count(t[i].text) == 0) continue;
    if (i > 0 && punct_any(t, i - 1, {".", "->"})) continue;
    if (P(t, i + 1, ".") && ident_any(t, i + 2, {"begin", "cbegin"}) &&
        P(t, i + 3, "(") && reported.insert(t[i].line).second) {
      add(out, rel_path, t[i].line, "SV001",
          "iteration over unordered container '" + t[i].text +
              "' in an ordered-output context");
    }
  }
}

// ---------------------------------------------------------------------------
// SV002/SV003/SV004: nondeterministic inputs
// ---------------------------------------------------------------------------

void check_sv002_003_004(const std::string& rel_path, const Tokens& t,
                         std::vector<Finding>* out) {
  const bool skip_wall_clock = wall_clock_allowed(rel_path);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool member = i > 0 && punct_any(t, i - 1, {".", "->"});
    if (ident_any(t, i, {"rand", "srand"}) && P(t, i + 1, "(") && !member) {
      add(out, rel_path, t[i].line, "SV002",
          "call to rand()/srand(); use a seeded sv::Rng");
    }
    if (I(t, i, "random_device")) {
      add(out, rel_path, t[i].line, "SV003",
          "std::random_device is nondeterministic; use a seeded sv::Rng");
    }
    if (skip_wall_clock) continue;
    if (I(t, i, "chrono") && P(t, i + 1, "::") &&
        ident_any(t, i + 2,
                  {"system_clock", "steady_clock", "high_resolution_clock"})) {
      add(out, rel_path, t[i].line, "SV004",
          "wall-clock read in simulation code; only src/harness may measure "
          "real time");
    }
    if (ident_any(t, i, {"gettimeofday", "clock_gettime"}) &&
        P(t, i + 1, "(") && !member) {
      add(out, rel_path, t[i].line, "SV004",
          "wall-clock read in simulation code; only src/harness may measure "
          "real time");
    }
    if (I(t, i, "time") && P(t, i + 1, "(") && !member &&
        (ident_any(t, i + 2, {"nullptr", "NULL"}) ||
         (i + 2 < t.size() && t[i + 2].kind == Tok::kNumber &&
          t[i + 2].text == "0")) &&
        P(t, i + 3, ")")) {
      add(out, rel_path, t[i].line, "SV004",
          "wall-clock read in simulation code; only src/harness may measure "
          "real time");
    }
  }
}

// ---------------------------------------------------------------------------
// SV005: pointer-keyed ordered containers
// ---------------------------------------------------------------------------

void check_sv005(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (!ident_any(t, i, {"map", "set", "multimap", "multiset", "less",
                          "greater"})) {
      continue;
    }
    // Require a std:: qualifier so member names like "bitset" or local
    // types called "map" don't trip the rule.
    if (!P(t, i - 1, "::") || !I(t, i - 2, "std")) continue;
    if (!P(t, i + 1, "<")) continue;
    const std::size_t close = close_angle(t, i + 1);
    if (close == npos) continue;
    // First template argument: up to a depth-1 comma or the closer.
    std::size_t end = close;
    int depth = 1;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (P(t, j, "<")) ++depth;
      if (P(t, j, ">")) --depth;
      if (depth == 1 && P(t, j, ",")) {
        end = j;
        break;
      }
    }
    if (end > i + 2 && P(t, end - 1, "*")) {
      add(out, rel_path, t[i].line, "SV005",
          "ordered container keyed by pointer type '" +
              join_tokens(t, i + 2, end) +
              "': iteration order depends on allocation addresses");
    }
  }
}

// ---------------------------------------------------------------------------
// SV006: floating-point accumulation of simulated time
// ---------------------------------------------------------------------------

bool float_time_call_in(const Tokens& t, std::size_t from, std::size_t to) {
  for (std::size_t j = from; j + 3 < t.size() && j < to; ++j) {
    if (P(t, j, ".") && ident_any(t, j + 1, {"us", "ms", "sec"}) &&
        P(t, j + 2, "(") && P(t, j + 3, ")")) {
      return true;
    }
  }
  return false;
}

void check_sv006(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (punct_any(t, i, {"+=", "-="})) {
      std::size_t stmt_end = i;
      while (stmt_end < t.size() && !P(t, stmt_end, ";")) ++stmt_end;
      if (float_time_call_in(t, i + 1, stmt_end)) {
        add(out, rel_path, t[i].line, "SV006",
            "accumulating floating-point time; accumulate integer .ns() or "
            "SimTime instead");
      }
    }
    if (I(t, i, "SimTime") && P(t, i + 1, "(") &&
        I(t, i + 2, "static_cast")) {
      const std::size_t close = close_bracket(t, i + 1);
      if (close != npos && float_time_call_in(t, i + 2, close)) {
        add(out, rel_path, t[i].line, "SV006",
            "SimTime rebuilt from a floating-point time expression; keep "
            "time in integer nanoseconds");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SV007: bypassing the observability layer
// ---------------------------------------------------------------------------

// Counter-ish identifier suffixes: a uint64_t member named like one of
// these is a statistic someone will want in a snapshot.
constexpr const char* kCounterSuffixes[] = {
    "sent",    "received",      "count",       "seen",
    "dropped", "delayed",       "retransmitted", "retransmits",
    "expirations", "timeouts"};

// True when `ident` (with any trailing '_' stripped) is, or ends in
// '_' + one of, the counter suffixes: "timeouts", "bytes_sent_", ...
bool counter_like(const std::string& ident) {
  std::string name = ident;
  while (!name.empty() && name.back() == '_') name.pop_back();
  for (const char* suffix : kCounterSuffixes) {
    const std::string suf(suffix);
    if (name == suf) return true;
    if (name.size() > suf.size() + 1 &&
        name.compare(name.size() - suf.size(), suf.size(), suf) == 0 &&
        name[name.size() - suf.size() - 1] == '_') {
      return true;
    }
  }
  return false;
}

bool zero_literal(const Tokens& t, std::size_t i) {
  if (i >= t.size() || t[i].kind != Tok::kNumber) return false;
  const std::string& s = t[i].text;
  if (s.empty() || s[0] != '0') return false;
  for (std::size_t k = 1; k < s.size(); ++k) {
    if (s[k] != 'u' && s[k] != 'U' && s[k] != 'l' && s[k] != 'L') {
      return false;
    }
  }
  return true;
}

void check_sv007(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!obs_rule_applies(rel_path)) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (I(t, i, "std") && P(t, i + 1, "::") &&
        ident_any(t, i + 2, {"cout", "cerr"})) {
      add(out, rel_path, t[i].line, "SV007",
          "direct console output in simulation code; print from bench "
          "mains/harness or export via obs");
    }
    const bool member = i > 0 && punct_any(t, i - 1, {".", "->"});
    if (ident_any(t, i, {"printf", "fprintf", "puts", "fputs"}) &&
        P(t, i + 1, "(") && !member) {
      add(out, rel_path, t[i].line, "SV007",
          "direct console output in simulation code; print from bench "
          "mains/harness or export via obs");
    }
    // A uint64_t member/variable with a counter-ish name: statistics belong
    // in the registry, where snapshot() and the accessors see one
    // authoritative value. Declaration shapes: "uint64_t x;" and
    // "uint64_t x = 0;".
    if (I(t, i, "uint64_t") && is_ident(t, i + 1) &&
        counter_like(t[i + 1].text) &&
        (P(t, i + 2, ";") ||
         (P(t, i + 2, "=") && zero_literal(t, i + 3) && P(t, i + 4, ";")))) {
      add(out, rel_path, t[i + 1].line, "SV007",
          "raw counter member '" + t[i + 1].text +
              "'; register an obs::Counter in the simulation registry so "
              "snapshots include it");
    }
  }
}

// ---------------------------------------------------------------------------
// SV008: payload byte copies outside the mem layer
// ---------------------------------------------------------------------------

void check_sv008(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!mem_rule_applies(rel_path)) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool member = i > 0 && punct_any(t, i - 1, {".", "->"});
    // (a) memcpy/memmove — the classic smuggled copy. wmemcpy and
    // x.memcpy(...) are distinct tokens / member calls and do not trip.
    if (ident_any(t, i, {"memcpy", "memmove"}) && P(t, i + 1, "(") &&
        !member) {
      add(out, rel_path, t[i].line, "SV008",
          "memcpy/memmove outside src/mem/; copy through mem::Payload so "
          "the mem ledger records it");
    }
    // (b) std::vector<std::byte> built from existing bytes: deref copy
    // "vector<std::byte>(*p)" or iterator-range copy "(x.begin(), ...)".
    // Size construction "(n)" and default construction stay legal.
    if (!I(t, i, "vector") || !P(t, i + 1, "<")) continue;
    std::size_t j = i + 2;
    if (I(t, j, "std") && P(t, j + 1, "::")) j += 2;
    if (!I(t, j, "byte") || !P(t, j + 1, ">")) continue;
    j += 2;
    if (is_ident(t, j)) ++j;  // optional variable name
    if (!punct_any(t, j, {"(", "{"})) continue;
    const std::size_t inner = j + 1;
    const bool deref_copy = P(t, inner, "*");
    const bool range_copy = is_ident(t, inner) &&
                            punct_any(t, inner + 1, {".", "->"}) &&
                            ident_any(t, inner + 2, {"begin", "cbegin"}) &&
                            P(t, inner + 3, "(");
    if (deref_copy || range_copy) {
      add(out, rel_path, t[i].line, "SV008",
          "std::vector<std::byte> copy-constructed from existing bytes "
          "outside src/mem/; use Payload::copy_of or a BufferPool lease so "
          "the copy is charged");
    }
  }
}

// ---------------------------------------------------------------------------
// SV009: layering DAG over the include graph
// ---------------------------------------------------------------------------

void check_sv009(const std::string& rel_path, const LexedFile& lx,
                 std::vector<Finding>* out) {
  if (!starts_with(rel_path, "src/")) return;
  const std::string own = module_of(rel_path);
  const int own_rank = module_rank(own);
  if (own_rank < 0) {
    add(out, rel_path, 1, "SV009",
        "module 'src/" + own +
            "' is not in the declared layering DAG; add it to "
            "tools/svlint/include_graph.cc (and DESIGN.md §11) with a "
            "deliberate rank");
    return;
  }
  for (const Include& inc : lx.includes) {
    if (inc.angled) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // local header
    const std::string target = inc.path.substr(0, slash);
    const int target_rank = module_rank(target);
    if (target_rank < 0 || target == own) continue;
    if (target_rank >= own_rank) {
      add(out, rel_path, inc.line, "SV009",
          "layering violation: '" + own + "' (layer " +
              std::to_string(own_rank) + ") may not include '" + inc.path +
              "' ('" + target + "' is layer " + std::to_string(target_rank) +
              "; the DAG is " + layering_description() + ")");
    }
  }
}

// ---------------------------------------------------------------------------
// SV010: discarded timed-operation results
// ---------------------------------------------------------------------------

// Walks the postfix chain backwards from the callee identifier at `i`
// ("mine().delivered.recv_for" -> index of "mine") and returns the index of
// the chain's first token.
std::size_t chain_begin(const Tokens& t, std::size_t i) {
  std::size_t j = i;
  while (j >= 2 && punct_any(t, j - 1, {".", "->", "::"})) {
    std::size_t k = j - 2;
    if (P(t, k, ")")) {
      const std::size_t open = open_bracket_before(t, k);
      if (open == npos || open == 0 || !is_ident(t, open - 1)) break;
      k = open - 1;
    } else if (!is_ident(t, k)) {
      break;
    }
    j = k;
  }
  return j;
}

void check_sv010(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!result_rule_applies(rel_path)) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident_any(t, i, {"send_for", "recv_for", "wait_completion_for"}) ||
        !P(t, i + 1, "(")) {
      continue;
    }
    const std::size_t close = close_bracket(t, i + 1);
    // The whole statement must be the call: anything after the ')' other
    // than ';' means the value is consumed (.ok(), .value(), a comparison).
    if (close == npos || !P(t, close + 1, ";")) continue;
    const std::size_t begin = chain_begin(t, i);
    if (begin == 0) {
      add(out, rel_path, t[i].line, "SV010",
          "discarded Result from '" + t[i].text + "'");
      continue;
    }
    const Token& prev = t[begin - 1];
    // "(void)chain->send_for(...);" is the sanctioned explicit discard.
    if (prev.kind == Tok::kPunct && prev.text == ")" && begin >= 3 &&
        I(t, begin - 2, "void") && P(t, begin - 3, "(")) {
      continue;
    }
    const bool discarded =
        punct_any(t, begin - 1, {";", "{", "}", ")", ":"}) ||
        ident_any(t, begin - 1, {"else", "do"});
    if (discarded) {
      add(out, rel_path, t[i].line, "SV010",
          "discarded Result from '" + t[i].text +
              "': a dropped timeout turns a detected stall back into a "
              "hang; assign it or cast to (void) with a reason");
    }
  }
}

// ---------------------------------------------------------------------------
// SV011: raw OS concurrency outside the sim scheduler
// ---------------------------------------------------------------------------

constexpr const char* kThreadHeaders[] = {
    "thread", "mutex", "shared_mutex", "condition_variable", "atomic",
    "future", "semaphore", "barrier", "latch", "stop_token"};

constexpr const char* kThreadIdents[] = {
    "thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
    "condition_variable", "condition_variable_any", "lock_guard",
    "unique_lock", "scoped_lock", "shared_lock", "future", "promise",
    "async", "counting_semaphore", "binary_semaphore", "barrier", "latch",
    "stop_token", "stop_source"};

void check_sv011(const std::string& rel_path, const LexedFile& lx,
                 std::vector<Finding>* out) {
  if (!thread_rule_applies(rel_path)) return;
  for (const Include& inc : lx.includes) {
    if (!inc.angled) continue;
    for (const char* h : kThreadHeaders) {
      if (inc.path == h) {
        add(out, rel_path, inc.line, "SV011",
            "#include <" + inc.path +
                "> outside src/sim: simulated code must synchronise through "
                "the sim scheduler, not OS threads");
      }
    }
  }
  const Tokens& t = lx.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!I(t, i, "std") || !P(t, i + 1, "::")) continue;
    const std::string& name = t[i + 2].text;
    bool hit = t[i + 2].kind == Tok::kIdent &&
               name.compare(0, 7, "atomic_") == 0;
    hit = hit || I(t, i + 2, "atomic");
    for (const char* id : kThreadIdents) {
      if (I(t, i + 2, id)) hit = true;
    }
    if (hit) {
      add(out, rel_path, t[i].line, "SV011",
          "raw std::" + name +
              " outside src/sim: determinism requires all concurrency to go "
              "through the sim scheduler");
    }
  }
}

// ---------------------------------------------------------------------------
// SV012: metric names must be declared in the manifest
// ---------------------------------------------------------------------------

std::string metric_family(const std::string& literal) {
  const std::size_t brace = literal.find('{');
  return brace == std::string::npos ? literal : literal.substr(0, brace);
}

// Creation sites look like `<recv>.counter("name...")`; the receiver is
// irrelevant (registry reference, hub->metrics(), ...). Non-literal name
// arguments are skipped — the engine has no constant propagation.
bool metric_site(const Tokens& t, std::size_t i, std::string* family,
                 int* line) {
  if (!punct_any(t, i, {".", "->"}) ||
      !ident_any(t, i + 1, {"counter", "gauge", "histogram"}) ||
      !P(t, i + 2, "(")) {
    return false;
  }
  if (i + 3 >= t.size() || t[i + 3].kind != Tok::kString) return false;
  *family = metric_family(t[i + 3].text);
  *line = t[i + 1].line;
  return true;
}

void check_sv012(const std::string& rel_path, const Tokens& t,
                 const ProjectContext* ctx, std::vector<Finding>* out) {
  if (ctx == nullptr || !ctx->manifest_loaded) return;
  if (!metric_rule_applies(rel_path)) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::string family;
    int line = 0;
    if (!metric_site(t, i, &family, &line)) continue;
    if (family.empty() || ctx->metric_manifest.count(family) != 0) continue;
    add(out, rel_path, line, "SV012",
        "metric family '" + family +
            "' is not declared in src/obs/metrics_manifest.txt; declare it "
            "(or fix the typo) so dashboards and the manifest ctest see it");
  }
}

// ---------------------------------------------------------------------------
// SV013: memory registration / pool acquisition outside the mem layer
// ---------------------------------------------------------------------------

// Names declared with a BufferPool type in this file ("mem::BufferPool p",
// "std::optional<mem::BufferPool> pool_", "BufferPool* p"). The nested-name
// case ("BufferPool::Options") is not a declaration and must not collect.
std::set<std::string> collect_buffer_pool_names(const Tokens& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!I(t, i, "BufferPool")) continue;
    std::size_t j = i + 1;
    while (punct_any(t, j, {"&", "*", ">"})) ++j;
    if (is_ident(t, j) && t[j].text != "const") names.insert(t[j].text);
  }
  return names;
}

void check_sv013(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!pool_rule_applies(rel_path)) return;
  const std::set<std::string> pools = collect_buffer_pool_names(t);
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!punct_any(t, i, {".", "->"})) continue;
    // (a) any member register_memory() call: pinning is the policy
    // engine's decision, wherever the NIC handle came from.
    if (I(t, i + 1, "register_memory") && P(t, i + 2, "(")) {
      add(out, rel_path, t[i + 1].line, "SV013",
          "direct register_memory() outside src/mem/; registration must go "
          "through mem::CopyPolicy/RegCache so the pin is charged to the "
          "ledger");
      continue;
    }
    // (b) acquire() on a BufferPool receiver. acquire() is a common verb
    // (sim::Resource, Semaphore, EventArena, CopyPolicy), so the receiver
    // must be declared BufferPool in this file or carry a pool-ish name.
    if (!I(t, i + 1, "acquire") || !P(t, i + 2, "(")) continue;
    if (!is_ident(t, i - 1)) continue;
    const std::string& recv = t[i - 1].text;
    std::string lower;
    for (char c : recv) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (pools.count(recv) == 0 && lower.find("pool") == std::string::npos) {
      continue;
    }
    add(out, rel_path, t[i + 1].line, "SV013",
        "BufferPool::acquire on '" + recv +
            "' outside src/mem/; stage outbound payloads through "
            "mem::CopyPolicy so the copy-vs-pin decision is modeled and "
            "charged");
  }
}

// ---------------------------------------------------------------------------
// SV014: SLO actuator mutation outside the control plane
// ---------------------------------------------------------------------------

void check_sv014(const std::string& rel_path, const Tokens& t,
                 std::vector<Finding>* out) {
  if (!actuator_rule_applies(rel_path)) return;
  // The banned verbs. Installing a callback (`acts.apply_demotion = ...`)
  // is fine — only *calling* one (`.` / `->`, the name, then `(`) fires an
  // actuation, and actuations belong to the Controller alone.
  static constexpr const char* kActuators[] = {
      "set_admit_permille", "apply_chunk_bytes", "apply_demotion",
      "apply_promotion"};
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!punct_any(t, i, {".", "->"})) continue;
    for (const char* name : kActuators) {
      if (!I(t, i + 1, name) || !P(t, i + 2, "(")) continue;
      add(out, rel_path, t[i + 1].line, "SV014",
          std::string("direct ") + name +
              "() call outside src/control/; actuations must come from "
              "slo::Controller so they appear in its deterministic action "
              "log (DESIGN.md §15)");
      break;
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

ProjectContext load_project(const std::filesystem::path& root) {
  ProjectContext ctx;
  std::ifstream in(root / "src/obs/metrics_manifest.txt");
  if (!in) return ctx;
  ctx.manifest_loaded = true;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string name = trim(line);
    if (name.empty() || name[0] == '#') continue;
    ctx.metric_manifest.emplace(name, lineno);
  }
  return ctx;
}

std::vector<Finding> scan_lexed(const std::string& rel_path,
                                const LexedFile& lx,
                                const ProjectContext* ctx) {
  std::vector<Finding> findings;
  const Tokens& t = lx.tokens;
  check_sv001(rel_path, t, &findings);
  check_sv002_003_004(rel_path, t, &findings);
  check_sv005(rel_path, t, &findings);
  check_sv006(rel_path, t, &findings);
  check_sv007(rel_path, t, &findings);
  check_sv008(rel_path, t, &findings);
  check_sv009(rel_path, lx, &findings);
  check_sv010(rel_path, t, &findings);
  check_sv011(rel_path, lx, &findings);
  check_sv012(rel_path, t, ctx, &findings);
  check_sv013(rel_path, t, &findings);
  check_sv014(rel_path, t, &findings);

  // Apply suppressions (an allow on the finding's line or the line above)
  // and attach the offending source line as the report snippet.
  for (Finding& f : findings) {
    const auto idx = static_cast<std::size_t>(f.line - 1);
    const auto allowed = [&](std::size_t i) {
      return i < lx.allows.size() && lx.allows[i].count(f.rule) != 0;
    };
    if (allowed(idx) || (idx > 0 && allowed(idx - 1))) f.suppressed = true;
    if (idx < lx.raw_lines.size()) f.snippet = trim(lx.raw_lines[idx]);
  }

  // Stable order: by line, then rule id.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text,
                                 const ProjectContext* ctx) {
  return scan_lexed(rel_path, lex(text), ctx);
}

std::vector<Finding> scan_file(const std::filesystem::path& root,
                               const std::string& rel_path,
                               const ProjectContext* ctx) {
  std::ifstream in(root / rel_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("svlint: cannot read " +
                             (root / rel_path).string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return scan_source(rel_path, ss.str(), ctx);
}

std::set<std::string> collect_metric_families(const LexedFile& lx) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
    std::string family;
    int line = 0;
    if (metric_site(lx.tokens, i, &family, &line) && !family.empty()) {
      out.insert(family);
    }
  }
  return out;
}

Baseline Baseline::load(const std::filesystem::path& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;
  std::string line;
  while (std::getline(in, line)) {
    const std::string entry = trim(line);
    if (entry.empty() || entry[0] == '#') continue;
    std::istringstream fields(entry);
    std::string rel_path, rule;
    if (fields >> rel_path >> rule) {
      ++b.entries_[{rel_path, rule}];
      ++b.total_;
    }
  }
  return b;
}

bool Baseline::absorb(const std::string& rel_path, const std::string& rule) {
  const auto it = entries_.find({rel_path, rule});
  if (it == entries_.end() || it->second <= 0) return false;
  --it->second;
  return true;
}

void Baseline::write(std::ostream& os, const std::vector<Finding>& findings) {
  os << "# svlint baseline: grandfathered findings, one \"<path> <rule>\" "
        "pair per instance.\n"
     << "# CI enforces that this file only ever shrinks "
        "(tools/svlint/baseline_guard.sh).\n";
  for (const Finding& f : findings) {
    if (!f.suppressed) os << f.rel_path << ' ' << f.rule << '\n';
  }
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_findings_json(std::ostream& os,
                         const std::vector<Finding>& findings) {
  std::vector<std::size_t> order(findings.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Finding& x = findings[a];
                     const Finding& y = findings[b];
                     if (x.rel_path != y.rel_path)
                       return x.rel_path < y.rel_path;
                     if (x.line != y.line) return x.line < y.line;
                     return x.rule < y.rule;
                   });
  os << "[\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Finding& f = findings[order[i]];
    os << "  {\"file\": ";
    json_escape(os, f.rel_path);
    os << ", \"line\": " << f.line << ", \"rule\": ";
    json_escape(os, f.rule);
    os << ", \"message\": ";
    json_escape(os, f.message);
    os << ", \"snippet\": ";
    json_escape(os, f.snippet);
    os << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace sv::lint
