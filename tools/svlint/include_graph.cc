#include "include_graph.h"

#include <algorithm>
#include <deque>

namespace sv::lint {
namespace {

// The declared layering DAG (DESIGN.md §11). Rank order is the build
// order: a module may include strictly lower ranks only. tcpstack and via
// share a rank — they are sibling transports and must not include each
// other.
struct ModuleRank {
  const char* module;
  int rank;
};
constexpr ModuleRank kLayering[] = {
    {"common", 0},     {"obs", 1},      {"control", 2}, {"sim", 3},
    {"mem", 4},        {"net", 5},      {"tcpstack", 6}, {"via", 6},
    {"sockets", 7},    {"datacutter", 8}, {"vizapp", 9}, {"harness", 10},
};

std::string dir_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.rfind('/');
  return slash == std::string::npos ? std::string()
                                    : rel_path.substr(0, slash);
}

}  // namespace

int module_rank(const std::string& module) {
  for (const ModuleRank& m : kLayering) {
    if (module == m.module) return m.rank;
  }
  return -1;
}

std::string module_of(const std::string& rel_path) {
  const std::string prefix = "src/";
  if (rel_path.compare(0, prefix.size(), prefix) != 0) return {};
  const std::size_t slash = rel_path.find('/', prefix.size());
  if (slash == std::string::npos) return {};
  return rel_path.substr(prefix.size(), slash - prefix.size());
}

std::string layering_description() {
  std::string out;
  int prev_rank = -1;
  for (const ModuleRank& m : kLayering) {
    if (!out.empty()) out += m.rank == prev_rank ? " = " : " < ";
    out += m.module;
    prev_rank = m.rank;
  }
  return out;
}

void IncludeGraph::add_file(const std::string& rel_path,
                            const std::vector<Include>& includes) {
  raw_[rel_path] = includes;
}

void IncludeGraph::finalize() {
  fwd_.clear();
  rev_.clear();
  for (const auto& [file, includes] : raw_) {
    std::vector<std::string> resolved;
    for (const Include& inc : includes) {
      if (inc.angled) continue;
      const std::string local_dir = dir_of(file);
      const std::string candidates[] = {
          "src/" + inc.path,
          local_dir.empty() ? inc.path : local_dir + "/" + inc.path,
          inc.path,
      };
      for (const std::string& cand : candidates) {
        if (raw_.count(cand) != 0) {
          resolved.push_back(cand);
          break;
        }
      }
    }
    std::sort(resolved.begin(), resolved.end());
    resolved.erase(std::unique(resolved.begin(), resolved.end()),
                   resolved.end());
    for (const std::string& inc : resolved) rev_[inc].insert(file);
    fwd_[file] = std::move(resolved);
  }
}

const std::vector<std::string>& IncludeGraph::includes_of(
    const std::string& rel_path) const {
  static const std::vector<std::string> kEmpty;
  const auto it = fwd_.find(rel_path);
  return it == fwd_.end() ? kEmpty : it->second;
}

std::set<std::string> IncludeGraph::dependents_of(
    const std::set<std::string>& changed) const {
  std::set<std::string> out;
  std::deque<std::string> queue;
  for (const std::string& f : changed) {
    if (out.insert(f).second) queue.push_back(f);
  }
  while (!queue.empty()) {
    const std::string f = queue.front();
    queue.pop_front();
    const auto it = rev_.find(f);
    if (it == rev_.end()) continue;
    for (const std::string& includer : it->second) {
      if (out.insert(includer).second) queue.push_back(includer);
    }
  }
  // Only files actually registered belong in a scan set (a deleted file can
  // appear in `changed` via git diff).
  std::set<std::string> known;
  for (const std::string& f : out) {
    if (raw_.count(f) != 0) known.insert(f);
  }
  return known;
}

std::map<std::string, std::set<std::string>> IncludeGraph::module_edges()
    const {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& [file, includes] : fwd_) {
    const std::string from = module_of(file);
    if (from.empty()) continue;
    for (const std::string& inc : includes) {
      const std::string to = module_of(inc);
      if (!to.empty() && to != from) out[from].insert(to);
    }
  }
  return out;
}

}  // namespace sv::lint
