#include "lexer.h"

#include <cctype>

namespace sv::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Encoding/raw-string prefixes: an identifier immediately followed by '"'
// that is one of these continues into a string literal.
bool string_prefix(const std::string& id, bool* raw) {
  if (id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R") {
    *raw = true;
    return true;
  }
  if (id == "L" || id == "u" || id == "U" || id == "u8") {
    *raw = false;
    return true;
  }
  return false;
}

// Parses "svlint:allow(SV001, SV004)" occurrences inside one comment line.
void harvest_allows(const std::string& comment, std::set<std::string>* out) {
  const std::string kMarker = "svlint:allow(";
  for (std::size_t at = comment.find(kMarker); at != std::string::npos;
       at = comment.find(kMarker, at + 1)) {
    std::size_t i = at + kMarker.size();
    std::string id;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
      const char c = comment[i];
      if (c == ',') {
        if (!id.empty()) out->insert(id);
        id.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        id += c;
      }
    }
    if (!id.empty()) out->insert(id);
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile run() {
    split_lines();
    out_.allows.resize(out_.raw_lines.size());
    while (i_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  void split_lines() {
    std::string cur;
    for (char c : text_) {
      if (c == '\n') {
        out_.raw_lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out_.raw_lines.push_back(cur);
  }

  char at(std::size_t i) const { return i < text_.size() ? text_[i] : '\0'; }
  char cur() const { return at(i_); }
  char next() const { return at(i_ + 1); }

  void allow_into_line(const std::string& comment, int line) {
    if (line >= 1 && static_cast<std::size_t>(line) <= out_.allows.size()) {
      harvest_allows(comment,
                     &out_.allows[static_cast<std::size_t>(line - 1)]);
    }
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  void step() {
    const char c = cur();
    if (c == '\n') {
      ++line_;
      ++i_;
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i_;
      return;
    }
    if (c == '/' && next() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && next() == '*') {
      block_comment();
      return;
    }
    if (c == '"') {
      string_literal(false);
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (c == '#') {
      directive();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      number();
      return;
    }
    punct();
  }

  void line_comment() {
    std::size_t j = i_ + 2;
    std::string body;
    while (j < text_.size() && text_[j] != '\n') body += text_[j++];
    allow_into_line(body, line_);
    i_ = j;  // leave the '\n' for step()
  }

  void block_comment() {
    std::size_t j = i_ + 2;
    std::string body;
    while (j < text_.size()) {
      if (text_[j] == '*' && at(j + 1) == '/') {
        j += 2;
        break;
      }
      if (text_[j] == '\n') {
        allow_into_line(body, line_);
        body.clear();
        ++line_;
      } else {
        body += text_[j];
      }
      ++j;
    }
    allow_into_line(body, line_);
    i_ = j;
  }

  void string_literal(bool raw) {
    const int start_line = line_;
    std::string body;
    if (raw) {
      // R"delim( ... )delim"
      std::size_t j = i_ + 1;  // at the char after '"'
      std::string delim;
      while (j < text_.size() && text_[j] != '(') delim += text_[j++];
      ++j;  // past '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text_.find(closer, j);
      const std::size_t stop = end == std::string::npos ? text_.size() : end;
      for (std::size_t k = j; k < stop; ++k) {
        if (text_[k] == '\n') {
          ++line_;
        } else {
          body += text_[k];
        }
      }
      i_ = stop == text_.size() ? stop : stop + closer.size();
    } else {
      std::size_t j = i_ + 1;
      while (j < text_.size() && text_[j] != '"' && text_[j] != '\n') {
        if (text_[j] == '\\' && j + 1 < text_.size()) {
          body += text_[j];
          body += text_[j + 1];
          j += 2;
        } else {
          body += text_[j++];
        }
      }
      i_ = j < text_.size() && text_[j] == '"' ? j + 1 : j;
    }
    emit(Tok::kString, std::move(body), start_line);
  }

  void char_literal() {
    std::size_t j = i_ + 1;
    std::string body;
    while (j < text_.size() && text_[j] != '\'' && text_[j] != '\n') {
      if (text_[j] == '\\' && j + 1 < text_.size()) {
        body += text_[j];
        body += text_[j + 1];
        j += 2;
      } else {
        body += text_[j++];
      }
    }
    emit(Tok::kChar, std::move(body), line_);
    i_ = j < text_.size() && text_[j] == '\'' ? j + 1 : j;
  }

  // '#': if this is an #include, record the directive and swallow the path
  // (so "common/result.h" never looks like a string to the rules); any
  // other directive just emits '#' and lexes its tokens normally.
  void directive() {
    std::size_t j = i_ + 1;
    while (j < text_.size() && (text_[j] == ' ' || text_[j] == '\t')) ++j;
    std::string word;
    while (j < text_.size() && ident_char(text_[j])) word += text_[j++];
    if (word != "include") {
      emit(Tok::kPunct, "#", line_);
      ++i_;
      return;
    }
    while (j < text_.size() && (text_[j] == ' ' || text_[j] == '\t')) ++j;
    if (j < text_.size() && (text_[j] == '"' || text_[j] == '<')) {
      const char close = text_[j] == '"' ? '"' : '>';
      const bool angled = close == '>';
      std::string path;
      ++j;
      while (j < text_.size() && text_[j] != close && text_[j] != '\n') {
        path += text_[j++];
      }
      if (j < text_.size() && text_[j] == close) ++j;
      out_.includes.push_back({std::move(path), angled, line_});
    }
    i_ = j;
  }

  void identifier() {
    std::size_t j = i_;
    std::string id;
    while (j < text_.size() && ident_char(text_[j])) id += text_[j++];
    bool raw = false;
    if (at(j) == '"' && string_prefix(id, &raw)) {
      i_ = j;  // at the opening quote
      string_literal(raw);
      return;
    }
    emit(Tok::kIdent, std::move(id), line_);
    i_ = j;
  }

  void number() {
    std::size_t j = i_;
    std::string num;
    while (j < text_.size()) {
      const char c = text_[j];
      if (ident_char(c) || c == '.' || c == '\'') {
        num += c;
        ++j;
      } else if ((c == '+' || c == '-') && !num.empty() &&
                 (num.back() == 'e' || num.back() == 'E' ||
                  num.back() == 'p' || num.back() == 'P')) {
        num += c;
        ++j;
      } else {
        break;
      }
    }
    emit(Tok::kNumber, std::move(num), line_);
    i_ = j;
  }

  void punct() {
    // Multi-char operators the rules care about are kept as one token;
    // everything else (including '>' '>') is emitted char-by-char so the
    // template-argument scanners can count closers individually.
    static const char* kPairs[] = {"::", "->", "+=", "-="};
    for (const char* p : kPairs) {
      if (cur() == p[0] && next() == p[1]) {
        emit(Tok::kPunct, p, line_);
        i_ += 2;
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, cur()), line_);
    ++i_;
  }

  const std::string& text_;
  std::size_t i_ = 0;
  int line_ = 1;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace sv::lint
