#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sv::sim {
namespace {

using namespace sv::literals;

TEST(ProcessTest, DelayAdvancesSimulatedTime) {
  Simulation s;
  SimTime observed = SimTime::zero();
  s.spawn("p", [&] {
    s.delay(10_us);
    observed = s.now();
  });
  s.run();
  EXPECT_EQ(observed, 10_us);
  EXPECT_EQ(s.now(), 10_us);
}

TEST(ProcessTest, SequentialDelaysAccumulate) {
  Simulation s;
  std::vector<SimTime> marks;
  s.spawn("p", [&] {
    for (int i = 0; i < 3; ++i) {
      s.delay(5_us);
      marks.push_back(s.now());
    }
  });
  s.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks[0], 5_us);
  EXPECT_EQ(marks[1], 10_us);
  EXPECT_EQ(marks[2], 15_us);
}

TEST(ProcessTest, ProcessesInterleaveDeterministically) {
  Simulation s;
  std::vector<std::string> order;
  s.spawn("a", [&] {
    s.delay(10_us);
    order.push_back("a@10");
    s.delay(20_us);
    order.push_back("a@30");
  });
  s.spawn("b", [&] {
    s.delay(15_us);
    order.push_back("b@15");
    s.delay(5_us);
    order.push_back("b@20");
  });
  s.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a@10", "b@15", "b@20", "a@30"}));
}

TEST(ProcessTest, SameTimeResumptionFollowsScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.spawn("p" + std::to_string(i), [&s, &order, i] {
      s.delay(10_us);
      order.push_back(i);
    });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ProcessTest, SpawnFromInsideProcess) {
  Simulation s;
  std::vector<std::string> log;
  s.spawn("parent", [&] {
    s.delay(5_us);
    log.push_back("parent@5");
    s.spawn("child", [&] {
      s.delay(7_us);
      log.push_back("child@12");
    });
    s.delay(10_us);
    log.push_back("parent@15");
  });
  s.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent@5", "child@12",
                                           "parent@15"}));
}

TEST(ProcessTest, BlockAndWake) {
  Simulation s;
  Process* sleeper = nullptr;
  SimTime woke_at = SimTime::zero();
  sleeper = &s.spawn("sleeper", [&] {
    s.block_current("test-block");
    woke_at = s.now();
  });
  s.spawn("waker", [&] {
    s.delay(42_us);
    s.wake(*sleeper);
  });
  s.run();
  EXPECT_EQ(woke_at, 42_us);
  EXPECT_TRUE(sleeper->finished());
}

TEST(ProcessTest, DoubleWakeIsHarmless) {
  Simulation s;
  Process* sleeper = nullptr;
  int wakes = 0;
  sleeper = &s.spawn("sleeper", [&] {
    s.block_current("x");
    ++wakes;
    s.delay(100_us);  // still blocked here when the stale wake would land
  });
  s.spawn("waker", [&] {
    s.delay(10_us);
    s.wake(*sleeper);
    s.wake(*sleeper);  // second wake must be a no-op
  });
  s.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(s.now(), 110_us);
}

TEST(ProcessTest, ExceptionInProcessPropagatesToRun) {
  Simulation s;
  s.spawn("bad", [&] {
    s.delay(1_us);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(ProcessTest, DestructionUnwindsBlockedProcesses) {
  // A simulation destroyed while processes are blocked must join all
  // threads without hanging (ProcessKilled unwind).
  bool cleanup_ran = false;
  {
    Simulation s;
    s.spawn("stuck", [&] {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } g{&cleanup_ran};
      s.block_current("forever");
    });
    s.run();
    EXPECT_EQ(s.live_process_count(), 1u);
  }
  EXPECT_TRUE(cleanup_ran);
}

TEST(ProcessTest, DestructionUnwindsNeverStartedProcesses) {
  // Spawned but run() never called: destructor must still not hang.
  Simulation s;
  s.spawn("never-started", [&] { s.delay(1_s); });
}

TEST(ProcessTest, BlockedProcessNamesDiagnostic) {
  Simulation s;
  s.spawn("waiter", [&] { s.block_current("waiting-for-godot"); });
  s.run();
  const auto names = s.blocked_process_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_NE(names[0].find("waiter"), std::string::npos);
  EXPECT_NE(names[0].find("waiting-for-godot"), std::string::npos);
}

TEST(ProcessTest, DelayOutsideProcessThrows) {
  Simulation s;
  EXPECT_THROW(s.delay(1_us), std::logic_error);
  EXPECT_THROW(s.block_current("x"), std::logic_error);
}

TEST(ProcessTest, NegativeDelayThrows) {
  Simulation s;
  s.spawn("p", [&] {
    EXPECT_THROW(s.delay(SimTime(-1)), std::invalid_argument);
  });
  s.run();
}

TEST(ProcessTest, ZeroDelayYieldsButStaysAtSameTime) {
  Simulation s;
  std::vector<int> order;
  s.spawn("a", [&] {
    order.push_back(1);
    s.delay(SimTime::zero());
    order.push_back(3);
  });
  s.spawn("b", [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::zero());
}

TEST(ProcessTest, ManyProcessesScale) {
  Simulation s;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    s.spawn("p" + std::to_string(i), [&s, &done, i] {
      s.delay(SimTime::microseconds(i % 17));
      ++done;
    });
  }
  s.run();
  EXPECT_EQ(done, 200);
}

TEST(ProcessTest, RunForAdvancesWindow) {
  Simulation s;
  int ticks = 0;
  s.spawn("ticker", [&] {
    for (int i = 0; i < 100; ++i) {
      s.delay(10_us);
      ++ticks;
    }
  });
  s.run_for(35_us);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(s.now(), 35_us);
  s.run_for(30_us);
  EXPECT_EQ(ticks, 6);
}

}  // namespace
}  // namespace sv::sim
