#include "sim/resource.h"

#include <gtest/gtest.h>

#include <vector>

namespace sv::sim {
namespace {

using namespace sv::literals;

TEST(ResourceTest, SingleServerSerializes) {
  Simulation s;
  Resource r(&s, 1);
  std::vector<SimTime> start_times;
  for (int i = 0; i < 3; ++i) {
    s.spawn("p" + std::to_string(i), [&] {
      r.acquire();
      start_times.push_back(s.now());
      s.delay(10_us);
      r.release();
    });
  }
  s.run();
  ASSERT_EQ(start_times.size(), 3u);
  EXPECT_EQ(start_times[0], SimTime::zero());
  EXPECT_EQ(start_times[1], 10_us);
  EXPECT_EQ(start_times[2], 20_us);
}

TEST(ResourceTest, MultiServerParallelism) {
  Simulation s;
  Resource r(&s, 2);  // e.g. the dual-CPU nodes in the paper's cluster
  std::vector<SimTime> done_times;
  for (int i = 0; i < 4; ++i) {
    s.spawn("p" + std::to_string(i), [&] {
      r.use(10_us);
      done_times.push_back(s.now());
    });
  }
  s.run();
  ASSERT_EQ(done_times.size(), 4u);
  EXPECT_EQ(done_times[0], 10_us);
  EXPECT_EQ(done_times[1], 10_us);
  EXPECT_EQ(done_times[2], 20_us);
  EXPECT_EQ(done_times[3], 20_us);
}

TEST(ResourceTest, FifoHandoffOrder) {
  Simulation s;
  Resource r(&s, 1);
  std::vector<int> order;
  s.spawn("holder", [&] {
    r.acquire();
    s.delay(100_us);
    r.release();
  });
  for (int i = 0; i < 5; ++i) {
    s.spawn("w" + std::to_string(i), [&, i] {
      s.delay(SimTime::microseconds(i + 1));  // arrive in order 0..4
      r.acquire();
      order.push_back(i);
      s.delay(1_us);
      r.release();
    });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, DirectHandoffPreventsBargeIn) {
  // A unit released while someone waits must go to the waiter even if
  // another process tries to acquire at the same timestamp.
  Simulation s;
  Resource r(&s, 1);
  std::vector<std::string> order;
  s.spawn("holder", [&] {
    r.acquire();
    s.delay(10_us);
    r.release();
  });
  s.spawn("waiter", [&] {
    s.delay(1_us);
    r.acquire();
    order.push_back("waiter");
    r.release();
  });
  s.spawn("barger", [&] {
    s.delay(10_us);  // arrives exactly when holder releases
    r.acquire();
    order.push_back("barger");
    r.release();
  });
  s.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "waiter");
}

TEST(ResourceTest, TryAcquire) {
  Simulation s;
  Resource r(&s, 1);
  s.spawn("p", [&] {
    EXPECT_TRUE(r.try_acquire());
    EXPECT_FALSE(r.try_acquire());
    r.release();
    EXPECT_TRUE(r.try_acquire());
    r.release();
  });
  s.run();
}

TEST(ResourceTest, ReleaseWithoutHoldThrows) {
  Simulation s;
  Resource r(&s, 1);
  s.spawn("p", [&] { EXPECT_THROW(r.release(), std::logic_error); });
  s.run();
}

TEST(ResourceTest, InvalidCapacityThrows) {
  Simulation s;
  EXPECT_THROW(Resource(&s, 0), std::invalid_argument);
  EXPECT_THROW(Resource(&s, -2), std::invalid_argument);
}

TEST(ResourceTest, CountsReflectState) {
  Simulation s;
  Resource r(&s, 3);
  s.spawn("p", [&] {
    EXPECT_EQ(r.available(), 3);
    r.acquire();
    r.acquire();
    EXPECT_EQ(r.in_use(), 2);
    EXPECT_EQ(r.available(), 1);
    r.release();
    r.release();
    EXPECT_EQ(r.in_use(), 0);
  });
  s.run();
}

TEST(ResourceTest, UtilizationAccounting) {
  Simulation s;
  Resource r(&s, 1);
  s.spawn("p", [&] {
    r.use(50_us);   // busy 50us
    s.delay(50_us); // idle 50us
  });
  s.run();
  EXPECT_EQ(r.busy_ns(), 50'000);
  EXPECT_NEAR(r.utilization(SimTime::zero(), 100_us), 0.5, 1e-9);
}

TEST(ResourceTest, DuplexPortIndependentDirections) {
  Simulation s;
  DuplexPort port(&s, "nic0");
  std::vector<SimTime> done;
  s.spawn("sender", [&] {
    port.tx.use(10_us);
    done.push_back(s.now());
  });
  s.spawn("receiver", [&] {
    port.rx.use(10_us);
    done.push_back(s.now());
  });
  s.run();
  // Full duplex: both complete at 10us, not serialized.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10_us);
  EXPECT_EQ(done[1], 10_us);
}

}  // namespace
}  // namespace sv::sim
