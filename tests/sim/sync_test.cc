#include "sim/sync.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace sv::sim {
namespace {

using namespace sv::literals;

TEST(WaitQueueTest, NotifyOneWakesFifo) {
  Simulation s;
  WaitQueue q(&s);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    s.spawn("w" + std::to_string(i), [&, i] {
      q.wait();
      order.push_back(i);
    });
  }
  s.spawn("notifier", [&] {
    s.delay(10_us);
    q.notify_one();
    s.delay(10_us);
    q.notify_one();
    s.delay(10_us);
    q.notify_one();
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueueTest, NotifyAllWakesEveryone) {
  Simulation s;
  WaitQueue q(&s);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    s.spawn("w" + std::to_string(i), [&] {
      q.wait();
      ++woken;
    });
  }
  s.spawn("notifier", [&] {
    s.delay(1_us);
    q.notify_all();
  });
  s.run();
  EXPECT_EQ(woken, 5);
}

TEST(WaitQueueTest, NotifyOneOnEmptyReturnsFalse) {
  Simulation s;
  WaitQueue q(&s);
  s.spawn("p", [&] { EXPECT_FALSE(q.notify_one()); });
  s.run();
}

TEST(WaitQueueTest, WaitForTimesOut) {
  Simulation s;
  WaitQueue q(&s);
  bool notified = true;
  SimTime when;
  s.spawn("p", [&] {
    notified = q.wait_for(50_us);
    when = s.now();
  });
  s.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(when, 50_us);
  EXPECT_EQ(q.waiter_count(), 0u);
}

TEST(WaitQueueTest, WaitForNotifiedBeforeTimeout) {
  Simulation s;
  WaitQueue q(&s);
  bool notified = false;
  SimTime when;
  s.spawn("p", [&] {
    notified = q.wait_for(50_us);
    when = s.now();
  });
  s.spawn("n", [&] {
    s.delay(20_us);
    q.notify_one();
  });
  s.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(when, 20_us);
}

TEST(WaitQueueTest, TimedOutEntrySkippedByLaterNotify) {
  Simulation s;
  WaitQueue q(&s);
  std::vector<std::string> woken;
  s.spawn("timed", [&] {
    if (!q.wait_for(10_us)) woken.push_back("timed-timeout");
  });
  s.spawn("patient", [&] {
    q.wait();
    woken.push_back("patient");
  });
  s.spawn("n", [&] {
    s.delay(20_us);
    q.notify_one();  // must reach "patient", not the timed-out entry
  });
  s.run();
  EXPECT_EQ(woken,
            (std::vector<std::string>{"timed-timeout", "patient"}));
}

TEST(SemaphoreTest, AcquireReleaseCounts) {
  Simulation s;
  Semaphore sem(&s, 2);
  std::vector<SimTime> entry_times;
  for (int i = 0; i < 4; ++i) {
    s.spawn("p" + std::to_string(i), [&] {
      sem.acquire();
      entry_times.push_back(s.now());
      s.delay(10_us);
      sem.release();
    });
  }
  s.run();
  ASSERT_EQ(entry_times.size(), 4u);
  // Two enter immediately, two wait for the first pair to release.
  EXPECT_EQ(entry_times[0], SimTime::zero());
  EXPECT_EQ(entry_times[1], SimTime::zero());
  EXPECT_EQ(entry_times[2], 10_us);
  EXPECT_EQ(entry_times[3], 10_us);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulation s;
  Semaphore sem(&s, 1);
  s.spawn("p", [&] {
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
  });
  s.run();
}

TEST(ChannelTest, SendRecvTransfersValue) {
  Simulation s;
  Channel<int> ch(&s, 1);
  std::optional<int> got;
  s.spawn("rx", [&] { got = ch.recv(); });
  s.spawn("tx", [&] {
    s.delay(5_us);
    ch.send(99);
  });
  s.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 99);
}

TEST(ChannelTest, BoundedChannelBlocksSender) {
  Simulation s;
  Channel<int> ch(&s, 2);
  std::vector<SimTime> send_times;
  s.spawn("tx", [&] {
    for (int i = 0; i < 4; ++i) {
      ch.send(i);
      send_times.push_back(s.now());
    }
  });
  s.spawn("rx", [&] {
    s.delay(100_us);
    for (int i = 0; i < 4; ++i) {
      auto v = ch.recv();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);  // FIFO order
      s.delay(10_us);
    }
  });
  s.run();
  ASSERT_EQ(send_times.size(), 4u);
  EXPECT_EQ(send_times[0], SimTime::zero());
  EXPECT_EQ(send_times[1], SimTime::zero());
  EXPECT_EQ(send_times[2], 100_us);  // unblocked by first recv
  EXPECT_EQ(send_times[3], 110_us);
}

TEST(ChannelTest, UnboundedNeverBlocksSender) {
  Simulation s;
  Channel<int> ch(&s, 0);  // capacity 0 == unbounded
  s.spawn("tx", [&] {
    for (int i = 0; i < 1000; ++i) ch.send(i);
    EXPECT_EQ(s.now(), SimTime::zero());  // never blocked
  });
  s.run();
  EXPECT_EQ(ch.size(), 1000u);
}

TEST(ChannelTest, CloseDrainsThenNullopt) {
  Simulation s;
  Channel<int> ch(&s, 0);
  std::vector<int> got;
  bool saw_end = false;
  s.spawn("rx", [&] {
    while (auto v = ch.recv()) got.push_back(*v);
    saw_end = true;
  });
  s.spawn("tx", [&] {
    ch.send(1);
    ch.send(2);
    s.delay(1_us);
    ch.close();
  });
  s.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
}

TEST(ChannelTest, SendAfterCloseThrows) {
  Simulation s;
  Channel<int> ch(&s, 0);
  s.spawn("p", [&] {
    ch.close();
    EXPECT_THROW(ch.send(1), std::logic_error);
    EXPECT_FALSE(ch.try_send(1));
  });
  s.run();
}

TEST(ChannelTest, TryRecvNonBlocking) {
  Simulation s;
  Channel<int> ch(&s, 0);
  s.spawn("p", [&] {
    EXPECT_FALSE(ch.try_recv().has_value());
    ch.send(5);
    auto v = ch.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
  });
  s.run();
}

TEST(ChannelTest, MultipleConsumersEachGetOneItem) {
  Simulation s;
  Channel<int> ch(&s, 0);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    s.spawn("rx" + std::to_string(i), [&] {
      auto v = ch.recv();
      if (v) got.push_back(*v);
    });
  }
  s.spawn("tx", [&] {
    s.delay(1_us);
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  s.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

TEST(ChannelTest, MoveOnlyPayload) {
  Simulation s;
  Channel<std::unique_ptr<int>> ch(&s, 0);
  int result = 0;
  s.spawn("rx", [&] {
    auto v = ch.recv();
    ASSERT_TRUE(v.has_value());
    result = **v;
  });
  s.spawn("tx", [&] { ch.send(std::make_unique<int>(77)); });
  s.run();
  EXPECT_EQ(result, 77);
}

}  // namespace
}  // namespace sv::sim
