// Edge-case coverage for Engine::run_until, cancel bookkeeping, the
// re-entrancy guard, and the event-trace digest.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace sv::sim {
namespace {

using namespace sv::literals;

TEST(EngineRunUntilEdge, EventExactlyAtBoundaryFires) {
  Engine e;
  int fired = 0;
  e.schedule_at(10_us, [&] { ++fired; });
  e.schedule_at(10_us, [&] { ++fired; });
  e.schedule_at(SimTime::nanoseconds(10'001), [&] { ++fired; });
  e.run_until(10_us);
  EXPECT_EQ(fired, 2) << "t <= boundary fires, t > boundary stays queued";
  EXPECT_EQ(e.now(), 10_us);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(EngineRunUntilEdge, HandlerSchedulingAtBoundaryStillFires) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(10_us, [&] {
    order.push_back(1);
    // Scheduled from inside a handler at exactly t == boundary: must fire
    // within the same run_until call, after already-queued t==10us events.
    e.schedule_at(10_us, [&] { order.push_back(3); });
  });
  e.schedule_at(10_us, [&] { order.push_back(2); });
  e.run_until(10_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineRunUntilEdge, ScheduleAtNowOrdersAfterQueuedSameTimeEvents) {
  Engine e;
  std::vector<int> order;
  // Advance the clock to 5us with a throwaway event.
  e.schedule_at(5_us, [&] {
    // Already queued below: events A and B at t=5us. Scheduling at t==now()
    // from inside this handler must fire after them (insertion order).
    e.schedule_at(e.now(), [&] { order.push_back(99); });
  });
  e.schedule_at(5_us, [&] { order.push_back(1); });
  e.schedule_at(5_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(EngineRunUntilEdge, CancelThenRunUntilSkipsWithoutAdvancingPastT) {
  Engine e;
  int fired = 0;
  const auto a = e.schedule_at(5_us, [&] { ++fired; });
  e.schedule_at(20_us, [&] { ++fired; });
  EXPECT_TRUE(e.cancel(a));
  e.run_until(10_us);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), 10_us) << "clock lands exactly on t";
  EXPECT_EQ(e.tombstone_count(), 0u)
      << "tombstone purged when the cancelled event was popped";
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineRunUntilEdge, CancelBeyondTKeepsTombstoneUntilPopped) {
  Engine e;
  const auto far = e.schedule_at(30_us, [] {});
  EXPECT_TRUE(e.cancel(far));
  e.run_until(10_us);
  // The cancelled event is still physically queued (t=30us > 10us)...
  EXPECT_EQ(e.tombstone_count(), 1u);
  // ...and is purged once the queue drains past it.
  e.run();
  EXPECT_EQ(e.tombstone_count(), 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineCancelBookkeeping, CancelAfterFireIsDetectedExactly) {
  Engine e;
  const auto id = e.schedule_at(1_us, [] {});
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  // Seed bug: this used to insert a never-purged tombstone and decrement the
  // live-event count below its true value.
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.tombstone_count(), 0u);
  EXPECT_EQ(e.pending(), 0u);
  // Subsequent scheduling still behaves.
  int fired = 0;
  e.schedule(1_us, [&] { ++fired; });
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineCancelBookkeeping, MassCancelLeavesNoResidue) {
  Engine e;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(e.schedule(SimTime::nanoseconds(i + 1), [] {}));
  }
  for (const auto id : ids) EXPECT_TRUE(e.cancel(id));
  for (const auto id : ids) EXPECT_FALSE(e.cancel(id)) << "double cancel";
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.empty());
  e.run();
  EXPECT_EQ(e.events_fired(), 0u);
  EXPECT_EQ(e.tombstone_count(), 0u) << "all tombstones purged on drain";
}

TEST(EngineCancelBookkeeping, CancelInsideHandlerOfSameTimeEvent) {
  Engine e;
  int fired = 0;
  std::uint64_t victim = 0;
  e.schedule_at(5_us, [&] { victim = e.schedule_at(5_us, [&] { ++fired; }); });
  e.schedule_at(5_us, [&] {
    if (victim != 0) {
      EXPECT_TRUE(e.cancel(victim));
    }
  });
  e.run();
  EXPECT_EQ(fired, 0) << "event cancelled before its turn in the same stamp";
  EXPECT_EQ(e.tombstone_count(), 0u);
}

TEST(EngineReentrancy, SteppingFromInsideAHandlerAsserts) {
  Engine e;
  bool threw = false;
  e.schedule(1_us, [&] {
    try {
      e.step();
    } catch (const CheckFailure&) {
      threw = true;
    }
  });
  e.schedule(2_us, [] {});
  e.run();
  EXPECT_TRUE(threw) << "re-entrant step() must fail the invariant";
  EXPECT_EQ(e.events_fired(), 2u) << "outer loop continues normally";
}

TEST(EngineTraceDigest, IdenticalSchedulesGiveIdenticalDigests) {
  auto run_once = [] {
    Engine e;
    for (int i = 0; i < 50; ++i) {
      e.schedule(SimTime::nanoseconds(100 - i), [] {});
    }
    e.run();
    return e.trace_digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTraceDigest, DifferentFiringOrderChangesDigest) {
  Engine a;
  a.schedule(1_us, [] {});
  a.schedule(2_us, [] {});
  a.run();

  Engine b;
  b.schedule(2_us, [] {});
  b.schedule(1_us, [] {});
  b.run();

  EXPECT_NE(a.trace_digest(), b.trace_digest())
      << "digest encodes (time, id) per fired event";
}

}  // namespace
}  // namespace sv::sim
