#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace sv::sim {
namespace {

using namespace sv::literals;

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_TRUE(e.empty());
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30_us, [&] { order.push_back(3); });
  e.schedule(10_us, [&] { order.push_back(1); });
  e.schedule(20_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_us);
}

TEST(EngineTest, SameTimeFiresInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5_us, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, HandlerMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule(1_us, chain);
  };
  e.schedule(1_us, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 5_us);
}

TEST(EngineTest, SchedulingInThePastThrows) {
  Engine e;
  e.schedule(10_us, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5_us, [] {}), std::logic_error);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const auto id = e.schedule(10_us, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(e.cancel(id));  // double-cancel is false
}

TEST(EngineTest, CancelInvalidIdIsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(0));
  EXPECT_FALSE(e.cancel(999));
}

TEST(EngineTest, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.schedule(10_us, [&] { ++fired; });
  e.schedule(20_us, [&] { ++fired; });
  e.schedule(30_us, [&] { ++fired; });
  e.run_until(20_us);
  EXPECT_EQ(fired, 2);  // events at t<=20us fire
  EXPECT_EQ(e.now(), 20_us);
  e.run_until(25_us);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 25_us);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule(1_us, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, PendingCountTracksCancel) {
  Engine e;
  const auto a = e.schedule(1_us, [] {});
  e.schedule(2_us, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, EventsFiredCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule(SimTime(i), [] {});
  e.run();
  EXPECT_EQ(e.events_fired(), 7u);
}

TEST(EngineTest, CancelHeavyChurnLeavesNoResidue) {
  // RTO-like churn on both queue implementations: every "transfer" arms a
  // retransmit timer at a far horizon, completes shortly after, and cancels
  // the timer — so almost every scheduled event dies young, the dominant
  // pattern in the TCP stack. Counters, pending() and tombstones must all
  // reconcile exactly once the run drains.
  for (const QueueKind kind :
       {QueueKind::kTimingWheel, QueueKind::kReferenceHeap}) {
    Engine e(kind);
    const obs::Counter& cancelled =
        e.obs().registry.counter("sim.events_cancelled");
    constexpr int kRounds = 5000;
    int completions = 0;
    int rto_fires = 0;
    std::uint64_t cancels_accepted = 0;
    std::uint64_t pending_timer = 0;
    for (int i = 0; i < kRounds; ++i) {
      if (pending_timer != 0) {
        // Completion cancels the previous round's timer (always still
        // pending: it sits 200 ms out and the clock advances in µs steps).
        if (e.cancel(pending_timer)) ++cancels_accepted;
      }
      pending_timer = e.schedule(200_ms, [&] { ++rto_fires; });
      e.schedule(1_us, [&] { ++completions; });
      e.run_until(e.now() + 2_us);
      // Exactly one live event (the timer) remains; cancelled events beyond
      // the run_until horizon stay physically queued as tombstones.
      EXPECT_EQ(e.pending(), 1u);
    }
    EXPECT_EQ(cancels_accepted, static_cast<std::uint64_t>(kRounds - 1));
    EXPECT_EQ(cancelled.value(), cancels_accepted);
    // Cancelling an already-fired event must be rejected exactly.
    EXPECT_FALSE(e.cancel(pending_timer - 1));
    e.run();  // the last timer survives to fire
    EXPECT_EQ(completions, kRounds);
    EXPECT_EQ(rto_fires, 1);
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.pending(), 0u);
    EXPECT_EQ(e.tombstone_count(), 0u)
        << "tombstones must fully purge as the queue drains ("
        << e.queue_name() << ")";
    EXPECT_EQ(e.events_fired(),
              static_cast<std::uint64_t>(completions + rto_fires));
  }
}

}  // namespace
}  // namespace sv::sim
