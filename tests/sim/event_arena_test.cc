// Arena invariants (DESIGN.md §12): no slot aliasing, the free list fully
// drains as events fire, and steady-state scheduling is zero-alloc — after
// warm-up every acquire is a reuse (sim.arena_slot_alloc stops moving while
// sim.arena_slot_reuse keeps counting).
#include "sim/event_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace sv::sim {
namespace {

TEST(EventArenaTest, AcquireReturnsDistinctLiveSlots) {
  EventArena arena(nullptr);
  std::set<EventSlot*> seen;
  std::vector<EventSlot*> held;
  for (int i = 0; i < 1000; ++i) {
    EventSlot* s = arena.acquire();
    EXPECT_TRUE(seen.insert(s).second) << "slot handed out twice while live";
    held.push_back(s);
  }
  EXPECT_EQ(arena.live_count(), 1000u);
  EXPECT_EQ(arena.free_count(), 0u);
  // 1000 slots / 256 per slab.
  EXPECT_EQ(arena.slab_allocs(), 4u);
  for (EventSlot* s : held) arena.release(s);
  EXPECT_EQ(arena.live_count(), 0u);
  EXPECT_EQ(arena.free_count(), 1000u);
}

TEST(EventArenaTest, ReleaseRecyclesThroughFreeList) {
  EventArena arena(nullptr);
  EventSlot* a = arena.acquire();
  const std::uint32_t index = a->index;
  arena.release(a);
  EventSlot* b = arena.acquire();
  // LIFO free list: the most recently released slot comes back first, and
  // its stable index survives recycling.
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->index, index);
  EXPECT_EQ(arena.slot_reuses(), 1u);
  EXPECT_EQ(arena.slot_allocs(), 1u);
  arena.release(b);
}

TEST(EventArenaTest, DoubleReleaseIsCaughtInDebug) {
#ifndef NDEBUG
  EventArena arena(nullptr);
  EventSlot* s = arena.acquire();
  arena.release(s);
  EXPECT_THROW(arena.release(s), common::CheckFailure);
#else
  GTEST_SKIP() << "SV_DCHECK compiled out";
#endif
}

TEST(EventArenaTest, SlotAtMapsIndicesBackToSlots) {
  EventArena arena(nullptr);
  std::vector<EventSlot*> held;
  for (int i = 0; i < 600; ++i) held.push_back(arena.acquire());
  for (EventSlot* s : held) {
    EXPECT_EQ(arena.slot_at(s->index), s);
  }
  for (EventSlot* s : held) arena.release(s);
}

TEST(IdSlotMapTest, InsertEraseRoundTripsThroughGrowth) {
  IdSlotMap map;
  // Push well past the initial capacity to force several growths, then
  // erase in an unrelated order to exercise backward-shift deletion.
  constexpr std::uint64_t kN = 20'000;
  for (std::uint64_t id = 1; id <= kN; ++id) {
    map.insert(id, static_cast<std::uint32_t>(id * 3));
  }
  EXPECT_EQ(map.size(), kN);
  std::uint32_t out = 0;
  for (std::uint64_t id = kN; id >= 1; --id) {
    if (id % 3 == 0) continue;  // leave residue to stress later probes
    ASSERT_TRUE(map.erase(id, &out)) << id;
    EXPECT_EQ(out, static_cast<std::uint32_t>(id * 3));
    EXPECT_FALSE(map.erase(id, &out)) << "double erase must miss";
  }
  for (std::uint64_t id = 3; id <= kN; id += 3) {
    ASSERT_TRUE(map.erase(id, &out)) << id;
    EXPECT_EQ(out, static_cast<std::uint32_t>(id * 3));
  }
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.erase(12345, &out));
}

TEST(InlineHandlerTest, SmallCallablesStayInline) {
  int hits = 0;
  InlineHandler h([&hits] { ++hits; });
  EXPECT_FALSE(h.heap_allocated());
  EXPECT_TRUE(static_cast<bool>(h));
  h();
  EXPECT_EQ(hits, 1);
  InlineHandler moved = std::move(h);
  EXPECT_FALSE(static_cast<bool>(h));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 2);
}

TEST(InlineHandlerTest, OversizedCallablesSpillToHeapAndStillRun) {
  struct Big {
    std::uint64_t pad[16];  // 128 bytes > the 48-byte inline buffer
    int* sink;
    void operator()() const { *sink += static_cast<int>(pad[0]); }
  };
  int total = 0;
  Big big{};
  big.pad[0] = 7;
  big.sink = &total;
  InlineHandler h(big);
  EXPECT_TRUE(h.heap_allocated());
  InlineHandler moved = std::move(h);
  moved();
  EXPECT_EQ(total, 7);
}

TEST(EventArenaTest, SteadyStateSchedulingIsZeroAlloc) {
  // Drive a full Engine (timing wheel) through a warm-up phase, then a long
  // steady-state phase with the same live-event footprint. Steady state
  // must allocate nothing: slab and slot-alloc counters freeze while the
  // reuse counter keeps advancing (the pool_alloc/pool_reuse idiom from
  // mem.* applied to the event core).
  Engine e(QueueKind::kTimingWheel);
  obs::Registry& reg = e.obs().registry;
  obs::Counter& slot_alloc = reg.counter("sim.arena_slot_alloc");
  obs::Counter& slot_reuse = reg.counter("sim.arena_slot_reuse");
  obs::Counter& slabs = reg.counter("sim.arena_slabs");
  obs::Counter& handler_heap = reg.counter("sim.arena_handler_heap");

  constexpr int kLive = 512;
  for (int i = 0; i < kLive; ++i) {
    e.schedule(SimTime::microseconds(1 + i), [] {});
  }
  // Warm-up: cycle the full footprint a few times so every slot has been
  // through the free list at least once.
  for (int i = 0; i < 4 * kLive; ++i) {
    e.schedule(SimTime::microseconds(600), [] {});
    e.step();
  }
  const std::uint64_t allocs_before = slot_alloc.value();
  const std::uint64_t slabs_before = slabs.value();
  const std::uint64_t reuse_before = slot_reuse.value();

  for (int i = 0; i < 20'000; ++i) {
    e.schedule(SimTime::microseconds(600), [] {});
    e.step();
  }

  EXPECT_EQ(slot_alloc.value(), allocs_before)
      << "steady state carved fresh arena slots";
  EXPECT_EQ(slabs.value(), slabs_before) << "steady state allocated a slab";
  EXPECT_EQ(slot_reuse.value(), reuse_before + 20'000u);
  EXPECT_EQ(handler_heap.value(), 0u)
      << "a small lambda spilled out of the inline handler buffer";
  e.run();
}

}  // namespace
}  // namespace sv::sim
