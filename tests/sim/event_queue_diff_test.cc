// Differential property test: the timing wheel must be observationally
// identical to the reference heap (DESIGN.md §12).
//
// Two Engines — one per QueueKind — execute the same randomized op script
// (schedule at mixed horizons, same-timestamp bursts, cancels including
// cancel-after-fire, bounded run_until, schedule-from-handler). After every
// pump both engines must agree on the fired sequence (time, id), the clock,
// pending/tombstone counts and the FNV-1a trace digest. Any divergence
// prints the seed, so a failure shrinks to a deterministic repro.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/units.h"

namespace sv::sim {
namespace {

/// One engine plus the observation log the differential harness compares.
struct Lane {
  explicit Lane(QueueKind kind) : engine(kind) {}

  Engine engine;
  std::vector<std::pair<std::int64_t, std::uint64_t>> fired;  // (ns, id)
  std::vector<std::uint64_t> ids;  // ids returned by schedule, op-aligned
  std::vector<bool> cancel_results;
};

/// Runs one op script on both queues and asserts identical observations.
void run_script(std::uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  Lane wheel(QueueKind::kTimingWheel);
  Lane heap(QueueKind::kReferenceHeap);
  Lane* lanes[2] = {&wheel, &heap};
  const std::string ctx = "seed=" + std::to_string(seed);

  // Horizon mix: mostly near events (L0), a band of mid events (L1/L2
  // cascades) and a tail of far events (beyond the wheel, sorted far list).
  std::uniform_int_distribution<int> op_pick(0, 99);
  std::uniform_int_distribution<std::int64_t> near_ns(0, 200'000);
  std::uniform_int_distribution<std::int64_t> mid_ns(200'000, 80'000'000);
  std::uniform_int_distribution<std::int64_t> far_ns(17LL * 1'000'000'000,
                                                     40LL * 1'000'000'000);
  std::uniform_int_distribution<int> burst_len(2, 6);

  for (int op = 0; op < ops; ++op) {
    const int what = op_pick(rng);
    if (what < 45) {
      // Schedule a no-op event at a random horizon.
      std::int64_t delay = 0;
      const int h = op_pick(rng);
      if (h < 70) {
        delay = near_ns(rng);
      } else if (h < 95) {
        delay = mid_ns(rng);
      } else {
        delay = far_ns(rng);
      }
      for (Lane* lane : lanes) {
        lane->ids.push_back(
            lane->engine.schedule(SimTime::nanoseconds(delay), [] {}));
      }
    } else if (what < 55) {
      // Same-timestamp burst: FIFO-within-timestamp is the property most
      // likely to break in a bucketed queue.
      const std::int64_t delay = near_ns(rng);
      const int n = burst_len(rng);
      for (int i = 0; i < n; ++i) {
        for (Lane* lane : lanes) {
          lane->ids.push_back(
              lane->engine.schedule(SimTime::nanoseconds(delay), [] {}));
        }
      }
    } else if (what < 63) {
      // Handler that schedules from inside the firing event, including
      // schedule-at-now (tick <= wheel position → drain-merge path).
      const std::int64_t delay = near_ns(rng);
      const std::int64_t inner = op_pick(rng) < 50 ? 0 : near_ns(rng) / 4;
      for (Lane* lane : lanes) {
        Engine* e = &lane->engine;
        lane->ids.push_back(e->schedule(SimTime::nanoseconds(delay), [e, inner] {
          e->schedule(SimTime::nanoseconds(inner), [] {});
        }));
      }
    } else if (what < 78) {
      // Cancel a random previously-issued id — often already fired, so
      // this exercises exact cancel-after-fire detection in both queues.
      if (!wheel.ids.empty()) {
        std::uniform_int_distribution<std::size_t> pick(0,
                                                        wheel.ids.size() - 1);
        const std::size_t k = pick(rng);
        for (Lane* lane : lanes) {
          lane->cancel_results.push_back(lane->engine.cancel(lane->ids[k]));
        }
      }
    } else if (what < 90) {
      // Bounded pump: run_until a horizon-biased target.
      const std::int64_t ahead = op_pick(rng) < 80 ? near_ns(rng) : mid_ns(rng);
      for (Lane* lane : lanes) {
        lane->engine.run_until(lane->engine.now() + SimTime::nanoseconds(ahead));
      }
    } else if (what < 96) {
      // Single steps.
      for (Lane* lane : lanes) {
        lane->engine.step();
      }
    } else {
      // Drain completely (also forces far-list epoch jumps).
      for (Lane* lane : lanes) {
        lane->engine.run();
      }
    }

    // Compare observable state after every op so a divergence is caught at
    // the earliest point, not after the script ends.
    ASSERT_EQ(wheel.engine.now(), heap.engine.now()) << ctx << " op=" << op;
    ASSERT_EQ(wheel.engine.pending(), heap.engine.pending())
        << ctx << " op=" << op;
    ASSERT_EQ(wheel.engine.events_fired(), heap.engine.events_fired())
        << ctx << " op=" << op;
    ASSERT_EQ(wheel.engine.tombstone_count(), heap.engine.tombstone_count())
        << ctx << " op=" << op;
    ASSERT_EQ(wheel.engine.trace_digest(), heap.engine.trace_digest())
        << ctx << " op=" << op;
  }

  for (Lane* lane : lanes) {
    lane->engine.run();
  }
  EXPECT_EQ(wheel.engine.now(), heap.engine.now()) << ctx;
  EXPECT_EQ(wheel.engine.trace_digest(), heap.engine.trace_digest()) << ctx;
  EXPECT_EQ(wheel.engine.tombstone_count(), 0u) << ctx;
  EXPECT_EQ(heap.engine.tombstone_count(), 0u) << ctx;
  ASSERT_EQ(wheel.cancel_results.size(), heap.cancel_results.size());
  for (std::size_t i = 0; i < wheel.cancel_results.size(); ++i) {
    EXPECT_EQ(wheel.cancel_results[i], heap.cancel_results[i])
        << ctx << " cancel #" << i;
  }
  // Ids are engine-issued sequentially and digests fold them, but check the
  // raw streams too so a digest collision cannot mask a divergence.
  ASSERT_EQ(wheel.ids, heap.ids) << ctx;
}

TEST(EventQueueDiffTest, RandomScriptsAgreeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    run_script(seed, 500);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EventQueueDiffTest, LongScriptAgrees) {
  // One deep script (~10k ops) to reach steady-state arena reuse, multiple
  // L2 epochs and repeated far-list drains.
  run_script(0xC0FFEE, 10'000);
}

}  // namespace
}  // namespace sv::sim
