// Scheduler behaviour under node faults: Round-Robin and Demand-Driven
// must keep making progress when a consumer node stalls mid-run, DD must
// route new work around the stalled copy, and with an i/o deadline a
// permanently wedged pipeline surfaces as an error instead of a hang.
#include "datacutter/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "net/fault.h"

namespace sv::dc {
namespace {

using namespace sv::literals;

class EmitterFilter : public Filter {
 public:
  EmitterFilter(int chunks, std::uint64_t bytes)
      : chunks_(chunks), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < chunks_; ++i) {
      DataBuffer b;
      b.bytes = bytes_;
      b.tag = static_cast<std::uint64_t>(i);
      ctx.write(std::move(b));
    }
  }

 private:
  int chunks_;
  std::uint64_t bytes_;
};

struct Forward : Filter {
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) ctx.write(std::move(*b));
  }
};

struct CountingSink : Filter {
  explicit CountingSink(int* count) : count_(count) {}
  void process(FilterContext& ctx) override {
    while (ctx.read()) ++*count_;
  }
  int* count_;
};

/// src on node 0 -> `policy`-scheduled 2-copy "work" on nodes 1,2 ->
/// sink on node 3.
FilterGroup two_copy_group(int* count, int chunks, std::uint64_t bytes,
                           SchedPolicy policy) {
  FilterGroup g;
  g.add_filter("src",
               [chunks, bytes] {
                 return std::make_unique<EmitterFilter>(chunks, bytes);
               },
               {0});
  g.add_filter("work", [] { return std::make_unique<Forward>(); }, {1, 2});
  g.add_filter("sink",
               [count] { return std::make_unique<CountingSink>(count); },
               {3});
  g.add_stream("src", "work", policy);
  g.add_stream("work", "sink", SchedPolicy::kDemandDriven);
  return g;
}

net::FaultPlan stall_node(int node, SimTime start, SimTime duration) {
  net::FaultPlan plan;
  plan.nodes.push_back(
      net::NodeFault{.node = node, .start = start, .duration = duration});
  return plan;
}

TEST(SchedulerFaultTest, RoundRobinSurvivesBoundedStall) {
  // Node 2 stalls for 5 ms mid-run. RR keeps alternating, so the producer
  // parks on the stalled copy's connection until the window ends — but the
  // run completes, nothing is lost, and completion time is bounded by the
  // stall, not by a deadlock.
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  cluster.install_faults(stall_node(2, 1_ms, 5_ms), 1);
  sockets::SocketFactory factory(&s, &cluster);
  int delivered = 0;
  Runtime rt(&s, &cluster, &factory,
             two_copy_group(&delivered, 64, 8_KiB, SchedPolicy::kRoundRobin));
  rt.start();
  for (std::uint64_t q = 1; q <= 4; ++q) rt.submit(Uow{.id = q});
  rt.close_input();
  s.run();
  EXPECT_EQ(delivered, 4 * 64);
  EXPECT_GE(s.now(), 6_ms);   // the stall really gated the run
  EXPECT_LT(s.now(), 60_ms);  // ...but recovery was prompt, not a wedge
  const auto dist = rt.distribution(0);
  EXPECT_EQ(dist[0][0] + dist[0][1], 4u * 64u);
  EXPECT_EQ(dist[0][0], dist[0][1]);  // RR stays blind to the stall
}

TEST(SchedulerFaultTest, DemandDrivenRoutesAroundStalledCopy) {
  // Node 2 stalls early and for most of the run. DD parks at most
  // dd_max_unacked buffers on the stalled copy and sends everything else
  // to the healthy one.
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  cluster.install_faults(stall_node(2, 100_us, 20_ms), 1);
  sockets::SocketFactory factory(&s, &cluster);
  int delivered = 0;
  RuntimeOptions opt;
  opt.dd_max_unacked = 3;  // 3 x 8 KiB stays under the transport window
  Runtime rt(&s, &cluster, &factory,
             two_copy_group(&delivered, 64, 8_KiB,
                            SchedPolicy::kDemandDriven),
             opt);
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  s.run();
  EXPECT_EQ(delivered, 64);
  const auto dist = rt.distribution(0);
  const auto healthy = dist[0][0];
  const auto stalled = dist[0][1];
  EXPECT_EQ(healthy + stalled, 64u);
  EXPECT_GT(healthy, stalled * 3) << "healthy=" << healthy
                                  << " stalled=" << stalled;
  EXPECT_LT(s.now(), 100_ms);
}

TEST(SchedulerFaultTest, IoTimeoutTurnsPermanentStallIntoError) {
  // Node 2 stalls for the entire run and the producer keeps feeding its
  // copy round-robin. Without a deadline this wedges forever; with
  // io_timeout the stuck write throws and Simulation::run surfaces it.
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  cluster.install_faults(stall_node(2, 100_us, 1000_s), 1);
  sockets::SocketFactory factory(&s, &cluster);
  int delivered = 0;
  RuntimeOptions opt;
  opt.io_timeout = 5_ms;
  Runtime rt(&s, &cluster, &factory,
             two_copy_group(&delivered, 64, 32_KiB, SchedPolicy::kRoundRobin),
             opt);
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_LT(s.now(), 1_s);  // failed fast, long before the stall ends
}

TEST(SchedulerFaultTest, DemandDrivenCapTimeoutReportsError) {
  // Both consumer copies stall, so every copy sits at the unacked cap and
  // the DD selector itself (not the transport) is what blocks. The
  // deadline converts that wait into an error too.
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  net::FaultPlan plan;
  plan.nodes.push_back(
      net::NodeFault{.node = 1, .start = 100_us, .duration = 1000_s});
  plan.nodes.push_back(
      net::NodeFault{.node = 2, .start = 100_us, .duration = 1000_s});
  cluster.install_faults(plan, 1);
  sockets::SocketFactory factory(&s, &cluster);
  int delivered = 0;
  RuntimeOptions opt;
  opt.io_timeout = 5_ms;
  opt.dd_max_unacked = 2;
  Runtime rt(&s, &cluster, &factory,
             two_copy_group(&delivered, 64, 1_KiB,
                            SchedPolicy::kDemandDriven),
             opt);
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(SchedulerFaultTest, WaitCompletionForTimesOutThenDelivers) {
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  sockets::SocketFactory factory(&s, &cluster);
  int delivered = 0;
  Runtime rt(&s, &cluster, &factory,
             two_copy_group(&delivered, 2, 1_KiB, SchedPolicy::kRoundRobin));
  rt.start();
  std::vector<ErrorCode> codes;
  s.spawn("watcher", [&] {
    // Nothing submitted yet: the timed wait must report kTimeout instead
    // of blocking forever.
    auto r1 = rt.wait_completion_for(1_ms);
    ASSERT_FALSE(r1.ok());
    codes.push_back(r1.code());
    rt.submit(Uow{.id = 9});
    rt.close_input();
    auto r2 = rt.wait_completion_for(1_s);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.value().uow_id, 9u);
    // Stream is closed once all sinks finalize.
    auto r3 = rt.wait_completion_for(1_s);
    ASSERT_FALSE(r3.ok());
    codes.push_back(r3.code());
  });
  s.run();
  ASSERT_EQ(codes.size(), 2u);
  EXPECT_EQ(codes[0], ErrorCode::kTimeout);
  EXPECT_EQ(codes[1], ErrorCode::kClosed);
}

}  // namespace
}  // namespace sv::dc
