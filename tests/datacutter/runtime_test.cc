#include "datacutter/runtime.h"

#include <gtest/gtest.h>

#include <vector>

#include "datacutter/local_socket.h"

namespace sv::dc {
namespace {

using namespace sv::literals;

/// Source: emits `chunks` buffers of `bytes` per UOW.
class EmitterFilter : public Filter {
 public:
  EmitterFilter(int chunks, std::uint64_t bytes)
      : chunks_(chunks), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < chunks_; ++i) {
      DataBuffer b;
      b.bytes = bytes_;
      b.tag = static_cast<std::uint64_t>(i);
      ctx.write(std::move(b));
    }
  }

 private:
  int chunks_;
  std::uint64_t bytes_;
};

/// Sink: records what it sees.
struct SinkRecord {
  std::vector<std::uint64_t> tags;
  std::vector<std::uint64_t> uows;
  int uow_count = 0;
  bool finalized = false;
  int init_count = 0;
};

class RecordingSink : public Filter {
 public:
  explicit RecordingSink(SinkRecord* rec) : rec_(rec) {}
  void init(FilterContext&) override { rec_->init_count++; }
  void process(FilterContext& ctx) override {
    bool any = false;
    while (auto b = ctx.read()) {
      rec_->tags.push_back(b->tag);
      rec_->uows.push_back(b->uow_id);
      any = true;
    }
    if (any) rec_->uow_count++;
  }
  void finalize(FilterContext&) override { rec_->finalized = true; }

 private:
  SinkRecord* rec_;
};

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 8};
  sockets::SocketFactory factory{&s, &cluster};
};

FilterGroup simple_group(SinkRecord* rec, int chunks, std::uint64_t bytes,
                         SchedPolicy policy = SchedPolicy::kDemandDriven) {
  FilterGroup g;
  g.add_filter("src",
               [chunks, bytes] {
                 return std::make_unique<EmitterFilter>(chunks, bytes);
               },
               {0});
  g.add_filter("sink", [rec] { return std::make_unique<RecordingSink>(rec); },
               {1});
  g.add_stream("src", "sink", policy);
  return g;
}

TEST(RuntimeTest, SingleUowFlowsThroughPipeline) {
  Fixture f;
  SinkRecord rec;
  Runtime rt(&f.s, &f.cluster, &f.factory, simple_group(&rec, 5, 1024));
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(rec.tags, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rec.uow_count, 1);
  EXPECT_TRUE(rec.finalized);
  EXPECT_EQ(rec.init_count, 1);
  for (auto u : rec.uows) EXPECT_EQ(u, 1u);
}

TEST(RuntimeTest, MultipleUowsAreSeparated) {
  Fixture f;
  SinkRecord rec;
  Runtime rt(&f.s, &f.cluster, &f.factory, simple_group(&rec, 3, 256));
  rt.start();
  for (std::uint64_t q = 1; q <= 4; ++q) rt.submit(Uow{.id = q});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(rec.uow_count, 4);
  EXPECT_EQ(rec.tags.size(), 12u);
  // UOW ids must be grouped: 1,1,1,2,2,2,...
  for (std::size_t i = 0; i < rec.uows.size(); ++i) {
    EXPECT_EQ(rec.uows[i], i / 3 + 1);
  }
}

TEST(RuntimeTest, CompletionsEmittedPerUow) {
  Fixture f;
  SinkRecord rec;
  Runtime rt(&f.s, &f.cluster, &f.factory, simple_group(&rec, 2, 128));
  rt.start();
  std::vector<std::uint64_t> completed;
  f.s.spawn("watcher", [&] {
    for (int i = 0; i < 3; ++i) {
      auto c = rt.wait_completion();
      ASSERT_TRUE(c.has_value());
      completed.push_back(c->uow_id);
      EXPECT_EQ(c->filter, "sink");
    }
  });
  for (std::uint64_t q = 10; q < 13; ++q) rt.submit(Uow{.id = q});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(RuntimeTest, RoundRobinDistributesEvenly) {
  Fixture f;
  SinkRecord rec0, rec1, rec2;
  FilterGroup g;
  g.add_filter("src",
               [] { return std::make_unique<EmitterFilter>(12, 2048); }, {0});
  // A 3-copy middle filter that forwards everything to one sink.
  struct Forward : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) ctx.write(std::move(*b));
    }
  };
  g.add_filter("mid", [] { return std::make_unique<Forward>(); }, {1, 2, 3});
  g.add_filter("sink", [&rec0] { return std::make_unique<RecordingSink>(&rec0); },
               {4});
  g.add_stream("src", "mid", SchedPolicy::kRoundRobin);
  g.add_stream("mid", "sink", SchedPolicy::kDemandDriven);
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(rec0.tags.size(), 12u);
  const auto dist = rt.distribution(0);  // src -> mid
  ASSERT_EQ(dist.size(), 1u);
  ASSERT_EQ(dist[0].size(), 3u);
  EXPECT_EQ(dist[0][0], 4u);
  EXPECT_EQ(dist[0][1], 4u);
  EXPECT_EQ(dist[0][2], 4u);
}

TEST(RuntimeTest, DemandDrivenFavorsFastCopy) {
  // Two consumer copies, one on a 8x-slow node: DD should route most
  // buffers to the fast copy.
  sim::Simulation s;
  net::Cluster cluster(&s, 4);
  sockets::SocketFactory factory(&s, &cluster);
  // Slow down node 2 by running its compute 8x longer via filter logic.
  struct Worker : Filter {
    void process(FilterContext& ctx) override {
      const int factor = ctx.node().id() == 2 ? 8 : 1;
      while (auto b = ctx.read()) {
        ctx.compute(PerByteCost::nanos_per_byte(18).for_bytes(b->bytes) *
                    factor);
        ctx.write(std::move(*b));
      }
    }
  };
  SinkRecord rec;
  FilterGroup g;
  g.add_filter("src",
               [] { return std::make_unique<EmitterFilter>(64, 16_KiB); },
               {0});
  g.add_filter("work", [] { return std::make_unique<Worker>(); }, {1, 2});
  g.add_filter("sink",
               [&rec] { return std::make_unique<RecordingSink>(&rec); }, {3});
  g.add_stream("src", "work", SchedPolicy::kDemandDriven);
  g.add_stream("work", "sink", SchedPolicy::kDemandDriven);
  Runtime rt(&s, &cluster, &factory, std::move(g));
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  s.run();
  EXPECT_EQ(rec.tags.size(), 64u);
  const auto dist = rt.distribution(0);
  const auto fast = dist[0][0];
  const auto slow = dist[0][1];
  EXPECT_GT(fast, slow * 3) << "fast=" << fast << " slow=" << slow;
}

TEST(RuntimeTest, MultiProducerFanInWaitsForAllMarkers) {
  // Three source copies each emit 2 buffers per UOW; the sink must see all
  // 6 before the UOW ends.
  Fixture f;
  SinkRecord rec;
  FilterGroup g;
  g.add_filter("src",
               [] { return std::make_unique<EmitterFilter>(2, 512); },
               {0, 1, 2});
  g.add_filter("sink",
               [&rec] { return std::make_unique<RecordingSink>(&rec); }, {3});
  g.add_stream("src", "sink");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.submit(Uow{.id = 2});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(rec.uow_count, 2);
  EXPECT_EQ(rec.tags.size(), 12u);  // 3 copies x 2 buffers x 2 UOWs
  // First 6 entries belong to UOW 1, next 6 to UOW 2 (no interleaving).
  for (std::size_t i = 0; i < rec.uows.size(); ++i) {
    EXPECT_EQ(rec.uows[i], i / 6 + 1) << "i=" << i;
  }
}

TEST(RuntimeTest, SameNodePlacementUsesLocalPath) {
  // Producer and consumer on one node: flows through LocalSocket; still
  // correct, and much faster than a network hop.
  Fixture f;
  SinkRecord rec;
  FilterGroup g;
  g.add_filter("src",
               [] { return std::make_unique<EmitterFilter>(4, 4096); }, {5});
  g.add_filter("sink",
               [&rec] { return std::make_unique<RecordingSink>(&rec); }, {5});
  g.add_stream("src", "sink");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{.id = 1});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(rec.tags.size(), 4u);
  // Everything local: should complete in tens of microseconds.
  EXPECT_LT(f.s.now(), 100_us);
}

TEST(RuntimeTest, PipeliningOverlapsUows) {
  // With computation in the middle stage, UOW k+1's data should be fetched
  // while UOW k computes: total time must be well under the serial sum.
  sim::Simulation s;
  net::Cluster cluster(&s, 3);
  sockets::SocketFactory factory(&s, &cluster);
  struct Worker : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        ctx.compute(1_ms);
        ctx.write(std::move(*b));
      }
    }
  };
  SinkRecord rec;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<EmitterFilter>(1, 64_KiB); },
               {0});
  g.add_filter("work", [] { return std::make_unique<Worker>(); }, {1});
  g.add_filter("sink",
               [&rec] { return std::make_unique<RecordingSink>(&rec); }, {2});
  g.add_stream("src", "work");
  g.add_stream("work", "sink");
  Runtime rt(&s, &cluster, &factory, std::move(g));
  rt.start();
  for (std::uint64_t q = 1; q <= 10; ++q) rt.submit(Uow{.id = q});
  rt.close_input();
  s.run();
  EXPECT_EQ(rec.uow_count, 10);
  // Serial: 10 * (transfer ~0.7ms + 1ms compute + transfer) >> 17ms.
  // Pipelined: compute dominates: ~10ms + edges.
  EXPECT_LT(s.now(), 14_ms);
  EXPECT_GT(s.now(), 10_ms);
}

TEST(RuntimeTest, SubmitBeforeStartThrows) {
  Fixture f;
  SinkRecord rec;
  Runtime rt(&f.s, &f.cluster, &f.factory, simple_group(&rec, 1, 64));
  EXPECT_THROW(rt.submit(Uow{.id = 1}), std::logic_error);
}

TEST(RuntimeTest, StartTwiceThrows) {
  Fixture f;
  SinkRecord rec;
  Runtime rt(&f.s, &f.cluster, &f.factory, simple_group(&rec, 1, 64));
  rt.start();
  EXPECT_THROW(rt.start(), std::logic_error);
}

TEST(FilterGroupTest, ValidationCatchesMistakes) {
  FilterGroup dangling;
  dangling.add_filter("a", [] { return nullptr; }, {0});
  dangling.add_stream("a", "ghost");
  EXPECT_THROW(dangling.validate(), std::invalid_argument);

  FilterGroup dup;
  dup.add_filter("a", [] { return nullptr; }, {0});
  dup.add_filter("a", [] { return nullptr; }, {1});
  EXPECT_THROW(dup.validate(), std::invalid_argument);

  FilterGroup empty_placement;
  empty_placement.add_filter("a", [] { return nullptr; }, {});
  EXPECT_THROW(empty_placement.validate(), std::invalid_argument);

  FilterGroup self_loop;
  self_loop.add_filter("a", [] { return std::make_unique<EmitterFilter>(1, 1); },
                       {0});
  self_loop.add_stream("a", "a");
  EXPECT_THROW(self_loop.validate(), std::invalid_argument);
}

TEST(FilterGroupTest, StreamIndexLookups) {
  FilterGroup g;
  g.add_filter("a", [] { return nullptr; }, {0});
  g.add_filter("b", [] { return nullptr; }, {0});
  g.add_filter("c", [] { return nullptr; }, {0});
  g.add_stream("a", "b");
  g.add_stream("b", "c");
  g.add_stream("a", "c");
  EXPECT_EQ(g.outputs_of("a"), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(g.inputs_of("c"), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(g.has_filter("b"));
  EXPECT_FALSE(g.has_filter("z"));
}

TEST(LocalSocketTest, TransfersWithHandoffCost) {
  sim::Simulation s;
  net::Cluster cluster(&s, 1);
  auto [a, b] = LocalSocket::make_pair(&s, &cluster.node(0), "loc");
  SimTime delivered;
  s.spawn("rx", [&, b = std::move(b)]() mutable {
    auto m = b->recv();
    ASSERT_TRUE(m.has_value());
    delivered = s.now();
  });
  s.spawn("tx", [&, a = std::move(a)]() mutable {
    a->send(net::Message{.bytes = 1024});
  });
  s.run();
  EXPECT_EQ(delivered, LocalSocket::kHandoffCost);
}

}  // namespace
}  // namespace sv::dc
