// Edge cases for the DataCutter runtime: fan-in/fan-out shapes, multiple
// outputs, end-of-stream semantics, scheduling corner cases.
#include <gtest/gtest.h>

#include "datacutter/runtime.h"

namespace sv::dc {
namespace {

using namespace sv::literals;

class Emitter : public Filter {
 public:
  Emitter(int chunks, std::uint64_t bytes) : chunks_(chunks), bytes_(bytes) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < chunks_; ++i) {
      DataBuffer b;
      b.bytes = bytes_;
      b.tag = static_cast<std::uint64_t>(i);
      ctx.write(std::move(b));
    }
  }

 private:
  int chunks_;
  std::uint64_t bytes_;
};

class Counter : public Filter {
 public:
  explicit Counter(int* n) : n_(n) {}
  void process(FilterContext& ctx) override {
    while (ctx.read()) ++*n_;
  }

 private:
  int* n_;
};

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 10};
  sockets::SocketFactory factory{&s, &cluster};
};

TEST(RuntimeEdgeTest, MultipleOutputStreamsFanOut) {
  // One source with two output streams feeding two different sinks.
  struct DualEmitter : Filter {
    void process(FilterContext& ctx) override {
      ASSERT_EQ(ctx.output_count(), 2u);
      for (int i = 0; i < 4; ++i) {
        ctx.write(0, DataBuffer{.bytes = 100});
        ctx.write(1, DataBuffer{.bytes = 200});
      }
    }
  };
  Fixture f;
  int left = 0, right = 0;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<DualEmitter>(); }, {0});
  g.add_filter("left", [&left] { return std::make_unique<Counter>(&left); },
               {1});
  g.add_filter("right",
               [&right] { return std::make_unique<Counter>(&right); }, {2});
  g.add_stream("src", "left");
  g.add_stream("src", "right");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{1, {}});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(left, 4);
  EXPECT_EQ(right, 4);
}

TEST(RuntimeEdgeTest, MultipleInputStreamsJoin) {
  // A sink with two independent input streams; each stream has its own
  // end-of-work accounting.
  struct Join : Filter {
    explicit Join(std::vector<int>* counts) : counts_(counts) {}
    void process(FilterContext& ctx) override {
      int a = 0, b = 0;
      while (ctx.read(0)) ++a;
      while (ctx.read(1)) ++b;
      counts_->push_back(a);
      counts_->push_back(b);
    }
    std::vector<int>* counts_;
  };
  Fixture f;
  std::vector<int> counts;
  FilterGroup g;
  g.add_filter("s1", [] { return std::make_unique<Emitter>(3, 64); }, {0});
  g.add_filter("s2", [] { return std::make_unique<Emitter>(5, 64); }, {1});
  g.add_filter("join", [&counts] { return std::make_unique<Join>(&counts); },
               {2});
  g.add_stream("s1", "join");
  g.add_stream("s2", "join");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{1, {}});
  rt.close_input();
  f.s.run();
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 5);
}

TEST(RuntimeEdgeTest, ManyToOneFanInAggregates) {
  Fixture f;
  int total = 0;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<Emitter>(10, 128); },
               {0, 1, 2, 3});  // 4 copies, 10 buffers each
  g.add_filter("sink", [&total] { return std::make_unique<Counter>(&total); },
               {4});
  g.add_stream("src", "sink");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{1, {}});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(total, 40);
}

TEST(RuntimeEdgeTest, UnbalancedCopyCounts) {
  // 2 producers -> 5 consumers -> 1 sink, RR then DD.
  struct Forward : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) ctx.write(std::move(*b));
    }
  };
  Fixture f;
  int total = 0;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<Emitter>(25, 512); },
               {0, 1});
  g.add_filter("mid", [] { return std::make_unique<Forward>(); },
               {2, 3, 4, 5, 6});
  g.add_filter("sink", [&total] { return std::make_unique<Counter>(&total); },
               {7});
  g.add_stream("src", "mid", SchedPolicy::kRoundRobin);
  g.add_stream("mid", "sink", SchedPolicy::kDemandDriven);
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  rt.submit(Uow{1, {}});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(total, 50);
  const auto dist = rt.distribution(0);
  // RR from each producer: 25 buffers over 5 consumers = 5 each.
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(dist[p][c], 5u) << "p=" << p << " c=" << c;
    }
  }
}

TEST(RuntimeEdgeTest, EmptyUowStillCompletes) {
  // A source that writes nothing for a UOW: markers alone must complete
  // the unit of work downstream.
  struct Silent : Filter {
    void process(FilterContext&) override {}
  };
  Fixture f;
  int total = 0;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<Silent>(); }, {0});
  g.add_filter("sink", [&total] { return std::make_unique<Counter>(&total); },
               {1});
  g.add_stream("src", "sink");
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g));
  rt.start();
  std::vector<std::uint64_t> done;
  f.s.spawn("watch", [&] {
    for (int i = 0; i < 2; ++i) {
      auto c = rt.wait_completion();
      if (c) done.push_back(c->uow_id);
    }
  });
  rt.submit(Uow{7, {}});
  rt.submit(Uow{8, {}});
  rt.close_input();
  f.s.run();
  EXPECT_EQ(total, 0);
  EXPECT_EQ(done, (std::vector<std::uint64_t>{7, 8}));
}

TEST(RuntimeEdgeTest, DdCapBlocksProducerUntilAcks) {
  // With dd_max_unacked=1 and a slow consumer, the producer must pace at
  // the consumer's rate instead of flooding.
  struct SlowSink : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        ctx.compute(SimTime::milliseconds(1));
      }
    }
  };
  Fixture f;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<Emitter>(10, 64); }, {0});
  g.add_filter("sink", [] { return std::make_unique<SlowSink>(); }, {1});
  g.add_stream("src", "sink", SchedPolicy::kDemandDriven);
  RuntimeOptions opts;
  opts.dd_max_unacked = 1;
  Runtime rt(&f.s, &f.cluster, &f.factory, std::move(g), opts);
  rt.start();
  rt.submit(Uow{1, {}});
  rt.close_input();
  f.s.run();
  // 10 blocks x 1 ms compute, strictly paced: ~10 ms total.
  EXPECT_GT(f.s.now(), 9_ms);
}

TEST(RuntimeEdgeTest, RuntimeDestroyedBeforeRunIsSafe) {
  // Construct + start a runtime, never run the simulation, destroy
  // everything: must not hang or crash (lifetime regression test).
  Fixture f;
  int n = 0;
  FilterGroup g;
  g.add_filter("src", [] { return std::make_unique<Emitter>(1, 64); }, {0});
  g.add_filter("sink", [&n] { return std::make_unique<Counter>(&n); }, {1});
  g.add_stream("src", "sink");
  auto rt = std::make_unique<Runtime>(&f.s, &f.cluster, &f.factory,
                                      std::move(g));
  rt->start();
  rt->submit(Uow{1, {}});
  rt.reset();  // destroyed before the simulation ever ran
  SUCCEED();
}

}  // namespace
}  // namespace sv::dc
