// Tests for the experiment harness itself (scaled-down workloads).
#include "harness/vizbench.h"

#include <gtest/gtest.h>

namespace sv::harness {
namespace {

using namespace sv::literals;

VizWorkloadConfig small_config(net::Transport tr) {
  VizWorkloadConfig cfg;
  cfg.transport = tr;
  cfg.image_bytes = 2_MiB;
  cfg.block_bytes = 128_KiB;
  return cfg;
}

TEST(VizbenchTest, IdlePartialLatencyIsStableAndOrdered) {
  const auto tcp = measure_idle_partial_latency(
      small_config(net::Transport::kKernelTcp));
  const auto tcp2 = measure_idle_partial_latency(
      small_config(net::Transport::kKernelTcp));
  const auto svia = measure_idle_partial_latency(
      small_config(net::Transport::kSocketVia));
  EXPECT_EQ(tcp, tcp2);  // deterministic
  EXPECT_LT(svia, tcp);  // transport ordering survives the full pipeline
}

TEST(VizbenchTest, PacedRunMeetsEasyTargetAndFailsImpossibleOne) {
  auto cfg = small_config(net::Transport::kSocketVia);
  const auto easy = run_paced_updates(cfg, 4.0, 4, 1);
  EXPECT_TRUE(easy.met_target);
  EXPECT_NEAR(easy.achieved_ups, 4.0, 0.3);
  EXPECT_FALSE(easy.partial_latencies.empty());
  // 2 MiB * 200/s = 400 MB/s >> any transport here.
  const auto impossible = run_paced_updates(cfg, 200.0, 4, 1);
  EXPECT_FALSE(impossible.met_target);
  EXPECT_LT(impossible.achieved_ups, 200.0 * 0.9);
}

TEST(VizbenchTest, SaturationExceedsPacedFeasibleRate) {
  auto cfg = small_config(net::Transport::kSocketVia);
  const auto sat = run_saturation(cfg, 5, 1);
  EXPECT_GT(sat.updates_per_sec, 10.0);  // 2 MiB images saturate far above 4
  EXPECT_GT(sat.uncontended_partial_latency, SimTime::zero());
}

TEST(VizbenchTest, QueryMixMonotoneInCompleteFraction) {
  auto cfg = small_config(net::Transport::kKernelTcp);
  cfg.block_bytes = 2_MiB / 16;
  const auto zoomy = run_query_mix(cfg, 0.0, 10);
  const auto completey = run_query_mix(cfg, 1.0, 10);
  EXPECT_EQ(zoomy.count(), 10u);
  EXPECT_LT(zoomy.mean(), completey.mean());
}

TEST(VizbenchTest, QueryMixDeterministicPerSeed) {
  auto cfg = small_config(net::Transport::kSocketVia);
  cfg.seed = 77;
  const auto a = run_query_mix(cfg, 0.5, 8);
  const auto b = run_query_mix(cfg, 0.5, 8);
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.raw()[i], b.raw()[i]);
  }
}

}  // namespace
}  // namespace sv::harness
