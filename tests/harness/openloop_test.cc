// Statistical and reproducibility tests for the open-loop workload
// generator (harness/openloop.h): Poisson/MMPP rates match configuration
// within tolerance across many seeds, modulation schedules derive from
// (seed, config) alone, and full runs are bit-deterministic.
#include "harness/openloop.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sv::harness {
namespace {

/// Arrivals of `ap` in [0, horizon), as a count.
std::uint64_t count_until(ArrivalProcess& ap, SimTime horizon) {
  std::uint64_t n = 0;
  while (ap.next() <= horizon) ++n;
  return n;
}

TEST(ArrivalProcess, PoissonRateMatchesConfigAcrossSeeds) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_sec = 10'000.0;
  const SimTime horizon = SimTime::seconds(2);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ArrivalProcess ap(spec, seed);
    const double measured =
        static_cast<double>(count_until(ap, horizon)) / horizon.sec();
    EXPECT_NEAR(measured, spec.rate_per_sec, 0.05 * spec.rate_per_sec)
        << "seed " << seed;
  }
}

TEST(ArrivalProcess, MmppLongRunRateMatchesSojournWeightedMean) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kMmpp;
  spec.rate_per_sec = 2'000.0;
  spec.mmpp_high_per_sec = 8'000.0;
  spec.mmpp_sojourn_low = SimTime::milliseconds(20);
  spec.mmpp_sojourn_high = SimTime::milliseconds(5);
  // Expected long-run rate: sojourn-weighted state mix.
  const double expect =
      (2'000.0 * 20.0 + 8'000.0 * 5.0) / (20.0 + 5.0);  // 3200/s
  const SimTime horizon = SimTime::seconds(4);
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    ArrivalProcess ap(spec, seed);
    const double measured =
        static_cast<double>(count_until(ap, horizon)) / horizon.sec();
    EXPECT_NEAR(measured, expect, 0.15 * expect) << "seed " << seed;
  }
}

TEST(ArrivalProcess, SameSeedSameScheduleDifferentSeedDiffers) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kMmpp;
  spec.rate_per_sec = 5'000.0;
  spec.diurnal_period = SimTime::milliseconds(50);
  spec.diurnal_amplitude = 0.5;
  spec.flash_crowds.push_back(
      {SimTime::milliseconds(30), SimTime::milliseconds(10), 4});

  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
  std::vector<std::int64_t> c;
  ArrivalProcess pa(spec, 99);
  ArrivalProcess pb(spec, 99);
  ArrivalProcess pc(spec, 100);
  for (int i = 0; i < 1'000; ++i) {
    a.push_back(pa.next().ns());
    b.push_back(pb.next().ns());
    c.push_back(pc.next().ns());
  }
  EXPECT_EQ(a, b) << "same (seed, config) must replay bit-identically";
  EXPECT_NE(a, c) << "a different seed must give a different schedule";
}

TEST(ArrivalProcess, ArrivalTimesStrictlyIncrease) {
  ArrivalSpec spec;
  spec.rate_per_sec = 1e6;  // dense stream to stress tie-breaking
  ArrivalProcess ap(spec, 7);
  SimTime prev = SimTime::zero();
  for (int i = 0; i < 20'000; ++i) {
    const SimTime t = ap.next();
    ASSERT_GT(t, prev);
    prev = t;
  }
}

TEST(ArrivalProcess, FlashCrowdMultipliesRateInsideWindowOnly) {
  ArrivalSpec spec;
  spec.rate_per_sec = 5'000.0;
  spec.flash_crowds.push_back(
      {SimTime::milliseconds(500), SimTime::milliseconds(500), 5});
  double in_window = 0;
  double outside = 0;
  for (std::uint64_t seed = 21; seed <= 28; ++seed) {
    ArrivalProcess ap(spec, seed);
    for (SimTime t = ap.next(); t <= SimTime::seconds(2); t = ap.next()) {
      const bool flash = t >= SimTime::milliseconds(500) &&
                         t < SimTime::milliseconds(1000);
      (flash ? in_window : outside) += 1.0;
    }
  }
  // 0.5 s of x5 rate vs 1.5 s of base rate: per-second ratio ~5.
  const double ratio = (in_window / 0.5) / (outside / 1.5);
  EXPECT_NEAR(ratio, 5.0, 1.0);
}

TEST(ArrivalProcess, DiurnalTriangleShapesInstantaneousRate) {
  ArrivalSpec spec;
  spec.rate_per_sec = 1'000.0;
  spec.diurnal_period = SimTime::milliseconds(100);
  spec.diurnal_amplitude = 0.8;
  // rate_at is pure for Poisson (no MMPP state), so probe it directly.
  ArrivalProcess ap(spec, 1);
  EXPECT_NEAR(ap.rate_at(SimTime::zero()), 200.0, 1e-6);
  EXPECT_NEAR(ap.rate_at(SimTime::milliseconds(25)), 1'000.0, 1e-6);
  EXPECT_NEAR(ap.rate_at(SimTime::milliseconds(50)), 1'800.0, 1e-6);
  EXPECT_NEAR(ap.rate_at(SimTime::milliseconds(75)), 1'000.0, 1e-6);
  // Periodicity.
  EXPECT_NEAR(ap.rate_at(SimTime::milliseconds(150)), 1'800.0, 1e-6);
}

TEST(ArrivalSpec, PeakEnvelopeBoundsEveryModulation) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kMmpp;
  spec.rate_per_sec = 1'000.0;
  spec.mmpp_high_per_sec = 6'000.0;
  spec.diurnal_period = SimTime::milliseconds(40);
  spec.diurnal_amplitude = 0.5;
  spec.flash_crowds.push_back(
      {SimTime::milliseconds(10), SimTime::milliseconds(10), 3});
  spec.flash_crowds.push_back(
      {SimTime::milliseconds(15), SimTime::milliseconds(10), 2});
  const double peak = spec.peak_rate_per_sec();
  ArrivalProcess ap(spec, 5);
  for (int ms = 0; ms < 200; ++ms) {
    EXPECT_LE(ap.rate_at(SimTime::milliseconds(ms)), peak + 1e-9);
  }
}

TEST(OpenLoop, SmallRunDeliversAndIsDeterministic) {
  OpenLoopConfig cfg;
  cfg.cluster_nodes = 16;
  cfg.topology = net::TopologySpec::fat_tree(4);
  cfg.clients = 4'000;
  cfg.arrivals.rate_per_sec = 20'000.0;
  cfg.duration = SimTime::milliseconds(40);
  cfg.seed = 3;

  const OpenLoopResult a = run_open_loop(cfg);
  const OpenLoopResult b = run_open_loop(cfg);
  EXPECT_GT(a.offered, 0u);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_LE(a.delivered + a.drops, a.offered);
  EXPECT_EQ(a.update_latency.count(), a.delivered);

  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.end_time, b.end_time);

  OpenLoopConfig other = cfg;
  other.seed = 4;
  const OpenLoopResult c = run_open_loop(other);
  EXPECT_NE(a.trace_digest, c.trace_digest);
}

TEST(OpenLoop, QueueKindsAgreeBitForBit) {
  OpenLoopConfig cfg;
  cfg.cluster_nodes = 16;
  cfg.topology = net::TopologySpec::fat_tree(4, 2);
  cfg.clients = 2'000;
  cfg.arrivals.kind = ArrivalKind::kMmpp;
  cfg.arrivals.rate_per_sec = 10'000.0;
  cfg.churn_per_sec = 50.0;
  cfg.incast_fraction = 0.2;
  cfg.hot_node = 5;
  cfg.duration = SimTime::milliseconds(30);
  cfg.seed = 12;

  cfg.queue_kind = sim::QueueKind::kTimingWheel;
  const OpenLoopResult wheel = run_open_loop(cfg);
  cfg.queue_kind = sim::QueueKind::kReferenceHeap;
  const OpenLoopResult heap = run_open_loop(cfg);
  EXPECT_EQ(wheel.events_fired, heap.events_fired);
  EXPECT_EQ(wheel.trace_digest, heap.trace_digest);
  EXPECT_EQ(wheel.end_time, heap.end_time);
}

TEST(OpenLoop, IncastRedirectionLoadsTheHotNode) {
  OpenLoopConfig cfg;
  cfg.cluster_nodes = 16;
  cfg.topology = net::TopologySpec::fat_tree(4, 4);
  cfg.clients = 2'000;
  cfg.arrivals.rate_per_sec = 15'000.0;
  cfg.hot_node = 0;
  cfg.duration = SimTime::milliseconds(30);

  OpenLoopConfig spread = cfg;
  spread.incast_fraction = 0.0;
  OpenLoopConfig funnel = cfg;
  funnel.incast_fraction = 0.5;

  const OpenLoopResult even = run_open_loop(spread);
  const OpenLoopResult hot = run_open_loop(funnel);
  EXPECT_GT(even.delivered, 0u);
  EXPECT_GT(hot.delivered, 0u);
  // Funneling half of all updates into one edge switch must lengthen the
  // tail relative to the evenly spread run of identical aggregate load.
  EXPECT_GT(hot.update_latency.percentile(99.0),
            even.update_latency.percentile(99.0));
}

}  // namespace
}  // namespace sv::harness
