#include "harness/series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sv::harness {
namespace {

TEST(SeriesTest, StoresPoints) {
  Series s("TCP");
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  EXPECT_EQ(s.name(), "TCP");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(1), 2.0);
  EXPECT_DOUBLE_EQ(s.y(1), 20.0);
}

TEST(SeriesTest, YAtFindsAndMisses) {
  Series s("a");
  s.add(1.5, 42.0);
  EXPECT_DOUBLE_EQ(s.y_at(1.5), 42.0);
  EXPECT_TRUE(std::isnan(s.y_at(9.9)));
}

TEST(FigureTest, ReferencesStableAcrossAddSeries) {
  Figure f("t", "x", "y");
  auto& a = f.add_series("a");
  // Force many additions; `a` must remain valid (deque guarantee).
  for (int i = 0; i < 50; ++i) f.add_series("s" + std::to_string(i));
  a.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(f.series().front().y_at(1.0), 2.0);
}

TEST(FigureTest, PrintsAlignedUnion) {
  Figure f("My Figure", "x", "latency");
  auto& a = f.add_series("A");
  auto& b = f.add_series("B");
  a.add(1.0, 10.0);
  a.add(2.0, 20.0);
  b.add(2.0, 200.0);
  b.add(3.0, 300.0);
  std::ostringstream os;
  f.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("latency"), std::string::npos);
  // x=1 has no B value -> "-" placeholder; x=3 has no A value.
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("300.00"), std::string::npos);
}

TEST(FigureTest, CsvOutput) {
  Figure f("fig", "x", "y");
  auto& a = f.add_series("only");
  a.add(0.5, 1.25);
  std::ostringstream os;
  f.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# fig"), std::string::npos);
  EXPECT_NE(out.find("x,only"), std::string::npos);
  EXPECT_NE(out.find("0.50,1.2500"), std::string::npos);
}

}  // namespace
}  // namespace sv::harness
