#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sv {
namespace {

TEST(TableTest, BasicRendering) {
  Table t({"msg size", "latency (us)"});
  t.add_row({"4", "9.5"});
  t.add_row({"1024", "20.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("msg size"), std::string::npos);
  EXPECT_NE(out.find("9.5"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-42)), "-42");
}

TEST(TableTest, CellAccess) {
  Table t({"x"});
  t.add_row({"hello"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.cell(0, 0), "hello");
}

TEST(TableTest, CsvQuoting) {
  Table t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "multi\nline"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(out.find("plain,"), out.find("plain"));  // unquoted plain cell
}

TEST(TableTest, ColumnsAlignAcrossRows) {
  Table t({"a", "b"});
  t.add_row({"x", "longvalue"});
  t.add_row({"longer", "y"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::size_t> pipe_cols;
  std::getline(is, line);
  const auto first_len = line.size();
  while (std::getline(is, line)) {
    EXPECT_EQ(line.size(), first_len) << "row widths differ: " << line;
  }
}

}  // namespace
}  // namespace sv
