#include "common/cli.h"

#include <gtest/gtest.h>

namespace sv {
namespace {

TEST(CliTest, ParsesAllTypes) {
  bool flag = false;
  std::int64_t n = 5;
  double x = 1.5;
  std::string s = "default";
  CliParser p("test");
  p.add_flag("verbose", &flag, "be chatty");
  p.add_int("count", &n, "how many");
  p.add_double("ratio", &x, "a ratio");
  p.add_string("name", &s, "a name");

  const char* argv[] = {"prog",       "--verbose",  "--count=42",
                        "--ratio",    "2.75",       "--name=hello"};
  ASSERT_TRUE(p.parse(6, argv));
  EXPECT_TRUE(flag);
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.75);
  EXPECT_EQ(s, "hello");
}

TEST(CliTest, SeparateValueForm) {
  std::int64_t n = 0;
  CliParser p("test");
  p.add_int("count", &n, "how many");
  const char* argv[] = {"prog", "--count", "17"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(n, 17);
}

TEST(CliTest, NoFlagNegation) {
  bool flag = true;
  CliParser p("test");
  p.add_flag("color", &flag, "use color");
  const char* argv[] = {"prog", "--no-color"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_FALSE(flag);
}

TEST(CliTest, UnknownOptionFails) {
  CliParser p("test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliTest, BadIntValueFails) {
  std::int64_t n = 0;
  CliParser p("test");
  p.add_int("count", &n, "how many");
  const char* argv[] = {"prog", "--count=notanumber"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliTest, MissingValueFails) {
  std::int64_t n = 0;
  CliParser p("test");
  p.add_int("count", &n, "how many");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliTest, HelpReturnsFalseAndPrintsOptions) {
  std::int64_t n = 3;
  CliParser p("my tool");
  p.add_int("count", &n, "how many widgets");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
  const std::string u = p.usage();
  EXPECT_NE(u.find("my tool"), std::string::npos);
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("how many widgets"), std::string::npos);
  EXPECT_NE(u.find("default: 3"), std::string::npos);
}

TEST(CliTest, PositionalArgumentsCollected) {
  CliParser p("test");
  const char* argv[] = {"prog", "alpha", "beta"};
  ASSERT_TRUE(p.parse(3, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "alpha");
  EXPECT_EQ(p.positional()[1], "beta");
}

TEST(CliTest, DefaultsPreservedWhenAbsent) {
  std::int64_t n = 7;
  std::string s = "keep";
  CliParser p("test");
  p.add_int("count", &n, "");
  p.add_string("name", &s, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(n, 7);
  EXPECT_EQ(s, "keep");
}

}  // namespace
}  // namespace sv
