#include "common/log.h"

#include <gtest/gtest.h>

namespace sv {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, MacroShortCircuitsBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("payload");
  };
  SV_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);  // streamed expression never evaluated
  SV_ERROR("test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
}

TEST(LogTest, LogLineRespectsThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // No crash and no way to observe stderr portably here; this exercises the
  // early-return path and the emit path.
  log_line(LogLevel::kDebug, "tag", "suppressed");
  log_line(LogLevel::kError, "tag", "emitted");
}

}  // namespace
}  // namespace sv
