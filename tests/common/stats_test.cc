#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sv {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SamplesTest, MeanMinMax) {
  Samples s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(SamplesTest, PercentileNearestRank) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(SamplesTest, PercentileAfterInterleavedAdds) {
  Samples s;
  s.add(10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);  // nearest-rank of 2 samples at p50
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SamplesTest, SimTimeConvenience) {
  Samples s;
  s.add(SimTime::microseconds(10));
  s.add(SimTime::microseconds(20));
  EXPECT_EQ(s.mean_time().ns(), 15'000);
  EXPECT_EQ(s.percentile_time(100).ns(), 20'000);
}

TEST(SamplesTest, EmptyIsSafe) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sv
