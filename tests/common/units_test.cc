#include "common/units.h"

#include <gtest/gtest.h>

namespace sv {
namespace {

using namespace sv::literals;

TEST(SimTimeTest, ConstructionAndAccessors) {
  EXPECT_EQ(SimTime::zero().ns(), 0);
  EXPECT_EQ(SimTime::microseconds(3).ns(), 3000);
  EXPECT_EQ(SimTime::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(5).us(), 5.0);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(7).ms(), 7.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(9).sec(), 9.0);
}

TEST(SimTimeTest, Literals) {
  EXPECT_EQ((5_us).ns(), 5000);
  EXPECT_EQ((2_ms).ns(), 2'000'000);
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
  EXPECT_EQ((42_ns).ns(), 42);
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ((3_us + 4_us).ns(), 7000);
  EXPECT_EQ((10_us - 4_us).ns(), 6000);
  EXPECT_EQ((3_us * 4).ns(), 12000);
  EXPECT_EQ((4 * 3_us).ns(), 12000);
  EXPECT_EQ((12_us / 4).ns(), 3000);
  EXPECT_EQ(12_us / 3_us, 4);
  SimTime t = 1_us;
  t += 2_us;
  EXPECT_EQ(t.ns(), 3000);
  t -= 1_us;
  EXPECT_EQ(t.ns(), 2000);
}

TEST(SimTimeTest, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_LE(2_us, 2_us);
  EXPECT_GT(3_us, 2_us);
  EXPECT_EQ(1000_ns, 1_us);
  EXPECT_NE(999_ns, 1_us);
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ((500_ns).to_string(), "500ns");
  EXPECT_EQ((1500_ns).to_string(), "1.50us");
  EXPECT_NE((3_ms).to_string().find("ms"), std::string::npos);
  EXPECT_NE((2_s).to_string().find("s"), std::string::npos);
}

TEST(PerByteCostTest, NanosPerByte) {
  // The Virtual Microscope compute cost from the paper: 18 ns/byte.
  const auto vm = PerByteCost::nanos_per_byte(18);
  EXPECT_EQ(vm.ps_per_byte(), 18'000);
  EXPECT_EQ(vm.for_bytes(1).ns(), 18);
  EXPECT_EQ(vm.for_bytes(1024).ns(), 18 * 1024);
  // 16 MB image at 18 ns/B = 301,989,888 ns (fits easily in int64).
  EXPECT_EQ(vm.for_bytes(16_MiB).ns(), 301'989'888);
}

TEST(PerByteCostTest, FromMbpsRoundTrip) {
  const auto r = PerByteCost::from_mbps(800);
  EXPECT_EQ(r.ps_per_byte(), 10'000);  // 10 ns per byte
  EXPECT_DOUBLE_EQ(r.mbps(), 800.0);
}

TEST(PerByteCostTest, RoundingIsNearest) {
  const auto c = PerByteCost::picos_per_byte(1);  // 1 ps/B
  EXPECT_EQ(c.for_bytes(499).ns(), 0);
  EXPECT_EQ(c.for_bytes(500).ns(), 1);  // rounds half up
  EXPECT_EQ(c.for_bytes(1500).ns(), 2);
}

TEST(PerByteCostTest, Addition) {
  const auto a = PerByteCost::nanos_per_byte(2);
  const auto b = PerByteCost::nanos_per_byte(3);
  EXPECT_EQ((a + b).ns_per_byte(), 5.0);
}

TEST(ThroughputTest, Mbps) {
  // 1 MB in 1 ms = 8 Gbps = 8000 Mbps.
  EXPECT_DOUBLE_EQ(throughput_mbps(1'000'000, SimTime::milliseconds(1)),
                   8000.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(100, SimTime::zero()), 0.0);
}

TEST(ByteLiteralsTest, KiBMiB) {
  EXPECT_EQ(2_KiB, 2048u);
  EXPECT_EQ(16_MiB, 16u * 1024 * 1024);
}

}  // namespace
}  // namespace sv
