#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace sv {
namespace {

TEST(CheckTest, PassingAssertIsSilent) {
  EXPECT_NO_THROW(SV_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(SV_ASSERT(true, "never shown"));
}

TEST(CheckTest, FailingAssertThrowsCheckFailure) {
  EXPECT_THROW(SV_ASSERT(false), CheckFailure);
  // CheckFailure is a std::logic_error, so callers that already catch
  // logic_error keep working.
  EXPECT_THROW(SV_ASSERT(false), std::logic_error);
}

TEST(CheckTest, MessageCarriesExpressionLocationAndDetail) {
  try {
    SV_ASSERT(2 < 1, "two is not less than one");
    FAIL() << "SV_ASSERT did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  SV_ASSERT([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, DcheckMatchesBuildConfiguration) {
#if !defined(NDEBUG) || defined(SV_ENABLE_DCHECKS)
  EXPECT_THROW(SV_DCHECK(false, "dchecks are on"), CheckFailure);
#else
  int evaluations = 0;
  SV_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0) << "SV_DCHECK must compile out in release";
#endif
}

}  // namespace
}  // namespace sv
