#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 2000 draws
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_EQ(r.uniform_int(5, 4), 5);  // degenerate: returns lo
}

TEST(RngTest, Uniform01InRange) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng r(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(5.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(31);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng r(1);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace sv
