// SLO control-plane unit contracts (DESIGN.md §15), driven without a
// simulation: a hub whose per-node latency histograms the tests feed by
// hand, published at fixed sim times. Every decision is a pure function
// of the fed windows, so each contract — ladder order, hysteresis,
// cooldown, demotion, probation, the offered-load silence guard — is
// pinned exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/slo.h"
#include "control/token_bucket.h"
#include "obs/hub.h"

namespace sv::control {
namespace {

using Kind = Controller::Action::Kind;

// Sample values against a 5 ms target with bands at 100%/70% and bucket
// bounds {1 ms, 4 ms, 20 ms}: kFast reads as p99 = 1 ms (healthy),
// kDeadZone as 4 ms (between the bands), kSlow as 20 ms (violating, and
// past the 150% demotion limit).
constexpr std::int64_t kFast = 500'000;
constexpr std::int64_t kDeadZone = 3'900'000;
constexpr std::int64_t kSlow = 19'000'000;

ControllerConfig base_cfg() {
  ControllerConfig cfg;
  cfg.targets.p99_update_latency = SimTime::milliseconds(5);
  cfg.band_high_pct = 100;
  cfg.band_low_pct = 70;
  cfg.violate_windows = 2;
  cfg.recover_windows = 2;
  cfg.cooldown = SimTime::zero();
  cfg.min_window_samples = 8;
  cfg.throttle_step_permille = 250;
  cfg.min_admit_permille = 500;
  cfg.chunk_min_bytes = 0;
  cfg.chunk_max_bytes = 0;  // chunk actuator off unless a test enables it
  cfg.demote_windows = 0;   // demotion off unless a test enables it
  return cfg;
}

struct Fx {
  obs::Hub hub;
  std::vector<obs::Histogram*> hists;
  obs::Counter* offered;
  std::unique_ptr<Controller> ctl;
  std::vector<std::uint64_t> chunk_calls;
  std::vector<int> demote_calls;
  std::vector<int> promote_calls;
  SimTime now;

  explicit Fx(const ControllerConfig& cfg, int nodes = 1,
              AdmissionControl* admission = nullptr) {
    for (int n = 0; n < nodes; ++n) {
      hists.push_back(&hub.registry.histogram(
          "slo.update_latency_ns{node=node" + std::to_string(n) + "}",
          {1'000'000, 4'000'000, 20'000'000}));
    }
    offered = &hub.registry.counter("slo.offered");
    Actuators acts;
    acts.admission = admission;
    acts.apply_chunk_bytes = [this](std::uint64_t b) {
      chunk_calls.push_back(b);
    };
    acts.apply_demotion = [this](int n) { demote_calls.push_back(n); };
    acts.apply_promotion = [this](int n) { promote_calls.push_back(n); };
    ctl = std::make_unique<Controller>(&hub, cfg, std::move(acts));
    for (int n = 0; n < nodes; ++n) ctl->watch_node(n);
    hub.attach(ctl.get());
    // Priming publish: binds every window at zero so the first fed window
    // is fully visible.
    hub.publish(now);
  }

  /// Feeds `n` latency samples to `node` and counts them as offered load.
  void feed(int node, std::uint64_t n, std::int64_t ns) {
    for (std::uint64_t i = 0; i < n; ++i) {
      hists[static_cast<std::size_t>(node)]->observe(ns);
    }
    offered->inc(n);
  }

  /// Feeds samples WITHOUT advancing `slo.offered` (for the silence-guard
  /// test: delivery evidence with no offered load).
  void feed_quiet(int node, std::uint64_t n, std::int64_t ns) {
    for (std::uint64_t i = 0; i < n; ++i) {
      hists[static_cast<std::size_t>(node)]->observe(ns);
    }
  }

  /// Closes the current 5 ms decision window.
  void publish() {
    now += SimTime::milliseconds(5);
    hub.publish(now);
  }

  [[nodiscard]] std::size_t action_count(Kind k) const {
    std::size_t n = 0;
    for (const Controller::Action& a : ctl->actions()) n += a.kind == k;
    return n;
  }
};

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucketTest, StartsFullAndRefillsAtIntegerRate) {
  TokenBucket b(1'000, 2);  // one token per simulated millisecond
  EXPECT_TRUE(b.try_take(SimTime::zero()));
  EXPECT_TRUE(b.try_take(SimTime::zero()));
  EXPECT_FALSE(b.try_take(SimTime::zero()));
  // Half a token accrued: still dry.
  EXPECT_FALSE(b.try_take(SimTime::microseconds(500)));
  // The carry completes the token at exactly 1 ms.
  EXPECT_TRUE(b.try_take(SimTime::milliseconds(1)));
  EXPECT_FALSE(b.try_take(SimTime::milliseconds(1)));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket b(1'000'000, 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(SimTime::zero()));
  // A long idle stretch accrues far more than burst; only 4 survive.
  const SimTime later = SimTime::seconds(1);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(later));
  EXPECT_FALSE(b.try_take(later));
}

TEST(TokenBucketTest, SetRateResetsSubTokenCarry) {
  TokenBucket b(1'000, 1);
  EXPECT_TRUE(b.try_take(SimTime::zero()));
  // Accrue half a token of carry, then re-rate: the carry resets, so the
  // change is a pure function of the call point (determinism contract).
  EXPECT_FALSE(b.try_take(SimTime::microseconds(500)));
  b.set_rate(1'000);
  EXPECT_FALSE(b.try_take(SimTime::milliseconds(1)));
  EXPECT_TRUE(b.try_take(SimTime::microseconds(1'500)));
}

// ---------------------------------------------------------------------------
// AdmissionControl

TEST(AdmissionControlTest, ShedsOnlySheddableClassesUnderThrottle) {
  AdmissionControl gate({
      AdmissionControl::ClassSpec{"interactive", 1'000, 4, false},
      AdmissionControl::ClassSpec{"bulk", 1'000, 4, true},
  });
  ASSERT_EQ(gate.class_count(), 2u);
  // Full admission: both classes bypass the buckets entirely.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gate.admit(0, SimTime::zero()));
    EXPECT_TRUE(gate.admit(1, SimTime::zero()));
  }
  gate.set_admit_permille(500);
  EXPECT_EQ(gate.admit_permille(), 500u);
  // Bulk now drains its burst, then throttles at the halved rate.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(gate.admit(1, SimTime::zero()));
  EXPECT_FALSE(gate.admit(1, SimTime::zero()));
  // 500/s = one token per 2 ms.
  EXPECT_TRUE(gate.admit(1, SimTime::milliseconds(2)));
  EXPECT_FALSE(gate.admit(1, SimTime::milliseconds(2)));
  // The interactive class is never shed, no matter the permille.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gate.admit(0, SimTime::milliseconds(2)));
  }
}

TEST(AdmissionControlTest, ZeroPermilleClampsToOneTokenPerSecond) {
  AdmissionControl gate({AdmissionControl::ClassSpec{"bulk", 1'000, 1, true}});
  gate.set_admit_permille(0);
  EXPECT_TRUE(gate.admit(0, SimTime::zero()));  // the burst token
  EXPECT_FALSE(gate.admit(0, SimTime::milliseconds(999)));
  EXPECT_TRUE(gate.admit(0, SimTime::seconds(1)));
}

// ---------------------------------------------------------------------------
// Controller: the cluster escalation ladder

TEST(ControllerTest, ThrottleLadderStepsDownThenReleasesUp) {
  AdmissionControl gate({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  Fx fx(base_cfg(), 1, &gate);

  fx.feed(0, 16, kSlow);
  fx.publish();  // violating streak 1: below violate_windows, no action
  EXPECT_TRUE(fx.ctl->actions().empty());
  fx.feed(0, 16, kSlow);
  fx.publish();  // streak 2 -> throttle
  ASSERT_EQ(fx.ctl->actions().size(), 1u);
  EXPECT_EQ(fx.ctl->actions()[0].kind, Kind::kThrottle);
  EXPECT_EQ(fx.ctl->admit_permille(), 750u);
  EXPECT_EQ(gate.admit_permille(), 750u);

  fx.feed(0, 16, kSlow);
  fx.publish();
  fx.feed(0, 16, kSlow);
  fx.publish();  // second throttle lands on the floor
  EXPECT_EQ(fx.ctl->admit_permille(), 500u);

  // Ladder exhausted (chunk actuator disabled): further violations are
  // recorded as pressure but change nothing.
  fx.feed(0, 16, kSlow);
  fx.publish();
  fx.feed(0, 16, kSlow);
  fx.publish();
  EXPECT_EQ(fx.ctl->admit_permille(), 500u);
  EXPECT_EQ(fx.ctl->actions().size(), 2u);

  // Recovery releases in steps, back to full admission.
  for (int i = 0; i < 2; ++i) {
    fx.feed(0, 16, kFast);
    fx.publish();
  }
  EXPECT_EQ(fx.ctl->admit_permille(), 750u);
  for (int i = 0; i < 2; ++i) {
    fx.feed(0, 16, kFast);
    fx.publish();
  }
  EXPECT_EQ(fx.ctl->admit_permille(), 1000u);
  EXPECT_EQ(gate.admit_permille(), 1000u);
  EXPECT_EQ(fx.action_count(Kind::kThrottle), 2u);
  EXPECT_EQ(fx.action_count(Kind::kRelease), 2u);
}

TEST(ControllerTest, ChunkLadderEngagesAfterAdmissionFloor) {
  ControllerConfig cfg = base_cfg();
  cfg.min_admit_permille = 1000;  // admission rung disabled: straight to chunk
  cfg.chunk_min_bytes = 1024;
  cfg.chunk_max_bytes = 4096;
  Fx fx(cfg);

  EXPECT_EQ(fx.ctl->chunk_bytes(), 4096u);
  for (int i = 0; i < 4; ++i) {
    fx.feed(0, 16, kSlow);
    fx.publish();
  }
  // Two violation decisions: halve, halve to the floor.
  EXPECT_EQ(fx.ctl->chunk_bytes(), 1024u);
  for (int i = 0; i < 4; ++i) {
    fx.feed(0, 16, kFast);
    fx.publish();
  }
  // Two recovery decisions: double, double back to the ceiling.
  EXPECT_EQ(fx.ctl->chunk_bytes(), 4096u);
  EXPECT_EQ(fx.chunk_calls,
            (std::vector<std::uint64_t>{2048, 1024, 2048, 4096}));
  EXPECT_EQ(fx.action_count(Kind::kChunkShrink), 2u);
  EXPECT_EQ(fx.action_count(Kind::kChunkGrow), 2u);
}

// ---------------------------------------------------------------------------
// Controller: hysteresis and cooldown

TEST(ControllerTest, DeadZoneHoldsStateWithoutOscillation) {
  AdmissionControl gate({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  Fx fx(base_cfg(), 1, &gate);
  // p99 sits between the bands (4 ms in [3.5, 5]): neither streak moves,
  // no action ever fires.
  for (int i = 0; i < 12; ++i) {
    fx.feed(0, 16, kDeadZone);
    fx.publish();
  }
  EXPECT_TRUE(fx.ctl->actions().empty());
  EXPECT_EQ(fx.ctl->admit_permille(), 1000u);
}

TEST(ControllerTest, SquareWaveLoadNeverOscillates) {
  AdmissionControl gate({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  Fx fx(base_cfg(), 1, &gate);
  // A square wave flipping every window: each flip resets the opposing
  // streak, so with violate_windows = 2 the controller never acts.
  for (int i = 0; i < 12; ++i) {
    fx.feed(0, 16, i % 2 == 0 ? kSlow : kFast);
    fx.publish();
  }
  EXPECT_TRUE(fx.ctl->actions().empty());
}

TEST(ControllerTest, CooldownSpacesClusterActions) {
  AdmissionControl gate({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  ControllerConfig cfg = base_cfg();
  cfg.violate_windows = 1;
  cfg.cooldown = SimTime::milliseconds(10);  // two 5 ms windows
  Fx fx(cfg, 1, &gate);
  for (int i = 0; i < 3; ++i) {
    fx.feed(0, 16, kSlow);
    fx.publish();
  }
  // Windows close at 5/10/15 ms; the 10 ms one is inside the cooldown.
  ASSERT_EQ(fx.ctl->actions().size(), 2u);
  EXPECT_EQ(fx.ctl->actions()[0].at.ns(), SimTime::milliseconds(5).ns());
  EXPECT_EQ(fx.ctl->actions()[1].at.ns(), SimTime::milliseconds(15).ns());
}

// ---------------------------------------------------------------------------
// Controller: demotion / probation / silence

ControllerConfig demote_cfg() {
  ControllerConfig cfg = base_cfg();
  cfg.violate_windows = 100;  // mute the cluster ladder: isolate demotion
  cfg.demote_windows = 2;
  cfg.demote_latency_pct = 150;  // 7.5 ms limit
  cfg.max_demoted = 1;
  cfg.demote_hold = SimTime::milliseconds(20);
  return cfg;
}

TEST(ControllerTest, DemotesSlowNodeAndPromotesAfterProbation) {
  Fx fx(demote_cfg(), 2);
  // Node 1 runs past the demotion limit for two consecutive windows.
  for (int w = 0; w < 2; ++w) {
    fx.feed(0, 16, kFast);
    fx.feed(1, 16, kSlow);
    fx.publish();
  }
  EXPECT_EQ(fx.demote_calls, std::vector<int>{1});
  EXPECT_TRUE(fx.ctl->is_demoted(1));
  EXPECT_FALSE(fx.ctl->is_demoted(0));
  EXPECT_EQ(fx.ctl->demoted_count(), 1);
  // Probation: with traffic shifted away the node is silent; promotion
  // comes from the hold timer, 20 ms after the 10 ms demotion.
  for (int w = 0; w < 4; ++w) {
    fx.feed(0, 16, kFast);
    fx.publish();
  }
  EXPECT_EQ(fx.promote_calls, std::vector<int>{1});
  EXPECT_FALSE(fx.ctl->is_demoted(1));
  const std::vector<Controller::Action>& acts = fx.ctl->actions();
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[0].kind, Kind::kDemote);
  EXPECT_EQ(acts[0].at.ns(), SimTime::milliseconds(10).ns());
  EXPECT_EQ(acts[1].kind, Kind::kPromote);
  EXPECT_EQ(acts[1].at.ns(), SimTime::milliseconds(30).ns());
}

TEST(ControllerTest, MaxDemotedBoundsSimultaneousDemotions) {
  Fx fx(demote_cfg(), 2);
  for (int w = 0; w < 3; ++w) {
    fx.feed(0, 16, kSlow);
    fx.feed(1, 16, kSlow);
    fx.publish();
  }
  // Both qualify; the cap admits one (first watch order), the other waits.
  EXPECT_EQ(fx.ctl->demoted_count(), 1);
  EXPECT_EQ(fx.demote_calls, std::vector<int>{0});
}

TEST(ControllerTest, SilentNodeIsDemotedOnlyUnderOfferedLoad) {
  Fx fx(demote_cfg(), 2);
  // Establish delivery history for node 1 (below min_window_samples, so
  // its own window carries no latency signal).
  fx.feed(0, 16, kFast);
  fx.feed(1, 4, kFast);
  fx.publish();
  EXPECT_TRUE(fx.ctl->actions().empty());
  // Node 1 goes silent while the cluster keeps delivering under offered
  // load: the stall signature. Two windows -> demote, value 0.
  for (int w = 0; w < 2; ++w) {
    fx.feed(0, 16, kFast);
    fx.publish();
  }
  ASSERT_EQ(fx.ctl->actions().size(), 1u);
  EXPECT_EQ(fx.ctl->actions()[0].kind, Kind::kDemote);
  EXPECT_EQ(fx.ctl->actions()[0].node, 1);
  EXPECT_EQ(fx.ctl->actions()[0].value, 0u);
}

TEST(ControllerTest, NoSilenceDemotionWithoutOfferedLoad) {
  Fx fx(demote_cfg(), 2);
  fx.feed(0, 16, kFast);
  fx.feed(1, 4, kFast);
  fx.publish();
  // Cluster windows keep sample counts up (late deliveries draining) but
  // `slo.offered` stops moving — the end-of-run shape. A silent node here
  // is idle, not stalled: no demotion, however many windows pass.
  for (int w = 0; w < 6; ++w) {
    fx.feed_quiet(0, 16, kFast);
    fx.publish();
  }
  EXPECT_TRUE(fx.ctl->actions().empty());
}

// ---------------------------------------------------------------------------
// Determinism: identical fed windows -> byte-identical action logs

TEST(ControllerTest, ActionLogIsAReplayableRecord) {
  auto drive = [](Fx& fx) {
    for (int i = 0; i < 4; ++i) {
      fx.feed(0, 16, kSlow);
      fx.publish();
    }
    for (int i = 0; i < 4; ++i) {
      fx.feed(0, 16, kFast);
      fx.publish();
    }
  };
  AdmissionControl g1({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  AdmissionControl g2({AdmissionControl::ClassSpec{"bulk", 1'000, 4, true}});
  Fx a(base_cfg(), 1, &g1);
  Fx b(base_cfg(), 1, &g2);
  drive(a);
  drive(b);
  EXPECT_FALSE(a.ctl->action_log().empty());
  EXPECT_EQ(a.ctl->action_log(), b.ctl->action_log());
  // The log is line-per-action `<ns> <kind> <node> <value>`.
  EXPECT_EQ(a.ctl->action_log().substr(0, 21), "10000000 throttle -1 ");
}

}  // namespace
}  // namespace sv::control
