// Focused tests for the DR (data repartitioning) policies.
#include "vizapp/policy.h"

#include <gtest/gtest.h>

#include "vizapp/server.h"

namespace sv::viz {
namespace {

using namespace sv::literals;

constexpr std::uint64_t kImage = 16_MiB;

TEST(PolicyComputeTest, WithComputeNeverSmallerThanBandwidthBlock) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  for (double ups : {2.0, 2.5, 3.0, 3.25}) {
    const auto plain = block_for_update_rate(svia, ups, kImage);
    const auto with = block_for_update_rate_with_compute(
        svia, ups, kImage, virtual_microscope_compute());
    EXPECT_GE(with, plain) << "ups=" << ups;
  }
}

TEST(PolicyComputeTest, ComputeInfeasibleRateReturnsImage) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  // 16 MiB at 18 ns/B = ~302 ms/update; 3.5 updates/sec is impossible on a
  // single-threaded sink.
  EXPECT_EQ(block_for_update_rate_with_compute(svia, 3.5, kImage,
                                               virtual_microscope_compute()),
            kImage);
  // 3.25 is just feasible (the paper's panel-b ceiling).
  EXPECT_LT(block_for_update_rate_with_compute(svia, 3.25, kImage,
                                               virtual_microscope_compute()),
            kImage);
}

TEST(PolicyComputeTest, HandlingBoundGrowsBlocksNearCeiling) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  const auto b_low = block_for_update_rate_with_compute(
      svia, 2.0, kImage, virtual_microscope_compute());
  const auto b_high = block_for_update_rate_with_compute(
      svia, 3.25, kImage, virtual_microscope_compute());
  // Near the compute ceiling only a sliver of budget remains for
  // per-buffer handling, so blocks must be much larger.
  EXPECT_GT(b_high, b_low * 2);
}

TEST(PolicyComputeTest, ZeroComputeDelegatesToBandwidthPolicy) {
  const net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  EXPECT_EQ(block_for_update_rate_with_compute(tcp, 3.0, kImage,
                                               PerByteCost::zero()),
            block_for_update_rate(tcp, 3.0, kImage));
}

TEST(PolicyLatencyTest, MinBlockFloorRespected) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  // A bound that admits blocks between 1 KiB and 2 KiB: floor at 2 KiB
  // makes it infeasible.
  const auto b1k = block_for_latency_bound(
      svia, 100_us, 3, default_hop_overhead(svia), PerByteCost::zero(), 1024);
  ASSERT_GT(b1k, 0u);
  ASSERT_LT(b1k, 4096u);
  const auto floored = block_for_latency_bound(
      svia, 100_us, 3, default_hop_overhead(svia), PerByteCost::zero(),
      b1k + 1);
  EXPECT_EQ(floored, 0u);
}

TEST(PolicyLatencyTest, ComputeTightensTheBound) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  const auto without = block_for_latency_bound(
      svia, 500_us, 3, default_hop_overhead(svia));
  const auto with = block_for_latency_bound(
      svia, 500_us, 3, default_hop_overhead(svia),
      virtual_microscope_compute());
  EXPECT_LT(with, without);
}

TEST(PolicyLatencyTest, MoreHopsMeanSmallerBlocks) {
  const net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const auto h2 =
      block_for_latency_bound(tcp, 800_us, 2, default_hop_overhead(tcp));
  const auto h4 =
      block_for_latency_bound(tcp, 800_us, 4, default_hop_overhead(tcp));
  EXPECT_GT(h2, h4);
}

TEST(PolicyCapacityTest, OverheadLowersCapacityWhenItBinds) {
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  // At 8 KiB SocketVIA is wire-bound; a small overhead hides behind the
  // DMA time, a large one becomes the bottleneck.
  const double no_ovh = receiver_capacity_bps(svia, 8192, SimTime::zero());
  const double small_ovh =
      receiver_capacity_bps(svia, 8192, SimTime::microseconds(10));
  const double big_ovh =
      receiver_capacity_bps(svia, 8192, SimTime::microseconds(200));
  EXPECT_DOUBLE_EQ(no_ovh, small_ovh);
  EXPECT_GT(no_ovh, big_ovh);
}

class PolicyRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(PolicyRateSweep, BlocksMonotoneInRateForBothTransports) {
  const double ups = GetParam();
  for (auto transport :
       {net::Transport::kKernelTcp, net::Transport::kSocketVia}) {
    const net::CostModel model{
        net::CalibrationProfile::for_transport(transport)};
    const auto b = block_for_update_rate(model, ups, kImage);
    const auto b_next = block_for_update_rate(model, ups + 0.25, kImage);
    EXPECT_LE(b, b_next) << net::transport_name(transport) << " ups=" << ups;
    // Chosen block always delivers the required capacity (when feasible).
    if (b < kImage) {
      const double required = ups * static_cast<double>(kImage) * 1.15;
      EXPECT_GE(receiver_capacity_bps(model, b) + 1.0, required);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, PolicyRateSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                                           4.5, 5.0));

}  // namespace
}  // namespace sv::viz
