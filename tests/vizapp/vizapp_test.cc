#include "vizapp/server.h"

#include <gtest/gtest.h>

#include "vizapp/loadbalance.h"
#include "vizapp/policy.h"

namespace sv::viz {
namespace {

using namespace sv::literals;

// ---------- BlockedImage / GridImage ----------

TEST(BlockedImageTest, BlockCountAndSizes) {
  BlockedImage img(16_MiB, 256_KiB);
  EXPECT_EQ(img.block_count(), 64u);
  EXPECT_EQ(img.block_size(0), 256_KiB);
  EXPECT_EQ(img.block_size(63), 256_KiB);
  EXPECT_THROW((void)img.block_size(64), std::out_of_range);
}

TEST(BlockedImageTest, PartialFinalBlock) {
  BlockedImage img(1000, 300);
  EXPECT_EQ(img.block_count(), 4u);
  EXPECT_EQ(img.block_size(0), 300u);
  EXPECT_EQ(img.block_size(3), 100u);
}

TEST(BlockedImageTest, RangeLookup) {
  BlockedImage img(1000, 300);
  EXPECT_EQ(img.blocks_for_range(0, 1), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(img.blocks_for_range(250, 100),
            (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(img.blocks_for_range(900, 500), (std::vector<std::uint64_t>{3}));
  EXPECT_TRUE(img.blocks_for_range(2000, 10).empty());
  EXPECT_TRUE(img.blocks_for_range(0, 0).empty());
}

TEST(BlockedImageTest, RejectsZeroSizes) {
  EXPECT_THROW(BlockedImage(0, 10), std::invalid_argument);
  EXPECT_THROW(BlockedImage(10, 0), std::invalid_argument);
}

TEST(GridImageTest, ViewportBlocks) {
  GridImage img(4096, 4096, 1024, 1024);  // 4x4 blocks
  EXPECT_EQ(img.block_count(), 16u);
  // A viewport fully inside block (1,1).
  EXPECT_EQ(img.blocks_for_viewport(1100, 1100, 100, 100),
            (std::vector<std::uint64_t>{5}));
  // A viewport crossing 4 blocks (Figure 1's dotted rectangle).
  const auto ids = img.blocks_for_viewport(1000, 1000, 100, 100);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 4, 5}));
}

TEST(GridImageTest, OverfetchGrowsWithBlockSize) {
  // The same small viewport wastes more bytes with bigger blocks.
  GridImage small_blocks(4096, 4096, 256, 256);
  GridImage big_blocks(4096, 4096, 2048, 2048);
  const double small_waste = small_blocks.overfetch_ratio(1000, 1000, 64, 64);
  const double big_waste = big_blocks.overfetch_ratio(1000, 1000, 64, 64);
  EXPECT_GT(big_waste, small_waste * 10);
}

// ---------- query planning ----------

TEST(QueryTest, CompleteFetchesEverything) {
  BlockedImage img(16_MiB, 2_MiB);  // 8 blocks
  Query q{QueryType::kComplete, 0, 4};
  EXPECT_EQ(plan_query(img, q).size(), 8u);
  EXPECT_EQ(query_bytes(img, q), 16_MiB);
}

TEST(QueryTest, PartialFetchesOneBlock) {
  BlockedImage img(16_MiB, 2_MiB);
  Query q{QueryType::kPartial, 3, 4};
  EXPECT_EQ(plan_query(img, q), (std::vector<std::uint64_t>{3}));
  Query wrap{QueryType::kPartial, 11, 4};
  EXPECT_EQ(plan_query(img, wrap), (std::vector<std::uint64_t>{3}));
}

TEST(QueryTest, ZoomFetchesFourChunks) {
  BlockedImage img(16_MiB, 2_MiB);
  Query q{QueryType::kZoom, 6, 4};
  EXPECT_EQ(plan_query(img, q), (std::vector<std::uint64_t>{6, 7, 0, 1}));
  EXPECT_EQ(query_bytes(img, q), 8_MiB);
}

TEST(QueryTest, ZoomClampedToImage) {
  BlockedImage img(4_MiB, 2_MiB);  // only 2 blocks
  Query q{QueryType::kZoom, 0, 4};
  EXPECT_EQ(plan_query(img, q).size(), 2u);
}

// ---------- DR policies ----------

TEST(PolicyTest, ReceiverCapacitySaturates) {
  net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const double small = receiver_capacity_bps(tcp, 1460);
  const double big = receiver_capacity_bps(tcp, 64_KiB);
  EXPECT_GT(big, small);
  // Asymptote: the 510 Mbps receive-path bound (~63.7 MB/s).
  EXPECT_NEAR(big / 1e6, 62.0, 4.0);
}

TEST(PolicyTest, UpdateRatePolicyGrowsWithRate) {
  net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const auto b2 = block_for_update_rate(tcp, 2.0, 16_MiB);
  const auto b3 = block_for_update_rate(tcp, 3.0, 16_MiB);
  const auto b325 = block_for_update_rate(tcp, 3.25, 16_MiB);
  EXPECT_LT(b2, b3);
  EXPECT_LT(b3, b325);
  // Beyond capacity: TCP cannot sustain 3.75 updates/sec at any block size.
  EXPECT_EQ(block_for_update_rate(tcp, 3.75, 16_MiB), 16_MiB);
}

TEST(PolicyTest, SocketViaSustainsHigherRatesWithSmallerBlocks) {
  net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  net::CostModel svia{net::CalibrationProfile::socket_via()};
  const auto tcp_block = block_for_update_rate(tcp, 3.0, 16_MiB);
  const auto svia_block = block_for_update_rate(svia, 3.0, 16_MiB);
  EXPECT_LT(svia_block * 2, tcp_block);
  // SocketVIA still feasible at 4 updates/sec where TCP is not.
  EXPECT_LT(block_for_update_rate(svia, 4.0, 16_MiB), 16_MiB);
  EXPECT_EQ(block_for_update_rate(tcp, 4.0, 16_MiB), 16_MiB);
}

TEST(PolicyTest, LatencyBoundPolicy) {
  net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  net::CostModel svia{net::CalibrationProfile::socket_via()};
  // Figure 8: at a 100 us bound TCP drops out entirely; SocketVIA does not.
  EXPECT_EQ(block_for_latency_bound(tcp, 100_us, 4, 2_us), 0u);
  EXPECT_GT(block_for_latency_bound(svia, 100_us, 4, 2_us), 0u);
  // Larger bounds admit larger blocks.
  const auto b400 = block_for_latency_bound(tcp, 400_us, 4, 2_us);
  const auto b1000 = block_for_latency_bound(tcp, 1000_us, 4, 2_us);
  EXPECT_GT(b400, 0u);
  EXPECT_GT(b1000, b400);
}

// ---------- the pipeline end to end ----------

struct AppFixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 16};
  sockets::SocketFactory factory{&s, &cluster};
};

TEST(VizAppTest, CompleteQueryDeliversWholeImage) {
  AppFixture f;
  VizConfig cfg;
  cfg.image_bytes = 4_MiB;
  cfg.block_bytes = 256_KiB;
  VizApp app(&f.s, &f.cluster, &f.factory, cfg);
  app.start();
  SimTime done_at;
  f.s.spawn("client", [&] {
    app.submit(Query{QueryType::kComplete, 0, 4});
    auto done = app.wait_done();
    ASSERT_TRUE(done.has_value());
    done_at = done->second;
    app.close();
  });
  f.s.run();
  EXPECT_GT(done_at, SimTime::zero());
  // 4 MiB over a ~95 MB/s substrate: tens of milliseconds.
  EXPECT_LT(done_at, 200_ms);
}

TEST(VizAppTest, PartialQueryMuchFasterThanComplete) {
  AppFixture f;
  VizConfig cfg;
  cfg.image_bytes = 16_MiB;
  cfg.block_bytes = 256_KiB;
  VizApp app(&f.s, &f.cluster, &f.factory, cfg);
  app.start();
  SimTime complete_latency, partial_latency;
  f.s.spawn("client", [&] {
    const SimTime t0 = f.s.now();
    app.submit(Query{QueryType::kComplete, 0, 4});
    app.wait_done();
    complete_latency = f.s.now() - t0;
    const SimTime t1 = f.s.now();
    app.submit(Query{QueryType::kPartial, 5, 4});
    app.wait_done();
    partial_latency = f.s.now() - t1;
    app.close();
  });
  f.s.run();
  EXPECT_GT(complete_latency.ns(), partial_latency.ns() * 20);
}

TEST(VizAppTest, SocketViaFasterThanTcp) {
  auto run_one = [](net::Transport tr) {
    AppFixture f;
    VizConfig cfg;
    cfg.transport = tr;
    cfg.image_bytes = 8_MiB;
    cfg.block_bytes = 64_KiB;
    VizApp app(&f.s, &f.cluster, &f.factory, cfg);
    app.start();
    SimTime latency;
    f.s.spawn("client", [&] {
      const SimTime t0 = f.s.now();
      app.submit(Query{QueryType::kComplete, 0, 4});
      app.wait_done();
      latency = f.s.now() - t0;
      app.close();
    });
    f.s.run();
    return latency;
  };
  const SimTime tcp = run_one(net::Transport::kKernelTcp);
  const SimTime svia = run_one(net::Transport::kSocketVia);
  EXPECT_LT(svia, tcp);
  // Bandwidth-bound: roughly the 510-vs-763 Mbps ratio.
  const double ratio = tcp.us() / svia.us();
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.2);
}

TEST(VizAppTest, LinearComputationCapsUpdateRate) {
  // With 18 ns/B at the single viz filter, one 16 MB update costs ~302 ms
  // of compute: the system cannot exceed ~3.3 updates/sec (the paper's
  // 3.25 ceiling in Figures 7b/8b).
  AppFixture f;
  VizConfig cfg;
  cfg.image_bytes = 16_MiB;
  cfg.block_bytes = 256_KiB;
  cfg.viz_compute = virtual_microscope_compute();
  cfg.stage_compute = virtual_microscope_compute();
  VizApp app(&f.s, &f.cluster, &f.factory, cfg);
  app.start();
  const int kQueries = 6;
  SimTime total;
  f.s.spawn("client", [&] {
    for (int i = 0; i < kQueries; ++i) {
      app.submit(Query{QueryType::kComplete, 0, 4});
    }
    for (int i = 0; i < kQueries; ++i) app.wait_done();
    total = f.s.now();
    app.close();
  });
  f.s.run();
  const double rate = kQueries / total.sec();
  EXPECT_LT(rate, 3.5);
  EXPECT_GT(rate, 2.5);
}

TEST(VizAppTest, PayloadsSurviveThePipeline) {
  // Real pixel bytes generated at the repositories must arrive intact at
  // the visualization filter through three transport hops and the
  // demand-driven schedulers.
  AppFixture f;
  VizConfig cfg;
  cfg.image_bytes = 2_MiB;
  cfg.block_bytes = 128_KiB;  // 16 blocks
  cfg.materialize_payloads = true;
  VizApp app(&f.s, &f.cluster, &f.factory, cfg);
  app.start();
  f.s.spawn("client", [&] {
    app.submit(Query{QueryType::kComplete, 0, 4});
    app.wait_done();
    app.submit(Query{QueryType::kZoom, 3, 4});
    app.wait_done();
    app.close();
  });
  f.s.run();
  ASSERT_NE(app.viz_filter(), nullptr);
  EXPECT_EQ(app.viz_filter()->payloads_verified(), 20u);  // 16 + 4
  EXPECT_EQ(app.viz_filter()->payload_mismatches(), 0u);
  EXPECT_EQ(app.viz_filter()->bytes_drawn(), 2_MiB + 4 * 128_KiB);
}

TEST(VizAppTest, RejectsTooSmallCluster) {
  sim::Simulation s;
  net::Cluster cluster(&s, 5);
  sockets::SocketFactory factory(&s, &cluster);
  VizConfig cfg;  // needs 10 nodes
  EXPECT_THROW(VizApp(&s, &cluster, &factory, cfg), std::invalid_argument);
}

// ---------- load balancing (Figures 10/11 machinery) ----------

TEST(LoadBalanceTest, HomogeneousRunMatchesComputeBound) {
  LoadBalanceConfig cfg;
  cfg.total_bytes = 4_MiB;
  cfg.block_bytes = 2_KiB;
  const auto r = run_load_balance(cfg);
  // 4 MiB * 18 ns/B / 3 workers = ~25 ms lower bound.
  EXPECT_GT(r.exec_time, 24_ms);
  EXPECT_LT(r.exec_time, 45_ms);
  EXPECT_EQ(r.blocks_per_worker.size(), 3u);
  const auto total = r.blocks_per_worker[0] + r.blocks_per_worker[1] +
                     r.blocks_per_worker[2];
  EXPECT_EQ(total, 4_MiB / 2_KiB);
}

TEST(LoadBalanceTest, SlowNodeServiceTimeScalesWithFactorAndBlock) {
  LoadBalanceConfig cfg;
  cfg.total_bytes = 2_MiB;
  cfg.policy = dc::SchedPolicy::kRoundRobin;
  cfg.slow_worker = 1;

  cfg.transport = net::Transport::kKernelTcp;
  cfg.block_bytes = 16_KiB;
  cfg.slow_factor = 4;
  const auto tcp = run_load_balance(cfg);

  cfg.transport = net::Transport::kSocketVia;
  cfg.block_bytes = 2_KiB;
  const auto svia = run_load_balance(cfg);

  // Figure 10's mechanism: the balancer's blindness window is the slow
  // node's per-block service time, ~8x smaller with SocketVIA's 2 KB
  // blocks than with TCP's 16 KB blocks.
  ASSERT_GT(tcp.slow_service_times.count(), 0u);
  ASSERT_GT(svia.slow_service_times.count(), 0u);
  const double ratio =
      tcp.slow_service_times.mean() / svia.slow_service_times.mean();
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 11.0);
}

TEST(LoadBalanceTest, DemandDrivenBeatsRoundRobinWithSlowNode) {
  LoadBalanceConfig cfg;
  cfg.total_bytes = 4_MiB;
  cfg.block_bytes = 2_KiB;
  cfg.slow_worker = 0;
  cfg.slow_factor = 8;

  cfg.policy = dc::SchedPolicy::kRoundRobin;
  const auto rr = run_load_balance(cfg);
  cfg.policy = dc::SchedPolicy::kDemandDriven;
  const auto dd = run_load_balance(cfg);

  EXPECT_LT(dd.exec_time.ns(), rr.exec_time.ns());
  // DD routes most blocks away from the slow worker; RR cannot.
  EXPECT_LT(dd.blocks_per_worker[0] * 2, rr.blocks_per_worker[0]);
}

TEST(LoadBalanceTest, StochasticSlowdownDeterministicPerSeed) {
  LoadBalanceConfig cfg;
  cfg.total_bytes = 1_MiB;
  cfg.block_bytes = 2_KiB;
  cfg.slow_worker = 0;
  cfg.slow_factor = 4;
  cfg.slow_probability = 0.5;
  cfg.seed = 42;
  const auto a = run_load_balance(cfg);
  const auto b = run_load_balance(cfg);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.blocks_per_worker, b.blocks_per_worker);
}

TEST(LoadBalanceTest, ExecTimeGrowsWithSlowProbability) {
  LoadBalanceConfig cfg;
  cfg.total_bytes = 2_MiB;
  cfg.block_bytes = 2_KiB;
  cfg.slow_worker = 0;
  cfg.slow_factor = 8;
  cfg.seed = 7;
  cfg.slow_probability = 0.1;
  const auto low = run_load_balance(cfg);
  cfg.slow_probability = 0.9;
  const auto high = run_load_balance(cfg);
  EXPECT_GT(high.exec_time.ns(), low.exec_time.ns());
}

}  // namespace
}  // namespace sv::viz
