// TCP loss recovery: RTO expiry, exponential backoff, fast retransmit on
// three duplicate ACKs, and the property that a lossy transfer still
// delivers every byte in order — deterministically per seed.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "net/fault.h"
#include "tcpstack/tcp.h"

namespace sv::tcpstack {
namespace {

using namespace sv::literals;

struct Fixture {
  explicit Fixture(const net::FaultPlan& plan, std::uint64_t seed = 1)
      : cluster(&s, 2) {
    cluster.install_faults(plan, seed);
    stack0 = std::make_unique<TcpStack>(&s, &cluster.node(0));
    stack1 = std::make_unique<TcpStack>(&s, &cluster.node(1));
  }
  sim::Simulation s;
  net::Cluster cluster;
  std::unique_ptr<TcpStack> stack0;
  std::unique_ptr<TcpStack> stack1;
};

TEST(TcpLossTest, RtoExpiryRetransmitsLoneSegment) {
  // Drop the very first data segment on 0->1. Nothing else is in flight,
  // so no dup ACKs can arrive: recovery must come from the RTO timer.
  net::FaultPlan plan;
  plan.links[{0, 1}].drop_frames = {0};
  Fixture f(plan);
  std::shared_ptr<TcpConnection> sender;
  SimTime delivered;
  f.s.spawn("app", [&] {
    auto [a, b] = TcpStack::connect(*f.stack0, *f.stack1);
    sender = a;
    f.s.spawn("rx", [&, b] {
      EXPECT_EQ(b->recv_exact(1000), 1000u);
      delivered = f.s.now();
      EXPECT_EQ(b->recv(1), 0u);  // EOF
    });
    a->send(1000);
    a->close();
  });
  f.s.run();
  EXPECT_EQ(sender->rto_expirations(), 1u);
  EXPECT_GE(sender->segments_retransmitted(), 1u);
  EXPECT_EQ(sender->fast_retransmits(), 0u);
  // The byte could not arrive before one full RTO had elapsed.
  EXPECT_GE(delivered, TcpOptions{}.rto_initial);
}

TEST(TcpLossTest, RtoBacksOffExponentiallyAndResetsOnAck) {
  // Drop the first three transmissions of the segment: recovery takes
  // rto + 2*rto + 4*rto of timer waits before the fourth copy lands.
  net::FaultPlan plan;
  plan.links[{0, 1}].drop_frames = {0, 1, 2};
  Fixture f(plan);
  std::shared_ptr<TcpConnection> sender;
  SimTime delivered;
  f.s.spawn("app", [&] {
    auto [a, b] = TcpStack::connect(*f.stack0, *f.stack1);
    sender = a;
    f.s.spawn("rx", [&, b] {
      EXPECT_EQ(b->recv_exact(1000), 1000u);
      delivered = f.s.now();
      b->recv(1);
    });
    a->send(1000);
    // Close only after delivery so the FIN is not one of frames 0-2.
    while (f.s.now() < delivered || delivered == SimTime::zero()) {
      f.s.delay(100_us);
    }
    a->close();
  });
  f.s.run();
  const SimTime rto = TcpOptions{}.rto_initial;
  EXPECT_EQ(sender->rto_expirations(), 3u);
  EXPECT_EQ(sender->segments_retransmitted(), 3u);
  EXPECT_GE(delivered, rto * 7);  // 1 + 2 + 4 RTOs of waiting
  // ACK progress resets the backoff for the next timer arm.
  EXPECT_EQ(sender->current_rto(), rto);
}

TEST(TcpLossTest, FastRetransmitAfterThreeDupAcks) {
  // Drop the first of eight MSS-sized segments; the seven that follow
  // arrive out of order and trigger immediate dup ACKs, so the hole is
  // repaired by fast retransmit long before the RTO fires.
  net::FaultPlan plan;
  plan.links[{0, 1}].drop_frames = {0};
  Fixture f(plan);
  TcpOptions opt;
  opt.nagle = false;  // keep all eight segments in flight
  const std::uint64_t total = 8ull * opt.mss;
  std::shared_ptr<TcpConnection> sender;
  std::shared_ptr<TcpConnection> receiver;
  SimTime delivered;
  f.s.spawn("app", [&] {
    auto [a, b] = TcpStack::connect(*f.stack0, *f.stack1, opt);
    sender = a;
    receiver = b;
    f.s.spawn("rx", [&, b, total] {
      EXPECT_EQ(b->recv_exact(total), total);
      delivered = f.s.now();
      b->recv(1);
    });
    a->send(total);
    a->close();
  });
  f.s.run();
  EXPECT_EQ(sender->fast_retransmits(), 1u);
  EXPECT_EQ(sender->rto_expirations(), 0u);
  EXPECT_GE(sender->dup_acks_received(), 3u);
  EXPECT_GE(receiver->ooo_segments_received(), 3u);
  EXPECT_EQ(sender->segments_retransmitted(), 1u);
  // Dup-ACK recovery beats the timer by an order of magnitude.
  EXPECT_LT(delivered, TcpOptions{}.rto_initial);
}

TEST(TcpLossTest, LossFreeRunsKeepCountersAtZero) {
  Fixture f(net::FaultPlan::none());
  std::shared_ptr<TcpConnection> sender;
  f.s.spawn("app", [&] {
    auto [a, b] = TcpStack::connect(*f.stack0, *f.stack1);
    sender = a;
    f.s.spawn("rx", [b] {
      b->recv_exact(256 * 1024);
      b->recv(1);
    });
    for (int i = 0; i < 4; ++i) a->send(64 * 1024);
    a->close();
  });
  f.s.run();
  EXPECT_EQ(sender->segments_retransmitted(), 0u);
  EXPECT_EQ(sender->rto_expirations(), 0u);
  EXPECT_EQ(sender->fast_retransmits(), 0u);
  EXPECT_EQ(sender->dup_acks_received(), 0u);
}

// Property test: across seeds, a 5%-lossy transfer delivers exactly the
// bytes sent (the stream abstraction holds), recovery counters are
// consistent with the injected drops, and the run replays bit-identically.
TEST(TcpLossTest, LossyTransferDeliversAllBytesAcrossSeeds) {
  const std::uint64_t total = 32ull * 8192;
  auto run = [total](std::uint64_t seed) {
    Fixture f(net::FaultPlan::uniform_loss(0.05), seed);
    std::shared_ptr<TcpConnection> sender;
    std::shared_ptr<TcpConnection> receiver;
    f.s.spawn("app", [&] {
      auto [a, b] = TcpStack::connect(*f.stack0, *f.stack1);
      sender = a;
      receiver = b;
      f.s.spawn("rx", [b, total] {
        EXPECT_EQ(b->recv_exact(total), total);
        EXPECT_EQ(b->recv(1), 0u);  // clean EOF after a lossy stream
      });
      for (int i = 0; i < 32; ++i) a->send(8192);
      a->close();
    });
    f.s.run();
    EXPECT_EQ(receiver->bytes_received(), total) << "seed " << seed;
    EXPECT_EQ(sender->bytes_sent(), total);
    const auto* inj = f.cluster.fault_injector();
    EXPECT_NE(inj, nullptr);
    if (inj != nullptr) {
      EXPECT_GT(inj->frames_dropped(), 0u) << "seed " << seed;
    }
    // Every recovery is a retransmission: at least one per dropped data
    // segment burst (dropped ACKs recover for free via later cumulative
    // ACKs, so >= is the strongest valid bound).
    EXPECT_GT(sender->segments_retransmitted() +
                  receiver->segments_retransmitted(),
              0u);
    return f.s.engine().trace_digest();
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto digest = run(seed);
    EXPECT_EQ(digest, run(seed)) << "replay diverged for seed " << seed;
  }
}

}  // namespace
}  // namespace sv::tcpstack
