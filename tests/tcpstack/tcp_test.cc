#include "tcpstack/tcp.h"

#include <gtest/gtest.h>

namespace sv::tcpstack {
namespace {

using namespace sv::literals;

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 2};
  TcpStack stack0{&s, &cluster.node(0)};
  TcpStack stack1{&s, &cluster.node(1)};
};

TEST(TcpTest, ConnectHandshakeCostsTime) {
  Fixture f;
  SimTime t;
  f.s.spawn("client", [&] {
    TcpStack::connect(f.stack0, f.stack1);
    t = f.s.now();
  });
  f.s.run();
  EXPECT_GT(t, 50_us);   // ~1.5 RTT of ~32 us fixed path each way
  EXPECT_LT(t, 300_us);
}

TEST(TcpTest, BytesDeliveredEndToEnd) {
  Fixture f;
  std::uint64_t got = 0;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    f.s.spawn("rx", [&, srv] { got = srv->recv_exact(10'000); });
    c->send(10'000);
    c->close();
  });
  f.s.run();
  EXPECT_EQ(got, 10'000u);
}

TEST(TcpTest, SegmentationAtMss) {
  Fixture f;
  std::shared_ptr<TcpConnection> client, server;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    client = c;
    server = srv;
    f.s.spawn("rx", [&, srv] { srv->recv_exact(14'600); });
    c->send(14'600);  // exactly 10 MSS
  });
  f.s.run();
  EXPECT_EQ(client->segments_sent(), 10u);
  EXPECT_EQ(server->bytes_received(), 14'600u);
}

TEST(TcpTest, SmallMessageLatencyMatchesCalibration) {
  Fixture f;
  SimTime delivered;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    const SimTime start = f.s.now();
    f.s.spawn("rx", [&, srv, start] {
      srv->recv_exact(4);
      delivered = f.s.now() - start;
    });
    c->send(4);
  });
  f.s.run();
  // Paper: ~47.5 us one-way for small messages over kernel TCP.
  EXPECT_NEAR(delivered.us(), 47.5, 4.0);
}

TEST(TcpTest, StreamingBandwidthNearCalibratedPeak) {
  Fixture f;
  const std::uint64_t kTotal = 4_MiB;
  SimTime elapsed;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    const SimTime start = f.s.now();
    f.s.spawn("rx", [&, srv, start] {
      srv->recv_exact(kTotal);
      elapsed = f.s.now() - start;
    });
    for (int i = 0; i < 64; ++i) c->send(kTotal / 64);
  });
  f.s.run();
  const double mbps = throughput_mbps(kTotal, elapsed);
  EXPECT_NEAR(mbps, 510.0, 30.0);  // paper's TCP peak
}

TEST(TcpTest, DelayedAckCoalesces) {
  Fixture f;
  std::shared_ptr<TcpConnection> client, server;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    client = c;
    server = srv;
    f.s.spawn("rx", [&, srv] { srv->recv_exact(14'600); });
    c->send(14'600);  // 10 segments
  });
  f.s.run();
  // With ack-every-2-segments, 10 segments need ~5 ACKs, not 10.
  EXPECT_LE(server->acks_sent(), 6u);
  EXPECT_GE(server->acks_sent(), 5u);
}

TEST(TcpTest, DelayedAckTimerFlushesOddSegment) {
  Fixture f;
  std::shared_ptr<TcpConnection> client, server;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    client = c;
    server = srv;
    f.s.spawn("rx", [&, srv] { srv->recv_exact(100); });
    c->send(100);  // single segment -> delayed ACK path
  });
  f.s.run();
  EXPECT_EQ(server->acks_sent(), 1u);  // timer fired
}

TEST(TcpTest, NagleHoldsSmallSegmentUntilAck) {
  Fixture f;
  std::shared_ptr<TcpConnection> client, server;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    client = c;
    server = srv;
    f.s.spawn("rx", [&, srv] { srv->recv_exact(200); });
    c->send(100);
    c->send(100);  // queued while 1st is unacked; must coalesce, not race
  });
  f.s.run();
  // Nagle: the 2nd write must NOT become its own immediate segment; it is
  // held and sent after the first is ACKed (or merged).
  EXPECT_LE(client->segments_sent(), 2u);
  EXPECT_EQ(server->bytes_received(), 200u);
}

TEST(TcpTest, NoNagleSendsImmediately) {
  Fixture f;
  std::shared_ptr<TcpConnection> client, server;
  TcpOptions opt;
  opt.nagle = false;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1, opt);
    client = c;
    server = srv;
    f.s.spawn("rx", [&, srv] { srv->recv_exact(200); });
    c->send(100);
    c->send(100);
  });
  f.s.run();
  EXPECT_EQ(server->bytes_received(), 200u);
}

TEST(TcpTest, SendBufferBackpressure) {
  Fixture f;
  TcpOptions opt;
  opt.send_buffer = 8 * 1024;
  opt.recv_buffer = 8 * 1024;
  SimTime first_sends_done, all_sends_done;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1, opt);
    f.s.spawn("rx", [&, srv] {
      f.s.delay(50_ms);  // lazy reader forces the window shut
      srv->recv_exact(64 * 1024);
    });
    c->send(8 * 1024);
    first_sends_done = f.s.now();
    for (int i = 0; i < 7; ++i) c->send(8 * 1024);
    all_sends_done = f.s.now();
  });
  f.s.run();
  // Later sends must have blocked until the reader started draining.
  EXPECT_GE(all_sends_done, 50_ms);
  EXPECT_LT(first_sends_done, 1_ms);
}

TEST(TcpTest, CloseDeliversEofAfterData) {
  Fixture f;
  std::uint64_t got = 0;
  std::uint64_t eof_read = 99;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    f.s.spawn("rx", [&, srv] {
      got = srv->recv_exact(5000);
      eof_read = srv->recv(100);  // must be 0 (clean EOF)
    });
    c->send(5000);
    c->close();
  });
  f.s.run();
  EXPECT_EQ(got, 5000u);
  EXPECT_EQ(eof_read, 0u);
}

TEST(TcpTest, SendAfterCloseThrows) {
  Fixture f;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    c->close();
    EXPECT_THROW(c->send(10), std::logic_error);
  });
  f.s.run();
}

TEST(TcpTest, RecvPartialReturnsAvailable) {
  Fixture f;
  std::uint64_t first = 0;
  f.s.spawn("app", [&] {
    auto [c, srv] = TcpStack::connect(f.stack0, f.stack1);
    f.s.spawn("rx", [&, srv] {
      first = srv->recv(1'000'000);  // asks for more than will arrive
    });
    c->send(500);
  });
  f.s.run();
  EXPECT_GT(first, 0u);
  EXPECT_LE(first, 500u);
}

TEST(TcpTest, TwoConnectionsShareNodeResources) {
  // Two parallel TCP streams into one node should take roughly twice as
  // long as one (receiver protocol path is the bottleneck and is shared).
  Fixture f;
  const std::uint64_t kTotal = 1_MiB;
  SimTime one_stream, two_streams;
  {
    sim::Simulation s;
    net::Cluster cl(&s, 3);
    TcpStack a(&s, &cl.node(0)), b(&s, &cl.node(1)), dst(&s, &cl.node(2));
    SimTime done;
    s.spawn("app", [&] {
      auto [c, srv] = TcpStack::connect(a, dst);
      const SimTime start = s.now();
      s.spawn("rx", [&, srv, start] {
        srv->recv_exact(kTotal);
        done = s.now() - start;
      });
      for (int i = 0; i < 32; ++i) c->send(kTotal / 32);
    });
    s.run();
    one_stream = done;
  }
  {
    sim::Simulation s;
    net::Cluster cl(&s, 3);
    TcpStack a(&s, &cl.node(0)), b(&s, &cl.node(1)), dst(&s, &cl.node(2));
    SimTime done0, done1;
    s.spawn("app0", [&] {
      auto [c, srv] = TcpStack::connect(a, dst);
      const SimTime start = s.now();
      s.spawn("rx0", [&, srv, start] {
        srv->recv_exact(kTotal);
        done0 = s.now() - start;
      });
      for (int i = 0; i < 32; ++i) c->send(kTotal / 32);
    });
    s.spawn("app1", [&] {
      auto [c, srv] = TcpStack::connect(b, dst);
      const SimTime start = s.now();
      s.spawn("rx1", [&, srv, start] {
        srv->recv_exact(kTotal);
        done1 = s.now() - start;
      });
      for (int i = 0; i < 32; ++i) c->send(kTotal / 32);
    });
    s.run();
    two_streams = std::max(done0, done1);
  }
  EXPECT_GT(two_streams.ns(), one_stream.ns() * 17 / 10);
  EXPECT_LT(two_streams.ns(), one_stream.ns() * 25 / 10);
}

}  // namespace
}  // namespace sv::tcpstack
