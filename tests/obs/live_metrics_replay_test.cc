// Live metric snapshots replay byte-identically (DESIGN.md §15): a seeded
// open-loop run with `--metrics-every`-style live snapshots enabled writes
// numbered `<metrics-out>.NNNN` registry dumps on a sim-time cadence. The
// snapshot cadence, the registry contents at each publish, and the JSON
// serialisation are all deterministic, so two same-seed runs must produce
// the same file set with the same bytes — the golden contract CI's
// artifact diffing relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/openloop.h"

namespace sv::harness {
namespace {

OpenLoopConfig small_config(const std::string& metrics_path) {
  OpenLoopConfig cfg;
  cfg.transport = net::Transport::kSocketVia;
  cfg.cluster_nodes = 4;
  cfg.topology = net::TopologySpec::single_crossbar();
  cfg.seed = 13;
  cfg.clients = 1'000;
  cfg.arrivals.rate_per_sec = 800.0;
  cfg.update_bytes = 512;
  cfg.fanout = 2;
  cfg.duration = SimTime::milliseconds(40);
  cfg.obs.metrics_path = metrics_path;
  cfg.obs.metrics_every_ms = 5;
  return cfg;
}

std::string numbered(const std::string& base, std::uint64_t seq) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%04llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

/// Reads a whole file; empty optional-style "" + ok=false when absent.
bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Collects the numbered snapshot series for `base`, in sequence order.
std::vector<std::string> collect_series(const std::string& base) {
  std::vector<std::string> out;
  for (std::uint64_t seq = 0;; ++seq) {
    std::string content;
    if (!read_file(numbered(base, seq), &content)) break;
    out.push_back(std::move(content));
    std::remove(numbered(base, seq).c_str());  // keep the test re-runnable
  }
  return out;
}

TEST(LiveMetricsReplay, NumberedSnapshotsAreByteIdenticalAcrossReplays) {
  const std::string base_a = "live_metrics_replay_a.json";
  const std::string base_b = "live_metrics_replay_b.json";
  const OpenLoopResult ra = run_open_loop(small_config(base_a));
  const OpenLoopResult rb = run_open_loop(small_config(base_b));
  ASSERT_GT(ra.delivered, 0u);
  EXPECT_EQ(ra.trace_digest, rb.trace_digest)
      << "live snapshots must not perturb the schedule between replays";

  const std::vector<std::string> sa = collect_series(base_a);
  const std::vector<std::string> sb = collect_series(base_b);
  // 40 ms of traffic at a 5 ms cadence: the pump publishes while events
  // remain, so the series covers the run (at least the traffic phase) and
  // terminates with the drain instead of ticking forever.
  EXPECT_GE(sa.size(), 8u);
  EXPECT_LE(sa.size(), 64u);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], sb[i]) << "snapshot " << i << " diverged";
    EXPECT_NE(sa[i].find("\"counters\""), std::string::npos);
  }
  // Later snapshots see strictly more delivered traffic than the first:
  // the series is live, not a repeated final dump.
  EXPECT_NE(sa.front(), sa.back());

  // The post-mortem file still lands, and matches across replays too.
  std::string fa;
  std::string fb;
  ASSERT_TRUE(read_file(base_a, &fa));
  ASSERT_TRUE(read_file(base_b, &fb));
  EXPECT_EQ(fa, fb);
  std::remove(base_a.c_str());
  std::remove(base_b.c_str());
}

TEST(LiveMetricsReplay, NoLiveSnapshotsWithoutOptIn) {
  // metrics_every_ms = 0 (the default): no pump, no numbered files.
  const std::string base = "live_metrics_off.json";
  OpenLoopConfig cfg = small_config(base);
  cfg.obs.metrics_every_ms = 0;
  const OpenLoopResult r = run_open_loop(cfg);
  ASSERT_GT(r.delivered, 0u);
  std::string content;
  EXPECT_FALSE(read_file(numbered(base, 0), &content));
  ASSERT_TRUE(read_file(base, &content));  // the final dump still writes
  std::remove(base.c_str());
}

}  // namespace
}  // namespace sv::harness
