// Golden-trace regression tests (DESIGN.md §9).
//
// Each scenario runs a small fixed-seed simulation with the tracer on and
// diffs the canonical trace text byte-for-byte against a checked-in golden
// file under tests/obs/golden/. Because tracing is passive and the sim is
// deterministic, any divergence means observable behaviour changed: a cost
// model constant, an event ordering, or the instrumentation itself. The
// failure report pinpoints the first diverging line so the reviewer can see
// *what* moved, not just that something did.
//
// Regenerating goldens after an intentional behaviour change:
//   ./build/tests/golden_trace_test --update-goldens
//
// This binary has its own main() (it cannot link gtest_main) so it can
// strip the --update-goldens flag before GoogleTest parses the rest.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/cluster.h"
#include "net/fault.h"
#include "obs/trace.h"
#include "sockets/factory.h"

// With SV_TRACE=OFF the tracer records nothing, so there is no trace to
// diff; the suite skips rather than failing on empty output.
#if SV_TRACE_ENABLED
#define SV_REQUIRE_TRACING() (void)0
#else
#define SV_REQUIRE_TRACING() GTEST_SKIP() << "tracer compiled out (SV_TRACE=OFF)"
#endif

#ifndef SV_GOLDEN_DIR
#error "SV_GOLDEN_DIR must point at tests/obs/golden"
#endif

namespace sv::obs {
namespace {

bool g_update_goldens = false;

std::string golden_path(const std::string& name) {
  return std::string(SV_GOLDEN_DIR) + "/" + name + ".txt";
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Diffs `actual` against the golden file for `name`. In update mode the
/// golden is rewritten instead and the test passes vacuously.
void check_against_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write golden " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "short write on golden " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << "missing golden " << path
      << " — run golden_trace_test --update-goldens to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;

  // Pinpoint the first diverging line for a readable failure.
  const std::vector<std::string> want = split_lines(expected);
  const std::vector<std::string> got = split_lines(actual);
  std::size_t i = 0;
  while (i < want.size() && i < got.size() && want[i] == got[i]) ++i;
  std::ostringstream msg;
  msg << "canonical trace diverges from " << path << " at line " << (i + 1)
      << ":\n";
  msg << "  golden: "
      << (i < want.size() ? want[i] : std::string("<end of file>")) << "\n";
  msg << "  actual: "
      << (i < got.size() ? got[i] : std::string("<end of trace>")) << "\n";
  if (want.size() != got.size()) {
    msg << "  (" << want.size() << " golden lines vs " << got.size()
        << " actual)\n";
  }
  msg << "If the change in behaviour is intentional, regenerate with "
         "--update-goldens and review the diff.";
  ADD_FAILURE() << msg.str();
}

// --- Scenarios -----------------------------------------------------------
// Keep these tiny: the goldens are reviewed by humans, so a few dozen
// events beat a few thousand. Everything is fixed-seed and single-run.

/// Fast-fidelity kernel-TCP ping-pong: 3 round trips of 4 KiB.
std::string trace_fast_tcp_pingpong() {
  sim::Simulation s;
  s.obs().tracer.enable();
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("echo", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    for (int i = 0; i < 3; ++i) {
      a->send(net::Message{.bytes = 4096});
      a->recv();
    }
    a->close_send();
  });
  s.run();
  return s.obs().tracer.canonical();
}

/// Detailed SocketVIA chunked stream: 4 messages of 24 KiB, multi-chunk.
std::string trace_svia_chunk_stream() {
  sim::Simulation s;
  s.obs().tracer.enable();
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) {
      }
    });
    for (int i = 0; i < 4; ++i) a->send(net::Message{.bytes = 24 * 1024});
    a->close_send();
  });
  s.run();
  return s.obs().tracer.canonical();
}

/// Fast-fidelity lossy transfer: uniform 5% frame loss at seed 7, so the
/// trace pins down the injector's drop pattern and the recovery delays.
std::string trace_lossy_transfer() {
  sim::Simulation s;
  s.obs().tracer.enable();
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(0.05), /*seed=*/7);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) {
      }
    });
    for (int i = 0; i < 8; ++i) a->send(net::Message{.bytes = 16 * 1024});
    a->close_send();
  });
  s.run();
  return s.obs().tracer.canonical();
}

TEST(GoldenTrace, FastTcpPingPong) {
  SV_REQUIRE_TRACING();
  check_against_golden("fast_tcp_pingpong", trace_fast_tcp_pingpong());
}

TEST(GoldenTrace, SocketViaChunkStream) {
  SV_REQUIRE_TRACING();
  check_against_golden("svia_chunk_stream", trace_svia_chunk_stream());
}

TEST(GoldenTrace, LossyTransfer) {
  SV_REQUIRE_TRACING();
  check_against_golden("lossy_transfer", trace_lossy_transfer());
}

TEST(GoldenTrace, TraceIsBitIdenticalAcrossRuns) {
  SV_REQUIRE_TRACING();
  // The goldens only make sense if the canonical form is reproducible in
  // the first place; this guards the determinism contract directly.
  EXPECT_EQ(trace_fast_tcp_pingpong(), trace_fast_tcp_pingpong());
  EXPECT_EQ(trace_lossy_transfer(), trace_lossy_transfer());
}

}  // namespace
}  // namespace sv::obs

int main(int argc, char** argv) {
  // Strip our flag before GoogleTest sees the command line.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      sv::obs::g_update_goldens = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
