// Conservation / consistency properties of the metrics registry
// (DESIGN.md §9): the counters different layers keep about the same traffic
// must agree with each other at quiescence, and the legacy accessors
// (SvSocket::stats(), FaultInjector::frames_*, TcpConnection counters) must
// report exactly the registry's numbers, since they are now views onto it.
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "net/cluster.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "sockets/factory.h"
#include "tcpstack/tcp.h"

namespace sv::obs {
namespace {

using namespace sv::literals;

/// Streams `iters` messages of `bytes` over a fast-fidelity transport and
/// returns with the simulation quiesced; sockets stay alive in `out`.
void run_fast_stream(sim::Simulation& s, net::Cluster& cluster,
                     net::Transport tr, int iters, std::uint64_t bytes,
                     sockets::SocketPair* out) {
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  s.spawn("app", [&, iters, bytes] {
    *out = factory.connect(0, 1, tr);
    auto& [a, b] = *out;
    s.spawn("rx", [&b] {
      while (b->recv()) {
      }
    });
    for (int i = 0; i < iters; ++i) a->send(net::Message{.bytes = bytes});
    a->close_send();
  });
  s.run();
}

TEST(MetricsInvariants, BytesConserveAtQuiesce) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketPair pair;
  run_fast_stream(s, cluster, net::Transport::kKernelTcp, 16, 8192, &pair);
  const Registry& reg = s.obs().registry;

  // Everything sent was received: no bytes vanish between the endpoints.
  const std::uint64_t sock_sent = reg.sum_counters("socket.bytes_sent{");
  const std::uint64_t sock_recv = reg.sum_counters("socket.bytes_received{");
  EXPECT_EQ(sock_sent, 16u * 8192u);
  EXPECT_EQ(sock_sent, sock_recv);

  // The fabric's frame accounting balances too (sent == received per run,
  // loss-free), and nothing is left on the wire at quiescence.
  EXPECT_EQ(reg.sum_counters("fabric.frame_bytes_sent{"),
            reg.sum_counters("fabric.frame_bytes_received{"));
  const Gauge* in_flight = reg.find_gauge("fabric.in_flight_bytes{link=0->1}");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(in_flight->value(), 0);       // drained
  EXPECT_GT(in_flight->max_value(), 0);   // but the wire was actually used
}

TEST(MetricsInvariants, HistogramCountsMatchCounters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketPair pair;
  run_fast_stream(s, cluster, net::Transport::kSocketVia, 24, 4096, &pair);
  const Registry& reg = s.obs().registry;

  // Every note_sent() observes the message-size histogram exactly once.
  const Histogram* sizes = reg.find_histogram("socket.msg_bytes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), reg.counter_value("socket.messages_sent"));
  EXPECT_EQ(sizes->sum(),
            static_cast<std::int64_t>(reg.sum_counters("socket.bytes_sent{")));

  // One latency observation per message the fabric delivered.
  const Histogram* lat = reg.find_histogram("fabric.msg_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), reg.counter_value("fabric.messages_received"));
  EXPECT_GT(lat->count(), 0u);
}

TEST(MetricsInvariants, RetransmissionsCoverInjectedDrops) {
  // Detailed tcpstack on a lossy link: every dropped data frame must be
  // made up by at least one retransmission on the same link, or the
  // receiver could never have completed the transfer.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(0.02), /*seed=*/1);
  tcpstack::TcpStack stack0(&s, &cluster.node(0));
  tcpstack::TcpStack stack1(&s, &cluster.node(1));
  const std::uint64_t msg = 64 * 1024;
  const int iters = 32;
  s.spawn("app", [&] {
    auto [a, b] = tcpstack::TcpStack::connect(stack0, stack1);
    s.spawn("rx", [&s, msg, iters, b] {
      b->recv_exact(msg * static_cast<std::uint64_t>(iters));
    });
    for (int i = 0; i < iters; ++i) a->send(msg);
    a->close();
  });
  s.run();
  const Registry& reg = s.obs().registry;

  const std::uint64_t dropped_data =
      reg.counter_value("fault.frames_dropped{link=0->1}");
  const std::uint64_t retx_data =
      reg.counter_value("tcpstack.segments_retransmitted{link=0->1}");
  EXPECT_GT(dropped_data, 0u) << "scenario must actually lose frames";
  EXPECT_GE(retx_data, dropped_data);

  // The injector's per-link breakdown sums to its aggregates.
  EXPECT_EQ(reg.sum_counters("fault.frames_seen{"),
            reg.counter_value("fault.frames_seen"));
  EXPECT_EQ(reg.sum_counters("fault.frames_dropped{"),
            reg.counter_value("fault.frames_dropped"));
}

// --- Old-accessor vs registry agreement (the PR2 unification) ------------
// Socket timeout counters used to be per-socket members while fault
// counters were per-link; both now live in the registry, and the legacy
// accessors forward. These tests pin the agreement on ablation_faults'
// default configuration (iters=64, 64 KiB messages, seed=1, loss=1%).

TEST(MetricsUnification, FaultAccessorsMatchRegistryOnAblationDefaults) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(0.01), /*seed=*/1);
  sockets::SocketPair pair;
  run_fast_stream(s, cluster, net::Transport::kKernelTcp, 64, 64 * 1024,
                  &pair);
  const Registry& reg = s.obs().registry;

  const net::FaultInjector* inj = cluster.fault_injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_GT(inj->frames_dropped(), 0u);
  EXPECT_EQ(inj->frames_seen(), reg.counter_value("fault.frames_seen"));
  EXPECT_EQ(inj->frames_dropped(), reg.counter_value("fault.frames_dropped"));
  EXPECT_EQ(inj->frames_delayed(), reg.counter_value("fault.frames_delayed"));

  // Socket-side accessors are registry views: summing stats() over both
  // endpoints reproduces the labelled counter families exactly.
  const sockets::SocketStats sa = pair.first->stats();
  const sockets::SocketStats sb = pair.second->stats();
  EXPECT_EQ(sa.bytes_sent + sb.bytes_sent,
            reg.sum_counters("socket.bytes_sent{"));
  EXPECT_EQ(sa.messages_sent + sb.messages_sent,
            reg.counter_value("socket.messages_sent"));
  EXPECT_EQ(sa.timeouts + sb.timeouts,
            reg.counter_value("socket.timeouts"));
}

TEST(MetricsUnification, TcpAccessorsMatchRegistryOnAblationDefaults) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(0.01), /*seed=*/1);
  tcpstack::TcpStack stack0(&s, &cluster.node(0));
  tcpstack::TcpStack stack1(&s, &cluster.node(1));
  const std::uint64_t msg = 64 * 1024;
  const int iters = 64;
  std::shared_ptr<tcpstack::TcpConnection> sender;
  std::shared_ptr<tcpstack::TcpConnection> receiver;
  s.spawn("app", [&] {
    auto [a, b] = tcpstack::TcpStack::connect(stack0, stack1);
    sender = a;
    receiver = b;
    s.spawn("rx", [&s, msg, iters, b] {
      b->recv_exact(msg * static_cast<std::uint64_t>(iters));
    });
    for (int i = 0; i < iters; ++i) a->send(msg);
    a->close();
  });
  s.run();
  const Registry& reg = s.obs().registry;

  // Exactly the numbers ablation_faults prints from the accessors.
  EXPECT_GT(sender->segments_retransmitted(), 0u);
  EXPECT_EQ(sender->segments_retransmitted() +
                receiver->segments_retransmitted(),
            reg.sum_counters("tcpstack.segments_retransmitted{conn="));
  EXPECT_EQ(sender->rto_expirations() + receiver->rto_expirations(),
            reg.sum_counters("tcpstack.rto_expirations{"));
  EXPECT_EQ(sender->fast_retransmits() + receiver->fast_retransmits(),
            reg.sum_counters("tcpstack.fast_retransmits{"));
}

TEST(MetricsUnification, SocketTimeoutsAgreePerSocketAndPerLink) {
  // Force a real timeout so the agreement is non-vacuous: recv_for() on a
  // socket nobody writes to.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  sockets::SocketPair pair;
  s.spawn("app", [&] {
    pair = factory.connect(0, 1, net::Transport::kKernelTcp);
    EXPECT_TRUE(pair.second->recv_for(50_us).timed_out());
  });
  s.run();
  const Registry& reg = s.obs().registry;

  const sockets::SocketStats sa = pair.first->stats();
  const sockets::SocketStats sb = pair.second->stats();
  EXPECT_EQ(sb.timeouts, 1u);
  // Per-socket view == per-link view == aggregate: one source of truth.
  EXPECT_EQ(sa.timeouts + sb.timeouts,
            reg.sum_counters("socket.timeouts{socket="));
  EXPECT_EQ(sa.timeouts + sb.timeouts,
            reg.sum_counters("socket.timeouts{link="));
  EXPECT_EQ(sa.timeouts + sb.timeouts,
            reg.counter_value("socket.timeouts"));
}

}  // namespace
}  // namespace sv::obs
