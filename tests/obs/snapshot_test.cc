// Live-snapshot unit contracts (DESIGN.md §15): windowed views are pure
// delta functions of publish-time registry state, the hub is zero-cost
// when detached, and Gauge::read_and_rearm_max reports per-window peaks
// instead of pinning every window at the all-time burst.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/hub.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace sv::obs {
namespace {

TEST(GaugeRearmTest, ReadAndRearmMaxReportsPerWindowPeaks) {
  Gauge g;
  g.set(10);
  g.set(100);
  g.set(40);
  // Window 1 saw the burst.
  EXPECT_EQ(g.read_and_rearm_max(), 100);
  // The regression: before the re-arm fix, the burst pinned every later
  // window's "peak" at 100 forever. After re-arm, each window reports its
  // own maximum.
  g.set(60);
  g.set(50);
  EXPECT_EQ(g.read_and_rearm_max(), 60);
  // A quiet window's peak is the standing level, not an older burst.
  EXPECT_EQ(g.read_and_rearm_max(), 50);
  EXPECT_EQ(g.value(), 50);
  // max_value() still tracks for post-mortem snapshots after re-arms.
  g.set(70);
  EXPECT_EQ(g.max_value(), 70);
}

TEST(CounterWindowTest, ReportsDeltasSincePreviousAdvance) {
  Registry reg;
  Counter& c = reg.counter("x.total");
  c.inc(5);
  CounterWindow w;
  EXPECT_FALSE(w.bound());
  EXPECT_EQ(w.advance(), 0u);  // unbound: no signal, never a crash
  w.bind(reg.find_counter("x.total"));
  ASSERT_TRUE(w.bound());
  c.inc(7);
  EXPECT_EQ(w.advance(), 7u);  // pre-bind history excluded
  EXPECT_EQ(w.advance(), 0u);  // idle window
  c.inc(2);
  EXPECT_EQ(w.advance(), 2u);
}

TEST(HistogramWindowTest, PercentileUsesWindowDeltasNotLifetime) {
  Registry reg;
  Histogram& h = reg.histogram("x.lat", {10, 100, 1000});
  HistogramWindow w;
  w.bind(reg.find_histogram("x.lat"));
  for (int i = 0; i < 100; ++i) h.observe(5);
  EXPECT_EQ(w.advance(), 100u);
  EXPECT_EQ(w.percentile(99), 10);
  // Second window: all slow. The lifetime distribution is now 50/50 fast,
  // but the *window* is what an SLO comparison must see.
  for (int i = 0; i < 100; ++i) h.observe(500);
  EXPECT_EQ(w.advance(), 100u);
  EXPECT_EQ(w.percentile(50), 1000);
  EXPECT_EQ(w.percentile(99), 1000);
}

TEST(HistogramWindowTest, OverflowIsPessimisticAndEmptyIsZero) {
  Registry reg;
  Histogram& h = reg.histogram("x.lat", {10, 100});
  HistogramWindow w;
  w.bind(reg.find_histogram("x.lat"));
  EXPECT_EQ(w.advance(), 0u);
  EXPECT_EQ(w.percentile(99), 0);  // empty window makes no claim
  h.observe(5'000);                // off the bucket scale
  EXPECT_EQ(w.advance(), 1u);
  // 2x the largest finite bound: off-scale latency must read as an SLO
  // violation, never as "somewhere under the top bucket".
  EXPECT_EQ(w.percentile(99), 200);
}

TEST(HistogramWindowTest, MergeAggregatesPerNodeWindows) {
  Registry reg;
  Histogram& a = reg.histogram("a.lat", {10, 100});
  Histogram& b = reg.histogram("b.lat", {10, 100});
  HistogramWindow wa;
  HistogramWindow wb;
  wa.bind(reg.find_histogram("a.lat"));
  wb.bind(reg.find_histogram("b.lat"));
  for (int i = 0; i < 98; ++i) a.observe(5);
  b.observe(50);
  b.observe(50);
  wa.advance();
  wb.advance();
  HistogramWindow cluster;  // empty: merges with anything
  cluster.merge(wa);
  cluster.merge(wb);
  EXPECT_EQ(cluster.count(), 100u);
  EXPECT_EQ(cluster.sum(), 98 * 5 + 2 * 50);
  EXPECT_EQ(cluster.percentile(50), 10);
  EXPECT_EQ(cluster.percentile(99), 100);  // the two slow samples surface
}

struct Probe final : SnapshotSink {
  std::vector<std::uint64_t> seqs;
  std::vector<std::int64_t> at_ns;
  void on_snapshot(const Snapshot& snap) override {
    EXPECT_NE(snap.registry, nullptr);
    seqs.push_back(snap.seq);
    at_ns.push_back(snap.at.ns());
  }
};

TEST(HubTest, PublishNotifiesAttachedSinksAndDetachStops) {
  Hub hub;
  EXPECT_FALSE(hub.has_sinks());
  // A publish with no sinks still advances the sequence (numbered
  // artifacts stay aligned with the pump schedule).
  hub.publish(SimTime::milliseconds(1));
  Probe p1;
  Probe p2;
  hub.attach(&p1);
  hub.attach(&p2);
  hub.publish(SimTime::milliseconds(2));
  ASSERT_EQ(p1.seqs.size(), 1u);
  EXPECT_EQ(p1.seqs[0], 1u);
  EXPECT_EQ(p1.at_ns[0], SimTime::milliseconds(2).ns());
  hub.detach(&p1);
  hub.publish(SimTime::milliseconds(3));
  EXPECT_EQ(p1.seqs.size(), 1u);
  ASSERT_EQ(p2.seqs.size(), 2u);
  EXPECT_EQ(p2.seqs[1], 2u);
  EXPECT_EQ(hub.snapshots_published(), 3u);
}

}  // namespace
}  // namespace sv::obs
