#include "sockets/rdma_socket.h"

#include <gtest/gtest.h>

#include "sockets/via_socket.h"

namespace sv::sockets {
namespace {

using namespace sv::literals;

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 3};
  via::Nic nic0{&s, &cluster.node(0)};
  via::Nic nic1{&s, &cluster.node(1)};
};

TEST(RdmaPushSocketTest, DeliversMessagesInOrder) {
  Fixture f;
  std::vector<std::uint64_t> tags;
  f.s.spawn("app", [&] {
    auto [a, b] = RdmaPushSocket::make_pair(f.nic0, f.nic1);
    f.s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) tags.push_back(m->tag);
    });
    for (std::uint64_t i = 0; i < 10; ++i) {
      a->send(net::Message{.bytes = 5000 + i * 777, .tag = i});
    }
    a->close_send();
  });
  f.s.run();
  ASSERT_EQ(tags.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(tags[i], i);
}

TEST(RdmaPushSocketTest, MultiSlotMessagesRespectRingDepth) {
  Fixture f;
  RdmaSocketOptions opt;
  opt.slot_bytes = 4096;
  opt.ring_slots = 2;
  opt.credit_batch = 1;
  std::uint64_t received = 0;
  f.s.spawn("app", [&] {
    auto [a, b] = RdmaPushSocket::make_pair(f.nic0, f.nic1, opt);
    f.s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) received += m->bytes;
    });
    // 10 slots' worth per message through a 2-slot ring.
    for (int i = 0; i < 4; ++i) a->send(net::Message{.bytes = 40'960});
    a->close_send();
  });
  f.s.run();
  EXPECT_EQ(received, 4u * 40'960);
  EXPECT_EQ(f.nic1.recv_misses(), 0u);
}

TEST(RdmaPushSocketTest, SlotsReturnAtQuiescence) {
  Fixture f;
  std::uint32_t slots_after = 0;
  f.s.spawn("app", [&] {
    auto [a, b] = RdmaPushSocket::make_pair(f.nic0, f.nic1);
    auto* sender = dynamic_cast<RdmaPushSocket*>(a.get());
    f.s.spawn("rx", [&, b = std::move(b)]() mutable {
      for (int i = 0; i < 8; ++i) b->recv();
    });
    for (int i = 0; i < 8; ++i) a->send(net::Message{.bytes = 16_KiB});
    f.s.delay(5_ms);  // 8 x 16 KiB at ~99 MB/s plus credit returns
    slots_after = sender->available_slots();
  });
  f.s.run();
  EXPECT_EQ(slots_after, RdmaSocketOptions{}.ring_slots);
}

TEST(RdmaPushSocketTest, RejectsBadOptions) {
  Fixture f;
  RdmaSocketOptions opt;
  opt.ring_slots = 0;
  EXPECT_THROW(RdmaPushSocket::make_pair(f.nic0, f.nic1, opt),
               std::invalid_argument);
  opt.ring_slots = 2;
  opt.credit_batch = 3;
  EXPECT_THROW(RdmaPushSocket::make_pair(f.nic0, f.nic1, opt),
               std::invalid_argument);
}

TEST(RdmaPushSocketTest, LowerSmallMessageLatencyThanTwoSided) {
  // One-sided advantage in this stack: no receive-descriptor matching or
  // socket bookkeeping on the data path, so small messages arrive a bit
  // earlier; throughput is wire-bound for both (see ext_rdma_pushpull).
  auto one_way = [](bool use_rdma) {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
    SimTime t;
    s.spawn("app", [&] {
      SocketPair pair = use_rdma ? RdmaPushSocket::make_pair(nic0, nic1)
                                 : DetailedViaSocket::make_pair(nic0, nic1);
      auto& [a, b] = pair;
      const SimTime t0 = s.now();
      s.spawn("rx", [&s, &t, t0, b = std::move(b)]() mutable {
        b->recv();
        t = s.now() - t0;
      });
      a->send(net::Message{.bytes = 2048});
    });
    s.run();
    return t;
  };
  const SimTime rdma = one_way(true);
  const SimTime two_sided = one_way(false);
  EXPECT_LT(rdma, two_sided);
  EXPECT_GT(rdma.us(), two_sided.us() * 0.5);  // same order of magnitude
}

}  // namespace
}  // namespace sv::sockets
