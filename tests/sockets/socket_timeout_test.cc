// Timed socket operations across every transport: recv_for deadlines,
// EOF-vs-timeout distinction, and stall detection on the send side —
// window stall (fast fabric), credit stall (SocketVIA), slot stall
// (RDMA push), and an un-ACKing peer (detailed TCP).
#include "sockets/socket.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "net/fault.h"
#include "sockets/factory.h"
#include "sockets/rdma_socket.h"
#include "sockets/tcp_socket.h"
#include "sockets/via_socket.h"

namespace sv::sockets {
namespace {

using namespace sv::literals;

/// Stall `node` from 10us for 10s — 500x any deadline in this file, so
/// "forever" as far as the timed operations are concerned. Transport setup
/// at t=0 still works; nothing on the node progresses afterwards. Kept
/// bounded (not years) because after the app gives up, background machinery
/// such as TCP's RTO timer legitimately keeps retrying into the stalled
/// node until the window closes, and the run must still drain quickly.
void stall_forever(net::Cluster& cluster, int node) {
  net::FaultPlan plan;
  plan.nodes.push_back(
      net::NodeFault{.node = node, .start = 10_us, .duration = 10_s});
  cluster.install_faults(plan, 1);
}

TEST(SocketTimeoutTest, RecvForTimesOutAtExactDeadline) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster);
  bool reached_end = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    const SimTime t0 = s.now();
    auto r = b->recv_for(3_ms);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    EXPECT_TRUE(r.timed_out());
    EXPECT_EQ(s.now() - t0, 3_ms);  // woke exactly at the deadline
    (void)a;
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
}

TEST(SocketTimeoutTest, RecvForDeliversArrivingMessage) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster);
  bool reached_end = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("tx", [&s, a = std::move(a)]() mutable {
      s.delay(200_us);
      a->send(net::Message{.bytes = 4096, .tag = 7});
      a->close_send();
    });
    auto r = b->recv_for(10_ms);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().has_value());
    EXPECT_EQ(r.value()->tag, 7u);
    // After the peer closes, the timed receive reports clean EOF, not a
    // timeout.
    auto eof = b->recv_for(10_ms);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(eof.value().has_value());
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
}

TEST(SocketTimeoutTest, FastSocketWindowStallTimesOut) {
  // Receiver node stalled: the first oversized message fills the pipe's
  // flow-control window, so the second timed send must report kTimeout.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  stall_forever(cluster, 1);
  SocketFactory factory(&s, &cluster);
  bool reached_end = false;
  SimTime failed_at;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.delay(20_us);
    // 64 KiB fits inside the 128 KiB window, so the send completes even
    // though the stalled receiver never drains it...
    ASSERT_TRUE(a->send_for(net::Message{.bytes = 64_KiB}, 5_ms).ok());
    // ...but the next 256 KiB cannot be admitted and must time out.
    auto r = a->send_for(net::Message{.bytes = 256_KiB}, 5_ms);
    failed_at = s.now();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    (void)b;
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
  // The deadline fired promptly; the run's final clock is the stall-holder
  // release, so the app's observed time is what proves nothing hung.
  EXPECT_LT(failed_at, 1_s);
}

TEST(SocketTimeoutTest, ViaCreditStallTimesOut) {
  // SocketVIA flow control: the stalled receiver stops returning data
  // credits, so a sender that exhausts its credits must time out rather
  // than wait forever.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  stall_forever(cluster, 1);
  via::Nic nic0(&s, &cluster.node(0));
  via::Nic nic1(&s, &cluster.node(1));
  bool reached_end = false;
  SimTime failed_at;
  s.spawn("app", [&] {
    ViaSocketOptions opt;
    opt.chunk_bytes = 4096;
    opt.credits = 2;
    opt.credit_batch = 1;
    auto [a, b] = DetailedViaSocket::make_pair(nic0, nic1, opt);
    s.delay(20_us);
    // 3 chunks > 2 credits: the send must stall on credit return.
    auto r = a->send_for(net::Message{.bytes = 3 * 4096}, 5_ms);
    failed_at = s.now();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    (void)b;
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
  EXPECT_LT(failed_at, 1_s);
}

TEST(SocketTimeoutTest, RdmaSlotStallTimesOut) {
  // RDMA push flow control: ring slots come back only when the receiver
  // consumes; a stalled receiver means slot exhaustion, then kTimeout.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  stall_forever(cluster, 1);
  via::Nic nic0(&s, &cluster.node(0));
  via::Nic nic1(&s, &cluster.node(1));
  bool reached_end = false;
  SimTime failed_at;
  s.spawn("app", [&] {
    RdmaSocketOptions opt;
    opt.slot_bytes = 4096;
    opt.ring_slots = 2;
    opt.credit_batch = 1;
    auto [a, b] = RdmaPushSocket::make_pair(nic0, nic1, opt);
    s.delay(20_us);
    auto r = a->send_for(net::Message{.bytes = 3 * 4096}, 5_ms);
    failed_at = s.now();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    (void)b;
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
  EXPECT_LT(failed_at, 1_s);
}

TEST(SocketTimeoutTest, DetailedTcpSendTimesOutWhenPeerStopsAcking) {
  // The stalled receiver cannot run its protocol processing, so no ACKs
  // come back, the socket buffer stays full, and the timed send fails.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  stall_forever(cluster, 1);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  bool reached_end = false;
  SimTime failed_at;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.delay(20_us);
    // Larger than the 64 KiB socket buffer: can only complete with ACKs.
    auto r = a->send_for(net::Message{.bytes = 256_KiB}, 20_ms);
    failed_at = s.now();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    (void)b;
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
  EXPECT_LT(failed_at, 1_s);
}

TEST(SocketTimeoutTest, DetailedTcpRecvForTimesOutAndThenDelivers) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  bool reached_end = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    auto r = b->recv_for(2_ms);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kTimeout);
    s.spawn("tx", [&s, a = std::move(a)]() mutable {
      a->send(net::Message{.bytes = 8192, .tag = 3});
      a->close_send();
    });
    auto ok = b->recv_for(1_s);
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(ok.value().has_value());
    EXPECT_EQ(ok.value()->tag, 3u);
    EXPECT_EQ(ok.value()->bytes, 8192u);
    auto eof = b->recv_for(1_s);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(eof.value().has_value());
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
}

TEST(SocketTimeoutTest, ZeroTimeoutMeansWaitForever) {
  // timeout <= 0 degrades to the untimed blocking call — it must succeed
  // even when the data arrives "late".
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster);
  bool reached_end = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("tx", [&s, a = std::move(a)]() mutable {
      s.delay(50_ms);
      a->send(net::Message{.bytes = 64});
      a->close_send();
    });
    auto r = b->recv_for(SimTime::zero());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().has_value());
    EXPECT_EQ(r.value()->bytes, 64u);
    reached_end = true;
  });
  s.run();
  EXPECT_TRUE(reached_end);
}

}  // namespace
}  // namespace sv::sockets
