#include "sockets/factory.h"
#include "sockets/tcp_socket.h"
#include "sockets/via_socket.h"

#include <gtest/gtest.h>

#include <vector>

namespace sv::sockets {
namespace {

using namespace sv::literals;
using net::Transport;

class SocketApiTest
    : public ::testing::TestWithParam<std::tuple<Fidelity, Transport>> {
 protected:
  static std::string label() {
    const auto [fid, tr] = GetParam();
    return std::string(fid == Fidelity::kFast ? "fast" : "detailed") + "/" +
           net::transport_name(tr);
  }
};

TEST_P(SocketApiTest, RoundTripMessage) {
  const auto [fid, tr] = GetParam();
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, fid);
  std::uint64_t got_tag = 0;
  SimTime rtt;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("echo", [&, b = std::move(b)]() mutable {
      auto m = b->recv();
      ASSERT_TRUE(m.has_value());
      b->send(*m);
    });
    const SimTime start = s.now();
    net::Message m;
    m.bytes = 512;
    m.tag = 77;
    a->send(m);
    auto back = a->recv();
    rtt = s.now() - start;
    ASSERT_TRUE(back.has_value());
    got_tag = back->tag;
  });
  s.run();
  EXPECT_EQ(got_tag, 77u);
  EXPECT_GT(rtt, SimTime::zero());
}

TEST_P(SocketApiTest, ManyMessagesStayOrdered) {
  const auto [fid, tr] = GetParam();
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, fid);
  std::vector<std::uint64_t> tags;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      for (int i = 0; i < 50; ++i) {
        auto m = b->recv();
        ASSERT_TRUE(m.has_value());
        tags.push_back(m->tag);
      }
    });
    for (std::uint64_t i = 0; i < 50; ++i) {
      net::Message m;
      m.bytes = 100 + i * 37;  // varying sizes
      m.tag = i;
      a->send(m);
    }
  });
  s.run();
  ASSERT_EQ(tags.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(tags[i], i);
}

TEST_P(SocketApiTest, CloseDeliversEndOfStream) {
  const auto [fid, tr] = GetParam();
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, fid);
  int received = 0;
  bool saw_end = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) ++received;
      saw_end = true;
    });
    for (int i = 0; i < 3; ++i) {
      net::Message m;
      m.bytes = 256;
      a->send(m);
    }
    a->close_send();
  });
  s.run();
  EXPECT_EQ(received, 3);
  EXPECT_TRUE(saw_end);
}

TEST_P(SocketApiTest, StatsAreAccurate) {
  const auto [fid, tr] = GetParam();
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, fid);
  SocketStats tx_stats{}, rx_stats{};
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) {
      }
      rx_stats = b->stats();
    });
    a->send(net::Message{.bytes = 1000});
    a->send(net::Message{.bytes = 2000});
    a->close_send();
    tx_stats = a->stats();
  });
  s.run();
  EXPECT_EQ(tx_stats.messages_sent, 2u);
  EXPECT_EQ(tx_stats.bytes_sent, 3000u);
  EXPECT_EQ(rx_stats.messages_received, 2u);
  EXPECT_EQ(rx_stats.bytes_received, 3000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SocketApiTest,
    ::testing::Values(
        std::make_tuple(Fidelity::kFast, Transport::kKernelTcp),
        std::make_tuple(Fidelity::kFast, Transport::kSocketVia),
        std::make_tuple(Fidelity::kFast, Transport::kVia),
        std::make_tuple(Fidelity::kDetailed, Transport::kKernelTcp),
        std::make_tuple(Fidelity::kDetailed, Transport::kSocketVia)),
    [](const ::testing::TestParamInfo<SocketApiTest::ParamType>& param_info) {
      return std::string(std::get<0>(param_info.param) == Fidelity::kFast
                             ? "Fast"
                             : "Detailed") +
             net::transport_name(std::get<1>(param_info.param));
    });

TEST(SocketFactoryTest, DetailedRawViaRejected) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  EXPECT_THROW(factory.connect(0, 1, Transport::kVia), std::invalid_argument);
}

TEST(SocketViaTest, CreditsAreSpentAndReturned) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  auto& nic0 = factory.via_nic(0);
  auto& nic1 = factory.via_nic(1);
  ViaSocketOptions opt;
  opt.chunk_bytes = 4096;
  opt.credits = 4;
  opt.credit_batch = 2;
  std::uint32_t credits_after = 99;
  std::uint64_t updates = 0;
  s.spawn("app", [&] {
    auto [a, b] = DetailedViaSocket::make_pair(nic0, nic1, opt);
    auto* sender = dynamic_cast<DetailedViaSocket*>(a.get());
    auto* receiver = dynamic_cast<DetailedViaSocket*>(b.get());
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      for (int i = 0; i < 8; ++i) b->recv();
    });
    // 8 x 1-chunk messages > 4 credits: forces credit waits + updates.
    for (int i = 0; i < 8; ++i) {
      a->send(net::Message{.bytes = 4096});
    }
    s.delay(1_ms);  // let trailing credit updates arrive
    credits_after = sender->available_credits();
    updates = receiver->credit_updates_sent();
  });
  s.run();
  EXPECT_EQ(credits_after, 4u);  // all credits returned at quiescence
  EXPECT_EQ(updates, 4u);        // 8 chunks / batch of 2
}

TEST(SocketViaTest, NeverTriggersViaReceiveMiss) {
  // The whole point of SocketVIA's credit scheme: no send may ever arrive
  // without a posted descriptor, even under heavy multi-chunk load.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  auto& nic1 = factory.via_nic(1);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, Transport::kSocketVia);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) {
      }
    });
    for (int i = 0; i < 20; ++i) {
      a->send(net::Message{.bytes = 100'000});  // multi-chunk messages
    }
    a->close_send();
  });
  s.run();
  EXPECT_EQ(nic1.recv_misses(), 0u);
}

TEST(SocketViaTest, RejectsBadOptions) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic a(&s, &cluster.node(0)), b(&s, &cluster.node(1));
  ViaSocketOptions opt;
  opt.credits = 0;
  EXPECT_THROW(DetailedViaSocket::make_pair(a, b, opt),
               std::invalid_argument);
  opt.credits = 2;
  opt.credit_batch = 4;
  EXPECT_THROW(DetailedViaSocket::make_pair(a, b, opt),
               std::invalid_argument);
}

// --- Fast vs detailed agreement: the fidelity cross-validation ---

class FidelityAgreementTest : public ::testing::TestWithParam<Transport> {};

namespace {

SimTime measure_one_way(Fidelity fid, Transport tr, std::uint64_t bytes) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, fid);
  SimTime result;
  s.spawn("app", [&] {
    // The fast model corresponds to TCP_NODELAY semantics (no Nagle /
    // delayed-ACK stall on a trailing partial segment), which is what
    // latency-conscious middleware sets; compare like with like.
    SocketPair pair;
    if (fid == Fidelity::kDetailed && tr == Transport::kKernelTcp) {
      tcpstack::TcpOptions opt;
      opt.nagle = false;
      pair = DetailedTcpSocket::make_pair(factory.tcp_stack(0),
                                          factory.tcp_stack(1), opt);
    } else {
      pair = factory.connect(0, 1, tr);
    }
    auto& [a, b] = pair;
    const SimTime start = s.now();
    s.spawn("rx", [&, b = std::move(b), start]() mutable {
      b->recv();
      result = s.now() - start;
    });
    a->send(net::Message{.bytes = bytes});
  });
  s.run();
  return result;
}

}  // namespace

TEST_P(FidelityAgreementTest, OneWayTimesAgreeWithinTolerance) {
  const Transport tr = GetParam();
  for (std::uint64_t bytes : {64ULL, 1024ULL, 16'384ULL, 262'144ULL}) {
    const SimTime fast = measure_one_way(Fidelity::kFast, tr, bytes);
    const SimTime detailed = measure_one_way(Fidelity::kDetailed, tr, bytes);
    const double rel =
        std::abs(fast.us() - detailed.us()) / std::max(fast.us(), 1e-9);
    EXPECT_LT(rel, 0.30) << net::transport_name(tr) << " bytes=" << bytes
                         << " fast=" << fast.us()
                         << "us detailed=" << detailed.us() << "us";
  }
}

INSTANTIATE_TEST_SUITE_P(BothTransports, FidelityAgreementTest,
                         ::testing::Values(Transport::kKernelTcp,
                                           Transport::kSocketVia),
                         [](const auto& param_info) {
                           return std::string(
                               net::transport_name(param_info.param));
                         });

}  // namespace
}  // namespace sv::sockets
