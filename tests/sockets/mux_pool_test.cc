// SendMux × BufferPool refcount contracts (DESIGN.md §14): a record
// dropped at a full lane releases its pooled payload chunk back to the
// pool immediately (the next acquire is a counted reuse), delivered
// records release after the sink consumes them, and the per-record copy
// policy is consulted exactly once per drained record.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/buffer_pool.h"
#include "sockets/mux.h"

namespace sv::sockets {
namespace {

TEST(MuxPoolTest, DroppedRecordsReleaseBuffersBackToPool) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  const std::uint64_t kBytes = 1024;
  const int kSubmissions = 32;

  SendMuxConfig cfg;
  // Lane cap admits exactly two records; everything after drops.
  cfg.queue_cap_bytes = 2 * kBytes;

  mem::BufferPool pool(&s.obs(), {.label = "mux_test", .registered = false});
  std::uint64_t delivered = 0;
  auto mux = std::make_unique<SendMux>(
      &s, &cluster, /*node=*/0, cfg,
      [&](int, const MuxRecord& rec, SimTime) {
        delivered += rec.bytes > 0 ? 1 : 0;
      });
  const std::uint64_t conn = mux->open_connection(1);

  // All submissions happen at t=0, before the sender process first runs,
  // so admission is decided purely by the lane cap: 2 accepted, 30
  // dropped. Every drop destroys its payload at once, handing the chunk
  // back to the pool for the very next acquire to reuse.
  int accepted = 0;
  for (int i = 0; i < kSubmissions; ++i) {
    mem::PooledBuffer lease = pool.acquire(kBytes);
    mem::Payload payload = std::move(lease).seal();
    if (mux->submit(conn, kBytes, /*buffer=*/1 + static_cast<std::uint64_t>(i),
                    std::move(payload))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(mux->drops(), static_cast<std::uint64_t>(kSubmissions - 2));

  const auto& reg = s.obs().registry;
  // Reconciliation: 2 chunks are held by queued records, 1 chunk cycles
  // through every dropped submission. 3 allocations total; every other
  // acquire was a reuse of the dropped chunk.
  EXPECT_EQ(reg.counter_value("mem.pool_alloc{pool=mux_test}"), 3u);
  EXPECT_EQ(reg.counter_value("mem.pool_reuse{pool=mux_test}"),
            static_cast<std::uint64_t>(kSubmissions - 3));
  EXPECT_EQ(pool.free_chunks(), 1u);

  mux->shutdown();
  s.run();

  // The two accepted records delivered, and their chunks came home after
  // the sink consumed the aggregate: the pool owns all 3 again.
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(pool.free_chunks(), 3u);
  EXPECT_EQ(reg.counter_value("mem.pool_alloc{pool=mux_test}"), 3u);
}

TEST(MuxPoolTest, SenderConsultsPolicyPerDrainedRecord) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  const std::uint64_t kBytes = 2048;
  const int kSubmissions = 12;

  SendMuxConfig cfg;
  cfg.copy_policy.kind = mem::CopyPolicyKind::kRegCache;
  cfg.copy_policy.cache.capacity_regions = 4;

  std::uint64_t delivered = 0;
  auto mux = std::make_unique<SendMux>(
      &s, &cluster, /*node=*/0, cfg,
      [&](int, const MuxRecord&, SimTime) { ++delivered; });
  const std::uint64_t conn = mux->open_connection(1);
  for (int i = 0; i < kSubmissions; ++i) {
    // Two distinct hot buffers: first touch of each misses, the other 10
    // drains hit.
    ASSERT_TRUE(mux->submit(conn, kBytes,
                            /*buffer=*/1 + static_cast<std::uint64_t>(i % 2),
                            mem::Payload{}));
  }
  mux->shutdown();
  s.run();

  const auto& reg = s.obs().registry;
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(reg.counter_value("mem.policy_decisions{policy=regcache}"),
            static_cast<std::uint64_t>(kSubmissions));
  EXPECT_EQ(reg.counter_value("mem.regcache_misses{cache=regcache}"), 2u);
  EXPECT_EQ(reg.counter_value("mem.regcache_hits{cache=regcache}"),
            static_cast<std::uint64_t>(kSubmissions - 2));
  EXPECT_EQ(reg.counter_value("mem.registrations"), 2u);
}

}  // namespace
}  // namespace sv::sockets
