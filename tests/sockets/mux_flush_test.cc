// Demotion-path mux contracts (DESIGN.md §15): flush_lane sheds a
// degraded destination's queued records (releasing pooled payload chunks
// immediately, counted under mux.flushed, never as drops), and
// flush_registrations empties the node's pin-down cache so the
// registration ledger reconciles to zero pinned bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "mem/buffer_pool.h"
#include "sockets/mux.h"

namespace sv::sockets {
namespace {

TEST(MuxFlushTest, FlushLaneShedsQueuedRecordsAndReleasesPayloads) {
  sim::Simulation s;
  net::Cluster cluster(&s, 3);
  const std::uint64_t kBytes = 512;

  mem::BufferPool pool(&s.obs(), {.label = "flush_test", .registered = false});
  std::uint64_t delivered = 0;
  SendMux mux(&s, &cluster, /*node=*/0, SendMuxConfig{},
              [&](int, const MuxRecord&, SimTime) { ++delivered; });
  const std::uint64_t to1 = mux.open_connection(1);
  const std::uint64_t to2 = mux.open_connection(2);

  // 6 records queued to node 1 and 2 to node 2, all at t=0 — the sender
  // process has not drained anything yet.
  for (int i = 0; i < 6; ++i) {
    mem::PooledBuffer lease = pool.acquire(kBytes);
    ASSERT_TRUE(
        mux.submit(to1, kBytes, /*buffer=*/1, std::move(lease).seal()));
  }
  for (int i = 0; i < 2; ++i) {
    mem::PooledBuffer lease = pool.acquire(kBytes);
    ASSERT_TRUE(
        mux.submit(to2, kBytes, /*buffer=*/2, std::move(lease).seal()));
  }
  EXPECT_EQ(pool.free_chunks(), 0u);

  // Demote node 1: its queued records are shed and their chunks come home
  // immediately; the lane to node 2 is untouched.
  EXPECT_EQ(mux.flush_lane(1), 6u);
  EXPECT_EQ(pool.free_chunks(), 6u);
  // Re-flushing an empty lane, or a lane that never existed, is a no-op.
  EXPECT_EQ(mux.flush_lane(1), 0u);
  EXPECT_EQ(mux.flush_lane(7), 0u);

  mux.shutdown();
  s.run();

  const auto& reg = s.obs().registry;
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(reg.counter_value("mux.flushed{node=node0}"), 6u);
  // Shed is not dropped: overflow accounting stays clean.
  EXPECT_EQ(reg.counter_value("mux.drops{node=node0}"), 0u);
  EXPECT_EQ(reg.counter_value("mux.delivered{node=node0}"), 2u);
  const obs::Gauge* queued = reg.find_gauge("mux.queued_bytes{node=node0}");
  ASSERT_NE(queued, nullptr);
  EXPECT_EQ(queued->value(), 0);
  EXPECT_EQ(pool.free_chunks(), 8u);
}

TEST(MuxFlushTest, FlushRegistrationsReconcilesThePinDownLedger) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SendMuxConfig cfg;
  cfg.copy_policy.kind = mem::CopyPolicyKind::kRegCache;
  cfg.copy_policy.cache.capacity_regions = 8;

  std::uint64_t delivered = 0;
  SendMux mux(&s, &cluster, /*node=*/0, cfg,
              [&](int, const MuxRecord&, SimTime) { ++delivered; });
  const std::uint64_t conn = mux.open_connection(1);
  // Three distinct hot regions, revisited: the drain pins each once.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mux.submit(conn, 2048,
                           /*buffer=*/1 + static_cast<std::uint64_t>(i % 3),
                           mem::Payload{}));
  }
  mux.shutdown();
  s.run();
  EXPECT_EQ(delivered, 6u);

  const auto& reg = s.obs().registry;
  const obs::Gauge* pinned =
      reg.find_gauge("mem.regcache_pinned_bytes{cache=regcache}");
  ASSERT_NE(pinned, nullptr);
  const std::int64_t before = pinned->value();
  EXPECT_GT(before, 0);
  EXPECT_LT(reg.counter_value("mem.deregistrations"),
            reg.counter_value("mem.registrations"));

  // Three distinct regions fit capacity 8, so nothing evicted in-band.
  EXPECT_EQ(reg.counter_value("mem.regcache_evictions{cache=regcache}"), 0u);

  // Demotion flushes the cache: everything unpins (counted as evictions),
  // charged to the ledger, and registrations reconcile exactly.
  EXPECT_EQ(mux.flush_registrations(), static_cast<std::uint64_t>(before));
  EXPECT_EQ(pinned->value(), 0);
  EXPECT_EQ(reg.counter_value("mem.regcache_evictions{cache=regcache}"), 3u);
  const obs::Gauge* resident =
      reg.find_gauge("mem.regcache_resident{cache=regcache}");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->value(), 0);
  EXPECT_EQ(reg.counter_value("mem.deregistrations"),
            reg.counter_value("mem.registrations"));
  EXPECT_EQ(reg.counter_value("mem.deregistered_bytes"),
            reg.counter_value("mem.registered_bytes"));
  // A second flush finds nothing pinned.
  EXPECT_EQ(mux.flush_registrations(), 0u);
}

TEST(MuxFlushTest, FlushRegistrationsIsZeroWithoutACachePolicy) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SendMux mux(&s, &cluster, /*node=*/0, SendMuxConfig{},
              [](int, const MuxRecord&, SimTime) {});
  EXPECT_EQ(mux.flush_registrations(), 0u);
  mux.shutdown();
  s.run();
}

}  // namespace
}  // namespace sv::sockets
