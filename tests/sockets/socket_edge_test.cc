// Edge-case and stress tests for the detailed socket backends.
#include <gtest/gtest.h>

#include "sockets/factory.h"
#include "sockets/tcp_socket.h"
#include "sockets/via_socket.h"

namespace sv::sockets {
namespace {

using namespace sv::literals;

TEST(ViaSocketEdgeTest, CreditStarvationRecovers) {
  // One credit, multi-chunk messages: the sender must stall per chunk and
  // still deliver everything in order.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  ViaSocketOptions opt;
  opt.chunk_bytes = 4096;
  opt.credits = 1;
  opt.credit_batch = 1;
  std::vector<std::uint64_t> tags;
  s.spawn("app", [&] {
    auto [a, b] = DetailedViaSocket::make_pair(nic0, nic1, opt);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) tags.push_back(m->tag);
    });
    for (std::uint64_t i = 0; i < 5; ++i) {
      a->send(net::Message{.bytes = 20'000, .tag = i});  // 5 chunks each
    }
    a->close_send();
  });
  s.run();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(nic1.recv_misses(), 0u);
}

TEST(ViaSocketEdgeTest, BidirectionalTrafficSharesOneVi) {
  // Data in both directions plus credits on the same VI pair must demux
  // cleanly.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  int a_got = 0, b_got = 0;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("peerB", [&, b = std::move(b)]() mutable {
      for (int i = 0; i < 20; ++i) {
        b->send(net::Message{.bytes = 10'000});
        if (b->recv()) ++b_got;
      }
      b->close_send();
    });
    for (int i = 0; i < 20; ++i) {
      a->send(net::Message{.bytes = 30'000});
      if (a->recv()) ++a_got;
    }
    a->close_send();
  });
  s.run();
  EXPECT_EQ(a_got, 20);
  EXPECT_EQ(b_got, 20);
}

TEST(ViaSocketEdgeTest, ZeroByteMessage) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  bool got = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      got = b->recv().has_value();
    });
    a->send(net::Message{.bytes = 0, .tag = 1});
  });
  s.run();
  EXPECT_TRUE(got);
}

TEST(TcpSocketEdgeTest, ManySmallFramesKeepBoundaries) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  std::vector<std::uint64_t> sizes;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) sizes.push_back(m->bytes);
    });
    for (std::uint64_t i = 1; i <= 30; ++i) {
      a->send(net::Message{.bytes = i * 100});
    }
    a->close_send();
  });
  s.run();
  ASSERT_EQ(sizes.size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) EXPECT_EQ(sizes[i], (i + 1) * 100);
}

TEST(TcpSocketEdgeTest, TryRecvOnlyWhenFrameBuffered) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  SocketFactory factory(&s, &cluster, Fidelity::kDetailed);
  bool early_nullopt = false;
  bool late_value = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    auto* bp = b.get();
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      // Immediately after connect: nothing buffered.
      early_nullopt = !b->try_recv().has_value();
      s.delay(50_ms);  // far longer than delivery takes
      late_value = b->try_recv().has_value();
    });
    (void)bp;
    s.delay(1_ms);
    a->send(net::Message{.bytes = 5000});
  });
  s.run();
  EXPECT_TRUE(early_nullopt);
  EXPECT_TRUE(late_value);
}

TEST(FastSocketEdgeTest, WindowOverrideChangesBackpressure) {
  // A tiny window forces the sender to pace at delivery speed.
  auto run_with_window = [](std::uint64_t window) {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    SocketFactory factory(&s, &cluster);
    if (window != 0) factory.set_window_override(window);
    SimTime tx_done;
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
      s.spawn("rx", [&s, b = std::move(b)]() mutable {
        while (b->recv()) {
        }
      });
      for (int i = 0; i < 20; ++i) a->send(net::Message{.bytes = 16_KiB});
      tx_done = s.now();
      a->close_send();
    });
    s.run();
    return tx_done;
  };
  const SimTime tight = run_with_window(16 * 1024);
  const SimTime loose = run_with_window(512 * 1024);
  EXPECT_GT(tight.ns(), loose.ns() * 3 / 2);
}

}  // namespace
}  // namespace sv::sockets
