// The repository's determinism contract, enforced end-to-end: running the
// same seeded fig07-style experiment twice must execute the *identical*
// event sequence — same event count, same FNV-1a trace digest (folded over
// every fired event's (time, id) pair), same final clock, and bit-identical
// measured output. A single unordered-container iteration, wall-clock read,
// or float-time accumulation anywhere in the pipeline breaks this test.
#include <gtest/gtest.h>

#include "harness/vizbench.h"

namespace sv::harness {
namespace {

using namespace sv::literals;

VizWorkloadConfig fig07_style(net::Transport tr, std::uint64_t seed) {
  // A scaled-down Figure 7 point: paced complete updates with concurrent
  // partial-update probes over the shared pipeline.
  VizWorkloadConfig cfg;
  cfg.transport = tr;
  cfg.image_bytes = 2_MiB;
  cfg.block_bytes = 128_KiB;
  cfg.cluster_nodes = 16;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const PacedResult& a, const PacedResult& b) {
  // Event-trace identity: count, digest, and final simulated time.
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.end_time, b.end_time);
  // Measured output identity, bit-for-bit (no tolerance).
  EXPECT_EQ(a.achieved_ups, b.achieved_ups);
  ASSERT_EQ(a.partial_latencies.count(), b.partial_latencies.count());
  EXPECT_EQ(a.partial_latencies.raw(), b.partial_latencies.raw());
}

TEST(DeterminismReplay, SameSeedSameTraceSocketVia) {
  const auto cfg = fig07_style(net::Transport::kSocketVia, 42);
  const auto a = run_paced_updates(cfg, 4.0, 4, 1);
  const auto b = run_paced_updates(cfg, 4.0, 4, 1);
  ASSERT_GT(a.events_fired, 0u) << "experiment actually executed events";
  expect_identical(a, b);
}

TEST(DeterminismReplay, SameSeedSameTraceKernelTcp) {
  const auto cfg = fig07_style(net::Transport::kKernelTcp, 42);
  const auto a = run_paced_updates(cfg, 2.0, 3, 1);
  const auto b = run_paced_updates(cfg, 2.0, 3, 1);
  ASSERT_GT(a.events_fired, 0u);
  expect_identical(a, b);
}

TEST(DeterminismReplay, DifferentSeedsDivergeButStayDeterministic) {
  // The probe client draws its block targets from the seed, so a different
  // seed must produce a different trace — while each seed remains
  // self-consistent. Guards against the digest being insensitive (e.g.
  // never updated) as much as against hidden nondeterminism.
  const auto s1a =
      run_paced_updates(fig07_style(net::Transport::kSocketVia, 1), 4.0, 4, 1);
  const auto s1b =
      run_paced_updates(fig07_style(net::Transport::kSocketVia, 1), 4.0, 4, 1);
  const auto s2 =
      run_paced_updates(fig07_style(net::Transport::kSocketVia, 2), 4.0, 4, 1);
  expect_identical(s1a, s1b);
  EXPECT_NE(s1a.trace_digest, s2.trace_digest)
      << "digest must be sensitive to the seeded workload";
}

TEST(DeterminismReplay, FaultyRunReplaysBitIdentically) {
  // The determinism contract extends to fault injection: a nonzero-loss,
  // jittery FaultPlan draws every decision from RNG streams derived from
  // the experiment seed, so the lossy run must replay to the identical
  // digest — and must not be a no-op (the fault-free digest differs).
  auto faulty = [](std::uint64_t seed) {
    auto cfg = fig07_style(net::Transport::kKernelTcp, seed);
    cfg.faults = net::FaultPlan::uniform_loss(0.02);
    cfg.faults.all_links.max_jitter = 5_us;
    return cfg;
  };
  const auto a = run_paced_updates(faulty(42), 2.0, 3, 1);
  const auto b = run_paced_updates(faulty(42), 2.0, 3, 1);
  ASSERT_GT(a.events_fired, 0u);
  expect_identical(a, b);

  const auto clean = run_paced_updates(
      fig07_style(net::Transport::kKernelTcp, 42), 2.0, 3, 1);
  EXPECT_NE(a.trace_digest, clean.trace_digest)
      << "the fault plan must actually perturb the schedule";
}

TEST(DeterminismReplay, FaultySeedsDiverge) {
  // Same plan, different seed: different drops, different trace — each
  // seed still self-consistent.
  auto faulty = [](std::uint64_t seed) {
    auto cfg = fig07_style(net::Transport::kSocketVia, seed);
    cfg.faults = net::FaultPlan::uniform_loss(0.02);
    return cfg;
  };
  const auto s1a = run_paced_updates(faulty(1), 4.0, 4, 1);
  const auto s1b = run_paced_updates(faulty(1), 4.0, 4, 1);
  const auto s2 = run_paced_updates(faulty(2), 4.0, 4, 1);
  expect_identical(s1a, s1b);
  EXPECT_NE(s1a.trace_digest, s2.trace_digest);
}

}  // namespace
}  // namespace sv::harness
