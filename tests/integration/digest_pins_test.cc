// Golden event-trace digest pins (DESIGN.md §8, §12).
//
// Each pinned workload is a scaled-down seeded run of a paper experiment
// (fig04 ping-pong, fig08 paced updates, fig10 load balancing). Its
// (events_fired, trace_digest) pair was captured on the original
// std::priority_queue engine *before* the timing-wheel queue swap and
// committed to tests/integration/digest_pins.txt. The test recomputes every
// workload on the current engine — on *both* queue implementations — and
// asserts bit-identical digests, so the determinism contract survives queue
// and allocator optimizations mechanically, not by review.
//
// Regenerate (only for deliberate, understood schedule changes):
//   ./build/tests/digest_pins_test --update-pins
//
// This binary has its own main() (it cannot link gtest_main) so it can
// strip the --update-pins flag before GoogleTest parses the rest.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/openloop.h"
#include "harness/vizbench.h"
#include "net/cluster.h"
#include "sim/simulation.h"
#include "sockets/factory.h"
#include "vizapp/loadbalance.h"

#ifndef SV_DIGEST_PIN_FILE
#error "SV_DIGEST_PIN_FILE must point at tests/integration/digest_pins.txt"
#endif

namespace sv::harness {
namespace {

using namespace sv::literals;

bool g_update_pins = false;

/// One recomputed workload outcome.
struct PinnedRun {
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

/// The pin file: `name events digest` per line, '#' comments, sorted by
/// name so regeneration diffs cleanly.
std::map<std::string, PinnedRun> read_pins() {
  std::map<std::string, PinnedRun> pins;
  std::ifstream in(SV_DIGEST_PIN_FILE);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name;
    PinnedRun run;
    ls >> name >> run.events >> run.digest;
    pins[name] = run;
  }
  return pins;
}

void write_pins(const std::map<std::string, PinnedRun>& pins) {
  std::ofstream out(SV_DIGEST_PIN_FILE);
  out << "# Golden (events_fired, trace_digest) pins per seeded workload.\n"
      << "# Captured on the pre-timing-wheel heap engine; see\n"
      << "# digest_pins_test.cc for the regeneration policy.\n";
  for (const auto& [name, run] : pins) {
    out << name << ' ' << run.events << ' ' << run.digest << '\n';
  }
}

/// Checks one recomputed run against its pin (or records it in update
/// mode). `variant` distinguishes queue implementations; both must match
/// the single pinned value.
void expect_pin(const std::string& name, const std::string& variant,
                const PinnedRun& got) {
  static std::map<std::string, PinnedRun> pins = read_pins();
  if (g_update_pins) {
    auto it = pins.find(name);
    if (it == pins.end()) {
      pins[name] = got;
      write_pins(pins);
    } else {
      ASSERT_EQ(it->second.events, got.events)
          << name << " (" << variant << ") diverges within one update run";
      ASSERT_EQ(it->second.digest, got.digest)
          << name << " (" << variant << ") diverges within one update run";
    }
    return;
  }
  auto it = pins.find(name);
  ASSERT_NE(it, pins.end())
      << "no pin for " << name
      << " — run digest_pins_test --update-pins and review the diff";
  EXPECT_EQ(it->second.events, got.events)
      << name << " [" << variant << "]: event count drifted from the pin";
  EXPECT_EQ(it->second.digest, got.digest)
      << name << " [" << variant
      << "]: trace digest drifted from the pin — the engine no longer "
         "executes the pinned event sequence";
}

/// Fig 4-style seeded ping-pong on the detailed protocol machinery.
PinnedRun fig04_pingpong(sim::QueueKind kind, net::Transport tr) {
  sim::Simulation s(kind);
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("pong", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    for (int i = 0; i < 20; ++i) {
      a->send(net::Message{.bytes = 4096});
      a->recv();
    }
    a->close_send();
  });
  s.run();
  return {s.events_fired(), s.engine().trace_digest()};
}

/// Fig 8-style paced complete updates with partial-update probes.
PinnedRun fig08_paced(sim::QueueKind kind, net::Transport tr) {
  VizWorkloadConfig cfg;
  cfg.transport = tr;
  cfg.image_bytes = 2_MiB;
  cfg.block_bytes = 128_KiB;
  cfg.cluster_nodes = 16;
  cfg.seed = 42;
  cfg.queue_kind = kind;
  const auto r = run_paced_updates(cfg, 4.0, 4, 1);
  return {r.events_fired, r.trace_digest};
}

/// Fig 10-style round-robin load balancing with a statically slow worker.
PinnedRun fig10_balance(sim::QueueKind kind, net::Transport tr,
                        std::uint64_t block_bytes) {
  viz::LoadBalanceConfig cfg;
  cfg.transport = tr;
  cfg.total_bytes = 1_MiB;
  cfg.block_bytes = block_bytes;
  cfg.policy = dc::SchedPolicy::kRoundRobin;
  cfg.slow_worker = 1;
  cfg.slow_factor = 4;
  cfg.compute = PerByteCost::nanos_per_byte(18);
  cfg.seed = 7;
  cfg.queue_kind = kind;
  const auto r = viz::run_load_balance(cfg);
  return {r.events_fired, r.trace_digest};
}

/// Scale pin: a 128-node open-loop run over a k=8 fat-tree with faults,
/// churn, and incast redirection all active (DESIGN.md §13). Much smaller
/// than the scale_replay_test battery, but through the identical stack, so
/// cross-commit drift in topology routing, mux batching, or arrival math
/// trips this pin mechanically.
PinnedRun scale_openloop(sim::QueueKind kind, net::Transport tr) {
  OpenLoopConfig cfg;
  cfg.transport = tr;
  cfg.cluster_nodes = 128;
  cfg.topology = net::TopologySpec::fat_tree(8, 2);
  cfg.seed = 404;
  cfg.clients = 128'000;
  cfg.arrivals.kind = ArrivalKind::kMmpp;
  cfg.arrivals.rate_per_sec = 1'000.0;
  cfg.update_bytes = 2048;
  cfg.fanout = 4;
  cfg.incast_fraction = 0.1;
  cfg.hot_node = 5;
  cfg.churn_per_sec = 30.0;
  cfg.duration = SimTime::milliseconds(10);
  cfg.faults.all_links.loss = 0.01;
  cfg.faults.all_links.max_jitter = SimTime::microseconds(20);
  cfg.queue_kind = kind;
  const auto r = run_open_loop(cfg);
  return {r.events_fired, r.trace_digest};
}

/// Runs `make_run` on every queue implementation and checks each against
/// the same pin.
template <typename F>
void check_all_queues(const std::string& name, F make_run) {
  expect_pin(name, "timing_wheel", make_run(sim::QueueKind::kTimingWheel));
  expect_pin(name, "reference_heap",
             make_run(sim::QueueKind::kReferenceHeap));
}

TEST(DigestPins, Fig04PingPongTcp) {
  check_all_queues("fig04_pingpong_tcp", [](sim::QueueKind k) {
    return fig04_pingpong(k, net::Transport::kKernelTcp);
  });
}

TEST(DigestPins, Fig04PingPongSocketVia) {
  check_all_queues("fig04_pingpong_svia", [](sim::QueueKind k) {
    return fig04_pingpong(k, net::Transport::kSocketVia);
  });
}

TEST(DigestPins, Fig08PacedUpdatesTcp) {
  check_all_queues("fig08_paced_tcp", [](sim::QueueKind k) {
    return fig08_paced(k, net::Transport::kKernelTcp);
  });
}

TEST(DigestPins, Fig08PacedUpdatesSocketVia) {
  check_all_queues("fig08_paced_svia", [](sim::QueueKind k) {
    return fig08_paced(k, net::Transport::kSocketVia);
  });
}

TEST(DigestPins, Fig10BalanceTcp) {
  check_all_queues("fig10_balance_tcp", [](sim::QueueKind k) {
    return fig10_balance(k, net::Transport::kKernelTcp, 16 * 1024);
  });
}

TEST(DigestPins, Fig10BalanceSocketVia) {
  check_all_queues("fig10_balance_svia", [](sim::QueueKind k) {
    return fig10_balance(k, net::Transport::kSocketVia, 2 * 1024);
  });
}

TEST(DigestPins, ScaleOpenLoopSocketVia) {
  check_all_queues("scale_openloop_svia", [](sim::QueueKind k) {
    return scale_openloop(k, net::Transport::kSocketVia);
  });
}

TEST(DigestPins, ScaleOpenLoopTcp) {
  check_all_queues("scale_openloop_tcp", [](sim::QueueKind k) {
    return scale_openloop(k, net::Transport::kKernelTcp);
  });
}

}  // namespace
}  // namespace sv::harness

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-pins") {
      sv::harness::g_update_pins = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  ::testing::InitGoogleTest(&filtered_argc, args.data());
  return RUN_ALL_TESTS();
}
