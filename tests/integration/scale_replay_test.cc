// Scale-out determinism replay (DESIGN.md §13): large open-loop runs over
// an explicit fat-tree — with faults, churn, and incast redirection active
// — must replay bit-identically from (config, seed) on both event-queue
// implementations. This is the scale companion to determinism_replay_test:
// thousands of processes, hundreds of thousands of modeled clients, and
// the full topology/mux stack in one digest.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/openloop.h"
#include "net/fault.h"
#include "net/topology.h"

namespace sv::harness {
namespace {

/// The 128-node workload: k=8 fat-tree at exactly full fill, MMPP arrivals
/// with a flash crowd, lossy jittery links, one mid-run node slowdown,
/// connection churn, and mild incast. Everything that could perturb the
/// schedule is on at once.
OpenLoopConfig scale_cfg_128(net::Transport tr) {
  OpenLoopConfig cfg;
  cfg.transport = tr;
  cfg.cluster_nodes = 128;
  cfg.topology = net::TopologySpec::fat_tree(8, 2);
  cfg.seed = 2026;
  cfg.clients = 128'000;
  cfg.arrivals.kind = ArrivalKind::kMmpp;
  cfg.arrivals.rate_per_sec = 1'500.0;
  cfg.arrivals.diurnal_period = SimTime::milliseconds(20);
  cfg.arrivals.diurnal_amplitude = 0.4;
  cfg.arrivals.flash_crowds.push_back(
      {SimTime::milliseconds(10), SimTime::milliseconds(5), 3});
  cfg.update_bytes = 2048;
  cfg.fanout = 4;
  cfg.incast_fraction = 0.1;
  cfg.hot_node = 17;
  cfg.churn_per_sec = 40.0;
  cfg.duration = SimTime::milliseconds(25);
  cfg.faults.all_links.loss = 0.01;
  cfg.faults.all_links.max_jitter = SimTime::microseconds(20);
  cfg.faults.nodes.push_back(
      {/*node=*/9, /*start=*/SimTime::milliseconds(8),
       /*duration=*/SimTime::milliseconds(6), /*slow_factor=*/3});
  return cfg;
}

void expect_identical(const OpenLoopResult& a, const OpenLoopResult& b,
                      const char* what) {
  EXPECT_EQ(a.offered, b.offered) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.events_fired, b.events_fired) << what;
  EXPECT_EQ(a.trace_digest, b.trace_digest) << what;
  EXPECT_EQ(a.end_time, b.end_time) << what;
}

TEST(ScaleReplay, FatTree128WithFaultsReplaysBitIdentically) {
  OpenLoopConfig cfg = scale_cfg_128(net::Transport::kSocketVia);

  cfg.queue_kind = sim::QueueKind::kTimingWheel;
  const OpenLoopResult wheel_a = run_open_loop(cfg);
  const OpenLoopResult wheel_b = run_open_loop(cfg);
  ASSERT_GT(wheel_a.offered, 1'000u);
  ASSERT_GT(wheel_a.delivered, 0u);
  expect_identical(wheel_a, wheel_b, "timing wheel, same seed");

  cfg.queue_kind = sim::QueueKind::kReferenceHeap;
  const OpenLoopResult heap_a = run_open_loop(cfg);
  const OpenLoopResult heap_b = run_open_loop(cfg);
  expect_identical(heap_a, heap_b, "reference heap, same seed");

  // The two queue implementations must execute the very same schedule.
  expect_identical(wheel_a, heap_a, "timing wheel vs reference heap");
}

TEST(ScaleReplay, FatTree128SeedChangesTheSchedule) {
  OpenLoopConfig cfg = scale_cfg_128(net::Transport::kSocketVia);
  const OpenLoopResult base = run_open_loop(cfg);
  cfg.seed = 2027;
  const OpenLoopResult other = run_open_loop(cfg);
  EXPECT_NE(base.trace_digest, other.trace_digest);
}

TEST(ScaleReplay, FatTree256HundredThousandClientsCompletes) {
  // The ISSUE acceptance run: 256 hosts on a k=12 fat-tree (partial fill),
  // >=100k modeled clients, deterministic across two same-seed runs.
  OpenLoopConfig cfg;
  cfg.cluster_nodes = 256;
  cfg.topology = net::TopologySpec::fat_tree(12, 4);
  cfg.seed = 31;
  cfg.clients = 120'000;
  cfg.arrivals.rate_per_sec = 1'200.0;
  cfg.update_bytes = 1024;
  cfg.fanout = 4;
  cfg.duration = SimTime::milliseconds(20);

  const OpenLoopResult a = run_open_loop(cfg);
  const OpenLoopResult b = run_open_loop(cfg);
  ASSERT_GT(a.offered, 2'000u);
  ASSERT_GT(a.delivered, 0u);
  expect_identical(a, b, "256-node fat-tree, same seed");
}

}  // namespace
}  // namespace sv::harness
