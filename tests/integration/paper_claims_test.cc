// Cross-layer integration tests pinning the paper's headline claims on the
// executed system (scaled down where necessary to keep the suite fast).
#include <gtest/gtest.h>

#include "harness/vizbench.h"
#include "vizapp/loadbalance.h"
#include "vizapp/policy.h"
#include "vizapp/server.h"

namespace sv {
namespace {

using namespace sv::literals;

// --- Claim (Fig 2): for a given required bandwidth, the high-performance
// substrate needs a much smaller message size; and at TCP's message size,
// SocketVIA has lower latency both directly and after repartitioning. ---
TEST(PaperClaims, Figure2MessageSizeAndLatencyChain) {
  const net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  const double required_mbps = 300.0;
  const auto u1 = tcp.min_block_for_bandwidth(required_mbps);
  const auto u2 = svia.min_block_for_bandwidth(required_mbps);
  ASSERT_LT(u2, u1);
  // L1: TCP latency at U1. L2: SocketVIA latency at U1. L3: at U2.
  const auto l1 = tcp.one_way(u1);
  const auto l2 = svia.one_way(u1);
  const auto l3 = svia.one_way(u2);
  EXPECT_LT(l2, l1);
  EXPECT_LT(l3, l2);
}

// --- Claim (Fig 7 mechanism): at a rate TCP can barely sustain, the
// repartitioned SocketVIA pipeline delivers partial updates several times
// faster. Scaled: 4 MiB image, 2 updates/sec-equivalent rate. ---
TEST(PaperClaims, RepartitioningCutsPartialLatency) {
  const std::uint64_t image = 4_MiB;
  const double ups = 10.0;  // scaled rate for the smaller image
  const net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  const auto tcp_block = viz::block_for_update_rate(tcp, ups, image);
  const auto dr_block = viz::block_for_update_rate(svia, ups, image);
  ASSERT_LT(tcp_block, image);
  ASSERT_LT(dr_block, tcp_block);

  harness::VizWorkloadConfig cfg;
  cfg.image_bytes = image;
  cfg.transport = net::Transport::kKernelTcp;
  cfg.block_bytes = tcp_block;
  const auto tcp_r = harness::run_paced_updates(cfg, ups, 4, 1);
  cfg.transport = net::Transport::kSocketVia;
  cfg.block_bytes = dr_block;
  const auto dr_r = harness::run_paced_updates(cfg, ups, 4, 1);
  ASSERT_FALSE(tcp_r.partial_latencies.empty());
  ASSERT_FALSE(dr_r.partial_latencies.empty());
  EXPECT_GT(tcp_r.partial_latencies.mean(),
            dr_r.partial_latencies.mean() * 3.0);
}

// --- Claim (Fig 8 mechanism): at a 100 us latency bound TCP has no
// feasible block size while SocketVIA does, and SocketVIA's feasible
// configuration actually meets the bound end to end. ---
TEST(PaperClaims, TcpDropsOutAtTightLatencyBound) {
  const net::CostModel tcp{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia{net::CalibrationProfile::socket_via()};
  const auto tcp_block = viz::block_for_latency_bound(
      tcp, 100_us, 3, viz::default_hop_overhead(tcp));
  const auto svia_block = viz::block_for_latency_bound(
      svia, 100_us, 3, viz::default_hop_overhead(svia));
  EXPECT_EQ(tcp_block, 0u);
  ASSERT_GT(svia_block, 0u);

  harness::VizWorkloadConfig cfg;
  cfg.transport = net::Transport::kSocketVia;
  cfg.image_bytes = 4_MiB;
  cfg.block_bytes = svia_block;
  const auto measured = harness::measure_idle_partial_latency(cfg);
  EXPECT_LE(measured.us(), 140.0);  // bound + scheduling noise allowance
}

// --- Claim (Fig 10): the balancer's blindness window scales with
// slow-factor x block size, giving SocketVIA's 2 KB blocks ~8x faster
// reaction than TCP's 16 KB blocks. ---
TEST(PaperClaims, ReactionTimeRatioMatchesBlockRatio) {
  viz::LoadBalanceConfig cfg;
  cfg.total_bytes = 1_MiB;
  cfg.policy = dc::SchedPolicy::kRoundRobin;
  cfg.slow_worker = 2;
  cfg.slow_factor = 4;
  cfg.transport = net::Transport::kKernelTcp;
  cfg.block_bytes = 16_KiB;
  const auto tcp = viz::run_load_balance(cfg);
  cfg.transport = net::Transport::kSocketVia;
  cfg.block_bytes = 2_KiB;
  const auto svia = viz::run_load_balance(cfg);
  const double ratio =
      tcp.slow_service_times.mean() / svia.slow_service_times.mean();
  EXPECT_NEAR(ratio, 8.0, 2.5);
}

// --- Claim (Fig 11): demand-driven scheduling masks heterogeneity for
// both transports: with DD, TCP's execution time is within ~15% of
// SocketVIA's despite the raw transport gap, in the compute-bound regime.
TEST(PaperClaims, DemandDrivenClosesTransportGap) {
  viz::LoadBalanceConfig cfg;
  cfg.total_bytes = 4_MiB;
  cfg.policy = dc::SchedPolicy::kDemandDriven;
  cfg.compute = PerByteCost::nanos_per_byte(60);
  cfg.slow_worker = 0;
  cfg.slow_factor = 4;
  cfg.slow_probability = 0.5;
  cfg.seed = 5;
  cfg.transport = net::Transport::kSocketVia;
  cfg.block_bytes = 2_KiB;
  const auto svia = viz::run_load_balance(cfg);
  cfg.transport = net::Transport::kKernelTcp;
  cfg.block_bytes = 16_KiB;
  const auto tcp = viz::run_load_balance(cfg);
  const double gap = std::abs(tcp.exec_time.us() - svia.exec_time.us()) /
                     svia.exec_time.us();
  EXPECT_LT(gap, 0.15);
}

// --- Claim (Sec 5.1): micro-benchmark headline numbers, measured through
// the executed sockets layer, not the closed-form model. ---
TEST(PaperClaims, MicroBenchmarkHeadlines) {
  auto one_way = [](net::Transport tr) {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster);
    SimTime t;
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, tr);
      const SimTime t0 = s.now();
      s.spawn("rx", [&, b = std::move(b), t0]() mutable {
        b->recv();
        t = s.now() - t0;
      });
      a->send(net::Message{.bytes = 4});
    });
    s.run();
    return t;
  };
  const double tcp_us = one_way(net::Transport::kKernelTcp).us();
  const double svia_us = one_way(net::Transport::kSocketVia).us();
  EXPECT_NEAR(svia_us, 9.5, 1.0);       // "as low as 9.5 us"
  EXPECT_NEAR(tcp_us / svia_us, 5.0, 1.0);  // "factor of five"
}

}  // namespace
}  // namespace sv
