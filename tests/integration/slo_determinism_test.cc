// Determinism of the closed-loop SLO control plane, end to end
// (DESIGN.md §15): with the controller installed, a seeded open-loop run
// under a node-stall fault plan must replay bit-identically — same event
// count, same trace digest, and a byte-identical controller action log —
// and must make the *same decisions at the same sim times* on both event
// queue implementations. Control actions are scheduled state changes like
// any other, so if any decision read wall clock, iteration order, or
// sampling noise, this test is the tripwire.
#include <gtest/gtest.h>

#include <string>

#include "harness/openloop.h"

namespace sv::harness {
namespace {

SloControlConfig small_slo() {
  SloControlConfig slo;
  slo.window = SimTime::milliseconds(2);
  slo.controller.targets.p99_update_latency = SimTime::milliseconds(5);
  slo.controller.band_high_pct = 100;
  slo.controller.band_low_pct = 60;
  slo.controller.violate_windows = 2;
  slo.controller.recover_windows = 4;
  slo.controller.cooldown = SimTime::milliseconds(6);
  slo.controller.min_window_samples = 4;
  slo.controller.demote_latency_pct = 150;
  slo.controller.demote_windows = 2;
  slo.controller.max_demoted = 1;
  slo.controller.demote_hold = SimTime::milliseconds(30);
  return slo;
}

OpenLoopConfig stalled_config(sim::QueueKind qk) {
  OpenLoopConfig cfg;
  cfg.transport = net::Transport::kSocketVia;
  cfg.cluster_nodes = 8;
  cfg.topology = net::TopologySpec::single_crossbar();
  cfg.seed = 7;
  cfg.queue_kind = qk;
  cfg.clients = 4'000;
  cfg.arrivals.rate_per_sec = 1'000.0;
  cfg.update_bytes = 512;
  cfg.fanout = 2;
  cfg.duration = SimTime::milliseconds(120);
  cfg.classes.push_back({"interactive", 1, 512, /*sheddable=*/false});
  cfg.classes.push_back({"bulk", 2, 1'024, /*sheddable=*/true});
  // Node 1 fully stalls across [10 ms, 40 ms): the controller must notice
  // the silence and demote it, then promote it after probation.
  net::NodeFault stall;
  stall.node = 1;
  stall.start = SimTime::milliseconds(10);
  stall.duration = SimTime::milliseconds(30);
  stall.slow_factor = 0;
  cfg.faults.nodes = {stall};
  return cfg;
}

TEST(SloDeterminism, ControlledRunReplaysBitIdentically) {
  const SloControlConfig slo = small_slo();
  OpenLoopConfig cfg = stalled_config(sim::QueueKind::kTimingWheel);
  cfg.slo = &slo;
  const OpenLoopResult a = run_open_loop(cfg);
  const OpenLoopResult b = run_open_loop(cfg);

  // The controller actually did something under this fault plan.
  ASSERT_GE(a.slo_demotions, 1u) << "the stalled node must be demoted";
  ASSERT_GE(a.slo_promotions, 1u) << "probation must end within the run";
  ASSERT_FALSE(a.slo_action_log.empty());

  // Replay identity: schedule, measurements, and every decision.
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.throttled, b.throttled);
  EXPECT_EQ(a.slo_action_log, b.slo_action_log);
  EXPECT_EQ(a.final_admit_permille, b.final_admit_permille);
  ASSERT_EQ(a.update_latency.count(), b.update_latency.count());
  EXPECT_EQ(a.update_latency.raw(), b.update_latency.raw());
}

TEST(SloDeterminism, BothQueueKindsMakeIdenticalDecisions) {
  const SloControlConfig slo = small_slo();
  OpenLoopConfig wheel = stalled_config(sim::QueueKind::kTimingWheel);
  wheel.slo = &slo;
  OpenLoopConfig heap = stalled_config(sim::QueueKind::kReferenceHeap);
  heap.slo = &slo;
  const OpenLoopResult a = run_open_loop(wheel);
  const OpenLoopResult b = run_open_loop(heap);
  ASSERT_FALSE(a.slo_action_log.empty());
  // The queue implementation is invisible to the control plane: same
  // decisions at the same sim times, same schedule digest.
  EXPECT_EQ(a.slo_action_log, b.slo_action_log);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.throttled, b.throttled);
}

TEST(SloDeterminism, UncontrolledDigestIsUntouchedByControlCodePaths) {
  // The control plane is opt-in: a config without `slo` runs with no
  // snapshot pump, no admission gate and no throttled/action output, and
  // stays self-consistent across replays (the digest-pin safety property;
  // the pre-existing pins in digest_pins.txt pin the exact historical
  // values for class-free configs).
  OpenLoopConfig cfg = stalled_config(sim::QueueKind::kTimingWheel);
  const OpenLoopResult a = run_open_loop(cfg);
  const OpenLoopResult b = run_open_loop(cfg);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.throttled, 0u);
  EXPECT_TRUE(a.slo_action_log.empty());
}

}  // namespace
}  // namespace sv::harness
