// RegCache contracts (DESIGN.md §14): LRU eviction order is a pure
// function of the access sequence (deterministic across runs and seeds),
// capacity 0 degenerates to register-on-the-fly, and cache hits charge
// zero registration bytes.
#include "mem/reg_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mem/copy_policy.h"
#include "obs/hub.h"

namespace sv::mem {
namespace {

RegCache make_cache(obs::Hub* hub, std::size_t capacity) {
  RegCache::Config cfg;
  cfg.capacity_regions = capacity;
  return RegCache(hub, /*node=*/0, cfg);
}

TEST(RegCacheTest, HitRefreshesRecencyAndPinsNothing) {
  obs::Hub hub;
  RegCache cache = make_cache(&hub, 3);
  const SimTime t = SimTime::zero();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto r = cache.lookup(t, id, 4096);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.registered_bytes, 4096u);
  }
  // Touch 1: it becomes MRU, so inserting 4 must evict 2 (the LRU).
  const auto hit = cache.lookup(t, 1, 4096);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.registered_bytes, 0u);
  EXPECT_TRUE(hit.evicted_ids.empty());

  const auto miss = cache.lookup(t, 4, 4096);
  EXPECT_FALSE(miss.hit);
  ASSERT_EQ(miss.evicted_ids.size(), 1u);
  EXPECT_EQ(miss.evicted_ids[0], 2u);
  EXPECT_EQ((std::vector<std::uint64_t>{4, 1, 3}), cache.mru_order());

  EXPECT_EQ(hub.registry.counter_value("mem.regcache_hits{cache=regcache}"),
            1u);
  EXPECT_EQ(hub.registry.counter_value("mem.regcache_misses{cache=regcache}"),
            4u);
  EXPECT_EQ(
      hub.registry.counter_value("mem.regcache_evictions{cache=regcache}"),
      1u);
}

TEST(RegCacheTest, HitChargesZeroRegistrationBytes) {
  obs::Hub hub;
  RegCache cache = make_cache(&hub, 8);
  const SimTime t = SimTime::zero();
  (void)cache.lookup(t, 7, 65536);
  const std::uint64_t after_miss =
      hub.registry.counter_value("mem.registered_bytes");
  EXPECT_EQ(after_miss, 65536u);
  for (int i = 0; i < 10; ++i) {
    const auto r = cache.lookup(t, 7, 65536);
    EXPECT_TRUE(r.hit);
  }
  EXPECT_EQ(hub.registry.counter_value("mem.registered_bytes"), after_miss);
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 1u);
}

TEST(RegCacheTest, SmallerRequestHitsLargerResidentEntry) {
  obs::Hub hub;
  RegCache cache = make_cache(&hub, 4);
  const SimTime t = SimTime::zero();
  (void)cache.lookup(t, 5, 65536);
  EXPECT_TRUE(cache.lookup(t, 5, 1024).hit);
  // A larger request than the pinned extent must re-pin (miss + evict).
  const auto r = cache.lookup(t, 5, 131072);
  EXPECT_FALSE(r.hit);
  ASSERT_EQ(r.evicted_ids.size(), 1u);
  EXPECT_EQ(r.evicted_ids[0], 5u);
  EXPECT_EQ(r.registered_bytes, 131072u);
  EXPECT_EQ(cache.pinned_bytes(), 131072u);
}

TEST(RegCacheTest, EvictionOrderIsDeterministicAcrossSeeds) {
  // Whatever the (seeded) access sequence, two replays of it produce
  // bit-identical eviction sequences and final MRU order: eviction order
  // is a function of accesses alone, never of hashing or wall clock.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng gen(seed);
    std::vector<std::uint64_t> accesses;
    for (int i = 0; i < 400; ++i) {
      accesses.push_back(1 + gen.next_below(32));
    }
    std::vector<std::vector<std::uint64_t>> evictions(2);
    std::vector<std::vector<std::uint64_t>> final_order(2);
    for (int run = 0; run < 2; ++run) {
      obs::Hub hub;
      RegCache cache = make_cache(&hub, 8);
      for (const std::uint64_t id : accesses) {
        const auto r = cache.lookup(SimTime::zero(), id, 4096);
        for (const std::uint64_t e : r.evicted_ids) {
          evictions[static_cast<std::size_t>(run)].push_back(e);
        }
      }
      final_order[static_cast<std::size_t>(run)] = cache.mru_order();
    }
    EXPECT_EQ(evictions[0], evictions[1]) << "seed " << seed;
    EXPECT_EQ(final_order[0], final_order[1]) << "seed " << seed;
    EXPECT_FALSE(evictions[0].empty()) << "seed " << seed;
  }
}

TEST(RegCacheTest, FlushUnpinsEverything) {
  obs::Hub hub;
  RegCache cache = make_cache(&hub, 4);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    (void)cache.lookup(SimTime::zero(), id, 1024);
  }
  EXPECT_EQ(cache.resident(), 4u);
  EXPECT_EQ(cache.flush(SimTime::zero()), 4096u);
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
  EXPECT_EQ(hub.registry.counter_value("mem.deregistrations"), 4u);
  EXPECT_EQ(hub.registry.counter_value("mem.deregistered_bytes"), 4096u);
}

TEST(RegCacheTest, CapacityZeroDegeneratesToRegisterOnTheFly) {
  // Same acquire/release sequence through a capacity-0 kRegCache policy
  // and a kRegisterOnFly policy: identical ledger counters, and identical
  // cost except the cache's per-lookup overhead.
  const std::uint64_t kBytes = 8192;
  const int kMsgs = 16;

  obs::Hub hub_cache;
  CopyPolicyConfig cache_cfg;
  cache_cfg.kind = CopyPolicyKind::kRegCache;
  cache_cfg.cache.capacity_regions = 0;
  CopyPolicy cache_policy(&hub_cache, 0, cache_cfg);

  obs::Hub hub_fly;
  CopyPolicyConfig fly_cfg;
  fly_cfg.kind = CopyPolicyKind::kRegisterOnFly;
  CopyPolicy fly_policy(&hub_fly, 0, fly_cfg);

  SimTime cache_cost = SimTime::zero();
  SimTime fly_cost = SimTime::zero();
  for (int i = 0; i < kMsgs; ++i) {
    const std::uint64_t id = 100 + static_cast<std::uint64_t>(i % 4);
    const auto vc = cache_policy.acquire(SimTime::zero(), id, kBytes);
    const auto vf = fly_policy.acquire(SimTime::zero(), id, kBytes);
    EXPECT_TRUE(vc.needs_release);
    EXPECT_TRUE(vf.needs_release);
    EXPECT_EQ(vc.registered_bytes, vf.registered_bytes);
    cache_cost = cache_cost + vc.cpu_cost +
                 cache_policy.release(SimTime::zero(), id, kBytes);
    fly_cost = fly_cost + vf.cpu_cost +
               fly_policy.release(SimTime::zero(), id, kBytes);
  }
  for (const char* name :
       {"mem.registrations", "mem.registered_bytes", "mem.deregistrations",
        "mem.deregistered_bytes"}) {
    EXPECT_EQ(hub_cache.registry.counter_value(name),
              hub_fly.registry.counter_value(name))
        << name;
  }
  // No hits ever, no residency: every lookup re-pins.
  EXPECT_EQ(hub_cache.registry.counter_value("mem.registrations"),
            static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(cache_cost.ns(),
            fly_cost.ns() + kMsgs * cache_cfg.cache_lookup.ns());
}

}  // namespace
}  // namespace sv::mem
