// CopyPolicy contracts (DESIGN.md §14): each policy kind charges exactly
// its decision-table row — eager copies bill the copy ledger, pin policies
// bill registrations, the static default bills nothing — and the
// registration-cost scale knob scales only pin/unpin work.
#include "mem/copy_policy.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/hub.h"

namespace sv::mem {
namespace {

TEST(CopyPolicyTest, NameParseRoundTrip) {
  for (auto kind :
       {CopyPolicyKind::kStaticPool, CopyPolicyKind::kEagerCopy,
        CopyPolicyKind::kRegisterOnFly, CopyPolicyKind::kRegCache}) {
    CopyPolicyKind parsed = CopyPolicyKind::kStaticPool;
    ASSERT_TRUE(parse_copy_policy(copy_policy_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  CopyPolicyKind out = CopyPolicyKind::kEagerCopy;
  EXPECT_FALSE(parse_copy_policy("bounce", &out));
  EXPECT_EQ(out, CopyPolicyKind::kEagerCopy);  // untouched on failure
}

TEST(CopyPolicyTest, StaticPoolChargesNothing) {
  obs::Hub hub;
  CopyPolicy policy(&hub, 0, CopyPolicyConfig{});
  const auto v = policy.acquire(SimTime::zero(), 1, 65536);
  EXPECT_EQ(v.cpu_cost, SimTime::zero());
  EXPECT_EQ(v.copied_bytes, 0u);
  EXPECT_EQ(v.registered_bytes, 0u);
  EXPECT_FALSE(v.needs_release);
  EXPECT_EQ(hub.registry.counter_value("mem.copies"), 0u);
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 0u);
}

TEST(CopyPolicyTest, EagerCopyBillsCopyLedgerAndLinearCost) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kEagerCopy;
  CopyPolicy policy(&hub, 0, cfg);
  const std::uint64_t bytes = 4096;
  const auto v = policy.acquire(SimTime::zero(), 1, bytes);
  EXPECT_EQ(v.cpu_cost,
            cfg.copy_fixed + cfg.copy_per_byte.for_bytes(bytes));
  EXPECT_EQ(v.copied_bytes, bytes);
  EXPECT_FALSE(v.needs_release);
  EXPECT_EQ(hub.registry.counter_value("mem.copies"), 1u);
  EXPECT_EQ(hub.registry.counter_value("mem.copy_bytes"), bytes);
  EXPECT_EQ(hub.registry.counter_value(
                "mem.copies{at=policy.stage_copy}"),
            1u);
  // No pinning on the eager path, and release() is a no-op.
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 0u);
  EXPECT_EQ(policy.release(SimTime::zero(), 1, bytes), SimTime::zero());
}

TEST(CopyPolicyTest, RegisterOnFlyPinsThenUnpins) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kRegisterOnFly;
  CopyPolicy policy(&hub, 0, cfg);
  const std::uint64_t bytes = 65536;
  const auto v = policy.acquire(SimTime::zero(), 1, bytes);
  EXPECT_EQ(v.cpu_cost, cfg.pin_fixed + cfg.pin_per_byte.for_bytes(bytes));
  EXPECT_EQ(v.registered_bytes, bytes);
  EXPECT_EQ(v.copied_bytes, 0u);
  EXPECT_TRUE(v.needs_release);
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 1u);
  EXPECT_EQ(hub.registry.counter_value("mem.registered_bytes"), bytes);

  EXPECT_EQ(policy.release(SimTime::zero(), 1, bytes), cfg.unpin_fixed);
  EXPECT_EQ(hub.registry.counter_value("mem.deregistrations"), 1u);
  EXPECT_EQ(hub.registry.counter_value("mem.deregistered_bytes"), bytes);
  // Zero copies: the whole point of pinning in place.
  EXPECT_EQ(hub.registry.counter_value("mem.copies"), 0u);
}

TEST(CopyPolicyTest, RegCostScaleScalesPinAndUnpinOnly) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kRegisterOnFly;
  cfg.reg_cost_scale_pct = 400;
  CopyPolicy policy(&hub, 0, cfg);
  const std::uint64_t bytes = 1024;
  const auto v = policy.acquire(SimTime::zero(), 1, bytes);
  const SimTime base = cfg.pin_fixed + cfg.pin_per_byte.for_bytes(bytes);
  EXPECT_EQ(v.cpu_cost.ns(), base.ns() * 4);
  EXPECT_EQ(policy.release(SimTime::zero(), 1, bytes).ns(),
            cfg.unpin_fixed.ns() * 4);
}

TEST(CopyPolicyTest, RegCacheHitSkipsPinMissPays) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kRegCache;
  cfg.cache.capacity_regions = 4;
  CopyPolicy policy(&hub, 0, cfg);
  const std::uint64_t bytes = 65536;

  const auto miss = policy.acquire(SimTime::zero(), 9, bytes);
  EXPECT_EQ(miss.cpu_cost, cfg.cache_lookup + cfg.pin_fixed +
                               cfg.pin_per_byte.for_bytes(bytes));
  EXPECT_EQ(miss.registered_bytes, bytes);
  EXPECT_FALSE(miss.needs_release);  // stays resident

  const auto hit = policy.acquire(SimTime::zero(), 9, bytes);
  EXPECT_EQ(hit.cpu_cost, cfg.cache_lookup);
  EXPECT_EQ(hit.registered_bytes, 0u);
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 1u);
  ASSERT_NE(policy.cache(), nullptr);
  EXPECT_EQ(policy.cache()->resident(), 1u);
}

TEST(CopyPolicyTest, RegCacheAnonymousBufferPinsPerMessage) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kRegCache;
  cfg.cache.capacity_regions = 4;
  CopyPolicy policy(&hub, 0, cfg);
  // buffer id 0 = anonymous one-shot: never cached, so two sends don't
  // alias each other into a bogus hit.
  for (int i = 0; i < 2; ++i) {
    const auto v = policy.acquire(SimTime::zero(), 0, 4096);
    EXPECT_TRUE(v.needs_release);
    EXPECT_EQ(v.registered_bytes, 4096u);
    EXPECT_EQ(policy.release(SimTime::zero(), 0, 4096), cfg.unpin_fixed);
  }
  EXPECT_EQ(policy.cache()->resident(), 0u);
  EXPECT_EQ(hub.registry.counter_value("mem.registrations"), 2u);
  EXPECT_EQ(hub.registry.counter_value("mem.deregistrations"), 2u);
}

TEST(CopyPolicyTest, DecisionCounterTracksPolicyKind) {
  obs::Hub hub;
  CopyPolicyConfig cfg;
  cfg.kind = CopyPolicyKind::kEagerCopy;
  CopyPolicy policy(&hub, 0, cfg);
  for (int i = 0; i < 3; ++i) {
    (void)policy.acquire(SimTime::zero(), 1, 128);
  }
  EXPECT_EQ(hub.registry.counter_value(
                "mem.policy_decisions{policy=eager_copy}"),
            3u);
}

}  // namespace
}  // namespace sv::mem
