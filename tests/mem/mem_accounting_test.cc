// Simulation-level contracts of the memory ledger (DESIGN.md §10):
//  * copy accounting — kernel TCP records exactly two copies per delivered
//    message at BOTH fidelities; every VIA-derived path records zero;
//  * registration accounting — detailed SocketVIA registers descriptor
//    memory, raw VIA registers what the app pins;
//  * determinism — identical runs produce bit-identical mem.* counters;
//  * integrity — materialized payload bytes survive the detailed TCP stack
//    under loss (segmentation, retransmission, reordered reassembly).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mem/buffer_pool.h"
#include "mem/payload.h"
#include "net/fault.h"
#include "sockets/factory.h"

namespace sv {
namespace {

struct PingPongResult {
  std::uint64_t copies = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t messages = 0;
};

PingPongResult run_pingpong(sockets::Fidelity fid, net::Transport tr,
                            int iters, std::uint64_t bytes) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, fid);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("pong", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
      a->recv();
    }
    a->close_send();
  });
  s.run();
  const auto& reg = s.obs().registry;
  return {reg.counter_value("mem.copies"),
          reg.counter_value("mem.copy_bytes"),
          static_cast<std::uint64_t>(2 * iters)};
}

TEST(MemAccountingTest, KernelTcpRecordsTwoCopiesPerMessageBothFidelities) {
  for (auto fid : {sockets::Fidelity::kFast, sockets::Fidelity::kDetailed}) {
    const auto r = run_pingpong(fid, net::Transport::kKernelTcp, 10, 4096);
    EXPECT_EQ(r.copies, 2 * r.messages)
        << "fidelity=" << (fid == sockets::Fidelity::kFast ? "fast"
                                                           : "detailed");
    // One user->kernel and one kernel->user traversal of every byte.
    EXPECT_EQ(r.copy_bytes, 2 * r.messages * 4096);
  }
}

TEST(MemAccountingTest, ViaPathsRecordZeroCopies) {
  EXPECT_EQ(
      run_pingpong(sockets::Fidelity::kFast, net::Transport::kVia, 10, 4096)
          .copies,
      0u);
  for (auto fid : {sockets::Fidelity::kFast, sockets::Fidelity::kDetailed}) {
    EXPECT_EQ(run_pingpong(fid, net::Transport::kSocketVia, 10, 4096).copies,
              0u);
  }
}

TEST(MemAccountingTest, DetailedSocketViaRegistersDescriptorMemory) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("pong", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    a->send(net::Message{.bytes = 1024});
    a->recv();
    a->close_send();
  });
  s.run();
  const auto& reg = s.obs().registry;
  EXPECT_GT(reg.counter_value("mem.registrations"), 0u);
  EXPECT_GT(reg.counter_value("mem.registered_bytes"), 0u);
  EXPECT_EQ(reg.counter_value("mem.copies"), 0u);
}

/// One deterministic workload touching every mem.* counter family: a
/// detailed TCP transfer of pooled, materialized payloads with loss (so
/// segments retransmit) plus a registered pool on the side.
std::string run_mem_workload_json() {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  net::FaultPlan plan;
  plan.links[{0, 1}].loss = 0.02;
  cluster.install_faults(plan, /*seed=*/7);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  s.spawn("app", [&] {
    mem::BufferPool pool(&s.obs(), {.label = "wl", .registered = true});
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("rx", [&s, b = std::move(b)]() mutable {
      while (b->recv()) {
      }
    });
    for (int i = 0; i < 8; ++i) {
      mem::PooledBuffer buf = pool.acquire(8192);
      std::memset(buf.data(), i, buf.size());
      net::Message m;
      m.bytes = buf.size();
      m.payload = std::move(buf).seal();
      a->send(std::move(m));
    }
    a->close_send();
  });
  s.run();
  std::ostringstream os;
  s.obs().registry.write_json(os);
  return os.str();
}

TEST(MemAccountingTest, MemCountersAreDeterministicAcrossIdenticalRuns) {
  const std::string first = run_mem_workload_json();
  const std::string second = run_mem_workload_json();
  EXPECT_EQ(first, second);
  // The workload exercised the families this PR introduced.
  EXPECT_NE(first.find("mem.copies"), std::string::npos);
  EXPECT_NE(first.find("mem.pool_reuse"), std::string::npos);
  EXPECT_NE(first.find("mem.registered_bytes"), std::string::npos);
}

TEST(MemIntegrityTest, PayloadSurvivesDetailedTcpWithLoss) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  net::FaultPlan plan;
  plan.links[{0, 1}].loss = 0.05;  // heavy: forces retransmits
  cluster.install_faults(plan, /*seed=*/3);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  constexpr int kMessages = 6;
  constexpr std::uint64_t kBytes = 20000;  // spans many MSS segments
  std::vector<mem::Payload> received;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) received.push_back(std::move(m->payload));
    });
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> bytes(kBytes);
      for (std::uint64_t j = 0; j < kBytes; ++j) {
        bytes[j] = static_cast<std::byte>((j * 7 + static_cast<unsigned>(i)) &
                                          0xFF);
      }
      net::Message m;
      m.bytes = kBytes;
      m.payload = mem::Payload::copy_of(bytes.data(), kBytes);
      a->send(std::move(m));
    }
    a->close_send();
  });
  s.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    const mem::Payload& p = received[static_cast<std::size_t>(i)];
    ASSERT_EQ(p.size(), kBytes);
    ASSERT_TRUE(p.materialized());
    for (std::uint64_t j = 0; j < kBytes; j += 997) {  // sampled check
      EXPECT_EQ(std::to_integer<unsigned>(p.read_byte(j)),
                (j * 7 + static_cast<unsigned>(i)) & 0xFF)
          << "message " << i << " byte " << j;
    }
  }
}

TEST(MemIntegrityTest, TimingOnlyMessagesStayUnmaterialized) {
  // Messages without payload ride virtual spans through the same stream
  // machinery and come out payload-free — receivers can't mistake timing
  // traffic for data.
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kDetailed);
  bool checked = false;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) {
        EXPECT_EQ(m->bytes, 3000u);
        EXPECT_TRUE(m->payload.empty());
        checked = true;
      }
    });
    a->send(net::Message{.bytes = 3000});
    a->close_send();
  });
  s.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace sv
