// Unit tests for the zero-copy payload layer (DESIGN.md §10): Payload view
// semantics and refcount lifecycle, PayloadQueue streaming, BufferPool
// reuse, and the overflow-safe bounds contract.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "mem/buffer_pool.h"
#include "mem/payload.h"
#include "sim/simulation.h"

namespace sv::mem {
namespace {

Payload patterned(std::size_t n, std::byte start = std::byte{0}) {
  std::vector<std::byte> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::byte>((std::to_integer<unsigned>(start) + i) &
                                      0xFF);
  }
  return Payload::copy_of(bytes.data(), n);
}

TEST(PayloadTest, EmptyAndVirtual) {
  const Payload empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.materialized());

  const Payload v = Payload::virtual_bytes(4096);
  EXPECT_EQ(v.size(), 4096u);
  EXPECT_FALSE(v.materialized());
  EXPECT_FALSE(v.registered());
  // Virtual payloads slice and concat like backed ones — same code path.
  const Payload part = v.slice(1000, 96);
  EXPECT_EQ(part.size(), 96u);
  EXPECT_FALSE(part.materialized());
}

TEST(PayloadTest, SliceSharesStorageWithoutCopying) {
  auto storage = std::make_shared<const std::vector<std::byte>>(
      std::vector<std::byte>(256, std::byte{0x5A}));
  const std::byte* raw = storage->data();
  const Payload p = Payload::wrap(storage);
  const Payload s = p.slice(16, 64);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_TRUE(s.materialized());
  // Same underlying bytes, not a copy.
  EXPECT_EQ(s.contiguous_at(0, 64), raw + 16);
  // Slicing bumped the refcount (wrapper + slice hold it; local variable
  // `storage` is the third).
  EXPECT_EQ(storage.use_count(), 3);
}

TEST(PayloadTest, RefcountKeepsStorageAliveThroughSliceChains) {
  bool freed = false;
  Payload s;
  {
    auto* vec = new std::vector<std::byte>(128, std::byte{0x11});
    Payload::Storage storage(vec, [&freed](const std::vector<std::byte>* p) {
      freed = true;
      delete p;
    });
    Payload p = Payload::wrap(std::move(storage));
    s = p.slice(32, 32).slice(8, 8);  // second-order view
  }
  // The wrapping payload and intermediate views are gone; the final slice
  // alone keeps the bytes alive.
  EXPECT_FALSE(freed);
  EXPECT_EQ(std::to_integer<int>(s.read_byte(0)), 0x11);
  s = Payload{};
  EXPECT_TRUE(freed);
}

TEST(PayloadTest, ConcatChainsAndReadsAcrossSpans) {
  const Payload a = patterned(100, std::byte{0});
  const Payload b = patterned(50, std::byte{100});
  const Payload ab = a.concat(b);
  EXPECT_EQ(ab.size(), 150u);
  EXPECT_EQ(ab.span_count(), 2u);
  for (std::uint64_t i = 0; i < 150; ++i) {
    EXPECT_EQ(std::to_integer<unsigned>(ab.read_byte(i)), i & 0xFF);
  }
  // copy_to gathers across the span boundary.
  std::vector<std::byte> dst(150);
  ab.copy_to(0, dst.data(), 150);
  for (std::uint64_t i = 0; i < 150; ++i) {
    EXPECT_EQ(std::to_integer<unsigned>(dst[i]), i & 0xFF);
  }
  EXPECT_TRUE(ab.content_equals(patterned(150)));
  EXPECT_FALSE(ab.content_equals(patterned(150, std::byte{1})));
}

TEST(PayloadTest, AdjacentSlicesOfSameStorageMerge) {
  const Payload p = patterned(1000);
  // Reassembling consecutive slices (what the TCP receive stream does)
  // collapses back to a single span over the shared storage.
  const Payload joined = p.slice(0, 400).concat(p.slice(400, 600));
  EXPECT_EQ(joined.span_count(), 1u);
  EXPECT_TRUE(joined.content_equals(p));
}

TEST(PayloadTest, BoundsChecksRejectOverflowingRanges) {
  const Payload p = patterned(100);
  EXPECT_THROW(p.slice(0, 101), CheckFailure);
  EXPECT_THROW(p.slice(101, 0), CheckFailure);
  // offset + len wraps std::uint64_t: a naive `offset + len <= size` check
  // would pass this; the subtraction form must reject it.
  const std::uint64_t huge = ~std::uint64_t{0} - 10;
  EXPECT_THROW(p.slice(huge, 50), CheckFailure);
  EXPECT_THROW(p.read_byte(100), CheckFailure);
  std::byte sink[8];
  EXPECT_THROW(p.copy_to(huge, sink, 50), CheckFailure);
  EXPECT_THROW(p.contiguous_at(96, 8), CheckFailure);
}

TEST(PayloadQueueTest, PopsSlicesAcrossPushBoundaries) {
  PayloadQueue q;
  q.push(patterned(100, std::byte{0}));
  q.push(patterned(100, std::byte{100}));
  EXPECT_EQ(q.bytes(), 200u);
  const Payload first = q.pop(150);  // straddles both pushes
  EXPECT_EQ(first.size(), 150u);
  EXPECT_EQ(q.bytes(), 50u);
  const Payload rest = q.pop(50);
  EXPECT_TRUE(q.empty());
  const Payload all = first.concat(rest);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(std::to_integer<unsigned>(all.read_byte(i)), i & 0xFF);
  }
}

TEST(PayloadQueueTest, MixedVirtualAndBackedStreams) {
  PayloadQueue q;
  q.push(Payload::virtual_bytes(8));
  q.push(patterned(32));
  const Payload frame = q.pop(40);
  EXPECT_EQ(frame.size(), 40u);
  EXPECT_FALSE(frame.materialized());  // header span is virtual
  const Payload body = frame.slice(8, 32);
  EXPECT_TRUE(body.materialized());
  EXPECT_TRUE(body.content_equals(patterned(32)));
}

TEST(BufferPoolTest, SealAndDropReturnsChunkForReuse) {
  BufferPool pool(nullptr, {.label = "t"});
  {
    PooledBuffer buf = pool.acquire(64);
    std::memset(buf.data(), 0x42, buf.size());
    Payload p = std::move(buf).seal();
    EXPECT_TRUE(p.materialized());
    EXPECT_EQ(std::to_integer<int>(p.read_byte(63)), 0x42);
    EXPECT_EQ(pool.free_chunks(), 0u);  // payload still holds the chunk
  }
  EXPECT_EQ(pool.free_chunks(), 1u);  // last view dropped -> recycled
  // A slice outliving its parent payload also pins the chunk.
  Payload keeper;
  {
    keeper = std::move(pool.acquire(64)).seal().slice(10, 4);
  }
  EXPECT_EQ(pool.free_chunks(), 0u);
  keeper = Payload{};
  EXPECT_EQ(pool.free_chunks(), 1u);
}

TEST(BufferPoolTest, UnsealedBufferReturnsToPoolToo) {
  BufferPool pool(nullptr, {.label = "t"});
  { PooledBuffer buf = pool.acquire(128); }
  EXPECT_EQ(pool.free_chunks(), 1u);
}

TEST(BufferPoolTest, ReuseIsLifoAndCounted) {
  sim::Simulation s;
  BufferPool pool(&s.obs(), {.label = "t"});
  { Payload p = std::move(pool.acquire(256)).seal(); }
  { Payload p = std::move(pool.acquire(100)).seal(); }  // fits: reuse
  const auto& reg = s.obs().registry;
  EXPECT_EQ(reg.counter_value("mem.pool_alloc"), 1u);
  EXPECT_EQ(reg.counter_value("mem.pool_reuse"), 1u);
  EXPECT_EQ(reg.counter_value("mem.copies"), 0u);  // pooling never copies
}

TEST(BufferPoolTest, RegisteredPoolChargesRegistrationOnce) {
  sim::Simulation s;
  BufferPool pool(&s.obs(), {.label = "reg", .registered = true});
  Payload p = std::move(pool.acquire(512)).seal();
  EXPECT_TRUE(p.registered());
  EXPECT_TRUE(p.slice(8, 16).registered());
  const auto& reg = s.obs().registry;
  EXPECT_EQ(reg.counter_value("mem.registrations"), 1u);
  EXPECT_EQ(reg.counter_value("mem.registered_bytes"), 512u);
  // Reuse of a registered chunk does not re-register.
  p = Payload{};
  Payload q = std::move(pool.acquire(512)).seal();
  EXPECT_EQ(reg.counter_value("mem.registered_bytes"), 512u);

  BufferPool plain(&s.obs(), {.label = "plain"});
  Payload u = std::move(plain.acquire(64)).seal();
  EXPECT_FALSE(u.registered());
}

}  // namespace
}  // namespace sv::mem
