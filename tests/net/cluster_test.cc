#include "net/cluster.h"

#include <gtest/gtest.h>

namespace sv::net {
namespace {

using namespace sv::literals;

TEST(ClusterTest, NodesAreIndexedAndNamed) {
  sim::Simulation s;
  Cluster c(&s, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.node(0).id(), 0);
  EXPECT_EQ(c.node(3).id(), 3);
  EXPECT_EQ(c.node(2).name(), "node2");
  EXPECT_THROW((void)c.node(4), std::out_of_range);
}

TEST(ClusterTest, DefaultNodesAreDualCpu) {
  // The paper's testbed: dual 1 GHz PIII nodes.
  sim::Simulation s;
  Cluster c(&s, 1);
  EXPECT_EQ(c.node(0).cpu().capacity(), 2);
  EXPECT_EQ(c.node(0).tx_host().capacity(), 1);
  EXPECT_EQ(c.node(0).link_in().capacity(), 1);
  EXPECT_EQ(c.node(0).rx_proto().capacity(), 1);
}

TEST(ClusterTest, ComputeUsesBothCores) {
  sim::Simulation s;
  Cluster c(&s, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    s.spawn("w" + std::to_string(i), [&] {
      c.node(0).compute(10_ms);
      done.push_back(s.now());
    });
  }
  s.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[1], 10_ms);  // two run in parallel
  EXPECT_EQ(done[3], 20_ms);  // next pair queues
}

TEST(ClusterTest, SlowFactorScalesCompute) {
  sim::Simulation s;
  NodeConfig cfg;
  cfg.slow_factor = 4;
  Cluster c(&s, 1, cfg);
  SimTime done;
  s.spawn("w", [&] {
    c.node(0).compute(5_ms);
    done = s.now();
  });
  s.run();
  EXPECT_EQ(done, 20_ms);
}

}  // namespace
}  // namespace sv::net
