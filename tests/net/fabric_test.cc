#include "net/fabric.h"

#include <gtest/gtest.h>

#include <vector>

namespace sv::net {
namespace {

using namespace sv::literals;

struct Fixture {
  sim::Simulation s;
  Cluster cluster{&s, 4};
  CalibrationProfile prof = CalibrationProfile::socket_via();
};

TEST(FabricTest, DeliversMessageWithModelLatency) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  SimTime delivered_at;
  std::uint64_t got_bytes = 0;
  f.s.spawn("rx", [&] {
    auto m = pipe.recv();
    ASSERT_TRUE(m.has_value());
    got_bytes = m->bytes;
    delivered_at = f.s.now();
  });
  f.s.spawn("tx", [&] {
    Message m;
    m.bytes = 2048;
    pipe.send(m);
  });
  f.s.run();
  EXPECT_EQ(got_bytes, 2048u);
  // Uncontended fabric time should match the closed-form model exactly for
  // a single-segment message (no pipelining approximation error).
  EXPECT_EQ(delivered_at, pipe.model().one_way(2048));
}

TEST(FabricTest, MultiSegmentCloseToClosedForm) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  SimTime delivered_at;
  f.s.spawn("rx", [&] {
    pipe.recv();
    delivered_at = f.s.now();
  });
  f.s.spawn("tx", [&] {
    Message m;
    m.bytes = 64_KiB;
    pipe.send(m);
  });
  f.s.run();
  // The fabric pipelines frames whose size equals the SocketVIA segment, so
  // an uncontended large message matches the closed-form one_way exactly.
  EXPECT_EQ(delivered_at, pipe.model().one_way(64_KiB));
}

TEST(FabricTest, FifoOrderAndTimestamps) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  std::vector<std::uint64_t> tags;
  f.s.spawn("rx", [&] {
    for (int i = 0; i < 5; ++i) {
      auto m = pipe.recv();
      ASSERT_TRUE(m.has_value());
      tags.push_back(m->tag);
      EXPECT_EQ(m->seq, static_cast<std::uint64_t>(i));
      EXPECT_GT(m->delivered_at, m->sent_at);
    }
  });
  f.s.spawn("tx", [&] {
    for (std::uint64_t i = 0; i < 5; ++i) {
      Message m;
      m.bytes = 1024;
      m.tag = 100 + i;
      pipe.send(m);
    }
  });
  f.s.run();
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
}

TEST(FabricTest, StreamingThroughputApproachesModelPeak) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  const int kMessages = 200;
  const std::uint64_t kBytes = 32_KiB;
  SimTime last_delivery;
  f.s.spawn("rx", [&] {
    for (int i = 0; i < kMessages; ++i) pipe.recv();
    last_delivery = f.s.now();
  });
  f.s.spawn("tx", [&] {
    for (int i = 0; i < kMessages; ++i) {
      Message m;
      m.bytes = kBytes;
      pipe.send(m);
    }
  });
  f.s.run();
  const double measured =
      throughput_mbps(kMessages * kBytes, last_delivery);
  const double predicted = pipe.model().stream_bandwidth_mbps(kBytes);
  EXPECT_NEAR(measured, predicted, predicted * 0.10);
}

TEST(FabricTest, WindowBlocksSender) {
  Fixture f;
  CalibrationProfile prof = f.prof;
  prof.window_bytes = 8192;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), prof, "p");
  SimTime tx_done;
  f.s.spawn("tx", [&] {
    for (int i = 0; i < 8; ++i) {
      Message m;
      m.bytes = 4096;
      pipe.send(m);
    }
    tx_done = f.s.now();
  });
  std::vector<SimTime> rx_times;
  f.s.spawn("rx", [&] {
    for (int i = 0; i < 8; ++i) {
      pipe.recv();
      rx_times.push_back(f.s.now());
    }
  });
  f.s.run();
  // With a 2-message window the sender must wait for deliveries: its last
  // send cannot complete before the 6th delivery.
  ASSERT_EQ(rx_times.size(), 8u);
  EXPECT_GE(tx_done, rx_times[5]);
}

TEST(FabricTest, OversizedMessageAdmittedAlone) {
  Fixture f;
  CalibrationProfile prof = f.prof;
  prof.window_bytes = 1024;  // smaller than the message
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), prof, "p");
  bool received = false;
  f.s.spawn("rx", [&] {
    auto m = pipe.recv();
    received = m.has_value() && m->bytes == 100'000;
  });
  f.s.spawn("tx", [&] {
    Message m;
    m.bytes = 100'000;
    pipe.send(m);  // must not deadlock
  });
  f.s.run();
  EXPECT_TRUE(received);
}

TEST(FabricTest, CloseDeliversEofAfterData) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  std::vector<std::uint64_t> got;
  bool eof = false;
  f.s.spawn("rx", [&] {
    while (auto m = pipe.recv()) got.push_back(m->tag);
    eof = true;
  });
  f.s.spawn("tx", [&] {
    for (std::uint64_t i = 0; i < 3; ++i) {
      Message m;
      m.bytes = 512;
      m.tag = i;
      pipe.send(m);
    }
    pipe.close();
  });
  f.s.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_TRUE(eof);
}

TEST(FabricTest, SendAfterCloseThrows) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  f.s.spawn("tx", [&] {
    pipe.close();
    Message m;
    m.bytes = 1;
    EXPECT_THROW(pipe.send(m), std::logic_error);
  });
  f.s.run();
}

TEST(FabricTest, SharedReceiverContention) {
  // Two pipes into the same destination share link_in/rx_proto: aggregate
  // delivery takes roughly twice as long as a single stream.
  Fixture f;
  Pipe pa(&f.s, &f.cluster.node(0), &f.cluster.node(2), f.prof, "a");
  Pipe pb(&f.s, &f.cluster.node(1), &f.cluster.node(2), f.prof, "b");
  const int kMessages = 100;
  const std::uint64_t kBytes = 32_KiB;
  SimTime done_a, done_b;
  f.s.spawn("txa", [&] {
    for (int i = 0; i < kMessages; ++i) pa.send(Message{.bytes = kBytes});
  });
  f.s.spawn("txb", [&] {
    for (int i = 0; i < kMessages; ++i) pb.send(Message{.bytes = kBytes});
  });
  f.s.spawn("rxa", [&] {
    for (int i = 0; i < kMessages; ++i) pa.recv();
    done_a = f.s.now();
  });
  f.s.spawn("rxb", [&] {
    for (int i = 0; i < kMessages; ++i) pb.recv();
    done_b = f.s.now();
  });
  f.s.run();
  const SimTime single_stream_estimate =
      pa.model().stream_cycle(kBytes) * kMessages;
  const SimTime slower = std::max(done_a, done_b);
  EXPECT_GT(slower.ns(), (single_stream_estimate * 18 / 10).ns());
  EXPECT_LT(slower.ns(), (single_stream_estimate * 24 / 10).ns());
}

TEST(FabricTest, PayloadPassesThroughUntouched) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  auto storage = std::make_shared<std::vector<std::byte>>(16);
  (*storage)[0] = std::byte{0xAB};
  const mem::Payload payload = mem::Payload::wrap(storage);
  bool ok = false;
  f.s.spawn("rx", [&] {
    auto m = pipe.recv();
    ok = m.has_value() && m->payload.materialized() &&
         m->payload.read_byte(0) == std::byte{0xAB} &&
         // Shared by reference, not copied: same storage refcount.
         m->payload.span_count() == 1;
  });
  f.s.spawn("tx", [&] {
    Message m;
    m.bytes = 16;
    m.payload = payload;
    pipe.send(m);
  });
  f.s.run();
  EXPECT_TRUE(ok);
}

TEST(FabricTest, CountersTrackTraffic) {
  Fixture f;
  Pipe pipe(&f.s, &f.cluster.node(0), &f.cluster.node(1), f.prof, "p");
  f.s.spawn("rx", [&] {
    pipe.recv();
    pipe.recv();
  });
  f.s.spawn("tx", [&] {
    pipe.send(Message{.bytes = 100});
    pipe.send(Message{.bytes = 200});
  });
  f.s.run();
  EXPECT_EQ(pipe.messages_sent(), 2u);
  EXPECT_EQ(pipe.bytes_sent(), 300u);
}

}  // namespace
}  // namespace sv::net
