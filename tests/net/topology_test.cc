// Property tests for the explicit switch fabric (net/topology.h): routing
// determinism, symmetry, fat-tree hop structure, and the oversubscription
// capacity contract — swept over arities and node counts.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace sv::net {
namespace {

using sv::sim::Simulation;

std::vector<std::string> path_names(const Topology& topo, int s, int d) {
  std::vector<std::string> names;
  const Topology::Path p = topo.route(s, d);
  for (std::uint32_t i = 0; i < p.hops; ++i) {
    names.push_back(topo.link(p.link[i]).name);
  }
  return names;
}

TEST(TopologySpec, FatTreeCapacity) {
  EXPECT_EQ(TopologySpec::fat_tree(4).max_nodes(), 16);
  EXPECT_EQ(TopologySpec::fat_tree(8).max_nodes(), 128);
  EXPECT_EQ(TopologySpec::fat_tree(12).max_nodes(), 432);
}

TEST(Topology, CrossbarHasNoFabric) {
  Simulation s;
  Topology topo(&s, TopologySpec::single_crossbar(), 16);
  EXPECT_EQ(topo.link_count(), 0u);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(topo.hop_count(a, b), 0u);
      EXPECT_EQ(topo.path_latency(a, b), SimTime::zero());
      EXPECT_EQ(topo.edge_switch_of(a), 0);
    }
  }
}

TEST(Topology, FatTreeHopCountsMatchK) {
  for (const int k : {4, 6, 8}) {
    for (const int nodes : {k * k * k / 4, k * k * k / 4 - 3, k + 1}) {
      Simulation s;
      Topology topo(&s, TopologySpec::fat_tree(k), nodes);
      const int half = k / 2;
      for (int a = 0; a < nodes; ++a) {
        for (int b = 0; b < nodes; ++b) {
          const std::size_t hops = topo.hop_count(a, b);
          if (a == b || a / half == b / half) {
            EXPECT_EQ(hops, 0u) << "k=" << k << " " << a << "->" << b;
          } else if (a / (half * half) == b / (half * half)) {
            // Same pod (a pod hosts (k/2)^2 nodes), different edge.
            EXPECT_EQ(hops, 2u) << "k=" << k << " " << a << "->" << b;
          } else {
            EXPECT_EQ(hops, 4u) << "k=" << k << " " << a << "->" << b;
          }
          EXPECT_EQ(topo.path_latency(a, b),
                    topo.spec().hop_latency * static_cast<std::int64_t>(hops));
        }
      }
    }
  }
}

TEST(Topology, RoutesAreDeterministicAcrossInstances) {
  for (const int k : {4, 6}) {
    const int nodes = k * k * k / 4;
    Simulation s1;
    Simulation s2;
    Topology t1(&s1, TopologySpec::fat_tree(k), nodes);
    Topology t2(&s2, TopologySpec::fat_tree(k), nodes);
    for (int a = 0; a < nodes; ++a) {
      for (int b = 0; b < nodes; ++b) {
        EXPECT_EQ(path_names(t1, a, b), path_names(t1, a, b))
            << "route not stable within an instance";
        EXPECT_EQ(path_names(t1, a, b), path_names(t2, a, b))
            << "route differs across instances built from the same spec";
      }
    }
  }
}

TEST(Topology, PathsAreSymmetric) {
  // route(b, a) must traverse the same switches as route(a, b), in reverse
  // with each link's direction flipped — the choice of aggregation/core is
  // a pure function of the unordered pair.
  for (const int k : {4, 6, 8}) {
    const int nodes = k * k * k / 4 - 1;
    Simulation s;
    Topology topo(&s, TopologySpec::fat_tree(k), nodes);
    for (int a = 0; a < nodes; ++a) {
      for (int b = a + 1; b < nodes; ++b) {
        const Topology::Path fwd = topo.route(a, b);
        const Topology::Path rev = topo.route(b, a);
        ASSERT_EQ(fwd.hops, rev.hops);
        for (std::uint32_t i = 0; i < fwd.hops; ++i) {
          const auto& lf = topo.link(fwd.link[i]);
          const auto& lr = topo.link(rev.link[fwd.hops - 1 - i]);
          EXPECT_EQ(lf.from_switch, lr.to_switch);
          EXPECT_EQ(lf.to_switch, lr.from_switch);
        }
      }
    }
  }
}

TEST(Topology, PathsUseOnlyExistingLinksInOrder) {
  // A routed path must walk switch-to-switch contiguously: src's edge
  // switch first, dst's edge switch last.
  const int k = 6;
  const int nodes = k * k * k / 4;
  Simulation s;
  Topology topo(&s, TopologySpec::fat_tree(k), nodes);
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      const Topology::Path p = topo.route(a, b);
      if (p.hops == 0) continue;
      ASSERT_LT(p.link[0], topo.link_count());
      EXPECT_EQ(topo.link(p.link[0]).from_switch, topo.edge_switch_of(a));
      EXPECT_EQ(topo.link(p.link[p.hops - 1]).to_switch,
                topo.edge_switch_of(b));
      for (std::uint32_t i = 0; i + 1 < p.hops; ++i) {
        ASSERT_LT(p.link[i + 1], topo.link_count());
        EXPECT_EQ(topo.link(p.link[i]).to_switch,
                  topo.link(p.link[i + 1]).from_switch)
            << a << "->" << b << " hop " << i << " is discontiguous";
      }
    }
  }
}

TEST(Topology, FatTreeLinkCount) {
  // k pods x k/2 edges x k/2 aggs x 2 directions at the edge tier, plus
  // k pods x k/2 aggs x k/2 core legs x 2 at the core tier = k^3.
  for (const int k : {4, 6, 8}) {
    Simulation s;
    Topology topo(&s, TopologySpec::fat_tree(k), k * k * k / 4);
    EXPECT_EQ(topo.link_count(), static_cast<std::size_t>(k * k * k));
  }
}

TEST(Topology, OversubscriptionCapacityContract) {
  // Aggregate host bandwidth under an edge = oversubscription x the
  // edge's uplink bandwidth, for both presets and several ratios.
  for (const int r : {1, 2, 4}) {
    {
      const int k = 4;
      Simulation s;
      TopologySpec spec = TopologySpec::fat_tree(k, r);
      Topology topo(&s, spec, k * k * k / 4);
      const double host_bps = 1e12 / static_cast<double>(
          spec.host_link.ps_per_byte());
      const double hosts_under_edge = k / 2.0;
      for (int e = 0; e < topo.edge_switch_count(); ++e) {
        EXPECT_NEAR(hosts_under_edge * host_bps,
                    r * topo.edge_uplink_bytes_per_sec(e),
                    1e-3 * hosts_under_edge * host_bps)
            << "fat_tree k=" << k << " r=" << r << " edge " << e;
      }
    }
    {
      Simulation s;
      TopologySpec spec = TopologySpec::edge_core(16, 2, r);
      Topology topo(&s, spec, 64);
      const double host_bps = 1e12 / static_cast<double>(
          spec.host_link.ps_per_byte());
      for (int e = 0; e < topo.edge_switch_count(); ++e) {
        EXPECT_NEAR(16 * host_bps, r * topo.edge_uplink_bytes_per_sec(e),
                    1e-2 * 16 * host_bps)
            << "edge_core r=" << r << " edge " << e;
      }
    }
  }
}

TEST(Topology, EdgeCoreRoutesUseTwoHops) {
  Simulation s;
  Topology topo(&s, TopologySpec::edge_core(4, 2, 4), 16);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      const std::size_t expect_hops =
          (a == b || a / 4 == b / 4) ? 0u : 2u;
      EXPECT_EQ(topo.hop_count(a, b), expect_hops) << a << "->" << b;
    }
  }
  // Both directions of a pair ride the same core switch.
  const Topology::Path fwd = topo.route(0, 12);
  const Topology::Path rev = topo.route(12, 0);
  ASSERT_EQ(fwd.hops, 2u);
  EXPECT_EQ(topo.link(fwd.link[0]).to_switch,
            topo.link(rev.link[0]).to_switch);
}

TEST(Topology, TraverseChargesEveryLinkOnThePath) {
  Simulation s;
  net::Cluster cluster(&s, 16, NodeConfig{}, TopologySpec::fat_tree(4));
  Topology* topo = cluster.topology();
  ASSERT_NE(topo, nullptr);
  const Topology::Path p = topo->route(0, 15);
  ASSERT_EQ(p.hops, 4u);
  s.spawn("xfer", [&] { topo->traverse(0, 15, 10'000); });
  s.run();
  for (std::uint32_t i = 0; i < p.hops; ++i) {
    const auto& l = topo->link(p.link[i]);
    EXPECT_EQ(l.c_frames->value(), 1u) << l.name;
    EXPECT_EQ(l.c_bytes->value(), 10'000u) << l.name;
    EXPECT_GT(l.c_busy_ns->value(), 0u) << l.name;
  }
  // Serialization time accumulated once per hop.
  EXPECT_GE(s.now().ns(),
            4 * topo->spec().host_link.for_bytes(10'000).ns());
}

TEST(Topology, SharedUplinkContentionQueues) {
  // Two same-edge senders crossing to the same destination edge share the
  // (src + dst)-selected uplink; the later frame must wait.
  Simulation s;
  net::Cluster cluster(&s, 16, NodeConfig{}, TopologySpec::fat_tree(4));
  Topology* topo = cluster.topology();
  ASSERT_NE(topo, nullptr);
  // Nodes 0 and 1 share edge 0; destinations 8 and 11 live in pod 2 and
  // are chosen so both pairs pick the same core ((0+8) % 4 == (1+11) % 4),
  // hence the same first uplink.
  ASSERT_EQ(topo->route(0, 8).link[0], topo->route(1, 11).link[0]);
  s.spawn("a", [&] { topo->traverse(0, 8, 100'000); });
  s.spawn("b", [&] { topo->traverse(1, 11, 100'000); });
  s.run();
  const auto& shared = topo->link(topo->route(0, 8).link[0]);
  EXPECT_EQ(shared.c_frames->value(), 2u);
  EXPECT_GT(shared.c_wait_ns->value(), 0u)
      << "second frame should have queued behind the first";
}

TEST(Topology, PipeOverFabricChargesUplinksAndLatency) {
  // End-to-end: a Pipe between cross-pod nodes traverses the fabric (link
  // counters move) and its delivery picks up 4 hops of extra propagation
  // relative to the crossbar.
  const auto run_once = [](const TopologySpec& spec) {
    Simulation s;
    net::Cluster cluster(&s, 16, NodeConfig{}, spec);
    CalibrationProfile profile = CalibrationProfile::socket_via();
    Pipe pipe(&s, &cluster.node(0), &cluster.node(15), profile, "t");
    SimTime latency;
    s.spawn("app", [&] {
      Message m;
      m.bytes = 4096;
      pipe.send(std::move(m));
      auto got = pipe.recv();
      ASSERT_TRUE(got.has_value());
      latency = got->delivered_at - got->sent_at;
    });
    s.run();
    return latency;
  };
  const SimTime flat = run_once(TopologySpec::single_crossbar());
  TopologySpec ft = TopologySpec::fat_tree(4);
  const SimTime routed = run_once(ft);
  // 4 hops of switch latency plus per-hop serialization of one frame.
  const SimTime floor =
      flat + ft.hop_latency * 4;
  EXPECT_GE(routed, floor);
}

}  // namespace
}  // namespace sv::net
