// Fault-injection layer: determinism of the per-link streams, precise and
// probabilistic drops, burst extension, jitter, node slowdown/stall
// windows, and the fast fabric's internal loss recovery.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.h"

namespace sv::net {
namespace {

using namespace sv::literals;

std::vector<bool> drop_sequence(FaultInjector& inj, int src, int dst,
                                int frames) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    out.push_back(inj.on_frame(src, dst).drop);
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSamePlanSameDecisions) {
  const FaultPlan plan = FaultPlan::uniform_loss(0.3);
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  EXPECT_EQ(drop_sequence(a, 0, 1, 256), drop_sequence(b, 0, 1, 256));
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  const FaultPlan plan = FaultPlan::uniform_loss(0.3);
  FaultInjector a(plan, 1);
  FaultInjector b(plan, 2);
  EXPECT_NE(drop_sequence(a, 0, 1, 256), drop_sequence(b, 0, 1, 256));
}

TEST(FaultInjectorTest, LinkStreamsIndependentOfFirstTouchOrder) {
  // The per-link stream must depend only on (seed, src, dst), never on
  // which link happened to carry traffic first (determinism contract).
  const FaultPlan plan = FaultPlan::uniform_loss(0.3);
  FaultInjector ab_first(plan, 7);
  FaultInjector cd_first(plan, 7);
  const auto ab_1 = drop_sequence(ab_first, 0, 1, 128);
  const auto cd_1 = drop_sequence(ab_first, 2, 3, 128);
  const auto cd_2 = drop_sequence(cd_first, 2, 3, 128);
  const auto ab_2 = drop_sequence(cd_first, 0, 1, 128);
  EXPECT_EQ(ab_1, ab_2);
  EXPECT_EQ(cd_1, cd_2);
}

TEST(FaultInjectorTest, DirectedLinksHaveDistinctStreams) {
  const FaultPlan plan = FaultPlan::uniform_loss(0.5);
  FaultInjector inj(plan, 3);
  EXPECT_NE(drop_sequence(inj, 0, 1, 256), drop_sequence(inj, 1, 0, 256));
}

TEST(FaultInjectorTest, DropFramesHitExactly) {
  FaultPlan plan;
  plan.all_links.drop_frames = {2, 5};
  FaultInjector inj(plan, 1);
  const auto seq = drop_sequence(inj, 0, 1, 8);
  const std::vector<bool> want{false, false, true, false, false,
                               true,  false, false};
  EXPECT_EQ(seq, want);
  EXPECT_EQ(inj.frames_dropped(), 2u);
}

TEST(FaultInjectorTest, BurstContinuesAfterFirstLoss) {
  FaultPlan plan;
  plan.all_links.loss = 1e-9;  // effectively never starts a burst itself
  plan.all_links.burst_continue = 1.0;
  plan.all_links.drop_frames = {3};  // force the burst to start at frame 3
  FaultInjector inj(plan, 9);
  const auto seq = drop_sequence(inj, 0, 1, 16);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(seq[static_cast<std::size_t>(i)]);
  for (int i = 3; i < 16; ++i) {
    EXPECT_TRUE(seq[static_cast<std::size_t>(i)]) << "frame " << i;
  }
}

TEST(FaultInjectorTest, JitterBoundedAndCounted) {
  FaultPlan plan;
  plan.all_links.max_jitter = 10_us;
  FaultInjector inj(plan, 11);
  bool any_delay = false;
  for (int i = 0; i < 64; ++i) {
    const FaultDecision d = inj.on_frame(0, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_GE(d.extra_delay, SimTime::zero());
    EXPECT_LE(d.extra_delay, 10_us);
    any_delay = any_delay || d.extra_delay > SimTime::zero();
  }
  EXPECT_TRUE(any_delay);
  EXPECT_EQ(inj.frames_delayed() > 0, any_delay);
}

TEST(FaultInjectorTest, ComputeFactorFollowsSlowdownWindows) {
  FaultPlan plan;
  plan.nodes.push_back(NodeFault{.node = 1,
                                 .start = 10_us,
                                 .duration = 10_us,
                                 .slow_factor = 4});
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.compute_factor(1, 5_us), 1);
  EXPECT_EQ(inj.compute_factor(1, 10_us), 4);
  EXPECT_EQ(inj.compute_factor(1, 19_us), 4);
  EXPECT_EQ(inj.compute_factor(1, 20_us), 1);
  EXPECT_EQ(inj.compute_factor(0, 15_us), 1);  // other nodes untouched
}

TEST(FaultPlanTest, EnabledReflectsContents) {
  EXPECT_FALSE(FaultPlan::none().enabled());
  EXPECT_TRUE(FaultPlan::uniform_loss(0.01).enabled());
  FaultPlan stall;
  stall.nodes.push_back(NodeFault{.node = 0, .duration = 1_ms});
  EXPECT_TRUE(stall.enabled());
  FaultPlan one_link;
  one_link.links[{0, 1}].loss = 0.5;
  EXPECT_TRUE(one_link.enabled());
}

TEST(ClusterFaultTest, DisabledPlanIsANoOp) {
  sim::Simulation s;
  Cluster cluster(&s, 2);
  cluster.install_faults(FaultPlan::none(), 1);
  EXPECT_EQ(cluster.fault_injector(), nullptr);
  EXPECT_EQ(cluster.node(0).fault_injector(), nullptr);
}

TEST(ClusterFaultTest, LossyPipeDeliversEverythingInOrder) {
  sim::Simulation s;
  Cluster cluster(&s, 2);
  cluster.install_faults(FaultPlan::uniform_loss(0.2), 5);
  Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
            CalibrationProfile::socket_via(), "lossy");
  std::vector<std::uint64_t> tags;
  s.spawn("rx", [&] {
    while (auto m = pipe.recv()) tags.push_back(m->tag);
  });
  s.spawn("tx", [&] {
    for (std::uint64_t i = 0; i < 16; ++i) {
      pipe.send(Message{.bytes = 32_KiB, .tag = i});
    }
    pipe.close();
  });
  s.run();
  ASSERT_EQ(tags.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(tags[i], i);
  EXPECT_GT(pipe.frames_retransmitted(), 0u);
  ASSERT_NE(cluster.fault_injector(), nullptr);
  EXPECT_EQ(cluster.fault_injector()->frames_dropped(),
            pipe.frames_retransmitted());
}

TEST(ClusterFaultTest, LossSlowsDeliveryDeterministically) {
  auto run = [](const FaultPlan& plan, std::uint64_t seed) {
    sim::Simulation s;
    Cluster cluster(&s, 2);
    cluster.install_faults(plan, seed);
    Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
              CalibrationProfile::socket_via(), "p");
    s.spawn("rx", [&] {
      while (pipe.recv()) {
      }
    });
    s.spawn("tx", [&] {
      for (int i = 0; i < 16; ++i) pipe.send(Message{.bytes = 32_KiB});
      pipe.close();
    });
    s.run();
    return std::pair{s.now(), s.engine().trace_digest()};
  };
  const auto clean = run(FaultPlan::none(), 1);
  const auto lossy1 = run(FaultPlan::uniform_loss(0.1), 1);
  const auto lossy1_again = run(FaultPlan::uniform_loss(0.1), 1);
  const auto lossy2 = run(FaultPlan::uniform_loss(0.1), 2);
  EXPECT_GT(lossy1.first, clean.first);          // recovery costs time
  EXPECT_EQ(lossy1, lossy1_again);               // bit-identical replay
  EXPECT_NE(lossy1.second, lossy2.second);       // seeds diverge
}

TEST(ClusterFaultTest, SlowdownWindowScalesCompute) {
  sim::Simulation s;
  Cluster cluster(&s, 2);
  FaultPlan plan;
  plan.nodes.push_back(NodeFault{.node = 0,
                                 .start = SimTime::zero(),
                                 .duration = 1_s,
                                 .slow_factor = 3});
  cluster.install_faults(plan, 1);
  SimTime took;
  s.spawn("w", [&] {
    const SimTime t0 = s.now();
    cluster.node(0).compute(10_us);
    took = s.now() - t0;
  });
  s.run();
  EXPECT_EQ(took, 30_us);
}

TEST(ClusterFaultTest, StallWindowBlocksComputeUntilItEnds) {
  sim::Simulation s;
  Cluster cluster(&s, 2);
  FaultPlan plan;
  plan.nodes.push_back(
      NodeFault{.node = 0, .start = 100_us, .duration = 400_us});
  cluster.install_faults(plan, 1);
  SimTime done;
  s.spawn("w", [&] {
    s.delay(150_us);  // inside the stall window
    cluster.node(0).compute(1_us);
    done = s.now();
  });
  s.run();
  // The stall holds every CPU unit until 500us; our compute runs after.
  EXPECT_GE(done, 500_us);
}

}  // namespace
}  // namespace sv::net
