#include "net/cost_model.h"

#include <gtest/gtest.h>

namespace sv::net {
namespace {

using namespace sv::literals;

CalibrationProfile simple_profile() {
  CalibrationProfile p;
  p.name = "test";
  p.send_fixed = 10_us;
  p.send_per_seg = 1_us;
  p.send_per_byte = PerByteCost::nanos_per_byte(1);
  p.wire_per_seg = 2_us;
  p.wire_per_byte = PerByteCost::nanos_per_byte(10);
  p.propagation = 5_us;
  p.recv_fixed = 10_us;
  p.recv_per_seg = 1_us;
  p.recv_per_byte = PerByteCost::nanos_per_byte(2);
  p.segment_bytes = 1000;
  p.window_bytes = 10'000;
  return p;
}

TEST(CostModelTest, SegmentCount) {
  CostModel m{simple_profile()};
  EXPECT_EQ(m.segments(0), 0u);
  EXPECT_EQ(m.segments(1), 1u);
  EXPECT_EQ(m.segments(1000), 1u);
  EXPECT_EQ(m.segments(1001), 2u);
  EXPECT_EQ(m.segments(5000), 5u);
}

TEST(CostModelTest, StageTimesAreAffine) {
  CostModel m{simple_profile()};
  // sender(2000 B) = 10us fixed + 2 segs * 1us + 2000 B * 1 ns = 14 us.
  EXPECT_EQ(m.sender_time(2000), 14_us);
  // wire(2000 B) = 2 * 2us + 2000 * 10ns = 24 us.
  EXPECT_EQ(m.wire_time(2000), 24_us);
  // recv(2000 B) = 10 + 2*1 + 2000*2ns = 16 us.
  EXPECT_EQ(m.recv_time(2000), 16_us);
}

TEST(CostModelTest, OneWaySingleSegment) {
  CostModel m{simple_profile()};
  // n=500: fixed(10+10+5) + S(1+0.5) + W(2+5) + R(1+1) = 35.5 us.
  EXPECT_EQ(m.one_way(500), SimTime::nanoseconds(35'500));
}

TEST(CostModelTest, OneWayMultiSegmentUsesBottleneckCadence) {
  CostModel m{simple_profile()};
  // Full segment: S=2us, W=12us, R=3us; bottleneck W=12us.
  // n=3000: 25us fixed + (2+12+3) + 2*12 = 66 us.
  EXPECT_EQ(m.one_way(3000), 66_us);
}

TEST(CostModelTest, OneWayMonotoneInSize) {
  CostModel m{CalibrationProfile::kernel_tcp()};
  SimTime prev = SimTime::zero();
  for (std::uint64_t n = 1; n <= 1_MiB; n *= 4) {
    const auto t = m.one_way(n);
    EXPECT_GT(t, prev) << "n=" << n;
    prev = t;
  }
}

TEST(CostModelTest, RoundTripIsTwiceOneWay) {
  CostModel m{simple_profile()};
  EXPECT_EQ(m.round_trip(500), m.one_way(500) * 2);
}

TEST(CostModelTest, StreamCycleIsBottleneckStage) {
  CostModel m{simple_profile()};
  // Per message of 3000 B: sender 10+3+3=16us, wire 6+30=36us, recv 10+3+6=19us.
  EXPECT_EQ(m.stream_cycle(3000), 36_us);
}

TEST(CostModelTest, StreamBandwidthMonotoneNonDecreasing) {
  for (const auto& prof :
       {CalibrationProfile::via(), CalibrationProfile::socket_via(),
        CalibrationProfile::kernel_tcp()}) {
    CostModel m{prof};
    double prev = 0.0;
    for (std::uint64_t n = 4; n <= 1_MiB; n *= 2) {
      const double bw = m.stream_bandwidth_mbps(n);
      // 0.1 Mbps slack absorbs integer-nanosecond rounding noise near the
      // asymptote; the economically-meaningful monotonicity still holds.
      EXPECT_GE(bw, prev - 0.1) << prof.name << " n=" << n;
      prev = bw;
    }
  }
}

TEST(CostModelTest, MinBlockForBandwidthIsExactThreshold) {
  CostModel m{CalibrationProfile::socket_via()};
  const double target = 400.0;
  const auto n = m.min_block_for_bandwidth(target);
  ASSERT_GT(n, 1u);
  EXPECT_GE(m.stream_bandwidth_mbps(n), target);
  EXPECT_LT(m.stream_bandwidth_mbps(n - 1), target);
}

TEST(CostModelTest, MinBlockForBandwidthUnreachableReturnsLimit) {
  CostModel m{CalibrationProfile::kernel_tcp()};
  // TCP peaks around 510 Mbps; 700 Mbps is unreachable.
  EXPECT_EQ(m.min_block_for_bandwidth(700.0, 1_MiB), 1_MiB);
}

TEST(CostModelTest, MaxBlockForLatencyIsExactThreshold) {
  CostModel m{CalibrationProfile::socket_via()};
  const SimTime bound = 100_us;
  const auto n = m.max_block_for_latency(bound);
  ASSERT_GT(n, 0u);
  EXPECT_LE(m.one_way(n), bound);
  EXPECT_GT(m.one_way(n + 1), bound);
}

TEST(CostModelTest, MaxBlockForLatencyZeroWhenImpossible) {
  CostModel m{CalibrationProfile::kernel_tcp()};
  // TCP's fixed path alone is ~47 us; a 10 us bound is impossible.
  EXPECT_EQ(m.max_block_for_latency(10_us), 0u);
}

TEST(CostModelTest, PipeliningBlockBalancesComputeAndTransfer) {
  CostModel m{CalibrationProfile::socket_via()};
  const auto compute = PerByteCost::nanos_per_byte(18);
  const auto n = m.pipelining_block(compute);
  ASSERT_GT(n, 0u);
  // At the returned size compute >= transfer; just below it transfer wins.
  EXPECT_GE(compute.for_bytes(n).ns(), m.one_way(n).ns());
  if (n > 1) {
    EXPECT_LT(compute.for_bytes(n - 1).ns(), m.one_way(n - 1).ns());
  }
}

TEST(CostModelTest, PipeliningBlockReturnsLimitWhenComputeNeverCatchesUp) {
  CostModel m{CalibrationProfile::kernel_tcp()};
  // 1 ns/B compute is always cheaper than TCP transfer at any size.
  EXPECT_EQ(m.pipelining_block(PerByteCost::nanos_per_byte(1), 1_MiB), 1_MiB);
}

TEST(CostModelTest, ZeroByteMessageStillPaysFixedCosts) {
  CostModel m{simple_profile()};
  EXPECT_EQ(m.one_way(0), 25_us);  // send_fixed + recv_fixed + propagation
}

}  // namespace
}  // namespace sv::net
