// Incast regression: an N->1 burst onto one edge switch must exhibit
// fabric queueing (p99 >> p50 as later frames wait behind earlier ones on
// the shared down-links), while traffic that never leaves its edge switch
// stays flat. Guards that the topology model doesn't silently degrade to
// the old single-crossbar behavior, where the fabric could never queue.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/stats.h"
#include "net/cluster.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace sv::net {
namespace {

struct IncastOutcome {
  Samples incast_latency;  ///< cross-edge senders -> hot node
  Samples local_latency;   ///< same-edge pair, away from the incast
  std::uint64_t fabric_wait_ns = 0;
};

IncastOutcome run_incast(const TopologySpec& spec) {
  constexpr int kNodes = 16;
  constexpr int kHot = 0;
  // Two-phase load: a paced steady phase every flow meets comfortably
  // (these land at p50), then a synchronized back-to-back flash burst
  // from all senders (the tail). kMsgs latencies per flow in total.
  constexpr int kPaced = 10;
  constexpr int kBurst = 6;
  constexpr int kMsgs = kPaced + kBurst;
  constexpr std::uint64_t kBytes = 16 * 1024;

  sim::Simulation s;
  Cluster cluster(&s, kNodes, NodeConfig{}, spec);
  IncastOutcome out;

  CalibrationProfile profile = CalibrationProfile::socket_via();
  // A large window so queueing happens in the fabric, not the sender.
  profile.window_bytes = 8 * 1024 * 1024;

  // Every node outside the hot node's edge switch bursts at it.
  std::vector<std::unique_ptr<Pipe>> pipes;
  for (int n = 4; n < kNodes; ++n) {
    pipes.push_back(std::make_unique<Pipe>(
        &s, &cluster.node(static_cast<std::size_t>(n)), &cluster.node(kHot),
        profile, "incast" + std::to_string(n)));
  }
  const SimTime pace = SimTime::milliseconds(15);
  for (auto& p : pipes) {
    s.spawn(p->name() + ".send", [&s, &p, pace] {
      for (int i = 0; i < kPaced; ++i) {
        Message m;
        m.bytes = kBytes;
        p->send(std::move(m));
        s.delay(pace);
      }
      for (int i = 0; i < kBurst; ++i) {
        Message m;
        m.bytes = kBytes;
        p->send(std::move(m));
      }
      p->close();
    });
    s.spawn(p->name() + ".recv", [&out, &p] {
      while (auto m = p->recv()) {
        out.incast_latency.add(m->delivered_at - m->sent_at);
      }
    });
  }

  // A same-edge pair (nodes 2 -> 3 share an edge switch with neither
  // endpoint of the incast): its messages touch no contended resource.
  Pipe local(&s, &cluster.node(2), &cluster.node(3), profile, "local");
  s.spawn("local.send", [&] {
    for (int i = 0; i < kMsgs; ++i) {
      Message m;
      m.bytes = kBytes;
      local.send(std::move(m));
      s.delay(SimTime::milliseconds(2));
    }
    local.close();
  });
  s.spawn("local.recv", [&] {
    while (auto m = local.recv()) {
      out.local_latency.add(m->delivered_at - m->sent_at);
    }
  });

  s.run();

  if (const Topology* topo = cluster.topology()) {
    for (std::size_t i = 0; i < topo->link_count(); ++i) {
      out.fabric_wait_ns += topo->link(i).c_wait_ns->value();
    }
  }
  return out;
}

TEST(Incast, FatTreeUplinksQueueWhileLocalTrafficStaysFlat) {
  // 4x oversubscription: the agg<->core tier, not the hot host, is the
  // dominant bottleneck, as in a production fat-tree under incast.
  const IncastOutcome got = run_incast(TopologySpec::fat_tree(4, 4));
  ASSERT_EQ(got.incast_latency.count(), 12u * 16u);
  ASSERT_EQ(got.local_latency.count(), 16u);

  // Fabric queueing is the signature: later frames waited on the shared
  // down-links into the hot edge, so the tail is far above the median.
  EXPECT_GT(got.fabric_wait_ns, 0u);
  const double p50 = got.incast_latency.percentile(50.0);
  const double p99 = got.incast_latency.percentile(99.0);
  EXPECT_GT(p99, 2.0 * p50)
      << "incast tail should queue: p50=" << p50 << "ns p99=" << p99 << "ns";

  // Intra-switch traffic shares nothing with the burst: flat latency.
  const double lp50 = got.local_latency.percentile(50.0);
  const double lp99 = got.local_latency.percentile(99.0);
  EXPECT_LT(lp99, 1.2 * lp50)
      << "same-edge traffic must not feel the incast: p50=" << lp50
      << "ns p99=" << lp99 << "ns";
}

TEST(Incast, CrossbarShowsNoFabricQueueing) {
  // The historical model has no fabric to queue in; the incast tail there
  // comes only from the hot node's own link. This pins the *difference*
  // the topology adds.
  const IncastOutcome fat = run_incast(TopologySpec::fat_tree(4, 4));
  const IncastOutcome flat = run_incast(TopologySpec::single_crossbar());
  EXPECT_EQ(flat.fabric_wait_ns, 0u);
  EXPECT_GT(fat.incast_latency.percentile(99.0),
            flat.incast_latency.percentile(99.0))
      << "fabric contention should lengthen the incast tail vs crossbar";
}

}  // namespace
}  // namespace sv::net
