// Validates that the fitted calibration profiles reproduce the paper's
// Figure 4 micro-benchmark targets:
//   latency:   VIA ~9 us, SocketVIA ~9.5 us, TCP ~47.5 us (factor ~5)
//   bandwidth: VIA ~795 Mbps, SocketVIA ~763 Mbps, TCP ~510 Mbps (+~50%)
#include "net/calibration.h"
#include "net/cost_model.h"

#include <gtest/gtest.h>

namespace sv::net {
namespace {

using namespace sv::literals;

TEST(CalibrationTest, SmallMessageLatencyTargets) {
  const CostModel via{CalibrationProfile::via()};
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};

  // Paper: VIA ~9 us, SocketVIA 9.5 us, TCP ~5x SocketVIA.
  EXPECT_NEAR(via.pingpong_latency(4).us(), 9.0, 0.7);
  EXPECT_NEAR(svia.pingpong_latency(4).us(), 9.5, 0.7);
  EXPECT_NEAR(tcp.pingpong_latency(4).us(), 47.5, 2.0);
}

TEST(CalibrationTest, LatencyOrderingHoldsAcrossSizes) {
  const CostModel via{CalibrationProfile::via()};
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};
  for (std::uint64_t n = 4; n <= 4096; n *= 2) {
    EXPECT_LE(via.one_way(n), svia.one_way(n)) << "n=" << n;
    EXPECT_LT(svia.one_way(n), tcp.one_way(n)) << "n=" << n;
  }
}

TEST(CalibrationTest, PeakBandwidthTargets) {
  const CostModel via{CalibrationProfile::via()};
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};

  EXPECT_NEAR(via.stream_bandwidth_mbps(64_KiB), 795.0, 20.0);
  EXPECT_NEAR(svia.stream_bandwidth_mbps(64_KiB), 763.0, 20.0);
  EXPECT_NEAR(tcp.stream_bandwidth_mbps(64_KiB), 510.0, 15.0);
}

TEST(CalibrationTest, SocketViaBandwidthImprovementOverTcpIsAbout50Percent) {
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};
  const double ratio = svia.stream_bandwidth_mbps(64_KiB) /
                       tcp.stream_bandwidth_mbps(64_KiB);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 1.6);
}

TEST(CalibrationTest, TcpLatencyFactorOverSocketVia) {
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};
  const double factor =
      tcp.pingpong_latency(4).us() / svia.pingpong_latency(4).us();
  EXPECT_GT(factor, 4.0);  // "nearly a factor of five"
  EXPECT_LT(factor, 6.0);
}

TEST(CalibrationTest, Figure2Property_RequiredBandwidthAtSmallerMessage) {
  // Figure 2(a): for a target bandwidth B, the high-performance substrate
  // needs message size U2 < U1 (kernel sockets). Use B = 400 Mbps.
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};
  const auto u2 = svia.min_block_for_bandwidth(400.0);
  const auto u1 = tcp.min_block_for_bandwidth(400.0);
  EXPECT_LT(u2, u1);
  EXPECT_LT(u2 * 4, u1);  // substantially smaller, not marginally
}

TEST(CalibrationTest, PipeliningBlocks16KTcp2KSocketVia) {
  // Section 5.2.3: with 18 ns/B compute, perfect pipelining at ~16 KB for
  // TCP and ~2 KB for SocketVIA. The model should land in those regimes
  // (same power of two up to a factor ~2).
  const auto compute = PerByteCost::nanos_per_byte(18);
  const CostModel svia{CalibrationProfile::socket_via()};
  const CostModel tcp{CalibrationProfile::kernel_tcp()};
  const auto tcp_block = tcp.pipelining_block(compute);
  const auto svia_block = svia.pipelining_block(compute);
  EXPECT_GE(tcp_block, 8_KiB);
  EXPECT_LE(tcp_block, 32_KiB);
  EXPECT_GE(svia_block, 1_KiB);
  EXPECT_LE(svia_block, 4_KiB);
  // The ~8x granularity gap that drives Figure 10.
  EXPECT_GT(static_cast<double>(tcp_block) / static_cast<double>(svia_block),
            4.0);
}

TEST(CalibrationTest, FastEthernetIsWireBound) {
  // The testbed's secondary interconnect: 100 Mb/s wire dominates.
  const CostModel fe{CalibrationProfile::fast_ethernet_tcp()};
  const CostModel lane{CalibrationProfile::kernel_tcp()};
  EXPECT_LT(fe.stream_bandwidth_mbps(64_KiB), 97.0);
  EXPECT_GT(fe.stream_bandwidth_mbps(64_KiB), 80.0);
  // Same host costs, slower wire: strictly worse than TCP-over-cLAN.
  for (std::uint64_t n = 64; n <= 64_KiB; n *= 4) {
    EXPECT_GT(fe.one_way(n), lane.one_way(n)) << n;
  }
}

TEST(CalibrationTest, TransportNames) {
  EXPECT_STREQ(transport_name(Transport::kVia), "VIA");
  EXPECT_STREQ(transport_name(Transport::kSocketVia), "SocketVIA");
  EXPECT_STREQ(transport_name(Transport::kKernelTcp), "TCP");
  EXPECT_EQ(CalibrationProfile::for_transport(Transport::kSocketVia).name,
            "SocketVIA");
}

}  // namespace
}  // namespace sv::net
