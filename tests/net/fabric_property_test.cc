// Property tests: the executed fabric must agree with the closed-form cost
// model for uncontended transfers, across transports and message sizes.
#include <gtest/gtest.h>

#include "net/fabric.h"

namespace sv::net {
namespace {

using namespace sv::literals;

class FabricModelAgreement
    : public ::testing::TestWithParam<std::tuple<Transport, std::uint64_t>> {
};

TEST_P(FabricModelAgreement, UncontendedOneWayMatchesModel) {
  const auto transport = std::get<0>(GetParam());
  const auto bytes = std::get<1>(GetParam());
  sim::Simulation s;
  Cluster cluster(&s, 2);
  // Model agreement is defined on a loss-free fabric (DESIGN.md §6): the
  // closed-form model has no recovery term, so this property holds only
  // under FaultPlan::none(). Pinned explicitly so a future default-faulty
  // fixture cannot silently invalidate the comparison.
  cluster.install_faults(FaultPlan::none(), 1);
  Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
            CalibrationProfile::for_transport(transport), "p");
  SimTime delivered;
  s.spawn("rx", [&] {
    pipe.recv();
    delivered = s.now();
  });
  s.spawn("tx", [&] { pipe.send(Message{.bytes = bytes}); });
  s.run();
  const SimTime predicted = pipe.model().one_way(bytes);
  // Frames equal segments, so the fabric should reproduce the closed form
  // up to integer rounding on the trailing partial segment.
  const double rel = std::abs(delivered.us() - predicted.us()) /
                     std::max(predicted.us(), 1e-9);
  EXPECT_LT(rel, 0.05) << "measured " << delivered.us() << "us vs model "
                       << predicted.us() << "us";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FabricModelAgreement,
    ::testing::Combine(::testing::Values(Transport::kVia,
                                         Transport::kSocketVia,
                                         Transport::kKernelTcp),
                       ::testing::Values(64ULL, 1024ULL, 4096ULL, 16384ULL,
                                         65536ULL, 1048576ULL)),
    [](const auto& param_info) {
      return std::string(transport_name(std::get<0>(param_info.param))) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "B";
    });

class FabricStreamingAgreement : public ::testing::TestWithParam<Transport> {
};

TEST_P(FabricStreamingAgreement, SteadyStateRateMatchesStreamCycle) {
  const auto transport = GetParam();
  sim::Simulation s;
  Cluster cluster(&s, 2);
  // Loss-free by construction, as above: streaming rate has no recovery
  // term in the closed-form model.
  cluster.install_faults(FaultPlan::none(), 1);
  Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
            CalibrationProfile::for_transport(transport), "p");
  const int kCount = 150;
  const std::uint64_t kBytes = 16_KiB;
  SimTime done;
  s.spawn("rx", [&] {
    for (int i = 0; i < kCount; ++i) pipe.recv();
    done = s.now();
  });
  s.spawn("tx", [&] {
    for (int i = 0; i < kCount; ++i) pipe.send(Message{.bytes = kBytes});
  });
  s.run();
  const double measured = throughput_mbps(kCount * kBytes, done);
  const double predicted = pipe.model().stream_bandwidth_mbps(kBytes);
  EXPECT_NEAR(measured, predicted, predicted * 0.10)
      << transport_name(transport);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, FabricStreamingAgreement,
                         ::testing::Values(Transport::kVia,
                                           Transport::kSocketVia,
                                           Transport::kKernelTcp),
                         [](const auto& param_info) {
                           return std::string(transport_name(param_info.param));
                         });

TEST(FabricEdgeTest, ZeroByteMessageDelivers) {
  sim::Simulation s;
  Cluster cluster(&s, 2);
  Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
            CalibrationProfile::socket_via(), "p");
  bool got = false;
  s.spawn("rx", [&] { got = pipe.recv().has_value(); });
  s.spawn("tx", [&] { pipe.send(Message{.bytes = 0}); });
  s.run();
  EXPECT_TRUE(got);
}

TEST(FabricEdgeTest, ExactFrameMultiples) {
  // Messages of exactly 1x, 2x, 3x the frame size must all deliver with
  // monotone timing.
  sim::Simulation s;
  Cluster cluster(&s, 2);
  const auto prof = CalibrationProfile::socket_via();
  Pipe pipe(&s, &cluster.node(0), &cluster.node(1), prof, "p");
  std::vector<SimTime> times;
  s.spawn("rx", [&] {
    SimTime last = SimTime::zero();
    for (int i = 0; i < 3; ++i) {
      pipe.recv();
      times.push_back(s.now() - last);
      last = s.now();
    }
  });
  s.spawn("tx", [&] {
    for (std::uint64_t k = 1; k <= 3; ++k) {
      pipe.send(Message{.bytes = k * prof.pipeline_frame_bytes});
      // Space sends out so each is uncontended.
      s.delay(10_ms);
    }
  });
  s.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_LT(times[0], times[1]);
}

TEST(FabricEdgeTest, DestroyPipeMidFlightIsSafe) {
  // A pipe destroyed while messages are still in flight must not crash or
  // hang (stage processes co-own the state).
  sim::Simulation s;
  Cluster cluster(&s, 2);
  auto pipe = std::make_unique<Pipe>(&s, &cluster.node(0), &cluster.node(1),
                                     CalibrationProfile::kernel_tcp(), "p");
  s.spawn("tx", [&s, p = std::move(pipe)]() mutable {
    for (int i = 0; i < 10; ++i) p->send(Message{.bytes = 64_KiB});
    p.reset();  // messages still crossing the wire
  });
  s.run();  // must terminate cleanly
  SUCCEED();
}

TEST(FabricEdgeTest, SenderContentionSerializesTxHost) {
  // Two pipes *out of* the same node share tx_host; aggregate send rate
  // halves relative to independent senders.
  sim::Simulation s;
  Cluster cluster(&s, 3);
  const auto prof = CalibrationProfile::kernel_tcp();
  Pipe pa(&s, &cluster.node(0), &cluster.node(1), prof, "a");
  Pipe pb(&s, &cluster.node(0), &cluster.node(2), prof, "b");
  const int kCount = 50;
  SimTime done_a, done_b;
  s.spawn("txa", [&] {
    for (int i = 0; i < kCount; ++i) pa.send(Message{.bytes = 16_KiB});
  });
  s.spawn("txb", [&] {
    for (int i = 0; i < kCount; ++i) pb.send(Message{.bytes = 16_KiB});
  });
  s.spawn("rxa", [&] {
    for (int i = 0; i < kCount; ++i) pa.recv();
    done_a = s.now();
  });
  s.spawn("rxb", [&] {
    for (int i = 0; i < kCount; ++i) pb.recv();
    done_b = s.now();
  });
  s.run();
  // Each stream sees roughly half the sender's host throughput; sanity
  // bound: completion takes at least 1.7x a single uncontended stream.
  CostModel model{prof};
  const SimTime single = model.sender_time(16_KiB) * kCount;
  EXPECT_GT(std::max(done_a, done_b).ns(), (single * 17 / 10).ns());
}

}  // namespace
}  // namespace sv::net
