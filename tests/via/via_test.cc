#include "via/via.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sv::via {
namespace {

using namespace sv::literals;

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster{&s, 2};
  Nic nic0{&s, &cluster.node(0)};
  Nic nic1{&s, &cluster.node(1)};

  std::pair<std::shared_ptr<Vi>, std::shared_ptr<Vi>> connected_pair() {
    auto a = nic0.create_vi();
    auto b = nic1.create_vi();
    Nic::connect(*a, *b);
    return {a, b};
  }
};

TEST(ViaTest, MemoryRegistration) {
  Fixture f;
  auto r = f.nic0.register_memory(4096);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 4096u);
  EXPECT_EQ(f.nic0.find_region(r->handle()), r);
  f.nic0.deregister_memory(r->handle());
  EXPECT_EQ(f.nic0.find_region(r->handle()), nullptr);
}

TEST(ViaTest, RegistrationCostsTimeInsideProcess) {
  Fixture f;
  SimTime t;
  f.s.spawn("p", [&] {
    f.nic0.register_memory(4096);
    t = f.s.now();
  });
  f.s.run();
  EXPECT_GT(t, SimTime::zero());
}

TEST(ViaTest, SendMatchesPostedReceive) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto send_region = f.nic0.register_memory(1024);
  auto recv_region = f.nic1.register_memory(1024);
  std::memset(send_region->data(), 0x5A, 1024);

  Completion recv_c{};
  f.s.spawn("rx", [&] {
    Descriptor rd;
    rd.region = recv_region;
    rd.length = 1024;
    rd.cookie = 7;
    b->post_recv(rd);
    recv_c = b->recv_cq().wait();
  });
  f.s.spawn("tx", [&] {
    f.s.delay(1_us);  // ensure the receive descriptor is posted first
    Descriptor sd;
    sd.region = send_region;
    sd.length = 1024;
    sd.immediate = 0xBEEF;
    sd.cookie = 9;
    a->post_send(sd);
    auto c = a->send_cq().wait();
    EXPECT_EQ(c.status, Status::kSuccess);
    EXPECT_EQ(c.cookie, 9u);
  });
  f.s.run();
  EXPECT_EQ(recv_c.status, Status::kSuccess);
  EXPECT_EQ(recv_c.bytes, 1024u);
  EXPECT_EQ(recv_c.immediate, 0xBEEFu);
  EXPECT_EQ(recv_c.cookie, 7u);
  // Payload actually moved.
  EXPECT_EQ(recv_region->data()[0], std::byte{0x5A});
  EXPECT_EQ(recv_region->data()[1023], std::byte{0x5A});
  EXPECT_EQ(f.nic1.sends_completed(), 1u);
}

TEST(ViaTest, SmallMessageLatencyMatchesCalibration) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(64);
  auto rr = f.nic1.register_memory(64);
  SimTime delivered;
  f.s.spawn("rx", [&] {
    Descriptor rd;
    rd.region = rr;
    rd.length = 64;
    b->post_recv(rd);
    b->recv_cq().wait();
    delivered = f.s.now();
  });
  f.s.spawn("tx", [&] {
    Descriptor sd;
    sd.region = sr;
    sd.length = 4;
    a->post_send(sd);
  });
  f.s.run();
  // Paper: ~9 us one-way for small messages over raw VIA.
  EXPECT_NEAR(delivered.us(), 9.0, 1.0);
}

TEST(ViaTest, SendWithoutReceiveDescriptorErrors) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(64);
  Status st = Status::kSuccess;
  f.s.spawn("tx", [&] {
    Descriptor sd;
    sd.region = sr;
    sd.length = 32;
    a->post_send(sd);
    st = a->send_cq().wait().status;
  });
  f.s.run();
  EXPECT_EQ(st, Status::kNoReceiveDescriptor);
  EXPECT_EQ(f.nic1.recv_misses(), 1u);
  EXPECT_EQ(f.nic1.sends_completed(), 0u);
}

TEST(ViaTest, ReceiveBufferTooSmallIsLengthError) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(1024);
  auto rr = f.nic1.register_memory(1024);
  Status send_st{}, recv_st{};
  f.s.spawn("rx", [&] {
    Descriptor rd;
    rd.region = rr;
    rd.length = 100;  // too small for the incoming 500 B
    b->post_recv(rd);
    recv_st = b->recv_cq().wait().status;
  });
  f.s.spawn("tx", [&] {
    f.s.delay(1_us);
    Descriptor sd;
    sd.region = sr;
    sd.length = 500;
    a->post_send(sd);
    send_st = a->send_cq().wait().status;
  });
  f.s.run();
  EXPECT_EQ(send_st, Status::kLengthError);
  EXPECT_EQ(recv_st, Status::kLengthError);
}

TEST(ViaTest, CompletionsArriveInPostOrder) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(8192);
  auto rr = f.nic1.register_memory(8192);
  std::vector<std::uint64_t> cookies;
  f.s.spawn("rx", [&] {
    for (std::uint64_t i = 0; i < 4; ++i) {
      Descriptor rd;
      rd.region = rr;
      rd.offset = i * 2048;
      rd.length = 2048;
      rd.cookie = i;
      b->post_recv(rd);
    }
    for (int i = 0; i < 4; ++i) {
      cookies.push_back(b->recv_cq().wait().cookie);
    }
  });
  f.s.spawn("tx", [&] {
    f.s.delay(1_us);
    for (std::uint64_t i = 0; i < 4; ++i) {
      Descriptor sd;
      sd.region = sr;
      sd.offset = i * 2048;
      sd.length = 2048;
      sd.cookie = 10 + i;
      a->post_send(sd);
    }
  });
  f.s.run();
  EXPECT_EQ(cookies, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(ViaTest, RdmaWriteCompletesAtSenderOnly) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(256);
  auto rr = f.nic1.register_memory(256);
  std::memset(sr->data(), 0x42, 256);
  Completion c{};
  f.s.spawn("tx", [&] {
    Descriptor d;
    d.op = Opcode::kRdmaWrite;
    d.region = sr;
    d.length = 256;
    d.remote_handle = rr->handle();
    d.remote_offset = 0;
    a->post_send(d);
    c = a->send_cq().wait();
  });
  f.s.run();
  EXPECT_EQ(c.status, Status::kSuccess);
  EXPECT_EQ(c.op, Opcode::kRdmaWrite);
  EXPECT_EQ(rr->data()[255], std::byte{0x42});
  // No receive-side completion was generated.
  EXPECT_EQ(b->recv_cq().pending(), 0u);
}

TEST(ViaTest, RdmaWriteWithImmediateNotifiesReceiver) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(512);
  auto rr = f.nic1.register_memory(512);
  auto pool = f.nic1.register_memory(16);
  std::memset(sr->data(), 0x77, 512);
  via::Completion notify{};
  f.s.spawn("rx", [&] {
    via::Descriptor rd;
    rd.region = pool;
    rd.length = 0;  // dataless: data lands by RDMA, not through this
    rd.cookie = 42;
    b->post_recv(rd);
    notify = b->recv_cq().wait();
  });
  f.s.spawn("tx", [&] {
    f.s.delay(1_us);
    via::Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    d.region = sr;
    d.length = 512;
    d.remote_handle = rr->handle();
    d.remote_notify = true;
    d.immediate = 0xCAFE;
    a->post_send(d);
    EXPECT_EQ(a->send_cq().wait().status, via::Status::kSuccess);
  });
  f.s.run();
  EXPECT_EQ(notify.status, via::Status::kSuccess);
  EXPECT_EQ(notify.op, via::Opcode::kRdmaWrite);
  EXPECT_EQ(notify.immediate, 0xCAFEu);
  EXPECT_EQ(notify.bytes, 512u);
  EXPECT_EQ(notify.cookie, 42u);
  EXPECT_EQ(rr->data()[0], std::byte{0x77});  // data landed before notify
}

TEST(ViaTest, RdmaWriteWithImmediateNeedsDescriptor) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(64);
  auto rr = f.nic1.register_memory(64);
  via::Status st{};
  f.s.spawn("tx", [&] {
    via::Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    d.region = sr;
    d.length = 64;
    d.remote_handle = rr->handle();
    d.remote_notify = true;  // but no receive descriptor posted
    a->post_send(d);
    st = a->send_cq().wait().status;
  });
  f.s.run();
  EXPECT_EQ(st, via::Status::kNoReceiveDescriptor);
  EXPECT_EQ(f.nic1.recv_misses(), 1u);
  // The data itself still landed (RDMA semantics); only the notify failed.
}

TEST(ViaTest, RdmaWriteToBadHandleErrors) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto sr = f.nic0.register_memory(64);
  Status st{};
  f.s.spawn("tx", [&] {
    Descriptor d;
    d.op = Opcode::kRdmaWrite;
    d.region = sr;
    d.length = 64;
    d.remote_handle = 999;  // unknown
    a->post_send(d);
    st = a->send_cq().wait().status;
  });
  f.s.run();
  EXPECT_EQ(st, Status::kLengthError);
}

TEST(ViaTest, PostValidationThrows) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto r = f.nic0.register_memory(100);
  f.s.spawn("p", [&] {
    Descriptor d;
    d.region = r;
    d.length = 200;  // exceeds region
    EXPECT_THROW(a->post_send(d), std::invalid_argument);
    Descriptor nod;
    nod.length = 10;
    EXPECT_THROW(a->post_send(nod), std::invalid_argument);
    EXPECT_THROW(b->post_recv(nod), std::invalid_argument);
  });
  f.s.run();
}

TEST(ViaTest, UnconnectedViRejectsSend) {
  Fixture f;
  auto vi = f.nic0.create_vi();
  auto r = f.nic0.register_memory(64);
  f.s.spawn("p", [&] {
    Descriptor d;
    d.region = r;
    d.length = 8;
    EXPECT_THROW(vi->post_send(d), std::logic_error);
  });
  f.s.run();
  EXPECT_FALSE(vi->connected());
}

TEST(ViaTest, DoubleConnectThrows) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  auto c = f.nic0.create_vi();
  EXPECT_THROW(Nic::connect(*a, *c), std::logic_error);
}

TEST(ViaTest, StreamingBandwidthNearCalibratedPeak) {
  Fixture f;
  auto [a, b] = f.connected_pair();
  const std::uint64_t kMsg = 32_KiB;
  const int kCount = 100;
  auto sr = f.nic0.register_memory(kMsg);
  auto rr = f.nic1.register_memory(kMsg);
  SimTime done;
  f.s.spawn("rx", [&] {
    for (int i = 0; i < kCount; ++i) {
      Descriptor rd;
      rd.region = rr;
      rd.length = kMsg;
      b->post_recv(rd);
    }
    for (int i = 0; i < kCount; ++i) b->recv_cq().wait();
    done = f.s.now();
  });
  f.s.spawn("tx", [&] {
    f.s.delay(5_us);
    for (int i = 0; i < kCount; ++i) {
      Descriptor sd;
      sd.region = sr;
      sd.length = kMsg;
      a->post_send(sd);
      a->send_cq().wait();  // keep send queue shallow
    }
  });
  f.s.run();
  const double mbps = throughput_mbps(kMsg * kCount, done);
  EXPECT_NEAR(mbps, 795.0, 40.0);  // paper's VIA peak
}

}  // namespace
}  // namespace sv::via
