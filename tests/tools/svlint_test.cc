// Fixture-corpus tests for svlint: every rule id must catch its seeded
// violation, path scoping must hold, and suppressions must downgrade
// findings without hiding them.
#include "svlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "include_graph.h"

namespace sv::lint {
namespace {

std::vector<Finding> scan_fixture(const std::string& rel_path) {
  return scan_file(SVLINT_FIXTURE_DIR, rel_path);
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& fs) {
  std::vector<Finding> out;
  std::copy_if(fs.begin(), fs.end(), std::back_inserter(out),
               [](const Finding& f) { return !f.suppressed; });
  return out;
}

bool has(const std::vector<Finding>& fs, const std::string& rule, int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line && !f.suppressed;
  });
}

TEST(SvlintRules, RuleTableListsFourteenRules) {
  ASSERT_EQ(rules().size(), 14u);
  EXPECT_STREQ(rules().front().id, "SV001");
  EXPECT_STREQ(rules().back().id, "SV014");
}

TEST(SvlintRules, Sv001CatchesUnorderedIteration) {
  const auto fs = scan_fixture("src/sim/unordered_iter.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV001", 12)) << "range-for over member map";
  EXPECT_TRUE(has(live, "SV001", 18)) << ".begin() on unordered set";
  EXPECT_TRUE(has(live, "SV001", 31)) << "range-for over temporary";
  EXPECT_EQ(live.size(), 3u);
  // The allowed block is still reported, flagged as suppressed.
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_TRUE(fs[2].suppressed || fs[3].suppressed);
}

TEST(SvlintRules, Sv001ScopedToOrderedOutputContexts) {
  const auto fs = scan_fixture("src/harness/unordered_iter_ok.cc");
  EXPECT_TRUE(fs.empty()) << "src/harness is not an ordered-output context";
}

TEST(SvlintRules, Sv002CatchesLibcRand) {
  const auto live = unsuppressed(scan_fixture("src/net/rand_call.cc"));
  EXPECT_TRUE(has(live, "SV002", 5)) << "std::rand()";
  EXPECT_TRUE(has(live, "SV002", 9)) << "srand()";
  EXPECT_EQ(live.size(), 2u) << "identifiers containing 'rand' must not trip";
}

TEST(SvlintRules, Sv003CatchesRandomDevice) {
  const auto live =
      unsuppressed(scan_fixture("src/datacutter/random_device.cc"));
  EXPECT_TRUE(has(live, "SV003", 5));
  EXPECT_EQ(live.size(), 1u);
}

TEST(SvlintRules, Sv004CatchesWallClocks) {
  const auto live = unsuppressed(scan_fixture("src/vizapp/wall_clock.cc"));
  EXPECT_TRUE(has(live, "SV004", 6)) << "steady_clock";
  EXPECT_TRUE(has(live, "SV004", 11)) << "system_clock";
  EXPECT_TRUE(has(live, "SV004", 16)) << "high_resolution_clock";
  EXPECT_TRUE(has(live, "SV004", 21)) << "time(nullptr)";
  EXPECT_TRUE(has(live, "SV004", 26)) << "clock_gettime";
  EXPECT_EQ(live.size(), 5u);
}

TEST(SvlintRules, Sv004AllowsHarness) {
  EXPECT_TRUE(scan_fixture("src/harness/wall_clock_ok.cc").empty());
}

TEST(SvlintRules, Sv005CatchesPointerKeyedContainers) {
  const auto live = unsuppressed(scan_fixture("src/sim/ptr_map.cc"));
  EXPECT_TRUE(has(live, "SV005", 9)) << "std::map<Node*, int>";
  EXPECT_TRUE(has(live, "SV005", 10)) << "std::set<const Node*>";
  EXPECT_EQ(live.size(), 2u)
      << "pointer values / non-pointer keys must not trip";
}

TEST(SvlintRules, Sv006CatchesFloatTimeAccumulation) {
  const auto live = unsuppressed(scan_fixture("src/net/float_time.cc"));
  EXPECT_TRUE(has(live, "SV006", 15)) << "+= over .us()";
  EXPECT_TRUE(has(live, "SV006", 21)) << "SimTime from float expression";
  EXPECT_EQ(live.size(), 2u) << "integer .ns() accumulation must not trip";
}

TEST(SvlintRules, FaultInjectionAntiPatternsAllCaught) {
  // The fault layer's determinism hinges on seeded-RNG-only randomness and
  // value-keyed link state; the fixture seeds one violation of each kind.
  const auto live = unsuppressed(scan_fixture("src/net/fault_unseeded.cc"));
  EXPECT_TRUE(has(live, "SV003", 10)) << "random_device entropy source";
  EXPECT_TRUE(has(live, "SV005", 11)) << "pointer-keyed link-state map";
  EXPECT_TRUE(has(live, "SV002", 14)) << "libc rand() for drop decisions";
  EXPECT_EQ(live.size(), 3u);
}

TEST(SvlintRules, SeededFaultIdiomIsClean) {
  // The blessed shape of src/net/fault.cc: seed-derived per-link streams
  // in a value-keyed ordered map must produce zero findings.
  EXPECT_TRUE(scan_fixture("src/net/fault_seeded_ok.cc").empty());
}

TEST(SvlintRules, Sv007CatchesConsoleOutputAndRawCounters) {
  const auto fs = scan_fixture("src/net/console_counter.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV007", 8)) << "std::cout";
  EXPECT_TRUE(has(live, "SV007", 9)) << "std::fprintf";
  EXPECT_TRUE(has(live, "SV007", 14)) << "frames_seen_ member";
  EXPECT_TRUE(has(live, "SV007", 15)) << "uninitialised frames_dropped_";
  EXPECT_EQ(live.size(), 4u)
      << "snprintf, non-counter members and function parameters must not "
         "trip";
  // The allowed snapshot local is reported but suppressed.
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 21);
}

TEST(SvlintRules, Sv007ExemptsObsAndCommonLayers) {
  EXPECT_TRUE(scan_fixture("src/obs/registry_impl_ok.cc").empty())
      << "src/obs implements the counters; the rule must not fire there";
  // Same content relocated into scope does fire.
  EXPECT_FALSE(unsuppressed(scan_source("src/sim/x.cc",
                                        "std::uint64_t drops_count_ = 0;\n"))
                   .empty());
  EXPECT_TRUE(scan_source("src/common/log2.cc",
                          "std::uint64_t drops_count_ = 0;\n")
                  .empty());
}

TEST(SvlintRules, Sv008CatchesRawPayloadCopies) {
  const auto fs = scan_fixture("src/net/payload_copy.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV008", 7)) << "std::memcpy";
  EXPECT_TRUE(has(live, "SV008", 8)) << "unqualified memmove";
  EXPECT_TRUE(has(live, "SV008", 9)) << "iterator-range byte-vector copy";
  EXPECT_TRUE(has(live, "SV008", 15)) << "deref byte-vector copy";
  EXPECT_EQ(live.size(), 4u)
      << "size construction and wmemcpy must not trip";
  // The modeled-DMA memcpy is reported but suppressed.
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 17);
}

TEST(SvlintRules, Sv008ExemptsMemLayer) {
  EXPECT_TRUE(scan_fixture("src/mem/payload_impl_ok.cc").empty())
      << "src/mem implements the sanctioned copies; the rule must not fire "
         "there";
  // The same content relocated outside src/mem does fire.
  EXPECT_FALSE(
      unsuppressed(scan_source("src/tcpstack/x.cc",
                               "void f() { memcpy(a, b, n); }\n"))
          .empty());
  // Tests and tools are out of scope: copies there model nothing.
  EXPECT_TRUE(
      scan_source("tools/x.cc", "void f() { memcpy(a, b, n); }\n").empty());
}

TEST(SvlintRules, CleanFileHasNoFindings) {
  EXPECT_TRUE(scan_fixture("src/sim/clean.cc").empty())
      << "hazard words in comments/strings must be stripped; find()/"
         "membership on unordered containers is fine";
}

TEST(SvlintRules, Sv009CatchesUpwardLayeringEdges) {
  const auto fs = scan_fixture("src/net/layer_violation.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV009", 6)) << "net including sockets (upward)";
  EXPECT_TRUE(has(live, "SV009", 7)) << "net including via (upward)";
  EXPECT_EQ(live.size(), 2u)
      << "downward, same-module, local and angled includes must not trip";
  // The allowed upward edge is still reported, flagged as suppressed.
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 11);
}

TEST(SvlintRules, Sv009AllowsEveryDownwardEdgeFromTheTop) {
  EXPECT_TRUE(scan_fixture("src/sockets/layering_ok.cc").empty());
  // Files outside src/ carry no layer.
  EXPECT_TRUE(
      scan_source("tools/x.cc", "#include \"sockets/socket.h\"\n").empty());
}

TEST(SvlintRules, Sv009RejectsModulesOutsideTheDeclaredDag) {
  const auto fs = scan_source("src/newmod/x.cc", "int x = 0;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "SV009");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(SvlintRules, Sv010CatchesDiscardedTimedOpResults) {
  const auto fs = scan_fixture("src/net/discarded_result.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV010", 5)) << "bare send_for statement";
  EXPECT_TRUE(has(live, "SV010", 6)) << "chained recv_for through mine()";
  EXPECT_TRUE(has(live, "SV010", 7)) << "wait_completion_for as if-body";
  EXPECT_EQ(live.size(), 3u)
      << "assigned, (void)-cast, .ok()-consumed and returned calls must "
         "not trip";
  ASSERT_EQ(fs.size(), 4u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 12);
}

TEST(SvlintRules, Sv010MatchesAcrossLineBreaks) {
  const std::string text =
      "void f() {\n"
      "  sock->send_for(\n"
      "      m,\n"
      "      t);\n"
      "}\n";
  const auto fs = scan_source("src/net/x.cc", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "SV010");
  EXPECT_EQ(fs[0].line, 2) << "reported at the callee identifier";
}

TEST(SvlintRules, Sv011CatchesRawConcurrencyOutsideSim) {
  const auto fs = scan_fixture("src/net/thread_use.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV011", 4)) << "#include <thread>";
  EXPECT_TRUE(has(live, "SV011", 5)) << "#include <mutex>";
  EXPECT_TRUE(has(live, "SV011", 9)) << "std::thread";
  EXPECT_TRUE(has(live, "SV011", 10)) << "std::atomic_int";
  EXPECT_TRUE(has(live, "SV011", 11)) << "std::lock_guard + std::mutex";
  EXPECT_EQ(live.size(), 6u)
      << "std::vector, non-std 'threading::' and <vector> must not trip";
  ASSERT_EQ(fs.size(), 7u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 15);
}

TEST(SvlintRules, Sv011ExemptsTheSimScheduler) {
  EXPECT_TRUE(scan_fixture("src/sim/thread_ok.cc").empty())
      << "src/sim implements the sanctioned scheduler";
}

TEST(SvlintRules, Sv012ChecksMetricFamiliesAgainstManifest) {
  const ProjectContext ctx = load_project(SVLINT_FIXTURE_DIR);
  ASSERT_TRUE(ctx.manifest_loaded);
  ASSERT_EQ(ctx.metric_manifest.size(), 2u);
  const auto fs =
      scan_file(SVLINT_FIXTURE_DIR, "src/net/metric_names.cc", &ctx);
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV012", 7)) << "typo'd family via hub->metrics()";
  EXPECT_TRUE(has(live, "SV012", 8)) << "undeclared histogram family";
  EXPECT_EQ(live.size(), 2u)
      << "declared families, '{label}' suffixes and non-literal names must "
         "not trip";
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 11);
}

TEST(SvlintRules, Sv012InertWithoutAManifest) {
  // scan_fixture passes no project context; the rule must degrade to off
  // rather than flagging every metric in a tree without a manifest.
  EXPECT_TRUE(scan_fixture("src/net/metric_names.cc").empty());
}

TEST(SvlintRules, Sv013CatchesDirectRegistrationAndPoolAcquire) {
  const auto fs = scan_fixture("src/sockets/pool_direct.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV013", 6)) << "nic.register_memory";
  EXPECT_TRUE(has(live, "SV013", 7)) << "acquire on BufferPool-typed param";
  EXPECT_TRUE(has(live, "SV013", 15)) << "acquire on pool-ish member";
  EXPECT_EQ(live.size(), 3u)
      << "Resource::acquire and CopyPolicy::acquire must not trip";
  // The sanctioned modeled-DMA setup is reported but suppressed.
  ASSERT_EQ(fs.size(), 4u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 28);
}

TEST(SvlintRules, Sv014CatchesActuatorCallsOutsideControl) {
  const auto fs = scan_fixture("src/harness/actuator_call.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV014", 8)) << "set_admit_permille outside control";
  EXPECT_TRUE(has(live, "SV014", 9)) << "firing an installed callback";
  EXPECT_TRUE(has(live, "SV014", 10)) << "arrow receiver";
  EXPECT_EQ(live.size(), 3u)
      << "installing callbacks and querying admit() must not trip";
  // The drill override is reported but suppressed.
  ASSERT_EQ(fs.size(), 4u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 24);
}

TEST(SvlintRules, Sv014ExemptsTheControlPlane) {
  EXPECT_TRUE(scan_fixture("src/control/actuator_ok.cc").empty());
}

TEST(SvlintRules, Sv013ExemptsMemLayerAndNonSrcTrees) {
  EXPECT_TRUE(
      scan_source("src/mem/x.cc", "void f(P& p) { p.register_memory(4); }\n")
          .empty())
      << "src/mem implements the sanctioned registration path";
  EXPECT_TRUE(
      scan_source("bench/x.cc", "void f(N& n) { n.register_memory(4); }\n")
          .empty())
      << "benches model raw-VIA applications and stay out of scope";
  EXPECT_FALSE(
      unsuppressed(scan_source(
                       "src/vizapp/x.cc",
                       "void f(N& n) { auto r = n.register_memory(4); }\n"))
          .empty());
}

TEST(SvlintRules, CollectMetricFamiliesFeedsTheOrphanCheck) {
  const std::string text =
      "void f(Registry& reg) {\n"
      "  reg.counter(\"a.hits{link=x}\");\n"
      "  reg.gauge(\"b.depth\");\n"
      "  reg.counter(\"a.hits\");\n"
      "}\n";
  const auto families = collect_metric_families(lex(text));
  EXPECT_EQ(families, (std::set<std::string>{"a.hits", "b.depth"}));
}

TEST(IncludeGraph, ModuleRanksDeclareTheDag) {
  EXPECT_EQ(module_of("src/net/fabric.cc"), "net");
  EXPECT_EQ(module_of("src/common/log.h"), "common");
  EXPECT_EQ(module_of("tools/svlint/main.cc"), "");
  const char* order[] = {"common",     "obs",    "control", "sim",
                         "mem",        "net",    "tcpstack", "sockets",
                         "datacutter", "vizapp", "harness"};
  for (std::size_t i = 1; i < std::size(order); ++i) {
    EXPECT_LT(module_rank(order[i - 1]), module_rank(order[i]))
        << order[i - 1] << " must rank below " << order[i];
  }
  EXPECT_EQ(module_rank("via"), module_rank("tcpstack"))
      << "the two transports are peers";
  EXPECT_EQ(module_rank("not_a_module"), -1);
}

TEST(IncludeGraph, ResolvesIncludesOverASyntheticTree) {
  IncludeGraph g;
  g.add_file("src/common/units.h", {});
  g.add_file("src/net/fabric.h", {{"common/units.h", false, 1}});
  g.add_file("src/net/fabric.cc", {{"net/fabric.h", false, 1},
                                   {"vector", true, 2}});
  g.add_file("src/sockets/socket.h", {{"net/fabric.h", false, 1}});
  g.add_file("tools/svlint/lexer.h", {});
  g.add_file("tools/svlint/lexer.cc", {{"lexer.h", false, 1}});
  g.finalize();

  EXPECT_EQ(g.includes_of("src/net/fabric.cc"),
            (std::vector<std::string>{"src/net/fabric.h"}))
      << "src/-relative resolution; angled includes dropped";
  EXPECT_EQ(g.includes_of("tools/svlint/lexer.cc"),
            (std::vector<std::string>{"tools/svlint/lexer.h"}))
      << "includer-directory-relative resolution";

  // A change to the bottom header must re-scan its whole reverse closure.
  const auto dep = g.dependents_of({"src/common/units.h"});
  EXPECT_EQ(dep, (std::set<std::string>{
                     "src/common/units.h", "src/net/fabric.h",
                     "src/net/fabric.cc", "src/sockets/socket.h"}));
  // An isolated leaf re-scans only itself.
  const auto leaf = g.dependents_of({"tools/svlint/lexer.cc"});
  EXPECT_EQ(leaf, (std::set<std::string>{"tools/svlint/lexer.cc"}));

  // Module projection: self-edges dropped, non-src/ files excluded.
  const auto edges = g.module_edges();
  ASSERT_EQ(edges.count("net"), 1u);
  EXPECT_EQ(edges.at("net"), (std::set<std::string>{"common"}));
  ASSERT_EQ(edges.count("sockets"), 1u);
  EXPECT_EQ(edges.at("sockets"), (std::set<std::string>{"net"}));
}

TEST(SvlintLexer, RawStringsCommentsAndIncludesAreNotCode) {
  const std::string text =
      "#include \"net/fabric.h\"\n"
      "#include <vector>\n"
      "// std::rand() lives in a comment\n"
      "const char* p = R\"(std::random_device rd; memcpy(a, b, n);)\";\n"
      "/* std::thread in\n"
      "   a block comment */\n"
      "int x = 0;\n";
  EXPECT_TRUE(scan_source("src/net/x.cc", text).empty())
      << "hazard words in comments, strings and raw strings are not code";

  const LexedFile lx = lex(text);
  ASSERT_EQ(lx.includes.size(), 2u);
  EXPECT_EQ(lx.includes[0].path, "net/fabric.h");
  EXPECT_FALSE(lx.includes[0].angled);
  EXPECT_EQ(lx.includes[0].line, 1);
  EXPECT_EQ(lx.includes[1].path, "vector");
  EXPECT_TRUE(lx.includes[1].angled);
}

TEST(SvlintSuppression, SameLineAndPreviousLineBothWork) {
  const std::string same_line =
      "int f() { return std::rand(); }  // svlint:allow(SV002): why\n";
  auto fs = scan_source("src/sim/x.cc", same_line);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);

  const std::string prev_line =
      "// svlint:allow(SV002): why\nint f() { return std::rand(); }\n";
  fs = scan_source("src/sim/x.cc", prev_line);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);

  const std::string wrong_rule =
      "int f() { return std::rand(); }  // svlint:allow(SV001)\n";
  fs = scan_source("src/sim/x.cc", wrong_rule);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(fs[0].suppressed) << "allow of a different rule is inert";
}

TEST(SvlintSuppression, MultiRuleAllowList) {
  const std::string text =
      "double d = 0; d += t.us();  // svlint:allow(SV004, SV006)\n";
  const auto fs = scan_source("src/net/x.cc", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "SV006");
  EXPECT_TRUE(fs[0].suppressed);
}

TEST(SvlintBaseline, AbsorbConsumesOneSlotPerFinding) {
  Baseline b =
      Baseline::load(std::string(SVLINT_FIXTURE_DIR) + "/baseline.txt");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.absorb("src/a.cc", "SV002"));
  EXPECT_TRUE(b.absorb("src/a.cc", "SV002"));
  EXPECT_FALSE(b.absorb("src/a.cc", "SV002"))
      << "a third finding in the same file must fail the build";
  EXPECT_TRUE(b.absorb("src/b.cc", "SV007"));
  EXPECT_FALSE(b.absorb("src/b.cc", "SV002")) << "rule id is part of the key";
}

TEST(SvlintBaseline, MissingFileIsEmpty) {
  EXPECT_EQ(Baseline::load("/nonexistent/baseline.txt").size(), 0u);
}

TEST(SvlintJson, FindingsSerializeSortedWithEscapes) {
  std::vector<Finding> fs;
  fs.push_back({"src/b.cc", 2, "SV002", "uses \"rand\"", "x = rand();",
                false, false});
  fs.push_back({"src/a.cc", 9, "SV004", "wall clock", "t();", true, false});
  std::ostringstream os;
  write_findings_json(os, fs);
  const std::string js = os.str();
  EXPECT_LT(js.find("src/a.cc"), js.find("src/b.cc"))
      << "sorted by file regardless of insertion order";
  EXPECT_NE(js.find("\\\"rand\\\""), std::string::npos)
      << "quotes in messages must be escaped";
  EXPECT_NE(js.find("\"suppressed\": true"), std::string::npos);
}

TEST(SvlintScan, FindingsAreSortedAndStable) {
  const std::string text =
      "int a = std::rand();\n"
      "std::random_device rd;\n";
  const auto fs = scan_source("src/net/x.cc", text);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].rule, "SV002");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[1].rule, "SV003");
}

}  // namespace
}  // namespace sv::lint
