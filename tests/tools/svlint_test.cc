// Fixture-corpus tests for svlint: every rule id must catch its seeded
// violation, path scoping must hold, and suppressions must downgrade
// findings without hiding them.
#include "svlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace sv::lint {
namespace {

std::vector<Finding> scan_fixture(const std::string& rel_path) {
  return scan_file(SVLINT_FIXTURE_DIR, rel_path);
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& fs) {
  std::vector<Finding> out;
  std::copy_if(fs.begin(), fs.end(), std::back_inserter(out),
               [](const Finding& f) { return !f.suppressed; });
  return out;
}

bool has(const std::vector<Finding>& fs, const std::string& rule, int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line && !f.suppressed;
  });
}

TEST(SvlintRules, RuleTableListsEightRules) {
  ASSERT_EQ(rules().size(), 8u);
  EXPECT_STREQ(rules().front().id, "SV001");
  EXPECT_STREQ(rules().back().id, "SV008");
}

TEST(SvlintRules, Sv001CatchesUnorderedIteration) {
  const auto fs = scan_fixture("src/sim/unordered_iter.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV001", 12)) << "range-for over member map";
  EXPECT_TRUE(has(live, "SV001", 18)) << ".begin() on unordered set";
  EXPECT_TRUE(has(live, "SV001", 31)) << "range-for over temporary";
  EXPECT_EQ(live.size(), 3u);
  // The allowed block is still reported, flagged as suppressed.
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_TRUE(fs[2].suppressed || fs[3].suppressed);
}

TEST(SvlintRules, Sv001ScopedToOrderedOutputContexts) {
  const auto fs = scan_fixture("src/harness/unordered_iter_ok.cc");
  EXPECT_TRUE(fs.empty()) << "src/harness is not an ordered-output context";
}

TEST(SvlintRules, Sv002CatchesLibcRand) {
  const auto live = unsuppressed(scan_fixture("src/net/rand_call.cc"));
  EXPECT_TRUE(has(live, "SV002", 5)) << "std::rand()";
  EXPECT_TRUE(has(live, "SV002", 9)) << "srand()";
  EXPECT_EQ(live.size(), 2u) << "identifiers containing 'rand' must not trip";
}

TEST(SvlintRules, Sv003CatchesRandomDevice) {
  const auto live =
      unsuppressed(scan_fixture("src/datacutter/random_device.cc"));
  EXPECT_TRUE(has(live, "SV003", 5));
  EXPECT_EQ(live.size(), 1u);
}

TEST(SvlintRules, Sv004CatchesWallClocks) {
  const auto live = unsuppressed(scan_fixture("src/vizapp/wall_clock.cc"));
  EXPECT_TRUE(has(live, "SV004", 6)) << "steady_clock";
  EXPECT_TRUE(has(live, "SV004", 11)) << "system_clock";
  EXPECT_TRUE(has(live, "SV004", 16)) << "high_resolution_clock";
  EXPECT_TRUE(has(live, "SV004", 21)) << "time(nullptr)";
  EXPECT_TRUE(has(live, "SV004", 26)) << "clock_gettime";
  EXPECT_EQ(live.size(), 5u);
}

TEST(SvlintRules, Sv004AllowsHarness) {
  EXPECT_TRUE(scan_fixture("src/harness/wall_clock_ok.cc").empty());
}

TEST(SvlintRules, Sv005CatchesPointerKeyedContainers) {
  const auto live = unsuppressed(scan_fixture("src/sim/ptr_map.cc"));
  EXPECT_TRUE(has(live, "SV005", 9)) << "std::map<Node*, int>";
  EXPECT_TRUE(has(live, "SV005", 10)) << "std::set<const Node*>";
  EXPECT_EQ(live.size(), 2u)
      << "pointer values / non-pointer keys must not trip";
}

TEST(SvlintRules, Sv006CatchesFloatTimeAccumulation) {
  const auto live = unsuppressed(scan_fixture("src/net/float_time.cc"));
  EXPECT_TRUE(has(live, "SV006", 15)) << "+= over .us()";
  EXPECT_TRUE(has(live, "SV006", 21)) << "SimTime from float expression";
  EXPECT_EQ(live.size(), 2u) << "integer .ns() accumulation must not trip";
}

TEST(SvlintRules, FaultInjectionAntiPatternsAllCaught) {
  // The fault layer's determinism hinges on seeded-RNG-only randomness and
  // value-keyed link state; the fixture seeds one violation of each kind.
  const auto live = unsuppressed(scan_fixture("src/net/fault_unseeded.cc"));
  EXPECT_TRUE(has(live, "SV003", 10)) << "random_device entropy source";
  EXPECT_TRUE(has(live, "SV005", 11)) << "pointer-keyed link-state map";
  EXPECT_TRUE(has(live, "SV002", 14)) << "libc rand() for drop decisions";
  EXPECT_EQ(live.size(), 3u);
}

TEST(SvlintRules, SeededFaultIdiomIsClean) {
  // The blessed shape of src/net/fault.cc: seed-derived per-link streams
  // in a value-keyed ordered map must produce zero findings.
  EXPECT_TRUE(scan_fixture("src/net/fault_seeded_ok.cc").empty());
}

TEST(SvlintRules, Sv007CatchesConsoleOutputAndRawCounters) {
  const auto fs = scan_fixture("src/net/console_counter.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV007", 8)) << "std::cout";
  EXPECT_TRUE(has(live, "SV007", 9)) << "std::fprintf";
  EXPECT_TRUE(has(live, "SV007", 14)) << "frames_seen_ member";
  EXPECT_TRUE(has(live, "SV007", 15)) << "uninitialised frames_dropped_";
  EXPECT_EQ(live.size(), 4u)
      << "snprintf, non-counter members and function parameters must not "
         "trip";
  // The allowed snapshot local is reported but suppressed.
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 21);
}

TEST(SvlintRules, Sv007ExemptsObsAndCommonLayers) {
  EXPECT_TRUE(scan_fixture("src/obs/registry_impl_ok.cc").empty())
      << "src/obs implements the counters; the rule must not fire there";
  // Same content relocated into scope does fire.
  EXPECT_FALSE(unsuppressed(scan_source("src/sim/x.cc",
                                        "std::uint64_t drops_count_ = 0;\n"))
                   .empty());
  EXPECT_TRUE(scan_source("src/common/log2.cc",
                          "std::uint64_t drops_count_ = 0;\n")
                  .empty());
}

TEST(SvlintRules, Sv008CatchesRawPayloadCopies) {
  const auto fs = scan_fixture("src/net/payload_copy.cc");
  const auto live = unsuppressed(fs);
  EXPECT_TRUE(has(live, "SV008", 7)) << "std::memcpy";
  EXPECT_TRUE(has(live, "SV008", 8)) << "unqualified memmove";
  EXPECT_TRUE(has(live, "SV008", 9)) << "iterator-range byte-vector copy";
  EXPECT_TRUE(has(live, "SV008", 15)) << "deref byte-vector copy";
  EXPECT_EQ(live.size(), 4u)
      << "size construction and wmemcpy must not trip";
  // The modeled-DMA memcpy is reported but suppressed.
  ASSERT_EQ(fs.size(), 5u);
  EXPECT_TRUE(fs.back().suppressed);
  EXPECT_EQ(fs.back().line, 17);
}

TEST(SvlintRules, Sv008ExemptsMemLayer) {
  EXPECT_TRUE(scan_fixture("src/mem/payload_impl_ok.cc").empty())
      << "src/mem implements the sanctioned copies; the rule must not fire "
         "there";
  // The same content relocated outside src/mem does fire.
  EXPECT_FALSE(
      unsuppressed(scan_source("src/tcpstack/x.cc",
                               "void f() { memcpy(a, b, n); }\n"))
          .empty());
  // Tests and tools are out of scope: copies there model nothing.
  EXPECT_TRUE(
      scan_source("tools/x.cc", "void f() { memcpy(a, b, n); }\n").empty());
}

TEST(SvlintRules, CleanFileHasNoFindings) {
  EXPECT_TRUE(scan_fixture("src/sim/clean.cc").empty())
      << "hazard words in comments/strings must be stripped; find()/"
         "membership on unordered containers is fine";
}

TEST(SvlintSuppression, SameLineAndPreviousLineBothWork) {
  const std::string same_line =
      "int f() { return std::rand(); }  // svlint:allow(SV002): why\n";
  auto fs = scan_source("src/sim/x.cc", same_line);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);

  const std::string prev_line =
      "// svlint:allow(SV002): why\nint f() { return std::rand(); }\n";
  fs = scan_source("src/sim/x.cc", prev_line);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);

  const std::string wrong_rule =
      "int f() { return std::rand(); }  // svlint:allow(SV001)\n";
  fs = scan_source("src/sim/x.cc", wrong_rule);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(fs[0].suppressed) << "allow of a different rule is inert";
}

TEST(SvlintSuppression, MultiRuleAllowList) {
  const std::string text =
      "double d = 0; d += t.us();  // svlint:allow(SV004, SV006)\n";
  const auto fs = scan_source("src/net/x.cc", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "SV006");
  EXPECT_TRUE(fs[0].suppressed);
}

TEST(SvlintScan, FindingsAreSortedAndStable) {
  const std::string text =
      "int a = std::rand();\n"
      "std::random_device rd;\n";
  const auto fs = scan_source("src/net/x.cc", text);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].rule, "SV002");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[1].rule, "SV003");
}

}  // namespace
}  // namespace sv::lint
