// svlint fixture: SV003 — OS entropy source.
#include <random>

unsigned fresh_seed() {
  std::random_device rd;  // line 5: SV003
  return rd();
}

unsigned fresh_seed_allowed() {
  // svlint:allow(SV003): fixture exercise
  std::random_device rd;
  return rd();
}
