// svlint fixture: SV005 — pointer-keyed ordered containers.
#include <map>
#include <set>

struct Node {};

struct Registry {
  // Keys below are raw pointers: iteration order follows address order.
  std::map<Node*, int> weights_;        // line 9: SV005
  std::set<const Node*> members_;       // line 10: SV005
  std::map<int, Node*> by_id_;          // value is a pointer: fine
  std::set<int> plain_;                 // fine
  std::map<Node*, int> allowed_;        // svlint:allow(SV005): fixture
};
