// svlint fixture: a clean file — zero findings expected. Hazard words in
// comments and string literals must be ignored by the stripper:
// rand() std::random_device std::chrono::steady_clock
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Clean {
  std::unordered_map<int, int> lookup_;  // membership only, never iterated
  std::map<int, int> ordered_;

  int get(int k) const {
    auto it = lookup_.find(k);
    return it == lookup_.end() ? 0 : it->second;  /* find() is fine */
  }

  int sum_ordered() const {
    int s = 0;
    for (const auto& [k, v] : ordered_) {
      s += v;
    }
    return s;
  }

  std::string banner() const {
    return "do not call rand() or std::chrono::system_clock::now()";
  }
};
