// svlint fixture: SV001 — unordered-container iteration in src/sim.
// Never compiled; scanned by svlint_test.
#include <unordered_map>
#include <unordered_set>

struct Scheduler {
  std::unordered_map<int, int> table_;
  std::unordered_set<long> ids_;

  int sum_bad() {
    int s = 0;
    for (const auto& [k, v] : table_) {  // line 12: SV001
      s += v;
    }
    return s;
  }

  long first_bad() { return *ids_.begin(); }  // line 18: SV001

  int sum_allowed() {
    int s = 0;
    // svlint:allow(SV001): aggregation is order-independent
    for (const auto& [k, v] : table_) {
      s += v;
    }
    return s;
  }
};
int inline_temporary_bad() {
  int s = 0;
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // line 31: SV001
    s += v;
  }
  return s;
}
