// SV011 negative fixture: src/sim implements the thread-per-process
// scheduler, so OS concurrency primitives are sanctioned here.
#include <thread>
#include <mutex>

void thread_ok_fixture() {
  std::thread worker;
  std::mutex m;
  std::lock_guard<std::mutex> g(m);
}
