// svlint fixture: SV004 — wall-clock reads inside simulation code.
#include <chrono>
#include <ctime>

long now_ns() {
  auto t = std::chrono::steady_clock::now();  // line 6: SV004
  return t.time_since_epoch().count();
}

long today() {
  auto t = std::chrono::system_clock::now();  // line 11: SV004
  return t.time_since_epoch().count();
}

long hires() {
  auto t = std::chrono::high_resolution_clock::now();  // line 16: SV004
  return t.time_since_epoch().count();
}

long unix_time() {
  return static_cast<long>(time(nullptr));  // line 21: SV004
}

long posix_time() {
  struct timespec ts;
  clock_gettime(0, &ts);  // line 26: SV004
  return ts.tv_sec;
}

long allowed() {
  // svlint:allow(SV004): fixture exercise
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
