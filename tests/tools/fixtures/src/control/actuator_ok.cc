// SV014 negative fixture: src/control/ is the mutation authority — the
// Controller fires every actuator from inside the publish event.
#include "control/slo.h"

void controller_fires(sv::control::AdmissionControl& gate,
                      sv::control::Actuators& acts) {
  gate.set_admit_permille(750);
  acts.apply_chunk_bytes(1024);
  acts.apply_demotion(2);
  acts.apply_promotion(2);
}
