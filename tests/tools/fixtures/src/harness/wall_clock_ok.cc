// svlint fixture: wall-clock reads are permitted in src/harness (it
// measures the real cost of the simulator itself) — SV004 must not fire.
#include <chrono>

double wall_seconds() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
