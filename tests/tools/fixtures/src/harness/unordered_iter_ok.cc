// svlint fixture: the same iteration pattern as src/sim/unordered_iter.cc
// but located in src/harness, which is not an ordered-output context —
// SV001 must not fire here.
#include <unordered_map>

struct Report {
  std::unordered_map<int, int> counts_;

  int total() {
    int s = 0;
    for (const auto& [k, v] : counts_) {
      s += v;
    }
    return s;
  }
};
