// SV014 fixture: actuator calls outside src/control/. Installing the
// callbacks and querying admit() are the sanctioned harness verbs;
// *firing* one is not.
#include "control/slo.h"

void actuator_misuse(sv::control::AdmissionControl& gate,
                     sv::control::Actuators& acts) {
  gate.set_admit_permille(500);  // finding: re-rate outside control
  acts.apply_chunk_bytes(2048);  // finding: firing an installed callback
  (&acts)->apply_demotion(3);    // finding: arrow receiver
}

// Installing and querying are sanctioned: no findings below.
void sanctioned(sv::control::AdmissionControl& gate,
                sv::control::Actuators& acts) {
  acts.apply_promotion = [](int) {};
  (void)gate.admit(0, sv::SimTime::zero());
  (void)gate.admit_permille();
}

// Suppression case: reported but downgraded, never hidden.
void forced(sv::control::Actuators& acts) {
  // svlint:allow(SV014): probation override in a recovery drill
  acts.apply_promotion(1);
}
