// SV013 fixture: direct registration / pool acquisition outside src/mem.
#include "mem/buffer_pool.h"
#include "via/via.h"

void setup(sv::via::Nic& nic, sv::mem::BufferPool& staging) {
  auto region = nic.register_memory(4096);        // finding: direct pin
  sv::mem::PooledBuffer lease = staging.acquire(512);  // finding: typed pool
  (void)region;
  (void)lease;
}

struct Filter {
  std::optional<sv::mem::BufferPool> pool_;
  void run() {
    auto lease = pool_->acquire(256);  // finding: pool-ish member receiver
    (void)lease;
  }
  // Non-pool acquire() verbs must not trip: the sim layer's resources.
  void wait(sv::sim::Resource* res, sv::mem::CopyPolicy* policy) {
    res->acquire();
    (void)policy->acquire(sv::SimTime::zero(), 1, 64);
  }
};

// Sanctioned modeled-DMA setup: reported but suppressed.
void dma_setup(sv::via::Nic& nic) {
  // svlint:allow(SV013): modeled-DMA slot setup charges the ledger itself
  auto slots = nic.register_memory(65536);
  (void)slots;
}
