// SV009 negative fixture: sockets (layer 7) may include every lower layer,
// its own module, slash-free local headers, and system headers.
#include "common/units.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "sim/engine.h"
#include "sockets/socket.h"
#include "tcpstack/tcp.h"
#include "via/via_channel.h"
#include "socket_helpers.h"
#include <vector>

void layering_ok_fixture() {}
