// SV008 fixture: src/mem/ implements the sanctioned copy primitives, so
// raw byte copies here are the rule's own machinery, not violations.
#include <cstring>
#include <vector>

void copy_of_impl(std::vector<std::byte>& dst,
                  const std::vector<std::byte>& src) {
  std::memcpy(dst.data(), src.data(), src.size());
  std::vector<std::byte> clone(src.begin(), src.end());
  (void)clone;
}
