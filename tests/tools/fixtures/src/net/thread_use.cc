// SV011 fixture: raw OS concurrency outside the src/sim scheduler. Both
// the includes and the std:: uses must be flagged; non-concurrency std
// types and non-std identifiers must not.
#include <thread>
#include <mutex>
#include <vector>

void thread_use_fixture() {
  std::thread worker;
  std::atomic_int hits{0};
  std::lock_guard<std::mutex> g(global_mutex());
  std::vector<int> ok;
  threading::helper();
  // svlint:allow(SV011): suppression case.
  std::mutex suppressed_mutex;
}
