// SV007 fixture: console output and raw counter members in simulation code.
#include <cstdint>
#include <cstdio>
#include <iostream>

struct Pipe {
  void deliver() {
    std::cout << "delivered";
    std::fprintf(stderr, "drop");
    char buf[8];
    std::snprintf(buf, sizeof(buf), "x");
    ++frames_seen_;
  }
  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_dropped_;
  std::uint64_t window_bytes_ = 0;
};

inline std::uint64_t tally(std::uint64_t bytes_sent) {
  // svlint:allow(SV007): snapshot mirrored out of the registry
  std::uint64_t messages_sent = 0;
  return bytes_sent + messages_sent;
}
