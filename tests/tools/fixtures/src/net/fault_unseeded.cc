// svlint fixture: the fault-injection anti-patterns — ambient randomness
// and address-ordered link state would both break (seed, plan) replay.
#include <cstdlib>
#include <map>
#include <random>

struct Node {};

struct BadInjector {
  std::random_device entropy_;                 // line 10: SV003
  std::map<Node*, int> link_states_;           // line 11: SV005

  bool drop_frame() {
    return std::rand() % 100 < 5;              // line 14: SV002
  }
};
