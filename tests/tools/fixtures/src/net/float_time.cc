// svlint fixture: SV006 — floating-point accumulation of simulated time.
#include <cstdint>

struct SimTime {
  long long ns_ = 0;
  explicit SimTime(long long v) : ns_(v) {}
  double us() const { return static_cast<double>(ns_) / 1e3; }
  double ms() const { return static_cast<double>(ns_) / 1e6; }
  long long ns() const { return ns_; }
};

double total_us(const SimTime* ts, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += ts[i].us();  // line 15: SV006
  }
  return acc;
}

SimTime round_trip(SimTime t) {
  return SimTime(static_cast<long long>(t.ms()));  // line 21: SV006
}

long long total_ns(const SimTime* ts, int n) {
  long long acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += ts[i].ns();  // integer accumulation: fine
  }
  return acc;
}

double allowed(const SimTime* ts, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += ts[i].us();  // svlint:allow(SV006): reporting-only sum
  }
  return acc;
}
