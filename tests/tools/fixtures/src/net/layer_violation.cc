// SV009 fixture: net (layer 5) reaching upward into via (6) and sockets
// (7). Downward and same-module includes are fine; angled includes are
// system headers and out of scope.
#include "common/units.h"
#include "net/fabric.h"
#include "sockets/socket.h"
#include "via/via_channel.h"
#include <vector>

// svlint:allow(SV009): suppression case — a deliberate, justified edge.
#include "sockets/socket_stats.h"

void layer_violation_fixture() {}
