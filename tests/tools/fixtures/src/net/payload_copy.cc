// SV008 fixture: payload bytes copied behind the mem ledger's back.
#include <cstring>
#include <vector>

void violations(std::vector<std::byte>& dst,
                const std::vector<std::byte>& src) {
  std::memcpy(dst.data(), src.data(), src.size());
  memmove(dst.data(), src.data(), src.size());
  std::vector<std::byte> clone(src.begin(), src.end());
  (void)clone;
}

void legal_and_suppressed(const std::vector<std::byte>* p) {
  std::vector<std::byte> sized(1024);  // size construction stays legal
  std::vector<std::byte> deref(*p);
  // Models NIC DMA between registered regions. svlint:allow(SV008)
  std::memcpy(sized.data(), p->data(), p->size());
  (void)deref;
  wmemcpy(nullptr, nullptr, 0);  // not a byte copy; must not trip
}
