// svlint fixture: the blessed fault-injection idiom — all randomness from
// a seed-derived stream, link state keyed by value (node-id pairs), so the
// same (seed, plan) always replays bit-identically. Zero findings.
#include <cstdint>
#include <map>
#include <utility>

struct SeededRng {
  explicit SeededRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ull; }
  std::uint64_t state_;
};

struct GoodInjector {
  explicit GoodInjector(std::uint64_t seed) : seed_(seed) {}

  bool drop_frame(int src, int dst) {
    auto it = streams_.find({src, dst});
    if (it == streams_.end()) {
      // Derived purely from (seed, src, dst): first-touch order is moot.
      const std::uint64_t link_seed =
          seed_ ^ (static_cast<std::uint64_t>(src) << 32 |
                   static_cast<std::uint32_t>(dst));
      it = streams_.emplace(std::pair<int, int>{src, dst},
                            SeededRng(link_seed))
               .first;
    }
    return (it->second.next() & 0xff) < 13;
  }

  std::uint64_t seed_;
  // Value-keyed ordered map: deterministic, unlike pointer keys.
  std::map<std::pair<int, int>, SeededRng> streams_;
};
