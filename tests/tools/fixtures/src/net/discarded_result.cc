// SV010 fixture: the Result of a timed operation must be consumed or
// explicitly cast to (void); a silently dropped timeout turns a detected
// stall back into a hang.
void discarded_result_fixture(Sock* sock, Runtime& rt, Message m, SimTime t) {
  sock->send_for(m, t);
  mine().delivered.recv_for(t);
  if (ready()) rt.wait_completion_for(t);
  auto r = sock->send_for(m, t);
  (void)sock->send_for(m, t);
  if (!sock->send_for(m, t).ok()) return;
  // svlint:allow(SV010): suppression case — watchdog owns the stall.
  sock->send_for(m, t);
}

Result<std::optional<Message>> forwarded(Sock* sock, SimTime t) {
  return sock->recv_for(t);
}
