// SV012 fixture: metric families must be declared in the manifest. The
// family is the literal up to any '{label=...}' suffix; non-literal name
// arguments are out of scope (no constant propagation).
void metric_names_fixture(Registry& reg, Hub* hub, const char* name) {
  auto* a = reg.counter("net.frames");
  auto* b = reg.counter("net.frames{link=a->b}");
  auto* c = hub->metrics().gauge("net.bytes_snet");
  auto* d = reg.histogram("net.latency_ns");
  auto* e = reg.counter(name);
  // svlint:allow(SV012): suppression case.
  auto* s = reg.counter("net.unlisted");
}
