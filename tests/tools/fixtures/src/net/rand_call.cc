// svlint fixture: SV002 — process-global libc RNG.
#include <cstdlib>

int jitter() {
  return std::rand() % 7;  // line 5: SV002
}

void reseed() {
  srand(42);  // line 9: SV002
}

int jitter_allowed() {
  return std::rand() % 7;  // svlint:allow(SV002): fixture exercise
}

// Identifiers merely containing "rand" must not trip the rule.
int operand_count(int grand_total) { return grand_total; }
