// SV007 scope fixture: the obs layer itself implements the counters and
// the exporters, so raw integers and stream writes are its business.
#include <cstdint>
#include <iostream>

struct Counter {
  std::uint64_t count_ = 0;
};

inline void dump(const Counter& c) { std::cout << c.count_; }
