// Simulator-core benchmark: timing wheel vs. reference heap (DESIGN.md §12).
//
// Five event mixes modeled on what the protocol stacks actually generate:
//
//   uniform       steady-state random horizons within the wheel's L0 span
//                 (the fabric's frame/ACK traffic)
//   bursty        many events on identical timestamps (fan-out completions;
//                 stresses FIFO-within-timestamp ordering)
//   long_horizon  horizons spread over seconds (forces L1/L2 cascades and
//                 the sorted far list)
//   cancel_heavy  the TCP-RTO pattern: arm a far timer, complete shortly
//                 after, cancel the timer — most events die young
//   open_loop     the workload-generator pattern: exponential-ish arrival
//                 gaps, small same-timestamp fan-out per arrival, and a
//                 drain timer per batch that is almost always cancelled
//
// Each mix runs on both QueueKind implementations with identical seeds; the
// trace digests must agree (a benchmark that drifts from the contract is
// measuring the wrong thing). Results go to stdout and to
// BENCH_sim_engine.json at the repo root: events per wall-second and
// simulated seconds per wall-second, plus the wheel:heap speedup per mix.
// CI's bench-smoke job compares a fresh --quick run against the committed
// JSON and fails on >20% events/sec regression (tools/bench_compare.py).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/units.h"
#include "sim/engine.h"

namespace sv {
namespace {

using sim::Engine;
using sim::QueueKind;

struct MixMeasurement {
  std::uint64_t events_fired = 0;
  std::uint64_t trace_digest = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events_fired) / wall_seconds
                            : 0;
  }
  [[nodiscard]] double sim_per_wall() const {
    return wall_seconds > 0 ? sim_seconds / wall_seconds : 0;
  }
};

/// Runs `mix(engine, rng)` under a wall clock and collects the contract
/// evidence (fired count, digest) alongside the rates.
template <typename Mix>
MixMeasurement run_mix(QueueKind kind, std::uint64_t seed, const Mix& mix) {
  Engine e(kind);
  std::mt19937_64 rng(seed);
  // This binary measures host throughput, so wall time IS the measurement,
  // not simulated state. svlint:allow(SV004)
  const auto t0 = std::chrono::steady_clock::now();
  mix(e, rng);
  // svlint:allow(SV004) — see above.
  const auto t1 = std::chrono::steady_clock::now();
  MixMeasurement m;
  m.events_fired = e.events_fired();
  m.trace_digest = e.trace_digest();
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.sim_seconds = e.now().sec();
  return m;
}

// ---- Mixes -----------------------------------------------------------------

/// Steady state: `live` events in flight, each firing reschedules one at a
/// uniform horizon inside the wheel's L0 span.
void mix_uniform(Engine& e, std::mt19937_64& rng, std::uint64_t events) {
  std::uniform_int_distribution<std::int64_t> horizon(1, 200'000);  // ns
  constexpr int kLive = 1024;
  for (int i = 0; i < kLive; ++i) {
    e.schedule(SimTime::nanoseconds(horizon(rng)), [] {});
  }
  for (std::uint64_t i = 0; i < events; ++i) {
    e.schedule(SimTime::nanoseconds(horizon(rng)), [] {});
    e.step();
  }
  e.run();
}

/// Same-timestamp bursts: fan-out completions landing on one instant.
void mix_bursty(Engine& e, std::mt19937_64& rng, std::uint64_t events) {
  std::uniform_int_distribution<std::int64_t> gap(100, 5'000);  // ns
  constexpr std::uint64_t kBurst = 64;
  for (std::uint64_t done = 0; done < events; done += kBurst) {
    const SimTime at = e.now() + SimTime::nanoseconds(gap(rng));
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      e.schedule_at(at, [] {});
    }
    e.run();
  }
}

/// Horizons spread across seconds: L1/L2 cascades plus the far list.
void mix_long_horizon(Engine& e, std::mt19937_64& rng, std::uint64_t events) {
  std::uniform_int_distribution<int> band(0, 99);
  std::uniform_int_distribution<std::int64_t> near(1, 200'000);
  std::uniform_int_distribution<std::int64_t> mid(200'000, 500'000'000);
  std::uniform_int_distribution<std::int64_t> far(500'000'000,
                                                  30'000'000'000);
  constexpr std::uint64_t kBatch = 4096;
  for (std::uint64_t done = 0; done < events; done += kBatch) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      const int b = band(rng);
      const std::int64_t h =
          b < 50 ? near(rng) : (b < 85 ? mid(rng) : far(rng));
      e.schedule(SimTime::nanoseconds(h), [] {});
    }
    e.run();
  }
}

/// The TCP retransmit pattern: a 200 ms timer armed per "transfer", almost
/// always cancelled ~2 us later when the transfer completes.
void mix_cancel_heavy(Engine& e, std::mt19937_64& rng,
                      std::uint64_t transfers) {
  std::uniform_int_distribution<std::int64_t> jitter(0, 2'000);  // ns
  std::uint64_t timer = 0;
  for (std::uint64_t i = 0; i < transfers; ++i) {
    if (timer != 0) {
      const bool ok = e.cancel(timer);
      SV_ASSERT(ok, "RTO timer vanished before cancel");
    }
    timer = e.schedule(SimTime::milliseconds(200) +
                           SimTime::nanoseconds(jitter(rng)),
                       [] {});
    e.schedule(SimTime::nanoseconds(1'000 + jitter(rng)), [] {});
    e.run_until(e.now() + SimTime::microseconds(4));
  }
  e.run();
}

/// The open-loop generator/mux pattern (harness/openloop.h): arrivals at
/// exponential-ish gaps, each fanning out a small same-timestamp batch
/// (mux aggregation completions), plus a queue-drain timer per batch that
/// is almost always cancelled when the batch ships early.
void mix_open_loop(Engine& e, std::mt19937_64& rng, std::uint64_t arrivals) {
  std::uniform_int_distribution<std::int64_t> gap(1, 40'000);     // ns
  std::uniform_int_distribution<std::int64_t> wire(500, 20'000);  // ns
  std::uniform_int_distribution<int> fanout(2, 6);
  std::uint64_t drain_timer = 0;
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    // Exponential-ish arrival gap via min of two uniforms (cheap, seeded).
    const std::int64_t g = std::min(gap(rng), gap(rng));
    const SimTime at = e.now() + SimTime::nanoseconds(g);
    const int burst = fanout(rng);
    for (int j = 0; j < burst; ++j) {
      e.schedule_at(at + SimTime::nanoseconds(wire(rng)), [] {});
    }
    if (drain_timer != 0) (void)e.cancel(drain_timer);
    drain_timer = e.schedule(SimTime::milliseconds(5), [] {});
    e.run_until(at);
  }
  if (drain_timer != 0) (void)e.cancel(drain_timer);
  e.run();
}

// ---- Driver ----------------------------------------------------------------

struct MixResult {
  std::string name;
  MixMeasurement wheel;
  MixMeasurement heap;

  [[nodiscard]] double speedup() const {
    return heap.events_per_sec() > 0
               ? wheel.events_per_sec() / heap.events_per_sec()
               : 0;
  }
};

void emit_json(const std::vector<MixResult>& results, bool quick,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"sim_engine\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"mixes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    auto side = [&](const char* key, const MixMeasurement& m,
                    const char* trail) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "      \"%s\": {\"events_fired\": %llu, "
                    "\"events_per_sec\": %.0f, "
                    "\"sim_seconds_per_wall_second\": %.2f, "
                    "\"wall_seconds\": %.4f}%s\n",
                    key, static_cast<unsigned long long>(m.events_fired),
                    m.events_per_sec(), m.sim_per_wall(), m.wall_seconds,
                    trail);
      out << buf;
    };
    out << "    {\n      \"name\": \"" << r.name << "\",\n";
    side("timing_wheel", r.wheel, ",");
    side("reference_heap", r.heap, ",");
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_events_per_sec\": %.2f\n", r.speedup());
    out << buf << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;

  bool quick = false;
  std::string json_path = "BENCH_sim_engine.json";
  CliParser cli(
      "Simulator-core benchmark: timing wheel vs reference heap across four "
      "event mixes; emits BENCH_sim_engine.json.");
  cli.add_flag("quick", &quick, "scale event counts down ~10x (CI smoke)");
  cli.add_string("json", &json_path, "output JSON path");
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t scale = quick ? 1 : 10;
  const std::uint64_t kEvents = 400'000 * scale;
  const std::uint64_t kTransfers = 120'000 * scale;

  struct MixSpec {
    const char* name;
    std::function<void(sim::Engine&, std::mt19937_64&)> body;
  };
  const std::vector<MixSpec> mixes = {
      {"uniform",
       [&](sim::Engine& e, std::mt19937_64& r) { mix_uniform(e, r, kEvents); }},
      {"bursty",
       [&](sim::Engine& e, std::mt19937_64& r) { mix_bursty(e, r, kEvents); }},
      {"long_horizon",
       [&](sim::Engine& e, std::mt19937_64& r) {
         mix_long_horizon(e, r, kEvents);
       }},
      {"cancel_heavy",
       [&](sim::Engine& e, std::mt19937_64& r) {
         mix_cancel_heavy(e, r, kTransfers);
       }},
      {"open_loop",
       [&](sim::Engine& e, std::mt19937_64& r) {
         mix_open_loop(e, r, kTransfers);
       }},
  };

  std::vector<MixResult> results;
  for (const MixSpec& spec : mixes) {
    MixResult r;
    r.name = spec.name;
    // Per side: one discarded warm-up pass (CPU frequency, allocator state),
    // then best-of-3 timed passes — the minimum wall time is the least
    // noise-contaminated estimate of the queue's actual cost.
    auto best_of = [&](QueueKind kind) {
      (void)run_mix(kind, 99, spec.body);
      MixMeasurement best = run_mix(kind, 7, spec.body);
      for (int rep = 1; rep < 3; ++rep) {
        const MixMeasurement again = run_mix(kind, 7, spec.body);
        SV_ASSERT(again.trace_digest == best.trace_digest,
                  std::string("nondeterministic mix ") + spec.name);
        if (again.wall_seconds < best.wall_seconds) best = again;
      }
      return best;
    };
    r.wheel = best_of(QueueKind::kTimingWheel);
    r.heap = best_of(QueueKind::kReferenceHeap);
    // The two sides must have executed the identical event sequence; a
    // digest mismatch means the bench is comparing different work.
    SV_ASSERT(r.wheel.trace_digest == r.heap.trace_digest,
              std::string("queue divergence in mix ") + spec.name);
    SV_ASSERT(r.wheel.events_fired == r.heap.events_fired,
              std::string("event-count divergence in mix ") + spec.name);
    std::printf(
        "%-13s wheel %9.0f ev/s (%7.1f sim-s/wall-s) | heap %9.0f ev/s "
        "(%7.1f sim-s/wall-s) | speedup %.2fx\n",
        spec.name, r.wheel.events_per_sec(), r.wheel.sim_per_wall(),
        r.heap.events_per_sec(), r.heap.sim_per_wall(), r.speedup());
    results.push_back(std::move(r));
  }

  emit_json(results, quick, json_path);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
