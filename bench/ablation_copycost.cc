// Ablation: how much of TCP's deficit is the memory copies?
//
// The calibrated profiles embed the copy time the paper's hosts actually
// paid (the TCP send path's ~9 ns/B is dominated by the user->kernel
// memcpy). This bench makes that attribution falsifiable: the mem ledger
// knows *which* per-message events are copies, so we can scale just the
// copy term — 0% (today's hardware-accelerated best case baked into the
// calibration) up to several multiples (slower memory, no write-combining)
// — and watch latency and bandwidth respond per transport.
//
// Reading: VIA and SocketVIA are flat across the sweep — they record no
// copies, so there is nothing to scale; that insensitivity IS zero-copy.
// Kernel TCP degrades linearly with the scale (two copies per message),
// and the degradation grows with message size: exactly the paper's
// argument for why a VIA-backed sockets layer wins most at large payloads.
#include <iostream>

#include "common/cli.h"
#include "harness/series.h"
#include "mem/copy_policy.h"
#include "net/cost_model.h"
#include "sockets/factory.h"

namespace sv {
namespace {

SimTime pingpong(net::Transport tr, int scale_pct, std::uint64_t bytes,
                 int iters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  factory.set_copy_cost_scale_pct(scale_pct);
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("pong", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
      a->recv();
    }
    elapsed = s.now() - t0;
    a->close_send();
  });
  s.run();
  return elapsed / (2 * iters);
}

double bandwidth(net::Transport tr, int scale_pct, std::uint64_t bytes,
                 int iters, std::uint64_t* copy_bytes_out = nullptr) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
  factory.set_copy_cost_scale_pct(scale_pct);
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("rx", [&, b = std::move(b), iters]() mutable {
      const SimTime t0 = s.now();
      for (int i = 0; i < iters; ++i) b->recv();
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
    }
    a->close_send();
  });
  s.run();
  if (copy_bytes_out != nullptr) {
    *copy_bytes_out = s.obs().registry.counter_value("mem.copy_bytes");
  }
  return throughput_mbps(bytes * static_cast<std::uint64_t>(iters), elapsed);
}

// Policy cross-check (DESIGN.md §14): the same SocketVIA stream under each
// selective-copy policy. Eager staging re-introduces a copy per message on
// the otherwise copy-free path; pin-based policies keep copies at zero and
// bill the registration ledger instead.
void print_policy_crosscheck(std::ostream& os, std::uint64_t bytes,
                             int iters) {
  os << "policy cross-check (SocketVIA, " << bytes / 1024 << " KiB x "
     << iters << " stream):\n";
  for (auto kind :
       {mem::CopyPolicyKind::kStaticPool, mem::CopyPolicyKind::kEagerCopy,
        mem::CopyPolicyKind::kRegisterOnFly, mem::CopyPolicyKind::kRegCache}) {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
    mem::CopyPolicyConfig pcfg;
    pcfg.kind = kind;
    factory.set_copy_policy(pcfg);
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
      s.spawn("rx", [&, b = std::move(b), iters]() mutable {
        for (int i = 0; i < iters; ++i) b->recv();
      });
      for (int i = 0; i < iters; ++i) {
        // One hot application buffer: the regcache row pins once and hits
        // thereafter, while register_on_fly re-pins every message.
        a->send(net::Message{.bytes = bytes, .buffer = 1});
      }
      a->close_send();
    });
    s.run();
    const auto& reg = s.obs().registry;
    os << "  " << copy_policy_name(kind)
       << ": copies=" << reg.counter_value("mem.copies")
       << " registrations=" << reg.counter_value("mem.registrations")
       << " regcache_hits="
       << reg.counter_value("mem.regcache_hits{cache=regcache}") << "\n";
  }
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t iters = 50;
  bool csv = false;
  CliParser cli("Ablation: copy-cost scale vs transport performance");
  cli.add_int("iters", &iters, "iterations per measurement");
  cli.add_flag("csv", &csv, "emit CSV");
  if (!cli.parse(argc, argv)) return 1;
  const int it = static_cast<int>(iters);

  const net::Transport transports[] = {net::Transport::kVia,
                                       net::Transport::kSocketVia,
                                       net::Transport::kKernelTcp};
  const int scales[] = {0, 50, 100, 200, 400};

  // (a) 4 KiB one-way latency vs additional copy cost.
  harness::Figure lat("Ablation: 4 KiB latency vs copy-cost scale",
                      "extra copy cost (% of calibrated copy term)",
                      "one-way latency (us)");
  for (auto tr : transports) {
    auto& series = lat.add_series(net::transport_name(tr));
    for (int pct : scales) {
      series.add(pct, pingpong(tr, pct, 4096, it).us());
    }
  }

  // (b) 64 KiB streaming bandwidth vs additional copy cost.
  harness::Figure bw("Ablation: 64 KiB bandwidth vs copy-cost scale",
                     "extra copy cost (% of calibrated copy term)",
                     "bandwidth (Mbps)");
  for (auto tr : transports) {
    auto& series = bw.add_series(net::transport_name(tr));
    for (int pct : scales) {
      series.add(pct, bandwidth(tr, pct, 65536, it));
    }
  }

  // (c) at a fixed doubled copy cost, the penalty vs message size: the
  // copy term is per-byte, so the zero-copy advantage compounds with size.
  harness::Figure size_fig(
      "Ablation: bandwidth at 200% copy cost vs message size",
      "msg size (bytes)", "bandwidth (Mbps)");
  for (auto tr : transports) {
    auto& series = size_fig.add_series(net::transport_name(tr));
    for (std::uint64_t n = 1024; n <= 65536; n *= 4) {
      series.add(static_cast<double>(n), bandwidth(tr, 200, n, it));
    }
  }

  if (csv) {
    lat.print_csv(std::cout);
    bw.print_csv(std::cout);
    size_fig.print_csv(std::cout);
  } else {
    lat.print(std::cout);
    bw.print(std::cout);
    size_fig.print(std::cout);
    std::uint64_t tcp_copy_bytes = 0;
    bandwidth(net::Transport::kKernelTcp, 0, 65536, it, &tcp_copy_bytes);
    std::uint64_t via_copy_bytes = 0;
    bandwidth(net::Transport::kVia, 0, 65536, it, &via_copy_bytes);
    std::cout << "ledger cross-check (64 KiB x " << it
              << " stream): TCP mem.copy_bytes=" << tcp_copy_bytes
              << ", VIA mem.copy_bytes=" << via_copy_bytes
              << "\nreading: VIA/SocketVIA are flat (no copies to scale); "
                 "TCP degrades linearly with the copy term, and more "
                 "steeply at larger messages.\n";
    print_policy_crosscheck(std::cout, 65536, it);
  }
  return 0;
}
