// Figure 10 reproduction: load-balancer reaction time to heterogeneity
// under Round-Robin scheduling.
//
// The balancer distributes pipelining blocks (16 KB for TCP, 2 KB for
// SocketVIA — the perfect-pipelining sizes of Section 5.2.3) to three
// workers, one slowed by the heterogeneity factor. The balancer's
// blindness window after sending a block to the slow node is that block's
// service time there — the paper's "reaction time". SocketVIA's 8x
// smaller pipelining block yields an ~8x faster reaction.
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "vizapp/loadbalance.h"

namespace sv {
namespace {

using namespace sv::literals;

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t total_mib = 8;
  bool csv = false;
  CliParser cli("Figure 10: RR load-balancer reaction time vs heterogeneity");
  cli.add_int("total-mib", &total_mib, "dataset size (MiB)");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  harness::Figure fig("Figure 10: Load balancer reaction time (Round-Robin)",
                      "factor of heterogeneity", "reaction time (us)");
  auto& s_svia = fig.add_series("SocketVIA");
  auto& s_tcp = fig.add_series("TCP");

  for (int factor : {2, 4, 6, 8, 10}) {
    viz::LoadBalanceConfig cfg;
    cfg.total_bytes = static_cast<std::uint64_t>(total_mib) * 1024 * 1024;
    cfg.policy = dc::SchedPolicy::kRoundRobin;
    cfg.slow_worker = 1;
    cfg.slow_factor = factor;
    cfg.compute = PerByteCost::nanos_per_byte(18);
    cfg.obs = artifacts;  // each run overwrites; the last swept run remains

    cfg.transport = net::Transport::kSocketVia;
    cfg.block_bytes = 2 * 1024;  // SocketVIA pipelining block
    const auto svia = viz::run_load_balance(cfg);
    s_svia.add(factor, svia.slow_service_times.mean() / 1e3);

    cfg.transport = net::Transport::kKernelTcp;
    cfg.block_bytes = 16 * 1024;  // TCP pipelining block
    const auto tcp = viz::run_load_balance(cfg);
    s_tcp.add(factor, tcp.slow_service_times.mean() / 1e3);
  }

  if (csv) {
    fig.print_csv(std::cout);
  } else {
    fig.print(std::cout);
    std::cout << "paper shape: reaction time grows linearly with the "
                 "factor; SocketVIA reacts ~8x faster (2 KB vs 16 KB "
                 "blocks)\n";
  }
  return 0;
}
