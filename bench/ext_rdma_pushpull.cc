// Extension (the paper's stated future work): a push/pull data-transfer
// model using VIA RDMA-write, compared against two-sided SocketVIA sends.
//
// Push: the producer RDMA-writes each block directly into a ring of
// receiver-advertised buffers (no receive descriptors, no rendezvous),
// then posts a tiny notify send. Pull is emulated by a request/response
// exchange per block. The comparison isolates what one-sided transfers buy
// the data-intensive pipeline: no per-chunk credit traffic and no receive
// descriptor management on the critical path.
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "net/cluster.h"
#include "sockets/rdma_socket.h"
#include "sockets/via_socket.h"

namespace sv {
namespace {

using namespace sv::literals;

/// Two-sided baseline: SocketVIA messages.
double two_sided_bw(std::uint64_t block, int iters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = sockets::DetailedViaSocket::make_pair(nic0, nic1, {});
    s.spawn("rx", [&s, &elapsed, iters, b = std::move(b)]() mutable {
      const SimTime t0 = s.now();
      for (int i = 0; i < iters; ++i) b->recv();
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) a->send(net::Message{.bytes = block});
    a->close_send();
  });
  s.run();
  return throughput_mbps(block * static_cast<std::uint64_t>(iters), elapsed);
}

/// Push model: RDMA-write into a receiver ring + notify.
double rdma_push_bw(std::uint64_t block, int iters, int ring_slots) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  auto a = nic0.create_vi();
  auto b = nic1.create_vi();
  via::Nic::connect(*a, *b);
  auto src = nic0.register_memory(block);
  // The receiver advertises a ring of RDMA-writable slots.
  std::vector<std::shared_ptr<via::MemoryRegion>> ring;
  for (int i = 0; i < ring_slots; ++i) {
    ring.push_back(nic1.register_memory(block));
  }
  auto notify_pool = nic1.register_memory(16);

  SimTime elapsed;
  s.spawn("consumer", [&] {
    // Pre-post notify receives; consume as notifications arrive.
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = notify_pool;
      rd.length = 16;
      b->post_recv(rd);
    }
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      b->recv_cq().wait();  // notification: slot i % ring filled
    }
    elapsed = s.now() - t0;
  });
  s.spawn("producer", [&] {
    s.delay(5_us);
    int outstanding = 0;
    for (int i = 0; i < iters; ++i) {
      via::Descriptor d;
      d.op = via::Opcode::kRdmaWrite;
      d.region = src;
      d.length = block;
      d.remote_handle = ring[static_cast<std::size_t>(i % ring_slots)]->handle();
      a->post_send(d);
      // Notify message (16 B send riding the same VI, in order).
      via::Descriptor n;
      n.region = src;
      n.length = 0;
      n.immediate = static_cast<std::uint32_t>(i);
      a->post_send(n);
      outstanding += 2;
      while (outstanding >= ring_slots) {
        a->send_cq().wait();
        --outstanding;
      }
    }
    while (outstanding-- > 0) a->send_cq().wait();
  });
  s.run();
  return throughput_mbps(block * static_cast<std::uint64_t>(iters), elapsed);
}

/// Pull model: consumer requests each block, producer RDMA-writes it back.
double rdma_pull_latency_us(std::uint64_t block, int iters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  auto a = nic0.create_vi();
  auto b = nic1.create_vi();
  via::Nic::connect(*a, *b);
  auto src = nic0.register_memory(block);
  auto dst = nic1.register_memory(block);
  auto req_pool = nic0.register_memory(16);
  auto note_pool = nic1.register_memory(16);

  SimTime elapsed;
  s.spawn("producer", [&] {
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = req_pool;
      rd.length = 16;
      a->post_recv(rd);
    }
    for (int i = 0; i < iters; ++i) {
      a->recv_cq().wait();  // pull request
      via::Descriptor d;
      d.op = via::Opcode::kRdmaWrite;
      d.region = src;
      d.length = block;
      d.remote_handle = dst->handle();
      a->post_send(d);
      via::Descriptor n;
      n.region = src;
      n.length = 0;
      a->post_send(n);
      a->send_cq().wait();
      a->send_cq().wait();
    }
  });
  s.spawn("consumer", [&] {
    s.delay(5_us);
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = note_pool;
      rd.length = 16;
      b->post_recv(rd);
      via::Descriptor req;
      req.region = note_pool;
      req.length = 0;
      req.immediate = static_cast<std::uint32_t>(i);
      b->post_send(req);
      b->recv_cq().wait();  // completion notification: block landed
    }
    elapsed = s.now() - t0;
  });
  s.run();
  return elapsed.us() / iters;
}

/// Socket-level one-way latency for either message socket.
double socket_latency_us(bool use_rdma, std::uint64_t bytes, int iters,
                         const harness::ObsArtifacts& obs) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  harness::begin_obs(s, obs);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  SimTime total;
  s.spawn("app", [&] {
    sockets::SocketPair pair =
        use_rdma ? sockets::RdmaPushSocket::make_pair(nic0, nic1)
                 : sockets::DetailedViaSocket::make_pair(nic0, nic1);
    auto& [a, b] = pair;
    s.spawn("echo", [&s, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
      a->recv();
    }
    total = s.now() - t0;
    a->close_send();
  });
  s.run();
  harness::export_obs(s, obs);
  return total.us() / (2 * iters);
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t iters = 100;
  bool csv = false;
  CliParser cli("Extension: RDMA push/pull vs two-sided SocketVIA");
  cli.add_int("iters", &iters, "blocks per measurement");
  cli.add_flag("csv", &csv, "emit CSV");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;
  const int it = static_cast<int>(iters);

  harness::Figure bw("Extension: streaming bandwidth, push-RDMA vs "
                     "two-sided SocketVIA",
                     "block (KiB)", "bandwidth (Mbps)");
  auto& push = bw.add_series("RDMA push");
  auto& two = bw.add_series("SocketVIA two-sided");
  for (std::uint64_t kib : {2ULL, 8ULL, 32ULL, 64ULL}) {
    push.add(static_cast<double>(kib), rdma_push_bw(kib * 1024, it, 8));
    two.add(static_cast<double>(kib), two_sided_bw(kib * 1024, it));
  }

  harness::Figure pull("Extension: per-block pull latency (request + "
                       "RDMA-write + notify)",
                       "block (KiB)", "latency (us)");
  auto& pl = pull.add_series("RDMA pull");
  for (std::uint64_t kib : {2ULL, 8ULL, 32ULL, 64ULL}) {
    pl.add(static_cast<double>(kib),
           rdma_pull_latency_us(kib * 1024, it));
  }

  harness::Figure lat("Extension: one-way latency, RDMA-push socket vs "
                      "two-sided SocketVIA socket",
                      "message (bytes)", "latency (us)");
  auto& lr = lat.add_series("RDMA push socket");
  auto& lt = lat.add_series("SocketVIA socket");
  for (std::uint64_t n : {64ULL, 512ULL, 2048ULL, 8192ULL}) {
    lr.add(static_cast<double>(n), socket_latency_us(true, n, it, artifacts));
    lt.add(static_cast<double>(n), socket_latency_us(false, n, it, artifacts));
  }

  if (csv) {
    bw.print_csv(std::cout);
    pull.print_csv(std::cout);
    lat.print_csv(std::cout);
  } else {
    bw.print(std::cout);
    pull.print(std::cout);
    lat.print(std::cout);
    std::cout << "reading: push-RDMA matches or beats two-sided bandwidth "
                 "while eliminating receive-descriptor and credit "
                 "management; pull adds one round trip per block — the "
                 "tradeoff the paper's future-work section anticipates.\n";
  }
  return 0;
}
