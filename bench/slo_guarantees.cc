// SLO guarantee evaluation: closed-loop control vs. open-loop collapse
// under faults (DESIGN.md §15).
//
// The paper's guarantee experiments (Figs 7/8) pick the datacutter chunk
// size and replica placement *offline* and show the resulting latency
// bound holds on a healthy LAN. This bench asks the harder operational
// question: what happens when the cluster degrades mid-run? Two runs of
// the identical 16-node open-loop workload under the identical fault plan
// (two nodes compute-degraded for a 50 ms window, Gilbert burst loss on
// every link):
//
//   uncontrolled   the historical behaviour — no admission control, no
//                  adaptive chunking, no replica shifting. Queued updates
//                  pile up behind the degraded replicas and deliver tens
//                  of milliseconds late: p99 blows through the SLO.
//   controlled     slo::Controller watching 5 ms latency windows. It
//                  demotes the degraded replicas (re-routing their
//                  traffic, flushing their queues and pin-down caches),
//                  throttles the sheddable bulk class, and shrinks the
//                  chunk size — holding delivered-update p99 inside the
//                  target at the cost of explicit, counted shed load.
//
// Every number except wall-clock throughput derives from (config, seed):
// offered/delivered/throttled counts, latency percentiles, the
// controller's action count and the trace digest are exact-match fields
// in BENCH_slo.json, gated by tools/bench_compare.py in CI (slo-smoke).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/units.h"
#include "harness/openloop.h"
#include "net/calibration.h"
#include "net/fault.h"
#include "net/topology.h"

namespace sv {
namespace {

constexpr int kNodes = 16;
constexpr int kDegradedA = 2;  // also the incast hot node
constexpr int kDegradedB = 3;

harness::SloControlConfig slo_config() {
  harness::SloControlConfig slo;
  slo.window = SimTime::milliseconds(5);
  slo.controller.targets.p99_update_latency = SimTime::milliseconds(5);
  slo.controller.band_high_pct = 100;
  slo.controller.band_low_pct = 60;
  slo.controller.violate_windows = 2;
  slo.controller.recover_windows = 4;
  slo.controller.cooldown = SimTime::milliseconds(10);
  slo.controller.min_window_samples = 8;
  slo.controller.throttle_step_permille = 250;
  slo.controller.min_admit_permille = 250;
  slo.controller.chunk_min_bytes = 1024;
  slo.controller.chunk_max_bytes = 4096;
  slo.controller.demote_latency_pct = 150;
  slo.controller.demote_windows = 2;
  slo.controller.max_demoted = 2;
  slo.controller.demote_hold = SimTime::milliseconds(80);
  return slo;
}

harness::OpenLoopConfig base_config() {
  harness::OpenLoopConfig cfg;
  cfg.transport = net::Transport::kSocketVia;
  cfg.cluster_nodes = kNodes;
  cfg.topology = net::TopologySpec::fat_tree(4);
  cfg.seed = 11;
  cfg.clients = 16'000;
  cfg.arrivals.kind = harness::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_sec = 2'000.0;
  cfg.update_bytes = 1024;
  cfg.fanout = 4;
  // A fifth of every node's updates redirect onto node 2 — which is one
  // of the nodes the fault plan stalls, so the incast hotspot and the
  // degradation coincide (the worst case replica shifting must handle).
  cfg.incast_fraction = 0.2;
  cfg.hot_node = kDegradedA;
  // Long enough that the controlled run's unavoidable tail — updates
  // already in flight toward the stalled replicas before detection —
  // stays below the 1% quantile: the SLO can be held, not magicked.
  cfg.duration = SimTime::milliseconds(600);

  // Query mix: latency-sensitive interactive queries the SLO protects,
  // plus a 3x-weight bulk update class the controller may shed.
  cfg.classes.push_back({"interactive", 1, 512, /*sheddable=*/false});
  cfg.classes.push_back({"bulk", 3, 4'096, /*sheddable=*/true});

  // Fault plan: nodes 2 and 3 fully stall across [20 ms, 80 ms) — inbound
  // frames queue behind their held resources and deliver only when the
  // window ends, tens of milliseconds late — plus bursty frame loss on
  // every link for the whole run. The uncontrolled run keeps feeding the
  // stalled replicas the entire window; the controlled run demotes them on
  // silence a couple of decision windows in.
  net::NodeFault stall_a;
  stall_a.node = kDegradedA;
  stall_a.start = SimTime::milliseconds(20);
  stall_a.duration = SimTime::milliseconds(60);
  stall_a.slow_factor = 0;
  net::NodeFault stall_b = stall_a;
  stall_b.node = kDegradedB;
  cfg.faults.nodes = {stall_a, stall_b};
  cfg.faults.all_links.loss = 0.002;
  cfg.faults.all_links.burst_continue = 0.5;
  return cfg;
}

harness::ObsArtifacts g_obs;  // --trace-out/--metrics-out/--metrics-every

struct SloRun {
  std::string name;
  bool controlled = false;
  harness::OpenLoopResult result;
  double wall_seconds = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(result.events_fired) / wall_seconds
               : 0;
  }
};

SloRun run_one(bool controlled, const harness::SloControlConfig& slo) {
  harness::OpenLoopConfig cfg = base_config();
  if (controlled) {
    cfg.slo = &slo;
    cfg.obs = g_obs;  // artifacts describe the controlled (last) run
  }
  SloRun r;
  r.name = controlled ? "controlled" : "uncontrolled";
  r.controlled = controlled;
  // Wall time IS the simulator-throughput measurement here, not simulated
  // state. svlint:allow(SV004)
  const auto t0 = std::chrono::steady_clock::now();
  r.result = harness::run_open_loop(cfg);
  // svlint:allow(SV004) — see above.
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

void emit_json(const std::vector<SloRun>& runs, std::int64_t target_ns,
               bool quick, const std::string& path) {
  double controlled_p99 = 0;
  double uncontrolled_p99 = 0;
  for (const SloRun& r : runs) {
    const double p99 = r.result.update_latency.percentile(99.0);
    (r.controlled ? controlled_p99 : uncontrolled_p99) = p99;
  }
  const bool held = controlled_p99 <= static_cast<double>(target_ns);

  std::ofstream out(path);
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"slo\",\n  \"quick\": %s,\n"
                "  \"target_p99_ns\": %lld,\n  \"held\": %s,\n"
                "  \"runs\": [\n",
                quick ? "true" : "false",
                static_cast<long long>(target_ns), held ? "true" : "false");
  out << buf;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SloRun& r = runs[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"controlled\": %s,\n"
        "     \"offered\": %llu, \"delivered\": %llu, \"drops\": %llu, "
        "\"throttled\": %llu,\n"
        "     \"p50_update_ns\": %.0f, \"p99_update_ns\": %.0f,\n"
        "     \"slo_actions\": %llu, \"demotions\": %llu, "
        "\"promotions\": %llu,\n"
        "     \"final_admit_permille\": %u, \"final_chunk_bytes\": %llu,\n"
        "     \"events_fired\": %llu, \"events_per_sec\": %.0f, "
        "\"wall_seconds\": %.4f,\n"
        "     \"trace_digest\": %llu}%s\n",
        r.name.c_str(), r.controlled ? "true" : "false",
        static_cast<unsigned long long>(r.result.offered),
        static_cast<unsigned long long>(r.result.delivered),
        static_cast<unsigned long long>(r.result.drops),
        static_cast<unsigned long long>(r.result.throttled),
        r.result.update_latency.percentile(50.0),
        r.result.update_latency.percentile(99.0),
        static_cast<unsigned long long>(r.result.slo_actions),
        static_cast<unsigned long long>(r.result.slo_demotions),
        static_cast<unsigned long long>(r.result.slo_promotions),
        r.result.final_admit_permille,
        static_cast<unsigned long long>(r.result.final_chunk_bytes),
        static_cast<unsigned long long>(r.result.events_fired),
        r.events_per_sec(), r.wall_seconds,
        static_cast<unsigned long long>(r.result.trace_digest),
        i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;

  bool quick = false;
  std::string json_path = "BENCH_slo.json";
  CliParser cli(
      "SLO guarantee under faults: the identical degraded 16-node open-loop "
      "run with and without the closed-loop controller; emits "
      "BENCH_slo.json.");
  cli.add_flag("quick", &quick,
               "accepted for CI symmetry; the scenario is already CI-sized");
  cli.add_string("json", &json_path, "output JSON path");
  harness::add_obs_flags(cli, &g_obs);
  if (!cli.parse(argc, argv)) return 1;

  const harness::SloControlConfig slo = slo_config();
  const std::int64_t target_ns = slo.controller.targets.p99_update_latency.ns();

  std::vector<SloRun> runs;
  runs.push_back(run_one(/*controlled=*/false, slo));
  runs.push_back(run_one(/*controlled=*/true, slo));

  for (const SloRun& r : runs) {
    std::printf(
        "%-12s | %7llu offered %7llu delivered %6llu drops %6llu shed | "
        "p50 %9.0f ns p99 %9.0f ns %s | %llu actions (%llu demote) | "
        "%9.0f ev/s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.result.offered),
        static_cast<unsigned long long>(r.result.delivered),
        static_cast<unsigned long long>(r.result.drops),
        static_cast<unsigned long long>(r.result.throttled),
        r.result.update_latency.percentile(50.0),
        r.result.update_latency.percentile(99.0),
        r.result.update_latency.percentile(99.0) <=
                static_cast<double>(target_ns)
            ? "HELD"
            : "VIOLATED",
        static_cast<unsigned long long>(r.result.slo_actions),
        static_cast<unsigned long long>(r.result.slo_demotions),
        r.events_per_sec());
  }

  // The controlled run's decision trail, for the human reading the bench.
  for (const SloRun& r : runs) {
    if (r.result.slo_action_log.empty()) continue;
    std::printf("%s action log (<ns> <kind> <node> <value>):\n%s",
                r.name.c_str(), r.result.slo_action_log.c_str());
    std::uint64_t late = 0;
    for (const double v : r.result.update_latency.raw()) {
      if (v > static_cast<double>(target_ns)) ++late;
    }
    std::printf("%s: %llu of %llu samples above target\n", r.name.c_str(),
                static_cast<unsigned long long>(late),
                static_cast<unsigned long long>(
                    r.result.update_latency.count()));
  }

  emit_json(runs, target_ns, quick, json_path);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
