// Figure 9 reproduction: average response time under a mix of zoom (4
// chunks) and complete-update queries, for dataset partitionings of
// {none, 8, 64} chunks, over TCP and SocketVIA.
//
// Paper shapes: without partitioning, response time is flat in the mix
// (every query fetches everything) and reflects only the raw transport
// gap; with partitioning, TCP's response time rises much faster with the
// complete-update fraction, so for a 150 ms budget at 64 partitions TCP
// tolerates ~60% complete updates where SocketVIA tolerates ~90%.
#include <iostream>

#include "common/cli.h"
#include "harness/series.h"
#include "harness/vizbench.h"
#include "vizapp/server.h"

namespace sv {
namespace {

constexpr std::uint64_t kImage = 16 * 1024 * 1024;

struct Panel {
  const char* title;
  PerByteCost compute;
};

void run_panel(const Panel& panel, const std::vector<double>& fractions,
               int queries, bool csv,
               const harness::ObsArtifacts& artifacts) {
  harness::Figure fig(panel.title, "fraction of complete-update queries",
                      "avg response time (ms)");
  struct Config {
    const char* name;
    net::Transport transport;
    std::uint64_t partitions;
  };
  const Config configs[] = {
      {"No Partitions (SocketVIA)", net::Transport::kSocketVia, 1},
      {"8 Partitions (SocketVIA)", net::Transport::kSocketVia, 8},
      {"64 Partitions (SocketVIA)", net::Transport::kSocketVia, 64},
      {"No Partitions (TCP)", net::Transport::kKernelTcp, 1},
      {"8 Partitions (TCP)", net::Transport::kKernelTcp, 8},
      {"64 Partitions (TCP)", net::Transport::kKernelTcp, 64},
  };
  for (const auto& c : configs) {
    auto& series = fig.add_series(c.name);
    for (double f : fractions) {
      harness::VizWorkloadConfig cfg;
      cfg.transport = c.transport;
      cfg.image_bytes = kImage;
      cfg.block_bytes = kImage / c.partitions;
      cfg.compute = panel.compute;
      cfg.seed = 1234;
      cfg.obs = artifacts;  // each run overwrites; the last swept run remains
      auto samples = harness::run_query_mix(cfg, f, queries);
      series.add(f, samples.mean() / 1e6);  // ns -> ms
    }
  }
  if (csv) {
    fig.print_csv(std::cout);
  } else {
    fig.print(std::cout);
  }
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t queries = 12;
  bool csv = false;
  bool quick = false;
  bool full = false;
  CliParser cli("Figure 9: query-mix response time vs partitioning");
  cli.add_int("queries", &queries, "queries per point");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  cli.add_flag("quick", &quick, "fewer x points");
  cli.add_flag("full", &full, "the paper's full 0.1-step x axis");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  const std::vector<double> fractions =
      quick ? std::vector<double>{0.0, 0.5, 1.0}
      : full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9, 1.0}
             : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  Panel a{"Figure 9(a): Query mix vs response time (no computation)",
          PerByteCost::zero()};
  Panel b{"Figure 9(b): Query mix vs response time (linear computation, "
          "18 ns/B)",
          viz::virtual_microscope_compute()};
  run_panel(a, fractions, static_cast<int>(queries), csv, artifacts);
  run_panel(b, fractions, static_cast<int>(queries), csv, artifacts);
  if (!csv) {
    std::cout << "paper shapes: flat lines without partitioning; with 64 "
                 "partitions TCP's slope is much steeper than SocketVIA's, "
                 "so a 150 ms budget admits ~60% vs ~90% complete updates\n";
  }
  return 0;
}
