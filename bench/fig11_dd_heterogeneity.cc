// Figure 11 reproduction: execution time under Demand-Driven scheduling on
// a cluster whose slow node degrades stochastically.
//
// A 16 MB dataset is distributed demand-driven to three workers; one
// worker processes any given block at 1/n speed with probability p.
// Legend SocketVIA(n)/TCP(n) uses the transport's pipelining block size
// (2 KB / 16 KB). Paper shape: execution time grows with p and n, but DD's
// routing keeps TCP close to SocketVIA — dynamic scheduling masks the
// substrate gap (while the guarantee experiments show where it cannot).
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "vizapp/loadbalance.h"

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t total_mib = 16;
  // The paper's Figure 11 is computation-dominated for *both* transports
  // (their execution times sit near the pure-compute bound). With our
  // calibrated TCP sustaining ~64 MB/s from one balancer to three workers,
  // that regime requires >= ~50 ns/B of per-block processing; we default to
  // 60 ns/B and note the substitution in EXPERIMENTS.md. The heterogeneity
  // *mechanism* (stochastic slowdown + DD routing) is unchanged.
  std::int64_t compute_ns_per_byte = 60;
  bool csv = false;
  bool quick = false;
  CliParser cli("Figure 11: DD scheduling vs stochastic heterogeneity");
  cli.add_int("total-mib", &total_mib, "dataset size (MiB)");
  cli.add_int("compute-ns", &compute_ns_per_byte,
              "worker computation cost (ns per byte)");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  cli.add_flag("quick", &quick, "fewer probability points");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  harness::Figure fig("Figure 11: Effect of heterogeneity (Demand-Driven)",
                      "probability of being slow (%)",
                      "execution time (us)");
  const std::vector<double> probs =
      quick ? std::vector<double>{10, 50, 90}
            : std::vector<double>{10, 20, 30, 40, 50, 60, 70, 80, 90};

  struct Line {
    net::Transport transport;
    std::uint64_t block;
    int factor;
    std::string name;
  };
  std::vector<Line> lines;
  for (int n : {2, 4, 8}) {
    lines.push_back({net::Transport::kSocketVia, 2 * 1024, n,
                     "SocketVIA(" + std::to_string(n) + ")"});
  }
  for (int n : {2, 4, 8}) {
    lines.push_back({net::Transport::kKernelTcp, 16 * 1024, n,
                     "TCP(" + std::to_string(n) + ")"});
  }

  for (const auto& line : lines) {
    auto& series = fig.add_series(line.name);
    for (double p : probs) {
      viz::LoadBalanceConfig cfg;
      cfg.transport = line.transport;
      cfg.block_bytes = line.block;
      cfg.total_bytes = static_cast<std::uint64_t>(total_mib) * 1024 * 1024;
      cfg.policy = dc::SchedPolicy::kDemandDriven;
      cfg.compute = PerByteCost::nanos_per_byte(compute_ns_per_byte);
      cfg.slow_worker = 0;
      cfg.slow_factor = line.factor;
      cfg.slow_probability = p / 100.0;
      cfg.seed = 99;
      cfg.obs = artifacts;  // each run overwrites; the last swept run remains
      const auto r = viz::run_load_balance(cfg);
      series.add(p, r.exec_time.us());
    }
  }

  if (csv) {
    fig.print_csv(std::cout);
  } else {
    fig.print(std::cout, 0);
    std::cout << "paper shape: execution time rises with p and the factor; "
                 "demand-driven scheduling keeps TCP close to SocketVIA\n";
  }
  return 0;
}
