// Selective-copy policy ablation (DESIGN.md §14): message size × reuse
// locality × registration cost × cache capacity, for each copy policy.
//
// The workload is a one-way message stream over fast-fidelity SocketVIA
// with a wide flow-control window, so the sender's per-message cycle —
// exactly the policy's bill (bounce copy, pin/unpin, or cache lookup) —
// is the measured quantity. Each message draws its buffer-region id from
// a seeded generator: with probability `locality_pct` it reuses one of
// kWorkingSet hot regions, otherwise it is a fresh one-shot buffer. The
// send-loop time then exposes the classic pin-down-cache crossover:
//
//   eager_copy       wins small messages (copy is cheap, pinning is not)
//   register_on_fly  wins large one-shot transfers (pin amortizes, and a
//                    cache full of dead regions only adds eviction work)
//   regcache         wins high-locality reuse (hits skip the pin), but
//                    thrashes when capacity < working set
//
// Results go to stdout and BENCH_regcache.json. CI's mem job runs
// `--quick` and gates it with tools/bench_compare.py: deterministic
// fields (send-loop time, ledger counters, winners) exact-match; hit-rate
// and events/sec ratio-gated.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/units.h"
#include "mem/copy_policy.h"
#include "sockets/factory.h"

namespace sv {
namespace {

/// Hot-region pool size: sits between the two swept cache capacities so
/// the small cache thrashes on it and the large one holds it.
constexpr std::uint64_t kWorkingSet = 16;

struct PolicyResult {
  mem::CopyPolicyKind kind = mem::CopyPolicyKind::kStaticPool;
  std::uint64_t send_loop_ns = 0;
  std::uint64_t delivered = 0;
  std::uint64_t copies = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t registrations = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t trace_digest = 0;
  double wall_seconds = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(events_fired) / wall_seconds
               : 0;
  }
};

struct Cell {
  std::uint64_t msg_bytes = 0;
  int locality_pct = 0;
  int reg_cost_scale_pct = 100;
  std::size_t capacity = 64;
  std::vector<PolicyResult> policies;
  mem::CopyPolicyKind winner = mem::CopyPolicyKind::kStaticPool;

  [[nodiscard]] std::string name() const {
    return "sz" + std::to_string(msg_bytes) + "_loc" +
           std::to_string(locality_pct) + "_reg" +
           std::to_string(reg_cost_scale_pct) + "_cap" +
           std::to_string(capacity);
  }
};

PolicyResult run_policy(mem::CopyPolicyKind kind, const Cell& cell,
                        int msgs) {
  PolicyResult r;
  r.kind = kind;

  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  sockets::SocketFactory factory(&s, &cluster);
  // Wide window: the transport never backpressures the sender, so the
  // send loop's simulated time is pure policy + submit cost.
  factory.set_window_override(std::uint64_t{1} << 30);
  mem::CopyPolicyConfig pcfg;
  pcfg.kind = kind;
  pcfg.reg_cost_scale_pct = cell.reg_cost_scale_pct;
  pcfg.cache.capacity_regions = cell.capacity;
  factory.set_copy_policy(pcfg);

  SimTime send_loop;
  std::uint64_t delivered = 0;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, net::Transport::kSocketVia);
    s.spawn("rx", [&, b = std::move(b)]() mutable {
      while (b->recv()) ++delivered;
    });
    // Buffer-id sequence derives from the cell alone, so every policy
    // sees the identical access pattern and runs are bit-reproducible.
    Rng rng(cell.msg_bytes * 1000003 +
            static_cast<std::uint64_t>(cell.locality_pct));
    std::uint64_t next_oneshot = kWorkingSet + 1;
    const SimTime t0 = s.now();
    for (int i = 0; i < msgs; ++i) {
      const bool hot =
          rng.next_below(100) < static_cast<std::uint64_t>(cell.locality_pct);
      const std::uint64_t buf =
          hot ? 1 + rng.next_below(kWorkingSet) : next_oneshot++;
      a->send(net::Message{.bytes = cell.msg_bytes, .buffer = buf});
    }
    send_loop = s.now() - t0;
    a->close_send();
  });
  // Wall time IS the simulator-throughput measurement, not simulated
  // state. svlint:allow(SV004)
  const auto w0 = std::chrono::steady_clock::now();
  s.run();
  // svlint:allow(SV004) — see above.
  const auto w1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(w1 - w0).count();

  const auto& reg = s.obs().registry;
  r.send_loop_ns = static_cast<std::uint64_t>(send_loop.ns());
  r.delivered = delivered;
  r.copies = reg.counter_value("mem.copies");
  r.copy_bytes = reg.counter_value("mem.copy_bytes");
  r.registrations = reg.counter_value("mem.registrations");
  r.deregistrations = reg.counter_value("mem.deregistrations");
  r.hits = reg.counter_value("mem.regcache_hits{cache=regcache}");
  r.misses = reg.counter_value("mem.regcache_misses{cache=regcache}");
  r.evictions = reg.counter_value("mem.regcache_evictions{cache=regcache}");
  r.events_fired = s.events_fired();
  r.trace_digest = s.engine().trace_digest();
  return r;
}

void emit_json(const std::vector<Cell>& cells, bool quick,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"regcache\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"working_set\": " << kWorkingSet
      << ",\n  \"cells\": [\n";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    char head[256];
    std::snprintf(head, sizeof(head),
                  "    {\"name\": \"%s\", \"msg_bytes\": %llu, "
                  "\"locality_pct\": %d, \"reg_cost_scale_pct\": %d, "
                  "\"capacity\": %llu, \"winner\": \"%s\",\n"
                  "     \"policies\": [\n",
                  cell.name().c_str(),
                  static_cast<unsigned long long>(cell.msg_bytes),
                  cell.locality_pct, cell.reg_cost_scale_pct,
                  static_cast<unsigned long long>(cell.capacity),
                  std::string(mem::copy_policy_name(cell.winner)).c_str());
    out << head;
    for (std::size_t p = 0; p < cell.policies.size(); ++p) {
      const PolicyResult& r = cell.policies[p];
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"policy\": \"%s\", \"send_loop_ns\": %llu, "
          "\"delivered\": %llu,\n"
          "       \"copies\": %llu, \"copy_bytes\": %llu, "
          "\"registrations\": %llu, \"deregistrations\": %llu,\n"
          "       \"regcache_hits\": %llu, \"regcache_misses\": %llu, "
          "\"regcache_evictions\": %llu, \"hit_rate\": %.4f,\n"
          "       \"events_fired\": %llu, \"events_per_sec\": %.0f, "
          "\"trace_digest\": %llu}%s\n",
          std::string(mem::copy_policy_name(r.kind)).c_str(),
          static_cast<unsigned long long>(r.send_loop_ns),
          static_cast<unsigned long long>(r.delivered),
          static_cast<unsigned long long>(r.copies),
          static_cast<unsigned long long>(r.copy_bytes),
          static_cast<unsigned long long>(r.registrations),
          static_cast<unsigned long long>(r.deregistrations),
          static_cast<unsigned long long>(r.hits),
          static_cast<unsigned long long>(r.misses),
          static_cast<unsigned long long>(r.evictions), r.hit_rate(),
          static_cast<unsigned long long>(r.events_fired),
          r.events_per_sec(),
          static_cast<unsigned long long>(r.trace_digest),
          p + 1 < cell.policies.size() ? "," : "");
      out << buf;
    }
    out << "     ]}" << (c + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;

  bool quick = false;
  // Long enough that the regcache's residual pins (never unpinned during
  // the run) amortize to noise; the loc0 cells then rank by per-message
  // cost alone, which is what the crossover story needs.
  std::int64_t msgs = 1000;
  std::string json_path = "BENCH_regcache.json";
  CliParser cli(
      "Selective-copy policy ablation: message size x reuse locality x "
      "registration cost x cache capacity; emits BENCH_regcache.json.");
  cli.add_flag("quick", &quick,
               "calibrated registration cost only (CI mem job)");
  cli.add_int("msgs", &msgs, "messages per cell");
  cli.add_string("json", &json_path, "output JSON path");
  if (!cli.parse(argc, argv)) return 1;
  const int n = static_cast<int>(msgs);

  const std::vector<std::uint64_t> sizes = {512, 4096, 65536};
  const std::vector<int> localities = {0, 50, 95};
  const std::vector<int> reg_scales =
      quick ? std::vector<int>{100} : std::vector<int>{100, 400};
  const std::vector<std::size_t> capacities = {8, 64};
  const mem::CopyPolicyKind kinds[] = {mem::CopyPolicyKind::kEagerCopy,
                                       mem::CopyPolicyKind::kRegisterOnFly,
                                       mem::CopyPolicyKind::kRegCache};

  std::vector<Cell> cells;
  for (const std::uint64_t sz : sizes) {
    for (const int loc : localities) {
      for (const int scale : reg_scales) {
        for (const std::size_t cap : capacities) {
          Cell cell;
          cell.msg_bytes = sz;
          cell.locality_pct = loc;
          cell.reg_cost_scale_pct = scale;
          cell.capacity = cap;
          for (const auto kind : kinds) {
            cell.policies.push_back(run_policy(kind, cell, n));
          }
          const PolicyResult* best = &cell.policies.front();
          for (const PolicyResult& r : cell.policies) {
            if (r.send_loop_ns < best->send_loop_ns) best = &r;
          }
          cell.winner = best->kind;
          std::printf("%-26s |", cell.name().c_str());
          for (const PolicyResult& r : cell.policies) {
            std::printf(" %s %8.1f us (hit %4.0f%%) |",
                        std::string(mem::copy_policy_name(r.kind)).c_str(),
                        static_cast<double>(r.send_loop_ns) / 1e3 /
                            static_cast<double>(n),
                        r.hit_rate() * 100.0);
          }
          std::printf(" winner %s\n",
                      std::string(mem::copy_policy_name(cell.winner)).c_str());
          cells.push_back(std::move(cell));
        }
      }
    }
  }

  emit_json(cells, quick, json_path);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
