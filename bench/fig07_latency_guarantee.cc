// Figure 7 reproduction: average partial-update latency under an
// updates-per-second guarantee.
//
// For each target rate the distribution block size is chosen by the
// paper's policy: TCP's blocks from TCP's calibrated curves; "SocketVIA"
// runs SocketVIA with TCP's blocks (no repartitioning); "SocketVIA (with
// DR)" repartitions using SocketVIA's own curves. Panel (a) has no
// computation; panel (b) adds the Virtual Microscope's 18 ns/B.
//
// Paper shapes to reproduce: TCP cannot meet more than ~3.25 updates/sec
// (a) or ~3 (b); latency improves >3.5x without DR and >10x with DR (a);
// >4x and >12x (b).
#include <iostream>

#include "common/cli.h"
#include "harness/series.h"
#include "harness/vizbench.h"
#include "vizapp/server.h"
#include "vizapp/policy.h"

namespace sv {
namespace {

using namespace sv::literals;

constexpr std::uint64_t kImage = 16 * 1024 * 1024;

struct Panel {
  const char* title;
  PerByteCost compute;
  std::vector<double> rates;
};

void run_panel(const Panel& panel, int updates, bool csv,
               const harness::ObsArtifacts& artifacts) {
  const net::CostModel tcp_model{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia_model{net::CalibrationProfile::socket_via()};

  harness::Figure fig(panel.title, "updates per second",
                      "avg partial-update latency (us)");
  auto& s_tcp = fig.add_series("TCP");
  auto& s_svia = fig.add_series("SocketVIA");
  auto& s_dr = fig.add_series("SocketVIA (with DR)");
  harness::Figure blocks(std::string(panel.title) + " [chosen block sizes]",
                         "updates per second", "block (bytes)");
  auto& b_tcp = blocks.add_series("TCP");
  auto& b_dr = blocks.add_series("SocketVIA (with DR)");

  for (double ups : panel.rates) {
    const std::uint64_t tcp_block = viz::block_for_update_rate_with_compute(
        tcp_model, ups, kImage, panel.compute);
    const std::uint64_t dr_block = viz::block_for_update_rate_with_compute(
        svia_model, ups, kImage, panel.compute);
    b_tcp.add(ups, static_cast<double>(tcp_block));
    b_dr.add(ups, static_cast<double>(dr_block));

    harness::VizWorkloadConfig cfg;
    cfg.image_bytes = kImage;
    cfg.compute = panel.compute;
    cfg.obs = artifacts;  // each run overwrites; the last swept run remains

    if (tcp_block < kImage) {  // TCP feasible at this rate
      cfg.transport = net::Transport::kKernelTcp;
      cfg.block_bytes = tcp_block;
      auto r = run_paced_updates(cfg, ups, updates);
      if (r.met_target && !r.partial_latencies.empty()) {
        s_tcp.add(ups, r.partial_latencies.mean() / 1e3);
      }
      // SocketVIA with TCP's (unrepartitioned) blocks.
      cfg.transport = net::Transport::kSocketVia;
      auto rs = run_paced_updates(cfg, ups, updates);
      if (rs.met_target && !rs.partial_latencies.empty()) {
        s_svia.add(ups, rs.partial_latencies.mean() / 1e3);
      }
    }
    if (dr_block < kImage) {
      cfg.transport = net::Transport::kSocketVia;
      cfg.block_bytes = dr_block;
      auto rd = run_paced_updates(cfg, ups, updates);
      if (rd.met_target && !rd.partial_latencies.empty()) {
        s_dr.add(ups, rd.partial_latencies.mean() / 1e3);
      }
    }
  }
  if (csv) {
    fig.print_csv(std::cout);
  } else {
    fig.print(std::cout);
    blocks.print(std::cout, 0);
  }
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t updates = 5;
  bool csv = false;
  bool quick = false;
  CliParser cli(
      "Figure 7: average latency with updates-per-second guarantees");
  cli.add_int("updates", &updates, "complete updates measured per point");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  cli.add_flag("quick", &quick, "fewer x points");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  Panel a{"Figure 7(a): Avg latency vs updates/sec (no computation)",
          PerByteCost::zero(),
          quick ? std::vector<double>{2.0, 3.0, 3.5, 4.0}
                : std::vector<double>{2.0, 2.5, 3.0, 3.25, 3.5, 4.0}};
  Panel b{"Figure 7(b): Avg latency vs updates/sec (linear computation, "
          "18 ns/B)",
          viz::virtual_microscope_compute(),
          quick ? std::vector<double>{2.0, 2.75, 3.25}
                : std::vector<double>{2.0, 2.5, 2.75, 3.0, 3.25}};
  run_panel(a, static_cast<int>(updates), csv, artifacts);
  run_panel(b, static_cast<int>(updates), csv, artifacts);
  if (!csv) {
    std::cout << "paper shapes: TCP absent beyond ~3.25 (a) / ~3 (b) "
                 "updates/sec; SocketVIA(DR) sustains the full range with "
                 ">10x (a) / >12x (b) lower latency than TCP\n";
  }
  return 0;
}
