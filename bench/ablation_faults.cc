// Ablation: frame loss rate x transport — goodput and recovery cost on a
// lossy fabric (deterministic fault injection, src/net/fault.h).
//
// The paper's LAN is effectively loss-free, so its numbers never show
// recovery cost. This sweep makes that cost visible: the detailed tcpstack
// pays RTO/fast-retransmit recovery per lost segment, while the fast-model
// transports charge the calibrated recovery delay per lost frame. Same
// seed => bit-identical run (the fault stream derives only from the seed).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "sockets/factory.h"
#include "sockets/tcp_socket.h"

namespace sv {
namespace {

struct LossyRun {
  double bandwidth_mbps = 0;
  std::uint64_t frames_seen = 0;
  std::uint64_t frames_dropped = 0;
  // Detailed-TCP only: the recovery machinery's own counters.
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t rto_expirations = 0;
  std::uint64_t fast_retransmits = 0;
};

/// Fast-fidelity transfer over `transport`; loss is recovered inside the
/// Pipe (per-frame recovery delay), so delivery stays in order.
LossyRun measure_fast(net::Transport transport, double loss,
                      std::uint64_t msg, int iters, std::uint64_t seed,
                      const harness::ObsArtifacts& obs = {}) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(loss), seed);
  harness::begin_obs(s, obs);
  sockets::SocketFactory factory(&s, &cluster);
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, transport);
    s.spawn("rx", [&s, &elapsed, iters, b = std::move(b)]() mutable {
      const SimTime t0 = s.now();
      for (int i = 0; i < iters; ++i) b->recv();
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) a->send(net::Message{.bytes = msg});
    a->close_send();
  });
  s.run();
  harness::export_obs(s, obs);
  LossyRun r;
  r.bandwidth_mbps =
      throughput_mbps(msg * static_cast<std::uint64_t>(iters), elapsed);
  if (const net::FaultInjector* inj = cluster.fault_injector()) {
    r.frames_seen = inj->frames_seen();
    r.frames_dropped = inj->frames_dropped();
  }
  return r;
}

/// Detailed tcpstack transfer: every lost segment is recovered by the
/// executed RTO / fast-retransmit machinery.
LossyRun measure_detailed_tcp(double loss, std::uint64_t msg, int iters,
                              std::uint64_t seed,
                              const harness::ObsArtifacts& obs = {}) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  cluster.install_faults(net::FaultPlan::uniform_loss(loss), seed);
  harness::begin_obs(s, obs);
  tcpstack::TcpStack stack0(&s, &cluster.node(0));
  tcpstack::TcpStack stack1(&s, &cluster.node(1));
  LossyRun r;
  SimTime elapsed;
  std::shared_ptr<tcpstack::TcpConnection> sender;
  s.spawn("app", [&] {
    auto [a, b] = tcpstack::TcpStack::connect(stack0, stack1);
    sender = a;
    s.spawn("rx", [&s, &elapsed, msg, iters, b] {
      const SimTime t0 = s.now();
      b->recv_exact(msg * static_cast<std::uint64_t>(iters));
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) a->send(msg);
    a->close();
  });
  s.run();
  harness::export_obs(s, obs);
  // Read the counters after quiescence so tail retransmissions count.
  r.segments_retransmitted = sender->segments_retransmitted();
  r.rto_expirations = sender->rto_expirations();
  r.fast_retransmits = sender->fast_retransmits();
  r.bandwidth_mbps =
      throughput_mbps(msg * static_cast<std::uint64_t>(iters), elapsed);
  if (const net::FaultInjector* inj = cluster.fault_injector()) {
    r.frames_seen = inj->frames_seen();
    r.frames_dropped = inj->frames_dropped();
  }
  return r;
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t iters = 64;
  std::int64_t msg_kib = 64;
  std::int64_t seed = 1;
  CliParser cli("Ablation: loss rate x transport");
  cli.add_int("iters", &iters, "messages per measurement");
  cli.add_int("msg-kib", &msg_kib, "message size (KiB)");
  cli.add_int("seed", &seed, "fault + experiment seed");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;
  const auto msg = static_cast<std::uint64_t>(msg_kib) * 1024;
  const int it = static_cast<int>(iters);
  const auto sd = static_cast<std::uint64_t>(seed);

  const double losses[] = {0.0, 0.001, 0.01, 0.02, 0.05};

  harness::Figure fig("Ablation: bandwidth vs frame loss rate",
                      "loss (%)", "bandwidth (Mbps)");
  auto& tcp_fast = fig.add_series("TCP (fast model)");
  auto& via_fast = fig.add_series("SocketVIA (fast model)");
  auto& tcp_detail = fig.add_series("TCP (detailed tcpstack)");
  std::vector<LossyRun> detail_runs;
  for (double loss : losses) {
    tcp_fast.add(loss * 100,
                 measure_fast(net::Transport::kKernelTcp, loss, msg, it, sd)
                     .bandwidth_mbps);
    via_fast.add(loss * 100,
                 measure_fast(net::Transport::kSocketVia, loss, msg, it, sd)
                     .bandwidth_mbps);
    // Artifacts capture the last (highest-loss) detailed-TCP run.
    detail_runs.push_back(measure_detailed_tcp(loss, msg, it, sd, artifacts));
    tcp_detail.add(loss * 100, detail_runs.back().bandwidth_mbps);
  }
  fig.print(std::cout);

  std::cout << "detailed tcpstack recovery counters:\n"
            << "  loss%   frames  dropped  retx  rto  fast_retx\n";
  for (std::size_t i = 0; i < detail_runs.size(); ++i) {
    const LossyRun& r = detail_runs[i];
    std::printf("  %5.2f  %7llu  %7llu  %4llu  %3llu  %9llu\n",
                losses[i] * 100,
                static_cast<unsigned long long>(r.frames_seen),
                static_cast<unsigned long long>(r.frames_dropped),
                static_cast<unsigned long long>(r.segments_retransmitted),
                static_cast<unsigned long long>(r.rto_expirations),
                static_cast<unsigned long long>(r.fast_retransmits));
  }
  std::cout << "reading: the fast model charges a fixed recovery delay per "
               "lost frame, so goodput degrades smoothly; the detailed "
               "stack pays dup-ACK or full RTO recovery, so loss hurts "
               "more when windows are small (RTO-bound) than when dup-ACKs "
               "arrive (fast retransmit).\n";
  return 0;
}
