// Figure 8 reproduction: maximum updates-per-second under a partial-update
// latency guarantee.
//
// For each latency bound the block size is the largest whose uncontended
// partial-update path stays within the bound (per that transport's
// calibrated curves); the pipeline then runs complete updates closed-loop
// and the sustained rate is reported. Panel (a) no computation, panel (b)
// 18 ns/B linear computation.
//
// Paper shapes: TCP drops out at the 100 us bound while SocketVIA stays
// near its peak; >6x / >8x (DR) improvement without computation, up to 4x
// with computation (where compute, not the network, caps SocketVIA).
#include <iostream>

#include "common/cli.h"
#include "harness/series.h"
#include "harness/vizbench.h"
#include "vizapp/server.h"
#include "vizapp/policy.h"

namespace sv {
namespace {

using namespace sv::literals;

constexpr std::uint64_t kImage = 16 * 1024 * 1024;
constexpr int kPipelineHops = 3;  // repo -> clip -> subsample -> viz

struct Panel {
  const char* title;
  PerByteCost compute;
};

void run_panel(const Panel& panel, const std::vector<double>& bounds_us,
               int updates, bool csv,
               const harness::ObsArtifacts& artifacts) {
  const net::CostModel tcp_model{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia_model{net::CalibrationProfile::socket_via()};

  harness::Figure fig(panel.title, "latency guarantee (us)",
                      "updates per second");
  auto& s_tcp = fig.add_series("TCP");
  auto& s_svia = fig.add_series("SocketVIA");
  auto& s_dr = fig.add_series("SocketVIA (with DR)");
  harness::Figure verify(std::string(panel.title) +
                             " [delivered partial latency, us]",
                         "latency guarantee (us)", "measured idle latency");
  auto& v_tcp = verify.add_series("TCP");
  auto& v_dr = verify.add_series("SocketVIA (with DR)");

  for (double bound_us : bounds_us) {
    const SimTime bound =
        SimTime::nanoseconds(static_cast<std::int64_t>(bound_us * 1e3));
    // The guarantee is transport-level (as in the paper): the chunk's
    // uncontended transfer path must fit the bound; computation shows up
    // in the achieved rate, not the block choice.
    const std::uint64_t tcp_block = viz::block_for_latency_bound(
        tcp_model, bound, kPipelineHops,
        viz::default_hop_overhead(tcp_model));
    const std::uint64_t dr_block = viz::block_for_latency_bound(
        svia_model, bound, kPipelineHops,
        viz::default_hop_overhead(svia_model));

    harness::VizWorkloadConfig cfg;
    cfg.image_bytes = kImage;
    cfg.compute = panel.compute;
    cfg.obs = artifacts;  // each run overwrites; the last swept run remains

    if (tcp_block > 0) {
      cfg.transport = net::Transport::kKernelTcp;
      cfg.block_bytes = tcp_block;
      auto r = run_saturation(cfg, updates);
      s_tcp.add(bound_us, r.updates_per_sec);
      v_tcp.add(bound_us, r.uncontended_partial_latency.us());
      // SocketVIA with TCP's blocks.
      cfg.transport = net::Transport::kSocketVia;
      auto rs = run_saturation(cfg, updates);
      s_svia.add(bound_us, rs.updates_per_sec);
    }
    if (dr_block > 0) {
      cfg.transport = net::Transport::kSocketVia;
      cfg.block_bytes = dr_block;
      auto rd = run_saturation(cfg, updates);
      s_dr.add(bound_us, rd.updates_per_sec);
      v_dr.add(bound_us, rd.uncontended_partial_latency.us());
    }
  }
  if (csv) {
    fig.print_csv(std::cout);
  } else {
    fig.print(std::cout);
    verify.print(std::cout);
  }
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t updates = 6;
  bool csv = false;
  bool quick = false;
  CliParser cli("Figure 8: updates per second with latency guarantees");
  cli.add_int("updates", &updates, "complete updates measured per point");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  cli.add_flag("quick", &quick, "fewer x points");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  const std::vector<double> bounds =
      quick ? std::vector<double>{1000, 400, 100}
            : std::vector<double>{1000, 900, 800, 700, 600, 500,
                                  400,  300, 200, 100};
  Panel a{"Figure 8(a): Updates/sec vs latency guarantee (no computation)",
          PerByteCost::zero()};
  Panel b{"Figure 8(b): Updates/sec vs latency guarantee (linear "
          "computation, 18 ns/B)",
          viz::virtual_microscope_compute()};
  run_panel(a, bounds, static_cast<int>(updates), csv, artifacts);
  run_panel(b, bounds, static_cast<int>(updates), csv, artifacts);
  if (!csv) {
    std::cout << "paper shapes: TCP absent at the 100us bound; "
                 "SocketVIA(DR) holds near-peak rate across bounds; with "
                 "computation the gap narrows to ~4x (compute-bound viz)\n";
  }
  return 0;
}
