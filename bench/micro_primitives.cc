// Google-benchmark suite over the simulator's own primitives: how much
// *wall-clock* time the machinery costs per simulated event/message. These
// numbers bound how large an experiment the repository can run.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "mem/buffer_pool.h"
#include "mem/payload.h"
#include "net/fabric.h"
#include "sim/resource.h"
#include "sim/sync.h"
#include "sockets/factory.h"

namespace {

using namespace sv;
using namespace sv::literals;

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.schedule(SimTime(i), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_ProcessHandoff(benchmark::State& state) {
  // Cost of one process suspend/resume round (two thread context switches).
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    s.spawn("p", [&] {
      for (int i = 0; i < 1000; ++i) s.delay(1_us);
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProcessHandoff);

void BM_ChannelSendRecv(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    sim::Channel<int> ch(&s, 16);
    s.spawn("tx", [&] {
      for (int i = 0; i < 1000; ++i) ch.send(i);
      ch.close();
    });
    s.spawn("rx", [&] {
      while (ch.recv()) {
      }
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelSendRecv);

void BM_ResourceUse(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    sim::Resource r(&s, 2);
    for (int p = 0; p < 4; ++p) {
      s.spawn("p" + std::to_string(p), [&] {
        for (int i = 0; i < 250; ++i) r.use(1_us);
      });
    }
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ResourceUse);

void BM_FabricMessage(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    net::Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
                   net::CalibrationProfile::socket_via(), "p");
    s.spawn("tx", [&] {
      for (int i = 0; i < 200; ++i) pipe.send(net::Message{.bytes = bytes});
    });
    s.spawn("rx", [&] {
      for (int i = 0; i < 200; ++i) pipe.recv();
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FabricMessage)->Arg(2048)->Arg(65536);

void BM_DetailedTcpMessage(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster,
                                   sockets::Fidelity::kDetailed);
    state.ResumeTiming();
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
      s.spawn("rx", [&s, b = std::move(b)]() mutable {
        while (b->recv()) {
        }
      });
      for (int i = 0; i < 100; ++i) a->send(net::Message{.bytes = 16384});
      a->close_send();
    });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DetailedTcpMessage);

void BM_PoolAcquireRelease(benchmark::State& state) {
  // Steady-state pool churn: after the first lap every acquire is a reuse
  // (LIFO free-list hit), which is the hot path of every filter cycle.
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  mem::BufferPool pool(nullptr, {.label = "bench"});
  for (auto _ : state) {
    mem::PooledBuffer buf = pool.acquire(bytes);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease)->Arg(4096)->Arg(65536);

void BM_PayloadSealSlice(benchmark::State& state) {
  // seal + MSS-sized slicing: what the TCP stack does to every message.
  constexpr std::uint64_t kBytes = 65536;
  constexpr std::uint64_t kMss = 1460;
  mem::BufferPool pool(nullptr, {.label = "bench"});
  for (auto _ : state) {
    mem::Payload p = pool.acquire(kBytes).seal();
    std::uint64_t off = 0;
    while (off < kBytes) {
      const std::uint64_t take = std::min(kMss, kBytes - off);
      benchmark::DoNotOptimize(p.slice(off, take));
      off += take;
    }
  }
  state.SetItemsProcessed(state.iterations() * (kBytes / kMss + 1));
}
BENCHMARK(BM_PayloadSealSlice);

void BM_PayloadMaterialize(benchmark::State& state) {
  // copy_to of a sliced-and-reassembled payload: the one sanctioned way to
  // flatten a chunk chain back into contiguous memory.
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  mem::BufferPool pool(nullptr, {.label = "bench"});
  mem::Payload chain;
  for (std::uint64_t off = 0; off < bytes; off += 1460) {
    chain = chain.concat(
        pool.acquire(std::min<std::uint64_t>(1460, bytes - off)).seal());
  }
  std::vector<std::byte> dst(bytes);
  for (auto _ : state) {
    chain.copy_to(0, dst.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PayloadMaterialize)->Arg(65536);

void BM_MaterializedSend(benchmark::State& state) {
  // Full detailed-TCP message cycle with real payload bytes attached:
  // pool acquire -> seal -> segment slicing -> reassembly -> header strip.
  // range(0) selects a registered (1) or unregistered (0) pool; both take
  // the same code path — the flag only changes what the ledger records.
  const bool registered = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster,
                                   sockets::Fidelity::kDetailed);
    mem::BufferPool pool(&s.obs(),
                         {.label = "bench", .registered = registered});
    state.ResumeTiming();
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
      s.spawn("rx", [&s, b = std::move(b)]() mutable {
        while (b->recv()) {
        }
      });
      for (int i = 0; i < 100; ++i) {
        mem::PooledBuffer buf = pool.acquire(16384);
        net::Message m;
        m.bytes = buf.size();
        m.payload = std::move(buf).seal();
        a->send(std::move(m));
      }
      a->close_send();
    });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MaterializedSend)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
