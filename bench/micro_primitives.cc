// Google-benchmark suite over the simulator's own primitives: how much
// *wall-clock* time the machinery costs per simulated event/message. These
// numbers bound how large an experiment the repository can run.
#include <benchmark/benchmark.h>

#include "net/fabric.h"
#include "sim/resource.h"
#include "sim/sync.h"
#include "sockets/factory.h"

namespace {

using namespace sv;
using namespace sv::literals;

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.schedule(SimTime(i), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_ProcessHandoff(benchmark::State& state) {
  // Cost of one process suspend/resume round (two thread context switches).
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    s.spawn("p", [&] {
      for (int i = 0; i < 1000; ++i) s.delay(1_us);
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProcessHandoff);

void BM_ChannelSendRecv(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    sim::Channel<int> ch(&s, 16);
    s.spawn("tx", [&] {
      for (int i = 0; i < 1000; ++i) ch.send(i);
      ch.close();
    });
    s.spawn("rx", [&] {
      while (ch.recv()) {
      }
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelSendRecv);

void BM_ResourceUse(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    sim::Resource r(&s, 2);
    for (int p = 0; p < 4; ++p) {
      s.spawn("p" + std::to_string(p), [&] {
        for (int i = 0; i < 250; ++i) r.use(1_us);
      });
    }
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ResourceUse);

void BM_FabricMessage(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    net::Pipe pipe(&s, &cluster.node(0), &cluster.node(1),
                   net::CalibrationProfile::socket_via(), "p");
    s.spawn("tx", [&] {
      for (int i = 0; i < 200; ++i) pipe.send(net::Message{.bytes = bytes});
    });
    s.spawn("rx", [&] {
      for (int i = 0; i < 200; ++i) pipe.recv();
    });
    state.ResumeTiming();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FabricMessage)->Arg(2048)->Arg(65536);

void BM_DetailedTcpMessage(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster,
                                   sockets::Fidelity::kDetailed);
    state.ResumeTiming();
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, net::Transport::kKernelTcp);
      s.spawn("rx", [&s, b = std::move(b)]() mutable {
        while (b->recv()) {
        }
      });
      for (int i = 0; i < 100; ++i) a->send(net::Message{.bytes = 16384});
      a->close_send();
    });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DetailedTcpMessage);

}  // namespace

BENCHMARK_MAIN();
