// Figure 4 reproduction: latency and bandwidth micro-benchmarks for VIA,
// SocketVIA and kernel TCP.
//
// Paper targets: latency 9 us (VIA) / 9.5 us (SocketVIA) / ~47.5 us (TCP);
// peak bandwidth 795 / 763 / 510 Mbps. All three curves are measured on
// the *detailed* protocol machinery (raw VIA descriptors, the credit-based
// SocketVIA layer, the segmenting TCP stack); the closed-form model's
// prediction is printed alongside as a cross-check.
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "net/cost_model.h"
#include "sockets/factory.h"
#include "sockets/tcp_socket.h"
#include "sockets/via_socket.h"
#include "via/via.h"

namespace sv {
namespace {

using namespace sv::literals;

/// Ping-pong latency over raw VIA descriptors.
SimTime via_pingpong(std::uint64_t bytes, int iters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  auto a = nic0.create_vi();
  auto b = nic1.create_vi();
  via::Nic::connect(*a, *b);
  auto ra = nic0.register_memory(bytes);
  auto rb = nic1.register_memory(bytes);
  SimTime elapsed;
  s.spawn("pong", [&] {
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = rb;
      rd.length = bytes;
      b->post_recv(rd);
      b->recv_cq().wait();
      via::Descriptor sd;
      sd.region = rb;
      sd.length = bytes;
      b->post_send(sd);
      b->send_cq().wait();
    }
  });
  s.spawn("ping", [&] {
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = ra;
      rd.length = bytes;
      a->post_recv(rd);
      via::Descriptor sd;
      sd.region = ra;
      sd.length = bytes;
      a->post_send(sd);
      a->send_cq().wait();
      a->recv_cq().wait();
    }
    elapsed = s.now() - t0;
  });
  s.run();
  return elapsed / (2 * iters);  // one-way latency
}

/// Ping-pong latency over a sockets backend. Latency benchmarks disable
/// Nagle (TCP_NODELAY), as the paper's micro-benchmarks did.
SimTime socket_pingpong(sockets::Fidelity fid, net::Transport tr,
                        std::uint64_t bytes, int iters,
                        const harness::ObsArtifacts* obs = nullptr) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  if (obs != nullptr) harness::begin_obs(s, *obs);
  sockets::SocketFactory factory(&s, &cluster, fid);
  SimTime elapsed;
  s.spawn("app", [&] {
    sockets::SocketPair pair;
    if (fid == sockets::Fidelity::kDetailed &&
        tr == net::Transport::kKernelTcp) {
      tcpstack::TcpOptions opt;
      opt.nagle = false;
      pair = sockets::DetailedTcpSocket::make_pair(factory.tcp_stack(0),
                                                   factory.tcp_stack(1), opt);
    } else {
      pair = factory.connect(0, 1, tr);
    }
    auto& [a, b] = pair;
    s.spawn("pong", [&, b = std::move(b)]() mutable {
      while (auto m = b->recv()) {
        b->send(*m);
      }
    });
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
      a->recv();
    }
    elapsed = s.now() - t0;
    a->close_send();
  });
  s.run();
  if (obs != nullptr) harness::export_obs(s, *obs);
  return elapsed / (2 * iters);
}

/// Streaming bandwidth (Mbps) over a sockets backend.
double socket_bandwidth(sockets::Fidelity fid, net::Transport tr,
                        std::uint64_t bytes, int iters,
                        const harness::ObsArtifacts* obs = nullptr) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  if (obs != nullptr) harness::begin_obs(s, *obs);
  sockets::SocketFactory factory(&s, &cluster, fid);
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, tr);
    s.spawn("rx", [&, b = std::move(b), iters]() mutable {
      const SimTime t0 = s.now();
      for (int i = 0; i < iters; ++i) b->recv();
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) {
      a->send(net::Message{.bytes = bytes});
    }
    a->close_send();
  });
  s.run();
  if (obs != nullptr) harness::export_obs(s, *obs);
  return throughput_mbps(bytes * static_cast<std::uint64_t>(iters), elapsed);
}

/// Copy audit (--copy-audit): runs a small ping-pong per transport and
/// fidelity and checks the zero-copy contract from the mem ledger — VIA
/// paths record no payload copies, kernel TCP records exactly two per
/// delivered message (user->kernel at send, kernel->user at receive).
/// Returns the process exit code (nonzero on contract violation) so CI can
/// gate on it.
int run_copy_audit(int iters) {
  struct Row {
    const char* name;
    sockets::Fidelity fid;
    net::Transport tr;
    std::uint64_t min_per_msg;
    std::uint64_t max_per_msg;
  };
  const Row rows[] = {
      {"VIA (fast)", sockets::Fidelity::kFast, net::Transport::kVia, 0, 0},
      {"SocketVIA (fast)", sockets::Fidelity::kFast,
       net::Transport::kSocketVia, 0, 0},
      {"SocketVIA (detailed)", sockets::Fidelity::kDetailed,
       net::Transport::kSocketVia, 0, 0},
      {"TCP (fast)", sockets::Fidelity::kFast, net::Transport::kKernelTcp, 2,
       2},
      {"TCP (detailed)", sockets::Fidelity::kDetailed,
       net::Transport::kKernelTcp, 2, 2},
  };
  constexpr std::uint64_t kBytes = 4096;
  bool ok = true;
  std::cout << "copy audit: " << iters << " ping-pongs of " << kBytes
            << " B per transport\n";
  for (const Row& row : rows) {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    sockets::SocketFactory factory(&s, &cluster, row.fid);
    s.spawn("app", [&] {
      auto [a, b] = factory.connect(0, 1, row.tr);
      s.spawn("pong", [&, b = std::move(b)]() mutable {
        while (auto m = b->recv()) b->send(*m);
      });
      for (int i = 0; i < iters; ++i) {
        a->send(net::Message{.bytes = kBytes});
        a->recv();
      }
      a->close_send();
    });
    s.run();
    // 2*iters messages delivered end-to-end (ping + pong per iteration).
    const auto messages = static_cast<std::uint64_t>(2 * iters);
    const std::uint64_t copies = s.obs().registry.counter_value("mem.copies");
    const std::uint64_t per_msg = copies / messages;
    const bool pass = copies % messages == 0 &&
                      per_msg >= row.min_per_msg && per_msg <= row.max_per_msg;
    ok = ok && pass;
    std::cout << "  " << row.name << ": mem.copies=" << copies << " ("
              << per_msg << "/message, expected [" << row.min_per_msg << ", "
              << row.max_per_msg << "]) " << (pass ? "OK" : "VIOLATION")
              << "\n";
  }
  // Raw VIA at detailed fidelity lives below the sockets layer: descriptors
  // move between registered regions by modeled DMA, so the ledger must stay
  // at zero copies (registrations are expected and not counted here).
  {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
    auto a = nic0.create_vi();
    auto b = nic1.create_vi();
    via::Nic::connect(*a, *b);
    auto ra = nic0.register_memory(kBytes);
    auto rb = nic1.register_memory(kBytes);
    s.spawn("pong", [&] {
      for (int i = 0; i < iters; ++i) {
        via::Descriptor rd;
        rd.region = rb;
        rd.length = kBytes;
        b->post_recv(rd);
        b->recv_cq().wait();
        via::Descriptor sd;
        sd.region = rb;
        sd.length = kBytes;
        b->post_send(sd);
        b->send_cq().wait();
      }
    });
    s.spawn("ping", [&] {
      for (int i = 0; i < iters; ++i) {
        via::Descriptor rd;
        rd.region = ra;
        rd.length = kBytes;
        a->post_recv(rd);
        via::Descriptor sd;
        sd.region = ra;
        sd.length = kBytes;
        a->post_send(sd);
        a->send_cq().wait();
        a->recv_cq().wait();
      }
    });
    s.run();
    const std::uint64_t copies = s.obs().registry.counter_value("mem.copies");
    const std::uint64_t regs =
        s.obs().registry.counter_value("mem.registrations");
    const bool pass = copies == 0;
    ok = ok && pass;
    std::cout << "  VIA (detailed, raw descriptors): mem.copies=" << copies
              << " (expected 0; mem.registrations=" << regs << ") "
              << (pass ? "OK" : "VIOLATION") << "\n";
  }
  // Per-policy expected-copy assertions (DESIGN.md §14): the selective-copy
  // engine must charge exactly its decision-table row. Every message reuses
  // buffer region 1, so the regcache sees maximal locality: one miss per
  // node-policy, hits thereafter.
  {
    struct PolicyRow {
      const char* name;
      mem::CopyPolicyKind kind;
      net::Transport tr;
    };
    const PolicyRow prows[] = {
        {"SocketVIA + eager_copy", mem::CopyPolicyKind::kEagerCopy,
         net::Transport::kSocketVia},
        {"SocketVIA + register_on_fly", mem::CopyPolicyKind::kRegisterOnFly,
         net::Transport::kSocketVia},
        {"SocketVIA + regcache", mem::CopyPolicyKind::kRegCache,
         net::Transport::kSocketVia},
        {"TCP + eager_copy (policy inert)", mem::CopyPolicyKind::kEagerCopy,
         net::Transport::kKernelTcp},
    };
    for (const PolicyRow& row : prows) {
      sim::Simulation s;
      net::Cluster cluster(&s, 2);
      sockets::SocketFactory factory(&s, &cluster, sockets::Fidelity::kFast);
      mem::CopyPolicyConfig pcfg;
      pcfg.kind = row.kind;
      pcfg.cache.capacity_regions = 8;
      factory.set_copy_policy(pcfg);
      s.spawn("app", [&] {
        auto [a, b] = factory.connect(0, 1, row.tr);
        s.spawn("pong", [&, b = std::move(b)]() mutable {
          while (auto m = b->recv()) b->send(*m);
        });
        for (int i = 0; i < iters; ++i) {
          a->send(net::Message{.bytes = kBytes, .buffer = 1});
          a->recv();
        }
        a->close_send();
      });
      s.run();
      const auto messages = static_cast<std::uint64_t>(2 * iters);
      const auto& reg = s.obs().registry;
      const std::uint64_t copies = reg.counter_value("mem.copies");
      const std::uint64_t regs = reg.counter_value("mem.registrations");
      const std::uint64_t deregs = reg.counter_value("mem.deregistrations");
      bool pass = false;
      switch (row.kind) {
        case mem::CopyPolicyKind::kStaticPool:
          pass = copies == 0 && regs == 0;
          break;
        case mem::CopyPolicyKind::kEagerCopy:
          if (row.tr == net::Transport::kKernelTcp) {
            // TCP never consults the policy: its two structural copies per
            // message remain, and nothing is pinned.
            pass = copies == 2 * messages && regs == 0 &&
                   reg.counter_value(
                       "mem.policy_decisions{policy=eager_copy}") == 0;
          } else {
            // One bounce copy per message, no pinning.
            pass = copies == messages && regs == 0 &&
                   reg.counter_value(
                       "mem.copies{at=policy.stage_copy}") == messages;
          }
          break;
        case mem::CopyPolicyKind::kRegisterOnFly:
          // Zero copies; every message pins and unpins.
          pass = copies == 0 && regs == messages && deregs == messages;
          break;
        case mem::CopyPolicyKind::kRegCache: {
          // Zero copies; one miss per node-policy (both sides send the
          // same region id), hits for every other message.
          const std::uint64_t hits =
              reg.counter_value("mem.regcache_hits{cache=regcache}");
          const std::uint64_t misses =
              reg.counter_value("mem.regcache_misses{cache=regcache}");
          pass = copies == 0 && misses == 2 && regs == 2 &&
                 hits == messages - 2;
          break;
        }
      }
      ok = ok && pass;
      std::cout << "  " << row.name << ": mem.copies=" << copies
                << " registrations=" << regs << " deregistrations=" << deregs
                << " " << (pass ? "OK" : "VIOLATION") << "\n";
    }
  }
  std::cout << (ok ? "copy audit passed\n" : "copy audit FAILED\n");
  return ok ? 0 : 1;
}

/// Streaming bandwidth over raw VIA.
double via_bandwidth(std::uint64_t bytes, int iters) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  auto a = nic0.create_vi();
  auto b = nic1.create_vi();
  via::Nic::connect(*a, *b);
  auto ra = nic0.register_memory(std::max<std::uint64_t>(bytes, 1));
  auto rb = nic1.register_memory(std::max<std::uint64_t>(bytes, 1));
  SimTime elapsed;
  s.spawn("rx", [&] {
    for (int i = 0; i < iters; ++i) {
      via::Descriptor rd;
      rd.region = rb;
      rd.length = bytes;
      b->post_recv(rd);
    }
    const SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) b->recv_cq().wait();
    elapsed = s.now() - t0;
  });
  s.spawn("tx", [&] {
    s.delay(5_us);  // receives posted first
    // Keep a deep send queue (as real VIA streaming benchmarks do) so the
    // wire, not completion reaping, is the bottleneck.
    constexpr int kWindow = 16;
    int outstanding = 0;
    for (int i = 0; i < iters; ++i) {
      via::Descriptor sd;
      sd.region = ra;
      sd.length = bytes;
      a->post_send(sd);
      if (++outstanding >= kWindow) {
        a->send_cq().wait();
        --outstanding;
      }
    }
    while (outstanding-- > 0) a->send_cq().wait();
  });
  s.run();
  return throughput_mbps(bytes * static_cast<std::uint64_t>(iters), elapsed);
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t iters = 50;
  bool csv = false;
  bool copy_audit = false;
  harness::ObsArtifacts artifacts;
  CliParser cli("Figure 4: latency and bandwidth micro-benchmarks");
  cli.add_int("iters", &iters, "ping-pong / streaming iterations per size");
  cli.add_flag("csv", &csv, "emit CSV instead of tables");
  cli.add_flag("copy-audit", &copy_audit,
               "check the zero-copy contract (mem.copies per message) "
               "instead of running the figure; nonzero exit on violation");
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;
  const int it = static_cast<int>(iters);
  if (copy_audit) return run_copy_audit(it);

  const net::CostModel via_model{net::CalibrationProfile::via()};
  const net::CostModel svia_model{net::CalibrationProfile::socket_via()};
  const net::CostModel tcp_model{net::CalibrationProfile::kernel_tcp()};

  harness::Figure lat("Figure 4(a): Micro-Benchmarks: Latency",
                      "msg size (bytes)", "one-way latency (us)");
  auto& l_via = lat.add_series("VIA");
  auto& l_svia = lat.add_series("SocketVIA");
  auto& l_tcp = lat.add_series("TCP");
  auto& l_svia_model = lat.add_series("SocketVIA (model)");
  auto& l_tcp_model = lat.add_series("TCP (model)");
  for (std::uint64_t n = 4; n <= 4096; n *= 2) {
    const auto x = static_cast<double>(n);
    l_via.add(x, via_pingpong(n, it).us());
    l_svia.add(x, socket_pingpong(sockets::Fidelity::kDetailed,
                                  net::Transport::kSocketVia, n, it)
                      .us());
    l_tcp.add(x, socket_pingpong(sockets::Fidelity::kDetailed,
                                 net::Transport::kKernelTcp, n, it)
                     .us());
    l_svia_model.add(x, svia_model.pingpong_latency(n).us());
    l_tcp_model.add(x, tcp_model.pingpong_latency(n).us());
  }

  harness::Figure bw("Figure 4(b): Micro-Benchmarks: Bandwidth",
                     "msg size (bytes)", "bandwidth (Mbps)");
  auto& b_via = bw.add_series("VIA");
  auto& b_svia = bw.add_series("SocketVIA");
  auto& b_tcp = bw.add_series("TCP");
  auto& b_svia_model = bw.add_series("SocketVIA (model)");
  auto& b_tcp_model = bw.add_series("TCP (model)");
  auto& b_fe_model = bw.add_series("TCP/FastEth (model)");
  const net::CostModel fe_model{net::CalibrationProfile::fast_ethernet_tcp()};
  for (std::uint64_t n = 64; n <= 65536; n *= 2) {
    const auto x = static_cast<double>(n);
    b_via.add(x, via_bandwidth(n, it));
    b_svia.add(x, socket_bandwidth(sockets::Fidelity::kDetailed,
                                   net::Transport::kSocketVia, n, it));
    // The trace/metrics artifacts capture the largest detailed-TCP
    // streaming run (the richest protocol activity in this bench).
    b_tcp.add(x, socket_bandwidth(sockets::Fidelity::kDetailed,
                                  net::Transport::kKernelTcp, n, it,
                                  n == 65536 ? &artifacts : nullptr));
    b_svia_model.add(x, svia_model.stream_bandwidth_mbps(n));
    b_tcp_model.add(x, tcp_model.stream_bandwidth_mbps(n));
    b_fe_model.add(x, fe_model.stream_bandwidth_mbps(n));
  }

  if (csv) {
    lat.print_csv(std::cout);
    bw.print_csv(std::cout);
  } else {
    lat.print(std::cout);
    bw.print(std::cout);
    std::cout << "paper targets: latency VIA ~9us, SocketVIA ~9.5us, TCP "
                 "~47.5us; peak bandwidth 795/763/510 Mbps\n";
  }
  return 0;
}
