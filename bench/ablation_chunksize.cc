// Ablation: the Figure 2 tradeoff made explicit — how distribution block
// size moves (i) uncontended partial-update latency and (ii) sustainable
// complete-update rate, per transport.
//
// This is the design space the paper's DR policy navigates: small blocks
// buy latency and granularity; large blocks buy receiver efficiency. The
// crossover region differs between substrates, which is the whole story.
#include <iostream>

#include "common/cli.h"
#include "harness/series.h"
#include "harness/vizbench.h"
#include "vizapp/policy.h"

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t updates = 5;
  bool csv = false;
  CliParser cli("Ablation: block size vs latency and update rate");
  cli.add_int("updates", &updates, "updates per saturation measurement");
  cli.add_flag("csv", &csv, "emit CSV");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  harness::Figure lat("Ablation: idle partial-update latency vs block size",
                      "block (KiB)", "latency (us)");
  harness::Figure rate("Ablation: saturation update rate vs block size",
                       "block (KiB)", "updates per second");
  harness::Figure cap("Ablation: receiver-capacity model vs block size",
                      "block (KiB)", "capacity (MB/s)");
  for (auto transport :
       {net::Transport::kSocketVia, net::Transport::kKernelTcp}) {
    const char* name = net::transport_name(transport);
    auto& l = lat.add_series(name);
    auto& r = rate.add_series(name);
    auto& c = cap.add_series(name);
    const net::CostModel model{
        net::CalibrationProfile::for_transport(transport)};
    for (std::uint64_t kib : {2ULL, 8ULL, 32ULL, 128ULL, 512ULL, 2048ULL}) {
      harness::VizWorkloadConfig cfg;
      cfg.transport = transport;
      cfg.block_bytes = kib * 1024;
      cfg.obs = artifacts;  // each run overwrites; the last swept run remains
      const auto x = static_cast<double>(kib);
      l.add(x, harness::measure_idle_partial_latency(cfg).us());
      r.add(x,
            harness::run_saturation(cfg, static_cast<int>(updates), 1)
                .updates_per_sec);
      c.add(x, viz::receiver_capacity_bps(model, kib * 1024) / 1e6);
    }
  }
  if (csv) {
    lat.print_csv(std::cout);
    rate.print_csv(std::cout);
    cap.print_csv(std::cout);
  } else {
    lat.print(std::cout);
    rate.print(std::cout);
    cap.print(std::cout);
    std::cout << "reading: latency grows ~linearly with block size (worse "
                 "for TCP); the update rate saturates once per-message "
                 "overheads amortize — at a much smaller block for "
                 "SocketVIA (the paper's U2 < U1).\n";
  }
  return 0;
}
