// Ablation: kernel-TCP knobs on the detailed stack — MSS, Nagle, delayed
// ACK — quantifying how much of TCP's disadvantage is protocol policy
// rather than fundamental host overhead.
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "net/cluster.h"
#include "sockets/tcp_socket.h"

namespace sv {
namespace {

using namespace sv::literals;

struct Measures {
  double pingpong_us;
  double bandwidth_mbps;
};

Measures measure(const tcpstack::TcpOptions& opt,
                 const harness::ObsArtifacts& obs) {
  Measures out{};
  {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    tcpstack::TcpStack st0(&s, &cluster.node(0)), st1(&s, &cluster.node(1));
    SimTime elapsed;
    s.spawn("app", [&] {
      auto [a, b] = sockets::DetailedTcpSocket::make_pair(st0, st1, opt);
      s.spawn("echo", [&s, b = std::move(b)]() mutable {
        while (auto m = b->recv()) b->send(*m);
      });
      const SimTime t0 = s.now();
      for (int i = 0; i < 50; ++i) {
        a->send(net::Message{.bytes = 64});
        a->recv();
      }
      elapsed = s.now() - t0;
      a->close_send();
    });
    s.run();
    out.pingpong_us = elapsed.us() / 100.0;
  }
  {
    sim::Simulation s;
    net::Cluster cluster(&s, 2);
    harness::begin_obs(s, obs);  // artifacts capture the streaming run
    tcpstack::TcpStack st0(&s, &cluster.node(0)), st1(&s, &cluster.node(1));
    SimTime elapsed;
    const int kIters = 60;
    const std::uint64_t kMsg = 64_KiB;
    s.spawn("app", [&] {
      auto [a, b] = sockets::DetailedTcpSocket::make_pair(st0, st1, opt);
      s.spawn("rx", [&s, &elapsed, b = std::move(b)]() mutable {
        const SimTime t0 = s.now();
        for (int i = 0; i < kIters; ++i) b->recv();
        elapsed = s.now() - t0;
      });
      for (int i = 0; i < kIters; ++i) a->send(net::Message{.bytes = kMsg});
      a->close_send();
    });
    s.run();
    harness::export_obs(s, obs);
    out.bandwidth_mbps = throughput_mbps(kMsg * kIters, elapsed);
  }
  return out;
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  bool csv = false;
  CliParser cli("Ablation: TCP MSS / Nagle / delayed-ACK");
  cli.add_flag("csv", &csv, "emit CSV");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;

  Table t({"configuration", "64B ping-pong one-way (us)",
           "64KiB stream (Mbps)"});
  auto row = [&](const std::string& name, const tcpstack::TcpOptions& opt) {
    const auto m = measure(opt, artifacts);
    t.add_row({name, Table::num(m.pingpong_us, 2),
               Table::num(m.bandwidth_mbps, 1)});
  };

  tcpstack::TcpOptions base;
  row("default (MSS 1460, Nagle, delayed ACK)", base);

  tcpstack::TcpOptions nodelay = base;
  nodelay.nagle = false;
  row("TCP_NODELAY", nodelay);

  tcpstack::TcpOptions quickack = base;
  quickack.delayed_ack = false;
  row("no delayed ACK", quickack);

  tcpstack::TcpOptions both = base;
  both.nagle = false;
  both.delayed_ack = false;
  row("TCP_NODELAY + no delayed ACK", both);

  for (std::uint32_t mss : {536u, 1460u, 4380u, 8960u}) {
    tcpstack::TcpOptions o = both;
    o.mss = mss;
    row("MSS " + std::to_string(mss) + " (nodelay+quickack)", o);
  }

  tcpstack::TcpOptions bigbuf = both;
  bigbuf.send_buffer = 256 * 1024;
  bigbuf.recv_buffer = 256 * 1024;
  row("256 KiB socket buffers", bigbuf);

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
    std::cout << "\nreading: Nagle+delayed-ACK dominate small-message "
                 "behaviour; bandwidth is bound by per-segment receive "
                 "processing, so jumbo MSS (9 KB) recovers much of the gap "
                 "to SocketVIA — which is why the paper's per-byte gap "
                 "persists only on standard Ethernet framing.\n";
  }
  return 0;
}
