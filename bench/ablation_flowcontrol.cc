// Ablation: SocketVIA's credit scheme — credits, chunk size, and credit
// batch vs achieved bandwidth and sender stall behaviour, on the detailed
// (descriptor-level) implementation.
//
// The paper's SocketVIA fixes one operating point; this sweep shows why:
// too few credits starve the wire, tiny chunks burn per-descriptor
// overhead, and batchy credit returns add stalls at small windows.
#include <iostream>

#include "common/cli.h"
#include "harness/obsout.h"
#include "harness/series.h"
#include "net/cluster.h"
#include "sockets/via_socket.h"

namespace sv {
namespace {

double measure_bw(const sockets::ViaSocketOptions& opt, std::uint64_t msg,
                  int iters, const harness::ObsArtifacts& obs) {
  sim::Simulation s;
  net::Cluster cluster(&s, 2);
  harness::begin_obs(s, obs);
  via::Nic nic0(&s, &cluster.node(0)), nic1(&s, &cluster.node(1));
  SimTime elapsed;
  s.spawn("app", [&] {
    auto [a, b] = sockets::DetailedViaSocket::make_pair(nic0, nic1, opt);
    s.spawn("rx", [&s, &elapsed, iters, b = std::move(b)]() mutable {
      const SimTime t0 = s.now();
      for (int i = 0; i < iters; ++i) b->recv();
      elapsed = s.now() - t0;
    });
    for (int i = 0; i < iters; ++i) a->send(net::Message{.bytes = msg});
    a->close_send();
  });
  s.run();
  harness::export_obs(s, obs);
  return throughput_mbps(msg * static_cast<std::uint64_t>(iters), elapsed);
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;
  std::int64_t iters = 100;
  std::int64_t msg_kib = 64;
  bool csv = false;
  CliParser cli("Ablation: SocketVIA credit scheme");
  cli.add_int("iters", &iters, "messages per measurement");
  cli.add_int("msg-kib", &msg_kib, "message size (KiB)");
  harness::ObsArtifacts artifacts;
  harness::add_obs_flags(cli, &artifacts);
  if (!cli.parse(argc, argv)) return 1;
  cli.add_flag("csv", &csv, "emit CSV");
  const auto msg = static_cast<std::uint64_t>(msg_kib) * 1024;
  const int it = static_cast<int>(iters);

  harness::Figure credits("Ablation: bandwidth vs data credits",
                          "credits", "bandwidth (Mbps)");
  for (std::uint64_t chunk : {4096ULL, 16384ULL, 65536ULL}) {
    auto& s = credits.add_series("chunk " + std::to_string(chunk / 1024) +
                                 " KiB");
    for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
      sockets::ViaSocketOptions opt;
      opt.chunk_bytes = chunk;
      opt.credits = c;
      opt.credit_batch = std::max(1u, c / 2);
      s.add(c, measure_bw(opt, msg, it, artifacts));
    }
  }
  credits.print(std::cout);

  harness::Figure batch("Ablation: bandwidth vs credit batch (8 credits, "
                        "16 KiB chunks)",
                        "credit batch", "bandwidth (Mbps)");
  auto& bs = batch.add_series("SocketVIA");
  for (std::uint32_t b : {1u, 2u, 4u, 8u}) {
    sockets::ViaSocketOptions opt;
    opt.chunk_bytes = 16384;
    opt.credits = 8;
    opt.credit_batch = b;
    bs.add(b, measure_bw(opt, msg, it, artifacts));
  }
  batch.print(std::cout);
  std::cout << "reading: bandwidth saturates once credits cover the "
               "bandwidth-delay product of the DMA pipeline; oversized "
               "credit batches starve the sender at small credit counts.\n";
  return 0;
}
