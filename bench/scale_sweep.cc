// Scale-out sweep: open-loop load over explicit fat-tree fabrics
// (DESIGN.md §13).
//
// Each datapoint runs harness::run_open_loop on a k-ary fat-tree at
// 16/64/256 hosts, for oversubscription ratios 1 and 4, over both the
// VIA-style and kernel-TCP transports. The workload is the deterministic
// open-loop client model: thousands of modeled clients per node submitting
// updates through the per-node SendMux, routed hop-by-hop through shared
// switch links. Reported per point:
//
//   events_per_sec   engine events per wall-second (simulator throughput)
//   p50/p99 update   enqueue-to-delivery latency percentiles (model output;
//                    host-independent, reproducible from (config, seed))
//   trace_digest     determinism evidence for the exact executed schedule
//
// Results go to stdout and BENCH_scale_sweep.json at the repo root. CI's
// scale-smoke job runs `--quick` (the 64-node subset) and gates it with
// tools/bench_compare.py: events/sec against the committed baseline, plus
// machine-independent invariants (p99 >= p50, oversubscription inflating
// the tail).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/units.h"
#include "harness/openloop.h"
#include "net/calibration.h"
#include "net/topology.h"

namespace sv {
namespace {

struct SweepPoint {
  std::string topology;
  int nodes = 0;
  int oversubscription = 1;
  net::Transport transport = net::Transport::kSocketVia;
  harness::OpenLoopResult result;
  double wall_seconds = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(result.events_fired) / wall_seconds
               : 0;
  }
};

harness::OpenLoopConfig point_config(int nodes, int oversub,
                                     net::Transport tr) {
  harness::OpenLoopConfig cfg;
  cfg.transport = tr;
  cfg.cluster_nodes = nodes;
  const int k = nodes <= 16 ? 4 : (nodes <= 128 ? 8 : 12);
  cfg.topology = net::TopologySpec::fat_tree(k, oversub);
  cfg.seed = 7;
  // ~1000 modeled clients per node; 16k at the small end, 256k at the top.
  cfg.clients = static_cast<std::uint64_t>(nodes) * 1000;
  cfg.arrivals.kind = harness::ArrivalKind::kMmpp;
  cfg.arrivals.rate_per_sec = 2'000.0;
  cfg.update_bytes = 1024;
  cfg.fanout = 4;
  cfg.incast_fraction = 0.05;
  cfg.hot_node = 1;
  cfg.duration = SimTime::milliseconds(20);
  return cfg;
}

SweepPoint run_point(int nodes, int oversub, net::Transport tr) {
  const harness::OpenLoopConfig cfg = point_config(nodes, oversub, tr);
  SweepPoint p;
  p.topology = "fat_tree_k" + std::to_string(cfg.topology.fat_tree_k);
  p.nodes = nodes;
  p.oversubscription = oversub;
  p.transport = tr;
  // Wall time IS the simulator-throughput measurement here, not simulated
  // state. svlint:allow(SV004)
  const auto t0 = std::chrono::steady_clock::now();
  p.result = harness::run_open_loop(cfg);
  // svlint:allow(SV004) — see above.
  const auto t1 = std::chrono::steady_clock::now();
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

void emit_json(const std::vector<SweepPoint>& points, bool quick,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scale_sweep\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s_x%d_%s\", \"topology\": \"%s\", "
        "\"nodes\": %d, \"oversubscription\": %d, \"transport\": \"%s\",\n"
        "     \"offered\": %llu, \"delivered\": %llu, \"drops\": %llu,\n"
        "     \"p50_update_ns\": %.0f, \"p99_update_ns\": %.0f,\n"
        "     \"events_fired\": %llu, \"events_per_sec\": %.0f, "
        "\"wall_seconds\": %.4f,\n"
        "     \"trace_digest\": %llu}%s\n",
        p.topology.c_str(), p.oversubscription,
        net::transport_name(p.transport), p.topology.c_str(), p.nodes,
        p.oversubscription, net::transport_name(p.transport),
        static_cast<unsigned long long>(p.result.offered),
        static_cast<unsigned long long>(p.result.delivered),
        static_cast<unsigned long long>(p.result.drops),
        p.result.update_latency.percentile(50.0),
        p.result.update_latency.percentile(99.0),
        static_cast<unsigned long long>(p.result.events_fired),
        p.events_per_sec(), p.wall_seconds,
        static_cast<unsigned long long>(p.result.trace_digest),
        i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace sv

int main(int argc, char** argv) {
  using namespace sv;

  bool quick = false;
  std::string json_path = "BENCH_scale_sweep.json";
  CliParser cli(
      "Open-loop scale sweep over fat-tree fabrics: 16/64/256 nodes x "
      "oversubscription x transport; emits BENCH_scale_sweep.json.");
  cli.add_flag("quick", &quick,
               "64-node subset only (CI scale-smoke)");
  cli.add_string("json", &json_path, "output JSON path");
  if (!cli.parse(argc, argv)) return 1;

  const std::vector<int> node_counts =
      quick ? std::vector<int>{64} : std::vector<int>{16, 64, 256};
  const std::vector<int> ratios = {1, 4};
  const std::vector<net::Transport> transports = {
      net::Transport::kSocketVia, net::Transport::kKernelTcp};

  std::vector<SweepPoint> points;
  for (const int nodes : node_counts) {
    for (const int r : ratios) {
      for (const net::Transport tr : transports) {
        SweepPoint p = run_point(nodes, r, tr);
        std::printf(
            "%-12s x%d %-5s %4d nodes | %7llu offered %7llu delivered "
            "%5llu drops | p50 %9.0f ns p99 %9.0f ns | %9.0f ev/s\n",
            p.topology.c_str(), p.oversubscription,
            net::transport_name(p.transport), p.nodes,
            static_cast<unsigned long long>(p.result.offered),
            static_cast<unsigned long long>(p.result.delivered),
            static_cast<unsigned long long>(p.result.drops),
            p.result.update_latency.percentile(50.0),
            p.result.update_latency.percentile(99.0), p.events_per_sec());
        points.push_back(std::move(p));
      }
    }
  }

  emit_json(points, quick, json_path);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
