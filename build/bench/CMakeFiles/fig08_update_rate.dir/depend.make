# Empty dependencies file for fig08_update_rate.
# This may be replaced when dependencies are built.
