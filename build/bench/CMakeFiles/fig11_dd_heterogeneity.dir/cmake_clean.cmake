file(REMOVE_RECURSE
  "CMakeFiles/fig11_dd_heterogeneity.dir/fig11_dd_heterogeneity.cc.o"
  "CMakeFiles/fig11_dd_heterogeneity.dir/fig11_dd_heterogeneity.cc.o.d"
  "fig11_dd_heterogeneity"
  "fig11_dd_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dd_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
