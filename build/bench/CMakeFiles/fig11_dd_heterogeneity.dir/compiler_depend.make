# Empty compiler generated dependencies file for fig11_dd_heterogeneity.
# This may be replaced when dependencies are built.
