# Empty dependencies file for fig09_query_mix.
# This may be replaced when dependencies are built.
