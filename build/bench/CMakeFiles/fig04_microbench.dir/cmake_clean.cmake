file(REMOVE_RECURSE
  "CMakeFiles/fig04_microbench.dir/fig04_microbench.cc.o"
  "CMakeFiles/fig04_microbench.dir/fig04_microbench.cc.o.d"
  "fig04_microbench"
  "fig04_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
