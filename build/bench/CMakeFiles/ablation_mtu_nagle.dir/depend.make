# Empty dependencies file for ablation_mtu_nagle.
# This may be replaced when dependencies are built.
