file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtu_nagle.dir/ablation_mtu_nagle.cc.o"
  "CMakeFiles/ablation_mtu_nagle.dir/ablation_mtu_nagle.cc.o.d"
  "ablation_mtu_nagle"
  "ablation_mtu_nagle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtu_nagle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
