# Empty compiler generated dependencies file for ablation_chunksize.
# This may be replaced when dependencies are built.
