file(REMOVE_RECURSE
  "CMakeFiles/ext_rdma_pushpull.dir/ext_rdma_pushpull.cc.o"
  "CMakeFiles/ext_rdma_pushpull.dir/ext_rdma_pushpull.cc.o.d"
  "ext_rdma_pushpull"
  "ext_rdma_pushpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rdma_pushpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
