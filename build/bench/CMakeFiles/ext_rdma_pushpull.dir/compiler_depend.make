# Empty compiler generated dependencies file for ext_rdma_pushpull.
# This may be replaced when dependencies are built.
