# Empty dependencies file for fig07_latency_guarantee.
# This may be replaced when dependencies are built.
