file(REMOVE_RECURSE
  "CMakeFiles/fig07_latency_guarantee.dir/fig07_latency_guarantee.cc.o"
  "CMakeFiles/fig07_latency_guarantee.dir/fig07_latency_guarantee.cc.o.d"
  "fig07_latency_guarantee"
  "fig07_latency_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
