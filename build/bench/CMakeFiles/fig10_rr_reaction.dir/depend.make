# Empty dependencies file for fig10_rr_reaction.
# This may be replaced when dependencies are built.
