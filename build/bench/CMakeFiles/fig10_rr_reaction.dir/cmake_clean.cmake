file(REMOVE_RECURSE
  "CMakeFiles/fig10_rr_reaction.dir/fig10_rr_reaction.cc.o"
  "CMakeFiles/fig10_rr_reaction.dir/fig10_rr_reaction.cc.o.d"
  "fig10_rr_reaction"
  "fig10_rr_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rr_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
