file(REMOVE_RECURSE
  "CMakeFiles/socket_edge_test.dir/sockets/socket_edge_test.cc.o"
  "CMakeFiles/socket_edge_test.dir/sockets/socket_edge_test.cc.o.d"
  "socket_edge_test"
  "socket_edge_test.pdb"
  "socket_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
