
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/series_test.cc" "tests/CMakeFiles/series_test.dir/harness/series_test.cc.o" "gcc" "tests/CMakeFiles/series_test.dir/harness/series_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sv_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/vizapp/CMakeFiles/sv_vizapp.dir/DependInfo.cmake"
  "/root/repo/build/src/datacutter/CMakeFiles/sv_datacutter.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/sv_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/sv_via.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpstack/CMakeFiles/sv_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
