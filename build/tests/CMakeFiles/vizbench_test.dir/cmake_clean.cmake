file(REMOVE_RECURSE
  "CMakeFiles/vizbench_test.dir/harness/vizbench_test.cc.o"
  "CMakeFiles/vizbench_test.dir/harness/vizbench_test.cc.o.d"
  "vizbench_test"
  "vizbench_test.pdb"
  "vizbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
