# Empty dependencies file for vizbench_test.
# This may be replaced when dependencies are built.
