file(REMOVE_RECURSE
  "CMakeFiles/via_test.dir/via/via_test.cc.o"
  "CMakeFiles/via_test.dir/via/via_test.cc.o.d"
  "via_test"
  "via_test.pdb"
  "via_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
