# Empty dependencies file for via_test.
# This may be replaced when dependencies are built.
