file(REMOVE_RECURSE
  "CMakeFiles/fabric_property_test.dir/net/fabric_property_test.cc.o"
  "CMakeFiles/fabric_property_test.dir/net/fabric_property_test.cc.o.d"
  "fabric_property_test"
  "fabric_property_test.pdb"
  "fabric_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
