# Empty compiler generated dependencies file for fabric_property_test.
# This may be replaced when dependencies are built.
