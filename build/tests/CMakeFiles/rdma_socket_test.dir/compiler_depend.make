# Empty compiler generated dependencies file for rdma_socket_test.
# This may be replaced when dependencies are built.
