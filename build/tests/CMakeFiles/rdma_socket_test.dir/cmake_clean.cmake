file(REMOVE_RECURSE
  "CMakeFiles/rdma_socket_test.dir/sockets/rdma_socket_test.cc.o"
  "CMakeFiles/rdma_socket_test.dir/sockets/rdma_socket_test.cc.o.d"
  "rdma_socket_test"
  "rdma_socket_test.pdb"
  "rdma_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
