# Empty dependencies file for dc_runtime_test.
# This may be replaced when dependencies are built.
