file(REMOVE_RECURSE
  "CMakeFiles/dc_runtime_test.dir/datacutter/runtime_test.cc.o"
  "CMakeFiles/dc_runtime_test.dir/datacutter/runtime_test.cc.o.d"
  "dc_runtime_test"
  "dc_runtime_test.pdb"
  "dc_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
