file(REMOVE_RECURSE
  "CMakeFiles/vizapp_test.dir/vizapp/vizapp_test.cc.o"
  "CMakeFiles/vizapp_test.dir/vizapp/vizapp_test.cc.o.d"
  "vizapp_test"
  "vizapp_test.pdb"
  "vizapp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
