# Empty compiler generated dependencies file for vizapp_test.
# This may be replaced when dependencies are built.
