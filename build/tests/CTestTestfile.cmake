# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/units_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_property_test[1]_include.cmake")
include("/root/repo/build/tests/via_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/socket_test[1]_include.cmake")
include("/root/repo/build/tests/socket_edge_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_socket_test[1]_include.cmake")
include("/root/repo/build/tests/dc_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/dc_runtime_edge_test[1]_include.cmake")
include("/root/repo/build/tests/vizapp_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/series_test[1]_include.cmake")
include("/root/repo/build/tests/vizbench_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
