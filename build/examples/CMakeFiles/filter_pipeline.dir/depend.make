# Empty dependencies file for filter_pipeline.
# This may be replaced when dependencies are built.
