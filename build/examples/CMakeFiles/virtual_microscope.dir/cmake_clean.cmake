file(REMOVE_RECURSE
  "CMakeFiles/virtual_microscope.dir/virtual_microscope.cpp.o"
  "CMakeFiles/virtual_microscope.dir/virtual_microscope.cpp.o.d"
  "virtual_microscope"
  "virtual_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
