file(REMOVE_RECURSE
  "CMakeFiles/sv_net.dir/calibration.cc.o"
  "CMakeFiles/sv_net.dir/calibration.cc.o.d"
  "CMakeFiles/sv_net.dir/cluster.cc.o"
  "CMakeFiles/sv_net.dir/cluster.cc.o.d"
  "CMakeFiles/sv_net.dir/cost_model.cc.o"
  "CMakeFiles/sv_net.dir/cost_model.cc.o.d"
  "CMakeFiles/sv_net.dir/fabric.cc.o"
  "CMakeFiles/sv_net.dir/fabric.cc.o.d"
  "libsv_net.a"
  "libsv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
