
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/calibration.cc" "src/net/CMakeFiles/sv_net.dir/calibration.cc.o" "gcc" "src/net/CMakeFiles/sv_net.dir/calibration.cc.o.d"
  "/root/repo/src/net/cluster.cc" "src/net/CMakeFiles/sv_net.dir/cluster.cc.o" "gcc" "src/net/CMakeFiles/sv_net.dir/cluster.cc.o.d"
  "/root/repo/src/net/cost_model.cc" "src/net/CMakeFiles/sv_net.dir/cost_model.cc.o" "gcc" "src/net/CMakeFiles/sv_net.dir/cost_model.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/net/CMakeFiles/sv_net.dir/fabric.cc.o" "gcc" "src/net/CMakeFiles/sv_net.dir/fabric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
