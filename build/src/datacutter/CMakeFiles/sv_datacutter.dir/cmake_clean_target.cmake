file(REMOVE_RECURSE
  "libsv_datacutter.a"
)
