file(REMOVE_RECURSE
  "CMakeFiles/sv_datacutter.dir/group.cc.o"
  "CMakeFiles/sv_datacutter.dir/group.cc.o.d"
  "CMakeFiles/sv_datacutter.dir/local_socket.cc.o"
  "CMakeFiles/sv_datacutter.dir/local_socket.cc.o.d"
  "CMakeFiles/sv_datacutter.dir/runtime.cc.o"
  "CMakeFiles/sv_datacutter.dir/runtime.cc.o.d"
  "libsv_datacutter.a"
  "libsv_datacutter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_datacutter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
