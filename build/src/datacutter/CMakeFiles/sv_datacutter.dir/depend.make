# Empty dependencies file for sv_datacutter.
# This may be replaced when dependencies are built.
