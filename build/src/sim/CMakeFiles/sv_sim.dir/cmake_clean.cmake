file(REMOVE_RECURSE
  "CMakeFiles/sv_sim.dir/engine.cc.o"
  "CMakeFiles/sv_sim.dir/engine.cc.o.d"
  "CMakeFiles/sv_sim.dir/process.cc.o"
  "CMakeFiles/sv_sim.dir/process.cc.o.d"
  "CMakeFiles/sv_sim.dir/resource.cc.o"
  "CMakeFiles/sv_sim.dir/resource.cc.o.d"
  "CMakeFiles/sv_sim.dir/simulation.cc.o"
  "CMakeFiles/sv_sim.dir/simulation.cc.o.d"
  "CMakeFiles/sv_sim.dir/sync.cc.o"
  "CMakeFiles/sv_sim.dir/sync.cc.o.d"
  "libsv_sim.a"
  "libsv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
