
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sockets/factory.cc" "src/sockets/CMakeFiles/sv_sockets.dir/factory.cc.o" "gcc" "src/sockets/CMakeFiles/sv_sockets.dir/factory.cc.o.d"
  "/root/repo/src/sockets/fast_socket.cc" "src/sockets/CMakeFiles/sv_sockets.dir/fast_socket.cc.o" "gcc" "src/sockets/CMakeFiles/sv_sockets.dir/fast_socket.cc.o.d"
  "/root/repo/src/sockets/rdma_socket.cc" "src/sockets/CMakeFiles/sv_sockets.dir/rdma_socket.cc.o" "gcc" "src/sockets/CMakeFiles/sv_sockets.dir/rdma_socket.cc.o.d"
  "/root/repo/src/sockets/tcp_socket.cc" "src/sockets/CMakeFiles/sv_sockets.dir/tcp_socket.cc.o" "gcc" "src/sockets/CMakeFiles/sv_sockets.dir/tcp_socket.cc.o.d"
  "/root/repo/src/sockets/via_socket.cc" "src/sockets/CMakeFiles/sv_sockets.dir/via_socket.cc.o" "gcc" "src/sockets/CMakeFiles/sv_sockets.dir/via_socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/via/CMakeFiles/sv_via.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpstack/CMakeFiles/sv_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
