# Empty dependencies file for sv_sockets.
# This may be replaced when dependencies are built.
