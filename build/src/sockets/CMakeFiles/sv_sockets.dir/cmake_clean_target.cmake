file(REMOVE_RECURSE
  "libsv_sockets.a"
)
