file(REMOVE_RECURSE
  "CMakeFiles/sv_sockets.dir/factory.cc.o"
  "CMakeFiles/sv_sockets.dir/factory.cc.o.d"
  "CMakeFiles/sv_sockets.dir/fast_socket.cc.o"
  "CMakeFiles/sv_sockets.dir/fast_socket.cc.o.d"
  "CMakeFiles/sv_sockets.dir/rdma_socket.cc.o"
  "CMakeFiles/sv_sockets.dir/rdma_socket.cc.o.d"
  "CMakeFiles/sv_sockets.dir/tcp_socket.cc.o"
  "CMakeFiles/sv_sockets.dir/tcp_socket.cc.o.d"
  "CMakeFiles/sv_sockets.dir/via_socket.cc.o"
  "CMakeFiles/sv_sockets.dir/via_socket.cc.o.d"
  "libsv_sockets.a"
  "libsv_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
