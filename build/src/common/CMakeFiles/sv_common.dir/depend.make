# Empty dependencies file for sv_common.
# This may be replaced when dependencies are built.
