file(REMOVE_RECURSE
  "CMakeFiles/sv_common.dir/cli.cc.o"
  "CMakeFiles/sv_common.dir/cli.cc.o.d"
  "CMakeFiles/sv_common.dir/log.cc.o"
  "CMakeFiles/sv_common.dir/log.cc.o.d"
  "CMakeFiles/sv_common.dir/rng.cc.o"
  "CMakeFiles/sv_common.dir/rng.cc.o.d"
  "CMakeFiles/sv_common.dir/stats.cc.o"
  "CMakeFiles/sv_common.dir/stats.cc.o.d"
  "CMakeFiles/sv_common.dir/table.cc.o"
  "CMakeFiles/sv_common.dir/table.cc.o.d"
  "CMakeFiles/sv_common.dir/units.cc.o"
  "CMakeFiles/sv_common.dir/units.cc.o.d"
  "libsv_common.a"
  "libsv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
