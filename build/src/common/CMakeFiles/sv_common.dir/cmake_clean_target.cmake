file(REMOVE_RECURSE
  "libsv_common.a"
)
