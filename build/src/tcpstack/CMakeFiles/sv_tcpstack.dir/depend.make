# Empty dependencies file for sv_tcpstack.
# This may be replaced when dependencies are built.
