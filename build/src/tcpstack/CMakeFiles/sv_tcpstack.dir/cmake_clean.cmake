file(REMOVE_RECURSE
  "CMakeFiles/sv_tcpstack.dir/tcp.cc.o"
  "CMakeFiles/sv_tcpstack.dir/tcp.cc.o.d"
  "libsv_tcpstack.a"
  "libsv_tcpstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_tcpstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
