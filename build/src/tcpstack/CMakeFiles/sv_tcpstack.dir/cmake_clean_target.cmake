file(REMOVE_RECURSE
  "libsv_tcpstack.a"
)
