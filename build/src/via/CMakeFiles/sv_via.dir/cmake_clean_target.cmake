file(REMOVE_RECURSE
  "libsv_via.a"
)
