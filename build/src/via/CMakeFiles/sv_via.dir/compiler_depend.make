# Empty compiler generated dependencies file for sv_via.
# This may be replaced when dependencies are built.
