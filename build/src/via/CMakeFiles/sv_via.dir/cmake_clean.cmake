file(REMOVE_RECURSE
  "CMakeFiles/sv_via.dir/via.cc.o"
  "CMakeFiles/sv_via.dir/via.cc.o.d"
  "libsv_via.a"
  "libsv_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
