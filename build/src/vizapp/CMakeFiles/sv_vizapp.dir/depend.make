# Empty dependencies file for sv_vizapp.
# This may be replaced when dependencies are built.
