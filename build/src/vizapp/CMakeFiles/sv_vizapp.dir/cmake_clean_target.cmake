file(REMOVE_RECURSE
  "libsv_vizapp.a"
)
