file(REMOVE_RECURSE
  "CMakeFiles/sv_vizapp.dir/filters.cc.o"
  "CMakeFiles/sv_vizapp.dir/filters.cc.o.d"
  "CMakeFiles/sv_vizapp.dir/loadbalance.cc.o"
  "CMakeFiles/sv_vizapp.dir/loadbalance.cc.o.d"
  "CMakeFiles/sv_vizapp.dir/policy.cc.o"
  "CMakeFiles/sv_vizapp.dir/policy.cc.o.d"
  "CMakeFiles/sv_vizapp.dir/server.cc.o"
  "CMakeFiles/sv_vizapp.dir/server.cc.o.d"
  "libsv_vizapp.a"
  "libsv_vizapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_vizapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
