file(REMOVE_RECURSE
  "CMakeFiles/sv_harness.dir/series.cc.o"
  "CMakeFiles/sv_harness.dir/series.cc.o.d"
  "CMakeFiles/sv_harness.dir/vizbench.cc.o"
  "CMakeFiles/sv_harness.dir/vizbench.cc.o.d"
  "libsv_harness.a"
  "libsv_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
