file(REMOVE_RECURSE
  "libsv_harness.a"
)
