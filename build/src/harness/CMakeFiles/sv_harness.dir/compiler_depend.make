# Empty compiler generated dependencies file for sv_harness.
# This may be replaced when dependencies are built.
