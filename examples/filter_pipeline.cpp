// Writing your own DataCutter filters: a checksummed data-reduction
// pipeline with real payload bytes.
//
// reader (2 copies) --> reducer (2 copies) --> collector
//
// The reader generates deterministic payload bytes; the reducer computes a
// running FNV-1a digest per buffer and forwards a reduced record; the
// collector folds the digests. The example verifies end-to-end payload
// integrity through the transport and prints the pipeline timeline —
// demonstrating filters, transparent copies, units of work, and the
// demand-driven stream.
//
//   $ ./filter_pipeline
#include <cstdio>
#include <numeric>
#include <optional>

#include "datacutter/runtime.h"
#include "mem/buffer_pool.h"

using namespace sv;
using namespace sv::literals;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const sv::mem::Payload& data) {
  for (std::uint64_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<std::uint64_t>(data.read_byte(i));
    h *= kFnvPrime;
  }
  return h;
}

/// Source: emits `buffers` buffers of deterministic bytes per unit of work.
class Reader : public dc::Filter {
 public:
  Reader(int buffers, std::size_t bytes) : buffers_(buffers), bytes_(bytes) {}

  void init(dc::FilterContext& ctx) override {
    // Pooled payload storage: buffers are re-leased as downstream copies
    // release them, so steady state allocates nothing (mem/buffer_pool.h).
    mem::BufferPool::Options opts;
    opts.label = "example.reader" + std::to_string(ctx.copy_index());
    pool_.emplace(&ctx.sim().obs(), opts);
  }

  void process(dc::FilterContext& ctx) override {
    for (int i = 0; i < buffers_; ++i) {
      // Each copy reads its own shard (interleaved).
      if (static_cast<std::size_t>(i) % 2 != ctx.copy_index()) continue;
      mem::PooledBuffer lease = pool_->acquire(bytes_);
      std::byte* dst = lease.data();
      for (std::size_t j = 0; j < bytes_; ++j) {
        dst[j] =
            static_cast<std::byte>((static_cast<std::size_t>(i) * 131 + j) &
                                   0xff);
      }
      dc::DataBuffer b;
      b.bytes = bytes_;
      b.tag = static_cast<std::uint64_t>(i);
      b.payload = std::move(lease).seal();
      ctx.compute(PerByteCost::nanos_per_byte(2).for_bytes(bytes_));  // I/O
      ctx.write(std::move(b));
    }
  }

 private:
  int buffers_;
  std::size_t bytes_;
  std::optional<mem::BufferPool> pool_;
};

/// Middle stage: digests each payload and forwards a small record.
class Reducer : public dc::Filter {
 public:
  void process(dc::FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      ctx.compute(PerByteCost::nanos_per_byte(10).for_bytes(b->bytes));
      const std::uint64_t digest =
          b->materialized() ? fnv1a(kFnvOffset, b->payload) : 0;
      dc::DataBuffer out;
      out.bytes = 16;  // digest record
      out.tag = b->tag;
      out.meta = digest;
      ctx.write(std::move(out));
    }
  }
};

/// Sink: folds the digests; exposes the result for verification.
class Collector : public dc::Filter {
 public:
  explicit Collector(std::uint64_t* folded) : folded_(folded) {}
  void process(dc::FilterContext& ctx) override {
    int got = 0;
    while (auto b = ctx.read()) {
      *folded_ ^= std::any_cast<std::uint64_t>(b->meta);
      ++got;
    }
    seen_ += got;
    if (got > 0) {  // the final call sees only end-of-stream
      std::printf("  [%.3f ms] collector: unit of work %llu done (%d records"
                  " so far)\n",
                  ctx.sim().now().ms(),
                  static_cast<unsigned long long>(ctx.uow().id), seen_);
    }
  }

 private:
  std::uint64_t* folded_;
  int seen_ = 0;
};

constexpr int kBuffers = 8;
constexpr std::size_t kBytes = 64 * 1024;

}  // namespace

int main() {
  sim::Simulation s;
  net::Cluster cluster(&s, 5);
  sockets::SocketFactory factory(&s, &cluster);

  std::uint64_t folded = 0;
  dc::FilterGroup group;
  group.add_filter("reader",
                   [] { return std::make_unique<Reader>(kBuffers, kBytes); },
                   {0, 1});
  group.add_filter("reducer", [] { return std::make_unique<Reducer>(); },
                   {2, 3});
  group.add_filter("collector",
                   [&folded] { return std::make_unique<Collector>(&folded); },
                   {4});
  group.add_stream("reader", "reducer", dc::SchedPolicy::kDemandDriven);
  group.add_stream("reducer", "collector", dc::SchedPolicy::kDemandDriven);

  dc::RuntimeOptions opts;
  opts.transport = net::Transport::kSocketVia;
  dc::Runtime rt(&s, &cluster, &factory, std::move(group), opts);
  rt.start();
  std::printf("running 3 units of work through reader(x2) -> reducer(x2) -> "
              "collector:\n");
  for (std::uint64_t q = 1; q <= 3; ++q) rt.submit(dc::Uow{q, {}});
  rt.close_input();
  s.run();

  // Recompute the expected folded digest locally.
  std::uint64_t expected = 0;
  for (int q = 0; q < 3; ++q) {
    for (int i = 0; i < kBuffers; ++i) {
      auto payload = std::make_shared<std::vector<std::byte>>(kBytes);
      for (std::size_t j = 0; j < kBytes; ++j) {
        (*payload)[j] = static_cast<std::byte>(
            (static_cast<std::size_t>(i) * 131 + j) & 0xff);
      }
      expected ^= fnv1a(kFnvOffset, mem::Payload::wrap(std::move(payload)));
    }
  }
  std::printf("\nfolded digest: %016llx (%s)\n",
              static_cast<unsigned long long>(folded),
              folded == expected ? "matches local recomputation"
                                 : "MISMATCH — payload corrupted!");
  std::printf("simulated wall time: %.3f ms; distribution reader->reducer: ",
              s.now().ms());
  for (const auto& row : rt.distribution(0)) {
    for (auto v : row) std::printf("%llu ", static_cast<unsigned long long>(v));
  }
  std::printf("\n");
  return folded == expected ? 0 : 1;
}
