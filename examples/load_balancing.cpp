// Heterogeneous-cluster load balancing: Round-Robin vs Demand-Driven.
//
// One balancer distributes a 16 MB dataset to three workers, one of which
// runs 4x slower. The example contrasts the two DataCutter scheduling
// policies and the two transports' pipelining block sizes (Section 5.2.3).
//
//   $ ./load_balancing
#include <cstdio>

#include "vizapp/loadbalance.h"

using namespace sv;

namespace {

void report(const char* label, const viz::LoadBalanceResult& r) {
  std::printf("%-28s exec %8.1f ms   blocks/worker [%llu %llu %llu]   "
              "slow-node service %7.1f us\n",
              label, r.exec_time.ms(),
              static_cast<unsigned long long>(r.blocks_per_worker[0]),
              static_cast<unsigned long long>(r.blocks_per_worker[1]),
              static_cast<unsigned long long>(r.blocks_per_worker[2]),
              r.slow_service_times.empty()
                  ? 0.0
                  : r.slow_service_times.mean() / 1e3);
}

}  // namespace

int main() {
  viz::LoadBalanceConfig base;
  base.total_bytes = 16 * 1024 * 1024;
  base.workers = 3;
  base.slow_worker = 1;
  base.slow_factor = 4;
  base.compute = PerByteCost::nanos_per_byte(60);

  std::printf("one worker is 4x slower; 16 MB of blocks to distribute\n\n");
  for (auto transport :
       {net::Transport::kSocketVia, net::Transport::kKernelTcp}) {
    viz::LoadBalanceConfig cfg = base;
    cfg.transport = transport;
    // The perfect-pipelining block for each substrate (paper Sec. 5.2.3).
    cfg.block_bytes =
        transport == net::Transport::kSocketVia ? 2 * 1024 : 16 * 1024;
    std::printf("--- %s (block %llu B) ---\n",
                net::transport_name(transport),
                static_cast<unsigned long long>(cfg.block_bytes));
    cfg.policy = dc::SchedPolicy::kRoundRobin;
    report("Round-Robin", viz::run_load_balance(cfg));
    cfg.policy = dc::SchedPolicy::kDemandDriven;
    report("Demand-Driven", viz::run_load_balance(cfg));
    std::printf("\n");
  }
  std::printf(
      "Round-Robin keeps feeding the slow worker; Demand-Driven routes\n"
      "work to whoever acknowledges fastest. Smaller SocketVIA blocks both\n"
      "shrink the balancer's blind window after a mistake and let DD\n"
      "rebalance at finer granularity.\n");
  return 0;
}
