// Virtual Microscope session: the paper's motivating application.
//
// A pathologist pans and zooms over a 16 MB digitized slide served by the
// 4-stage visualization pipeline (3 data repositories -> clip -> subsample
// -> viewer). The example runs the same interactive session twice — with
// the dataset chunked for TCP's characteristics and repartitioned for
// SocketVIA's — and prints each query's response time.
//
//   $ ./virtual_microscope
#include <cstdio>
#include <vector>

#include "net/cluster.h"
#include "vizapp/policy.h"
#include "vizapp/server.h"

using namespace sv;
using namespace sv::literals;

namespace {

struct SessionResult {
  std::vector<std::pair<const char*, double>> timings;  // (label, ms)
};

SessionResult run_session(net::Transport transport,
                          std::uint64_t block_bytes) {
  sim::Simulation s;
  net::Cluster cluster(&s, 16);
  sockets::SocketFactory factory(&s, &cluster);

  viz::VizConfig cfg;
  cfg.transport = transport;
  cfg.image_bytes = 16 * 1024 * 1024;
  cfg.block_bytes = block_bytes;
  cfg.stage_compute = viz::virtual_microscope_compute();
  cfg.viz_compute = viz::virtual_microscope_compute();
  viz::VizApp app(&s, &cluster, &factory, cfg);
  app.start();

  SessionResult result;
  s.spawn("pathologist", [&] {
    auto timed = [&](const char* label, const viz::Query& q) {
      const SimTime t0 = s.now();
      app.submit(q);
      app.wait_done();
      result.timings.emplace_back(label, (s.now() - t0).ms());
    };
    timed("load slide (complete update)",
          viz::Query{viz::QueryType::kComplete, 0, 4});
    timed("pan right (partial update)",
          viz::Query{viz::QueryType::kPartial, 3, 4});
    timed("pan down (partial update)",
          viz::Query{viz::QueryType::kPartial, 9, 4});
    timed("zoom to region (4 chunks)",
          viz::Query{viz::QueryType::kZoom, 12, 4});
    timed("jump to new field (complete update)",
          viz::Query{viz::QueryType::kComplete, 0, 4});
    app.close();
  });
  s.run();
  return result;
}

}  // namespace

int main() {
  const std::uint64_t image = 16 * 1024 * 1024;
  // Chunk sizes a deployer would pick for a 3-updates/sec target.
  const net::CostModel tcp_model{net::CalibrationProfile::kernel_tcp()};
  const net::CostModel svia_model{net::CalibrationProfile::socket_via()};
  const auto compute = viz::virtual_microscope_compute();
  const auto tcp_block = viz::block_for_update_rate_with_compute(
      tcp_model, 2.5, image, compute);
  const auto svia_block = viz::block_for_update_rate_with_compute(
      svia_model, 2.5, image, compute);

  std::printf("block sizes for a 2.5 updates/sec target: TCP %llu B, "
              "SocketVIA %llu B\n\n",
              static_cast<unsigned long long>(tcp_block),
              static_cast<unsigned long long>(svia_block));

  const auto tcp = run_session(net::Transport::kKernelTcp, tcp_block);
  const auto svia = run_session(net::Transport::kSocketVia, svia_block);

  std::printf("%-38s %12s %16s\n", "query", "TCP (ms)", "SocketVIA (ms)");
  for (std::size_t i = 0; i < tcp.timings.size(); ++i) {
    std::printf("%-38s %12.2f %16.2f\n", tcp.timings[i].first,
                tcp.timings[i].second, svia.timings[i].second);
  }
  std::printf("\nPartial updates — the interactive feel of the microscope —\n"
              "benefit most: smaller feasible chunks cut both transfer and\n"
              "queueing time.\n");
  return 0;
}
