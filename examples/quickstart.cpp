// Quickstart: the sockets substrate in ~60 lines.
//
// Builds a two-node simulated cluster, connects the nodes with kernel TCP
// and with SocketVIA, and measures what the paper's Figure 4 measures:
// small-message latency and large-message bandwidth. The application code
// is identical for both transports — that is SocketVIA's point.
//
//   $ ./quickstart
#include <cstdio>

#include "net/cluster.h"
#include "sockets/factory.h"

using namespace sv;
using namespace sv::literals;

namespace {

struct Measurement {
  double latency_us;
  double bandwidth_mbps;
};

Measurement measure(net::Transport transport) {
  sim::Simulation s;                       // the simulated world
  net::Cluster cluster(&s, 2);             // two dual-CPU nodes
  sockets::SocketFactory factory(&s, &cluster);

  Measurement out{};
  s.spawn("app", [&] {
    auto [a, b] = factory.connect(0, 1, transport);

    // Echo server on node 1.
    s.spawn("echo", [&s, b = std::move(b)]() mutable {
      while (auto m = b->recv()) b->send(*m);
    });

    // Latency: 100 x 4-byte ping-pong.
    SimTime t0 = s.now();
    for (int i = 0; i < 100; ++i) {
      a->send(net::Message{.bytes = 4});
      a->recv();
    }
    out.latency_us = (s.now() - t0).us() / 200.0;  // one-way

    // Bandwidth: 64 x 64 KB echoed messages.
    t0 = s.now();
    const std::uint64_t kMsg = 64 * 1024;
    for (int i = 0; i < 64; ++i) {
      a->send(net::Message{.bytes = kMsg});
      a->recv();
    }
    out.bandwidth_mbps = throughput_mbps(2 * 64 * kMsg, s.now() - t0);
    a->close_send();
  });
  s.run();
  return out;
}

}  // namespace

int main() {
  const Measurement tcp = measure(net::Transport::kKernelTcp);
  const Measurement svia = measure(net::Transport::kSocketVia);
  std::printf("transport   latency (us)   bandwidth (Mbps)\n");
  std::printf("TCP         %8.2f      %10.1f\n", tcp.latency_us,
              tcp.bandwidth_mbps);
  std::printf("SocketVIA   %8.2f      %10.1f\n", svia.latency_us,
              svia.bandwidth_mbps);
  std::printf("\nSocketVIA: %.1fx lower latency, %.2fx higher bandwidth —\n"
              "with zero application changes (both runs use the same code).\n",
              tcp.latency_us / svia.latency_us,
              svia.bandwidth_mbps / tcp.bandwidth_mbps);
  return 0;
}
