#include "control/token_bucket.h"

#include "common/check.h"

namespace sv::control {

namespace {
constexpr std::uint64_t kNsPerSec = 1'000'000'000ULL;
}  // namespace

TokenBucket::TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst)
    : rate_(rate_per_sec), burst_(burst), tokens_(burst) {
  SV_ASSERT(burst_ > 0, "TokenBucket: burst must be positive");
}

void TokenBucket::set_rate(std::uint64_t rate_per_sec) {
  rate_ = rate_per_sec;
  carry_ = 0;
}

void TokenBucket::refill(SimTime now) {
  SV_ASSERT(now >= last_, "TokenBucket: time went backwards");
  const auto elapsed_ns = static_cast<std::uint64_t>((now - last_).ns());
  last_ = now;
  if (elapsed_ns == 0 || rate_ == 0) return;
  const std::uint64_t total = rate_ * elapsed_ns + carry_;
  const std::uint64_t add = total / kNsPerSec;
  carry_ = total % kNsPerSec;
  tokens_ = tokens_ + add > burst_ || tokens_ + add < tokens_
                ? burst_
                : tokens_ + add;
  if (tokens_ == burst_) carry_ = 0;  // a full bucket holds no remainder
}

bool TokenBucket::try_take(SimTime now) {
  refill(now);
  if (tokens_ == 0) return false;
  --tokens_;
  return true;
}

}  // namespace sv::control
