// Deterministic token bucket for admission control (DESIGN.md §15).
//
// Refill is integer-only: tokens accrue at `rate_per_sec` per simulated
// second with a nanosecond-remainder carry, so the token level at any sim
// time is an exact function of (rate history, take history) — no floating
// point, no wall clock. Two replays that present the same sequence of
// (try_take time, set_rate) calls see bit-identical verdicts, which is
// what lets the SLO controller's admission decisions live inside the
// replayed event schedule.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace sv::control {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per simulated second, capped at `burst`
  /// tokens. Starts full.
  TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst);

  /// Changes the refill rate. The current token level is kept; the
  /// sub-token remainder carry resets so the change itself is a pure
  /// function of the call point.
  void set_rate(std::uint64_t rate_per_sec);

  /// Refills up to `now`, then takes one token. False = throttled.
  /// Call times must be non-decreasing (sim-time discipline).
  bool try_take(SimTime now);

  [[nodiscard]] std::uint64_t rate_per_sec() const { return rate_; }
  [[nodiscard]] std::uint64_t burst() const { return burst_; }
  /// Token level as of the last try_take()/set_rate().
  [[nodiscard]] std::uint64_t tokens() const { return tokens_; }

 private:
  void refill(SimTime now);

  std::uint64_t rate_;
  std::uint64_t burst_;
  std::uint64_t tokens_;
  SimTime last_{};
  /// rate * elapsed_ns remainder modulo 1e9, carried between refills.
  std::uint64_t carry_ = 0;
};

}  // namespace sv::control
