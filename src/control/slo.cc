#include "control/slo.h"

#include <cstdio>

#include "common/check.h"

namespace sv::control {

// ---------------------------------------------------------------------------
// AdmissionControl

AdmissionControl::AdmissionControl(std::vector<ClassSpec> specs) {
  SV_ASSERT(!specs.empty(), "AdmissionControl: need at least one class");
  classes_.reserve(specs.size());
  for (ClassSpec& spec : specs) {
    SV_ASSERT(spec.rate_per_sec > 0,
              "AdmissionControl: class rate must be positive");
    TokenBucket bucket(spec.rate_per_sec, spec.burst);
    classes_.push_back(ClassState{std::move(spec), bucket});
  }
}

bool AdmissionControl::admit(std::size_t cls, SimTime now) {
  SV_ASSERT(cls < classes_.size(), "AdmissionControl: class out of range");
  ClassState& state = classes_[cls];
  // Full admission and non-sheddable classes bypass the buckets entirely,
  // so an uncontrolled run (permille stays 1000) takes the historical
  // code path: no bucket state advances, no verdict ever differs.
  if (!state.spec.sheddable || permille_ >= 1000) return true;
  return state.bucket.try_take(now);
}

void AdmissionControl::set_admit_permille(std::uint32_t permille) {
  permille_ = permille;
  for (ClassState& state : classes_) {
    if (!state.spec.sheddable) continue;
    const std::uint64_t scaled =
        state.spec.rate_per_sec * static_cast<std::uint64_t>(permille) / 1000;
    state.bucket.set_rate(scaled > 0 ? scaled : 1);
  }
}

// ---------------------------------------------------------------------------
// Controller

Controller::Controller(obs::Hub* hub, ControllerConfig cfg,
                       Actuators actuators)
    : hub_(hub),
      cfg_(cfg),
      acts_(std::move(actuators)),
      chunk_bytes_(cfg.chunk_max_bytes),
      // Eligible to act at the very first window: backdate the cooldown.
      last_cluster_action_(SimTime::zero() - cfg.cooldown) {
  SV_ASSERT(hub_ != nullptr, "Controller: hub required");
  SV_ASSERT(cfg_.band_high_pct >= cfg_.band_low_pct,
            "Controller: hysteresis band inverted");
  SV_ASSERT(cfg_.violate_windows > 0 && cfg_.recover_windows > 0,
            "Controller: window streaks must be positive");
  SV_ASSERT(cfg_.chunk_max_bytes == 0 ||
                cfg_.chunk_min_bytes <= cfg_.chunk_max_bytes,
            "Controller: chunk bounds inverted");
  obs::Registry& reg = hub_->registry;
  c_windows_ = &reg.counter("slo.windows");
  c_actions_ = &reg.counter("slo.actions");
  c_throttles_ = &reg.counter("slo.throttle_steps");
  c_releases_ = &reg.counter("slo.release_steps");
  c_chunk_shrinks_ = &reg.counter("slo.chunk_shrinks");
  c_chunk_grows_ = &reg.counter("slo.chunk_grows");
  c_demotions_ = &reg.counter("slo.demotions");
  c_promotions_ = &reg.counter("slo.promotions");
  g_admit_ = &reg.gauge("slo.admit_permille");
  g_chunk_ = &reg.gauge("slo.chunk_bytes");
  g_p99_ = &reg.gauge("slo.cluster_p99_ns");
  g_admit_->set(static_cast<std::int64_t>(admit_permille_));
  g_chunk_->set(static_cast<std::int64_t>(chunk_bytes_));
}

void Controller::watch_node(int node) {
  NodeState state;
  state.node = node;
  nodes_.push_back(std::move(state));
}

const char* Controller::kind_name(Action::Kind kind) {
  switch (kind) {
    case Action::Kind::kThrottle:
      return "throttle";
    case Action::Kind::kRelease:
      return "release";
    case Action::Kind::kChunkShrink:
      return "chunk_shrink";
    case Action::Kind::kChunkGrow:
      return "chunk_grow";
    case Action::Kind::kDemote:
      return "demote";
    case Action::Kind::kPromote:
      return "promote";
  }
  return "?";
}

bool Controller::is_demoted(int node) const {
  for (const NodeState& state : nodes_) {
    if (state.node == node) return state.demoted;
  }
  return false;
}

int Controller::demoted_count() const {
  int n = 0;
  for (const NodeState& state : nodes_) n += state.demoted ? 1 : 0;
  return n;
}

std::string Controller::action_log() const {
  std::string out;
  char line[96];
  for (const Action& a : actions_) {
    std::snprintf(line, sizeof line, "%lld %s %d %llu\n",
                  static_cast<long long>(a.at.ns()), kind_name(a.kind),
                  a.node, static_cast<unsigned long long>(a.value));
    out += line;
  }
  return out;
}

void Controller::record(SimTime at, Action::Kind kind, int node,
                        std::uint64_t value) {
  actions_.push_back(Action{at, kind, node, value});
  c_actions_->inc();
  hub_->tracer.instant(at, node, "slo", kind_name(kind), value);
}

void Controller::on_snapshot(const obs::Snapshot& snap) {
  c_windows_->inc();

  // Offered-load guard for silence detection: when the workload exports
  // `slo.offered`, a window with zero arrivals (a lull, or the end-of-run
  // drain) must not read as node stalls.
  if (!offered_.bound()) {
    offered_.bind(snap.registry->find_counter("slo.offered"));
  }
  const bool load_active = !offered_.bound() || offered_.advance() > 0;

  // Advance every node window (lazy-binding histograms that appeared since
  // the last publish) and merge into a cluster-wide window.
  obs::HistogramWindow cluster;
  for (NodeState& state : nodes_) {
    if (!state.latency.bound()) {
      char name[64];
      std::snprintf(name, sizeof name, "slo.update_latency_ns{node=node%d}",
                    state.node);
      const obs::Histogram* hist = snap.registry->find_histogram(name);
      if (hist != nullptr) state.latency.bind(hist);
    }
    state.lifetime_samples += state.latency.advance();
    cluster.merge(state.latency);
  }

  last_p99_ns_ = cluster.percentile(99);
  g_p99_->set(last_p99_ns_);

  // Per-node decisions first so the cluster ladder sees stable membership.
  step_demotions(snap.at, cluster.count(), load_active);
  step_cluster(snap.at, cluster);
}

void Controller::step_demotions(SimTime at, std::uint64_t cluster_count,
                                bool load_active) {
  if (cfg_.demote_windows <= 0) return;
  const std::int64_t node_limit =
      cfg_.targets.p99_update_latency.ns() * cfg_.demote_latency_pct / 100;
  const bool cluster_active =
      load_active && cluster_count >= cfg_.min_window_samples;
  for (NodeState& state : nodes_) {
    if (state.demoted) {
      // Probation: promote after demote_hold, regardless of the (empty,
      // traffic was shifted away) local window.
      if (at - state.demoted_at >= cfg_.demote_hold) {
        state.demoted = false;
        state.bad_windows = 0;
        c_promotions_->inc();
        record(at, Action::Kind::kPromote, state.node, 0);
        if (acts_.apply_promotion) acts_.apply_promotion(state.node);
      }
      continue;
    }
    const bool slow = state.latency.count() >= cfg_.min_window_samples &&
                      state.latency.percentile(99) > node_limit;
    // A node that has delivered before but produced zero samples while the
    // cluster is actively delivering is stalled, not idle.
    const bool silent = cfg_.demote_on_silence && cluster_active &&
                        state.lifetime_samples > 0 &&
                        state.latency.count() == 0;
    state.bad_windows = slow || silent ? state.bad_windows + 1 : 0;
    if (state.bad_windows >= cfg_.demote_windows &&
        demoted_count() < cfg_.max_demoted) {
      state.demoted = true;
      state.demoted_at = at;
      state.bad_windows = 0;
      c_demotions_->inc();
      record(at, Action::Kind::kDemote, state.node,
             static_cast<std::uint64_t>(
                 silent ? 0 : state.latency.percentile(99)));
      if (acts_.apply_demotion) acts_.apply_demotion(state.node);
    }
  }
}

void Controller::step_cluster(SimTime at, const obs::HistogramWindow& cluster) {
  // Hysteresis classification: above the high band counts toward
  // violation, below the low band toward recovery; the dead zone between
  // them (and thin windows) resets neither streak to avoid flapping on
  // boundary noise.
  const std::int64_t target = cfg_.targets.p99_update_latency.ns();
  const std::int64_t high = target * cfg_.band_high_pct / 100;
  const std::int64_t low = target * cfg_.band_low_pct / 100;
  if (cluster.count() < cfg_.min_window_samples) return;
  const std::int64_t p99 = cluster.percentile(99);
  if (p99 > high) {
    ++violate_streak_;
    healthy_streak_ = 0;
  } else if (p99 < low) {
    ++healthy_streak_;
    violate_streak_ = 0;
  }
  if (at - last_cluster_action_ < cfg_.cooldown) return;

  if (violate_streak_ >= cfg_.violate_windows) {
    // Escalation ladder: shed load first (cheapest to undo), then shrink
    // the DR chunk so each update pipelines in smaller frames.
    if (admit_permille_ > cfg_.min_admit_permille) {
      const std::uint32_t step = cfg_.throttle_step_permille;
      admit_permille_ = admit_permille_ > cfg_.min_admit_permille + step
                            ? admit_permille_ - step
                            : cfg_.min_admit_permille;
      g_admit_->set(static_cast<std::int64_t>(admit_permille_));
      c_throttles_->inc();
      record(at, Action::Kind::kThrottle, -1, admit_permille_);
      if (acts_.admission != nullptr) {
        acts_.admission->set_admit_permille(admit_permille_);
      }
    } else if (cfg_.chunk_max_bytes > 0 &&
               chunk_bytes_ > cfg_.chunk_min_bytes) {
      const std::uint64_t half = chunk_bytes_ / 2;
      chunk_bytes_ = half > cfg_.chunk_min_bytes ? half : cfg_.chunk_min_bytes;
      g_chunk_->set(static_cast<std::int64_t>(chunk_bytes_));
      c_chunk_shrinks_->inc();
      record(at, Action::Kind::kChunkShrink, -1, chunk_bytes_);
      if (acts_.apply_chunk_bytes) acts_.apply_chunk_bytes(chunk_bytes_);
    } else {
      return;  // ladder exhausted; keep the streak, no cooldown restart
    }
    violate_streak_ = 0;
    last_cluster_action_ = at;
    return;
  }

  if (healthy_streak_ >= cfg_.recover_windows) {
    // Unwind in reverse: regrow the chunk before releasing admission, so
    // freed capacity serves full-size updates before new load arrives.
    if (cfg_.chunk_max_bytes > 0 && chunk_bytes_ < cfg_.chunk_max_bytes) {
      const std::uint64_t twice = chunk_bytes_ * 2;
      chunk_bytes_ = twice < cfg_.chunk_max_bytes ? twice : cfg_.chunk_max_bytes;
      g_chunk_->set(static_cast<std::int64_t>(chunk_bytes_));
      c_chunk_grows_->inc();
      record(at, Action::Kind::kChunkGrow, -1, chunk_bytes_);
      if (acts_.apply_chunk_bytes) acts_.apply_chunk_bytes(chunk_bytes_);
    } else if (admit_permille_ < 1000) {
      const std::uint32_t step = cfg_.throttle_step_permille;
      admit_permille_ =
          admit_permille_ + step < 1000 ? admit_permille_ + step : 1000;
      g_admit_->set(static_cast<std::int64_t>(admit_permille_));
      c_releases_->inc();
      record(at, Action::Kind::kRelease, -1, admit_permille_);
      if (acts_.admission != nullptr) {
        acts_.admission->set_admit_permille(admit_permille_);
      }
    } else {
      return;  // fully recovered; nothing to unwind
    }
    healthy_streak_ = 0;
    last_cluster_action_ = at;
  }
}

}  // namespace sv::control
