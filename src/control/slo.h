// The SLO control plane (DESIGN.md §15).
//
// The paper's Figs 7/8 guarantee per-client update rate and latency
// *statically* — pick DR chunk size and replica placement offline, then
// hope. This module closes the loop at run time: a Controller subscribes
// to the live snapshot stream (obs/snapshot.h), watches per-node windowed
// update-latency histograms, and enforces a declarative latency SLO
// through three deterministic actuators:
//
//   admission    AdmissionControl: per-query-class token buckets at the
//                open-loop generator. Throttling sheds the sheddable
//                classes first — graceful degradation instead of
//                open-loop queue collapse.
//   chunk size   the paper's DR knob made adaptive: an actuator callback
//                resizes the DataCutter/workload chunk bytes online
//                (shrink under violation, regrow on recovery).
//   replicas     node demotion: traffic shifts away from a degraded node
//                via the workload's fanout tables, the node's mux lanes
//                are drained and its RegCache flushed (pinned memory
//                released); a probation timer promotes it back.
//
// Determinism rules (the reason replays stay bit-identical):
//   * every decision reads only registry values at sim-time publish
//     points — never wall clock, never sampling;
//   * hysteresis bands + consecutive-window streaks + cooldowns are all
//     integer/sim-time arithmetic;
//   * actuators are invoked inside the snapshot publish event, so their
//     effects are ordinary scheduled state changes;
//   * every action appends to an ordered action log and emits `slo.*`
//     counters and trace instants, so two runs can be diffed decision by
//     decision.
//
// Only this module may invoke the actuators (svlint SV014): the harness
// *installs* callbacks and *queries* AdmissionControl, but mutation
// authority stays here, keeping the control loop auditable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "control/token_bucket.h"
#include "obs/hub.h"
#include "obs/snapshot.h"

namespace sv::control {

/// Declarative targets the controller enforces.
struct SloTargets {
  /// Ceiling on windowed p99 end-to-end update latency.
  SimTime p99_update_latency = SimTime::milliseconds(5);
};

struct ControllerConfig {
  SloTargets targets{};

  /// Hysteresis band, as percentages of the target: the cluster is
  /// "violating" above band_high_pct% and "healthy" below band_low_pct%;
  /// between the bands the controller holds state (no oscillation).
  int band_high_pct = 100;
  int band_low_pct = 70;
  /// Consecutive violating (resp. healthy) windows required before an
  /// actuation.
  int violate_windows = 2;
  int recover_windows = 4;
  /// Minimum sim time between successive cluster-level actuations.
  SimTime cooldown = SimTime::milliseconds(10);
  /// Windows with fewer samples than this carry no signal (neither
  /// violating nor healthy).
  std::uint64_t min_window_samples = 8;

  /// Admission actuator: admit fraction moves by this much per step, in
  /// per-mille, never below min_admit_permille. 1000 = everything.
  std::uint32_t throttle_step_permille = 250;
  std::uint32_t min_admit_permille = 100;

  /// Chunk actuator bounds (bytes); chunk halves toward min under
  /// violation and doubles toward max on recovery. max == 0 disables.
  std::uint64_t chunk_min_bytes = 0;
  std::uint64_t chunk_max_bytes = 0;

  /// Demotion actuator: a node whose windowed p99 exceeds
  /// demote_latency_pct% of target for demote_windows consecutive windows
  /// is demoted (at most max_demoted at once); it is promoted back after
  /// demote_hold of probation. demote_windows == 0 disables.
  int demote_latency_pct = 200;
  int demote_windows = 2;
  int max_demoted = 1;
  SimTime demote_hold = SimTime::milliseconds(40);
  /// Also demote a node that previously delivered but went *silent* (zero
  /// window samples) while the rest of the cluster is actively delivering
  /// — the signature of a full stall, which produces no latency samples
  /// at all until it ends (and then a flood of late ones). Guarded by the
  /// `slo.offered` counter when present: a quiet node during a workload
  /// lull or the end-of-run drain is idle, not stalled.
  bool demote_on_silence = true;
};

/// Per-query-class token-bucket admission gate. The workload *queries* it
/// (admit() per update); only the Controller re-rates it (SV014).
class AdmissionControl {
 public:
  struct ClassSpec {
    std::string name = "default";
    /// Token refill per simulated second at full admission (size this at
    /// or above the class's expected offered rate, with headroom).
    std::uint64_t rate_per_sec = 1000;
    std::uint64_t burst = 64;
    /// Non-sheddable classes bypass the bucket entirely (interactive
    /// traffic the SLO protects).
    bool sheddable = true;
  };

  explicit AdmissionControl(std::vector<ClassSpec> specs);

  /// One token per update. Always true for non-sheddable classes and at
  /// full admission (1000 per-mille).
  bool admit(std::size_t cls, SimTime now);

  /// Controller actuator: rescales every sheddable class's refill rate to
  /// permille/1000 of its spec rate.
  void set_admit_permille(std::uint32_t permille);

  [[nodiscard]] std::uint32_t admit_permille() const { return permille_; }
  [[nodiscard]] std::size_t class_count() const { return classes_.size(); }
  [[nodiscard]] const ClassSpec& spec(std::size_t cls) const {
    return classes_[cls].spec;
  }

 private:
  struct ClassState {
    ClassSpec spec;
    TokenBucket bucket;
  };
  std::vector<ClassState> classes_;
  std::uint32_t permille_ = 1000;
};

/// The actuator bundle the harness installs. Invoking any of these outside
/// src/control is an SV014 violation — the controller is the only
/// mutation authority.
struct Actuators {
  /// Admission gate to re-rate (may be null: actuator disabled).
  AdmissionControl* admission = nullptr;
  /// Resize the workload/DataCutter chunk size to `bytes`.
  std::function<void(std::uint64_t bytes)> apply_chunk_bytes;
  /// Shift traffic away from `node`, drain its lanes, flush its RegCache.
  std::function<void(int node)> apply_demotion;
  /// End `node`'s probation; traffic may return.
  std::function<void(int node)> apply_promotion;
};

/// Closed-loop SLO controller: a SnapshotSink making deterministic
/// decisions at every publish.
class Controller final : public obs::SnapshotSink {
 public:
  struct Action {
    enum class Kind {
      kThrottle,
      kRelease,
      kChunkShrink,
      kChunkGrow,
      kDemote,
      kPromote,
    };
    SimTime at{};
    Kind kind{};
    int node = -1;            ///< demote/promote only
    std::uint64_t value = 0;  ///< admit per-mille or chunk bytes
  };

  Controller(obs::Hub* hub, ControllerConfig cfg, Actuators actuators);

  /// Subscribes a node's `slo.update_latency_ns{node=nodeN}` window.
  /// Binding is lazy — the histogram may not exist until traffic starts.
  void watch_node(int node);

  void on_snapshot(const obs::Snapshot& snap) override;

  [[nodiscard]] const std::vector<Action>& actions() const {
    return actions_;
  }
  /// Canonical text: one `<ns> <kind> <node> <value>` line per action, in
  /// decision order. Determinism tests diff this byte-for-byte.
  [[nodiscard]] std::string action_log() const;

  [[nodiscard]] std::uint32_t admit_permille() const {
    return admit_permille_;
  }
  [[nodiscard]] std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  [[nodiscard]] bool is_demoted(int node) const;
  [[nodiscard]] int demoted_count() const;
  /// Windowed cluster p99 from the most recent snapshot (0 = no samples).
  [[nodiscard]] std::int64_t last_cluster_p99_ns() const {
    return last_p99_ns_;
  }

  [[nodiscard]] static const char* kind_name(Action::Kind kind);

 private:
  struct NodeState {
    int node = 0;
    obs::HistogramWindow latency;
    std::uint64_t lifetime_samples = 0;
    int bad_windows = 0;
    bool demoted = false;
    SimTime demoted_at{};
  };

  void record(SimTime at, Action::Kind kind, int node, std::uint64_t value);
  void step_demotions(SimTime at, std::uint64_t cluster_count,
                      bool load_active);
  void step_cluster(SimTime at, const obs::HistogramWindow& cluster);

  obs::Hub* hub_;
  ControllerConfig cfg_;
  Actuators acts_;
  std::vector<NodeState> nodes_;
  std::vector<Action> actions_;
  /// Window over `slo.offered` (lazy-bound; absent = always active).
  obs::CounterWindow offered_;

  int violate_streak_ = 0;
  int healthy_streak_ = 0;
  std::uint32_t admit_permille_ = 1000;
  std::uint64_t chunk_bytes_ = 0;
  SimTime last_cluster_action_;
  std::int64_t last_p99_ns_ = 0;

  obs::Counter* c_windows_;
  obs::Counter* c_actions_;
  obs::Counter* c_throttles_;
  obs::Counter* c_releases_;
  obs::Counter* c_chunk_shrinks_;
  obs::Counter* c_chunk_grows_;
  obs::Counter* c_demotions_;
  obs::Counter* c_promotions_;
  obs::Gauge* g_admit_;
  obs::Gauge* g_chunk_;
  obs::Gauge* g_p99_;
};

}  // namespace sv::control
