#include "sockets/fast_socket.h"

namespace sv::sockets {

SocketPair FastSocket::make_pair(sim::Simulation* sim, net::Node* a,
                                 net::Node* b, net::Transport transport,
                                 net::CalibrationProfile profile,
                                 const std::string& name) {
  auto ab = std::make_shared<net::Pipe>(sim, a, b, profile, name + ".ab");
  auto ba = std::make_shared<net::Pipe>(sim, b, a, profile, name + ".ba");
  std::unique_ptr<SvSocket> sa(new FastSocket(transport, a, ab, ba));
  std::unique_ptr<SvSocket> sb(new FastSocket(transport, b, ba, ab));
  return {std::move(sa), std::move(sb)};
}

void FastSocket::send(net::Message m) {
  stats_.messages_sent++;
  stats_.bytes_sent += m.bytes;
  out_->send(std::move(m));
}

std::optional<net::Message> FastSocket::recv() {
  auto m = in_->recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

std::optional<net::Message> FastSocket::try_recv() {
  auto m = in_->try_recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

void FastSocket::close_send() { out_->close(); }

}  // namespace sv::sockets
