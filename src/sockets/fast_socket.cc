#include "sockets/fast_socket.h"

namespace sv::sockets {
namespace {

/// Kernel TCP is the only fast-model transport that copies payload across
/// the user/kernel boundary (once per side per message); VIA, SocketVIA
/// and RDMA DMA straight from registered user buffers. The per-byte *time*
/// of these copies is already inside the calibrated profile; here the
/// *events* are counted (DESIGN.md §10).
bool transport_copies(net::Transport t) {
  return t == net::Transport::kKernelTcp;
}

}  // namespace

SocketPair FastSocket::make_pair(sim::Simulation* sim, net::Node* a,
                                 net::Node* b, net::Transport transport,
                                 net::CalibrationProfile profile,
                                 const std::string& name) {
  auto ab = std::make_shared<net::Pipe>(sim, a, b, profile, name + ".ab");
  auto ba = std::make_shared<net::Pipe>(sim, b, a, profile, name + ".ba");
  std::unique_ptr<SvSocket> sa(new FastSocket(sim, transport, a, b, ab, ba));
  std::unique_ptr<SvSocket> sb(new FastSocket(sim, transport, b, a, ba, ab));
  return {std::move(sa), std::move(sb)};
}

FastSocket::FastSocket(sim::Simulation* sim, net::Transport transport,
                       net::Node* node, net::Node* peer,
                       std::shared_ptr<net::Pipe> out,
                       std::shared_ptr<net::Pipe> in)
    : transport_(transport), node_(node), out_(std::move(out)),
      in_(std::move(in)) {
  init_obs(sim, node->id(), peer->id(), "fast");
}

void FastSocket::send(net::Message m) {
  const std::uint64_t bytes = m.bytes;
  const std::uint64_t buffer = m.buffer;
  const SimTime start = obs_now();
  bool release = false;
  if (transport_copies(transport_)) {
    // TCP's copies are structural; the policy does not apply.
    note_copy("tcp.user_to_kernel", bytes);
  } else {
    release = policy_acquire(buffer, bytes);
  }
  out_->send(std::move(m));
  if (release) policy_release(buffer, bytes);
  note_sent(bytes);
  obs_span(start, "send", bytes);
}

std::optional<net::Message> FastSocket::recv() {
  const SimTime start = obs_now();
  auto m = in_->recv();
  if (m) {
    if (transport_copies(transport_)) note_copy("tcp.kernel_to_user", m->bytes);
    note_received(m->bytes);
    obs_span(start, "recv", m->bytes);
  }
  return m;
}

std::optional<net::Message> FastSocket::try_recv() {
  auto m = in_->try_recv();
  if (m) {
    if (transport_copies(transport_)) note_copy("tcp.kernel_to_user", m->bytes);
    note_received(m->bytes);
  }
  return m;
}

Result<std::optional<net::Message>> FastSocket::recv_for(SimTime timeout) {
  const SimTime start = obs_now();
  auto r = in_->recv_for(timeout);
  if (r.ok() && r.value()) {
    if (transport_copies(transport_)) {
      note_copy("tcp.kernel_to_user", r.value()->bytes);
    }
    note_received(r.value()->bytes);
    obs_span(start, "recv", r.value()->bytes);
  } else if (!r.ok()) {
    note_timeout("timeout.recv");
  }
  return r;
}

Result<void> FastSocket::send_for(net::Message m, SimTime timeout) {
  const std::uint64_t bytes = m.bytes;
  const std::uint64_t buffer = m.buffer;
  const SimTime start = obs_now();
  // Policy work happens before the transport accepts the message — a
  // pinned-then-timed-out message still paid for its pin.
  const bool release =
      transport_copies(transport_) ? false : policy_acquire(buffer, bytes);
  auto r = out_->send_for(std::move(m), timeout);
  if (release) policy_release(buffer, bytes);
  if (r.ok()) {
    if (transport_copies(transport_)) note_copy("tcp.user_to_kernel", bytes);
    note_sent(bytes);
    obs_span(start, "send", bytes);
  } else {
    note_timeout("timeout.window");
  }
  return r;
}

void FastSocket::close_send() { out_->close(); }

}  // namespace sv::sockets
