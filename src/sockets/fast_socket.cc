#include "sockets/fast_socket.h"

namespace sv::sockets {

SocketPair FastSocket::make_pair(sim::Simulation* sim, net::Node* a,
                                 net::Node* b, net::Transport transport,
                                 net::CalibrationProfile profile,
                                 const std::string& name) {
  auto ab = std::make_shared<net::Pipe>(sim, a, b, profile, name + ".ab");
  auto ba = std::make_shared<net::Pipe>(sim, b, a, profile, name + ".ba");
  std::unique_ptr<SvSocket> sa(new FastSocket(transport, a, ab, ba));
  std::unique_ptr<SvSocket> sb(new FastSocket(transport, b, ba, ab));
  return {std::move(sa), std::move(sb)};
}

void FastSocket::send(net::Message m) {
  stats_.messages_sent++;
  stats_.bytes_sent += m.bytes;
  out_->send(std::move(m));
}

std::optional<net::Message> FastSocket::recv() {
  auto m = in_->recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

std::optional<net::Message> FastSocket::try_recv() {
  auto m = in_->try_recv();
  if (m) {
    stats_.messages_received++;
    stats_.bytes_received += m->bytes;
  }
  return m;
}

Result<std::optional<net::Message>> FastSocket::recv_for(SimTime timeout) {
  auto r = in_->recv_for(timeout);
  if (r.ok() && r.value()) {
    stats_.messages_received++;
    stats_.bytes_received += r.value()->bytes;
  }
  return r;
}

Result<void> FastSocket::send_for(net::Message m, SimTime timeout) {
  const std::uint64_t bytes = m.bytes;
  auto r = out_->send_for(std::move(m), timeout);
  if (r.ok()) {
    stats_.messages_sent++;
    stats_.bytes_sent += bytes;
  }
  return r;
}

void FastSocket::close_send() { out_->close(); }

}  // namespace sv::sockets
