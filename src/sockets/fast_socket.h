// Fast-fidelity socket: two net::Pipe instances (one per direction).
#pragma once

#include <memory>

#include "net/fabric.h"
#include "sockets/socket.h"

namespace sv::sockets {

class FastSocket final : public SvSocket {
 public:
  /// Builds a connected pair between two nodes with the given profile.
  static SocketPair make_pair(sim::Simulation* sim, net::Node* a,
                              net::Node* b, net::Transport transport,
                              net::CalibrationProfile profile,
                              const std::string& name);

  void send(net::Message m) override;
  std::optional<net::Message> recv() override;
  std::optional<net::Message> try_recv() override;
  [[nodiscard]] Result<std::optional<net::Message>> recv_for(SimTime timeout) override;
  [[nodiscard]] Result<void> send_for(net::Message m, SimTime timeout) override;
  void close_send() override;

  [[nodiscard]] net::Transport transport() const override {
    return transport_;
  }
  [[nodiscard]] net::Node& local_node() const override { return *node_; }

 private:
  FastSocket(sim::Simulation* sim, net::Transport transport, net::Node* node,
             net::Node* peer, std::shared_ptr<net::Pipe> out,
             std::shared_ptr<net::Pipe> in);

  net::Transport transport_;
  net::Node* node_;
  std::shared_ptr<net::Pipe> out_;
  std::shared_ptr<net::Pipe> in_;
};

}  // namespace sv::sockets
