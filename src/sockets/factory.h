// SocketFactory: per-cluster owner of protocol stacks, dispensing connected
// socket pairs over any transport at either fidelity.
#pragma once

#include <map>
#include <memory>

#include "net/cluster.h"
#include "sockets/socket.h"
#include "tcpstack/tcp.h"
#include "via/via.h"

namespace sv::sockets {

class SocketFactory {
 public:
  SocketFactory(sim::Simulation* sim, net::Cluster* cluster,
                Fidelity fidelity = Fidelity::kFast);

  /// Connects node `src` to node `dst` over `transport`. For kDetailed the
  /// caller should be a simulated process (TCP pays its handshake).
  /// Raw kVia is only available at kFast fidelity (it is not a sockets
  /// layer; use via::Nic directly for detailed raw-VIA experiments).
  SocketPair connect(std::size_t src, std::size_t dst,
                     net::Transport transport);

  /// Per-connection window override for the next fast-fidelity connect
  /// (0 = use the profile default).
  void set_window_override(std::uint64_t bytes) { window_override_ = bytes; }

  /// Copy-cost ablation for subsequently connected sockets: every modeled
  /// payload copy additionally charges (profile.copy_fixed +
  /// copy_per_byte*n) * pct / 100 of sim time to the copying process.
  /// 0 (default) = pure accounting. Only copying transports (kernel TCP)
  /// are affected; zero-copy transports record no copies to scale.
  void set_copy_cost_scale_pct(int pct) { copy_scale_pct_ = pct; }

  /// Selective-copy policy for subsequently connected sockets
  /// (DESIGN.md §14). kStaticPool (default) installs nothing — the legacy
  /// zero-overhead path, digests unchanged. Any other kind builds one
  /// mem::CopyPolicy per *node* (lazily, so RegCache state is shared by
  /// all of a node's sockets) and installs it on each new endpoint.
  /// Kernel TCP endpoints never consult the policy.
  void set_copy_policy(const mem::CopyPolicyConfig& config);

  /// The per-node policy engine (created on demand; null under the
  /// static-pool default). Benches use this to inspect RegCache state.
  mem::CopyPolicy* copy_policy(std::size_t node);

  [[nodiscard]] Fidelity fidelity() const { return fidelity_; }
  [[nodiscard]] net::Cluster& cluster() { return *cluster_; }

  /// Lazily-created per-node stacks (also usable directly by benches).
  tcpstack::TcpStack& tcp_stack(std::size_t node);
  via::Nic& via_nic(std::size_t node);

 private:
  sim::Simulation* sim_;
  net::Cluster* cluster_;
  Fidelity fidelity_;
  std::uint64_t window_override_ = 0;
  int copy_scale_pct_ = 0;
  std::uint64_t next_conn_id_ = 0;
  mem::CopyPolicyConfig policy_config_{};
  std::map<std::size_t, std::shared_ptr<mem::CopyPolicy>> policies_;
  std::map<std::size_t, std::unique_ptr<tcpstack::TcpStack>> tcp_stacks_;
  std::map<std::size_t, std::unique_ptr<via::Nic>> via_nics_;
};

}  // namespace sv::sockets
