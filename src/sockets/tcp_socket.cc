#include "sockets/tcp_socket.h"

#include <limits>
#include <utility>

#include "mem/payload.h"

namespace sv::sockets {
namespace {

/// Sentinel meta entry marking the sender's half-close.
bool is_eof_marker(const net::Message& m) {
  return m.bytes == std::numeric_limits<std::uint64_t>::max();
}

net::Message eof_marker() {
  net::Message m;
  m.bytes = std::numeric_limits<std::uint64_t>::max();
  return m;
}

/// Builds the on-wire frame for `m` and strips its payload: an 8-byte
/// virtual length header followed by the body. A message without a
/// materialized payload sends a virtual body of the same length, so
/// timing-only and materialized traffic take the identical stream path.
mem::Payload take_frame(net::Message& m, std::uint64_t header_bytes) {
  mem::Payload body = m.payload.empty() && m.bytes > 0
                          ? mem::Payload::virtual_bytes(m.bytes)
                          : std::move(m.payload);
  m.payload = mem::Payload{};
  return mem::Payload::virtual_bytes(header_bytes).concat(body);
}

/// Re-attaches the received body to the meta message. Virtual bodies (the
/// sender had no materialized payload) collapse back to an empty payload so
/// receivers see exactly what the sender's message carried.
void attach_body(net::Message& m, const mem::Payload& frame,
                 std::uint64_t header_bytes) {
  mem::Payload body = frame.slice(header_bytes, m.bytes);
  m.payload = body.materialized() ? std::move(body) : mem::Payload{};
}

}  // namespace

SocketPair DetailedTcpSocket::make_pair(tcpstack::TcpStack& a,
                                        tcpstack::TcpStack& b,
                                        tcpstack::TcpOptions options) {
  auto [ca, cb] = tcpstack::TcpStack::connect(a, b, options);
  auto dir_ab = std::make_shared<Direction>(&a.sim());
  auto dir_ba = std::make_shared<Direction>(&a.sim());
  std::unique_ptr<SvSocket> sa(
      new DetailedTcpSocket(std::move(ca), dir_ab, dir_ba));
  std::unique_ptr<SvSocket> sb(
      new DetailedTcpSocket(std::move(cb), std::move(dir_ba),
                            std::move(dir_ab)));
  return {std::move(sa), std::move(sb)};
}

net::Node& DetailedTcpSocket::local_node() const {
  return conn_->stack().node();
}

void DetailedTcpSocket::send(net::Message m) {
  const std::uint64_t bytes = m.bytes;
  const SimTime start = obs_now();
  m.sent_at = conn_->stack().sim().now();
  mem::Payload frame = take_frame(m, kHeaderBytes);
  // Metadata rides an in-order side queue; the frame bytes go through the
  // full TCP machinery. Single writer per socket assumed (as in DataCutter).
  outgoing_->metas.push_back(std::move(m));
  outgoing_->meta_available.notify_all();
  // Handing user bytes to the stack models the write()-side user->kernel
  // copy; its time is already in the calibrated per-byte send cost.
  note_copy("tcp.user_to_kernel", bytes);
  conn_->send_payload(std::move(frame));
  note_sent(bytes);
  obs_span(start, "send", bytes);
}

std::optional<net::Message> DetailedTcpSocket::recv() {
  const SimTime start = obs_now();
  while (incoming_->metas.empty()) {
    incoming_->meta_available.wait();
  }
  if (is_eof_marker(incoming_->metas.front())) {
    peer_closed_ = true;
    return std::nullopt;
  }
  net::Message m = std::move(incoming_->metas.front());
  incoming_->metas.pop_front();
  const mem::Payload frame = conn_->recv_exact_payload(kHeaderBytes + m.bytes);
  attach_body(m, frame, kHeaderBytes);
  note_copy("tcp.kernel_to_user", m.bytes);
  m.delivered_at = conn_->stack().sim().now();
  note_received(m.bytes);
  obs_span(start, "recv", m.bytes);
  return m;
}

Result<std::optional<net::Message>> DetailedTcpSocket::recv_for(
    SimTime timeout) {
  if (timeout <= SimTime::zero()) return recv();
  const SimTime start = obs_now();
  const SimTime deadline = conn_->stack().sim().now() + timeout;
  while (incoming_->metas.empty()) {
    const SimTime left = deadline - conn_->stack().sim().now();
    if (left <= SimTime::zero() ||
        !incoming_->meta_available.wait_for(left)) {
      if (!incoming_->metas.empty()) break;  // raced with a late arrival
      note_timeout("timeout.recv");
      return Error::timeout("DetailedTcpSocket: recv timed out");
    }
  }
  if (is_eof_marker(incoming_->metas.front())) {
    peer_closed_ = true;
    return std::optional<net::Message>{};
  }
  // Drain the frame with the remaining budget; the meta entry is consumed
  // only on success so a timed-out socket fails loudly, not subtly.
  const std::uint64_t frame = kHeaderBytes + incoming_->metas.front().bytes;
  const SimTime left = deadline - conn_->stack().sim().now();
  if (left <= SimTime::zero()) {
    note_timeout("timeout.recv");
    return Error::timeout("DetailedTcpSocket: recv timed out");
  }
  auto drained = conn_->recv_exact_payload_for(frame, left);
  if (!drained.ok()) {
    note_timeout("timeout.recv_drain");
    return drained.error();
  }
  net::Message m = std::move(incoming_->metas.front());
  incoming_->metas.pop_front();
  attach_body(m, drained.value(), kHeaderBytes);
  note_copy("tcp.kernel_to_user", m.bytes);
  m.delivered_at = conn_->stack().sim().now();
  note_received(m.bytes);
  obs_span(start, "recv", m.bytes);
  return std::optional<net::Message>(std::move(m));
}

Result<void> DetailedTcpSocket::send_for(net::Message m, SimTime timeout) {
  if (timeout <= SimTime::zero()) {
    send(std::move(m));
    return Result<void>::success();
  }
  const std::uint64_t bytes = m.bytes;
  const SimTime start = obs_now();
  m.sent_at = conn_->stack().sim().now();
  mem::Payload frame = take_frame(m, kHeaderBytes);
  outgoing_->metas.push_back(std::move(m));
  outgoing_->meta_available.notify_all();
  auto r = conn_->send_payload_for(std::move(frame), timeout);
  if (r.ok()) {
    note_copy("tcp.user_to_kernel", bytes);
    note_sent(bytes);
    obs_span(start, "send", bytes);
  } else {
    note_timeout("timeout.sndbuf");
  }
  return r;
}

std::optional<net::Message> DetailedTcpSocket::try_recv() {
  if (incoming_->metas.empty()) return std::nullopt;
  if (is_eof_marker(incoming_->metas.front())) return std::nullopt;
  const net::Message& front = incoming_->metas.front();
  if (conn_->recv_buffered() < kHeaderBytes + front.bytes) {
    return std::nullopt;  // frame not fully buffered yet
  }
  return recv();
}

void DetailedTcpSocket::close_send() {
  outgoing_->metas.push_back(eof_marker());
  outgoing_->meta_available.notify_all();
  conn_->close();
}

}  // namespace sv::sockets
