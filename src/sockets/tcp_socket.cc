#include "sockets/tcp_socket.h"

#include <limits>
#include <utility>

namespace sv::sockets {
namespace {

/// Sentinel meta entry marking the sender's half-close.
bool is_eof_marker(const net::Message& m) {
  return m.bytes == std::numeric_limits<std::uint64_t>::max();
}

net::Message eof_marker() {
  net::Message m;
  m.bytes = std::numeric_limits<std::uint64_t>::max();
  return m;
}

}  // namespace

SocketPair DetailedTcpSocket::make_pair(tcpstack::TcpStack& a,
                                        tcpstack::TcpStack& b,
                                        tcpstack::TcpOptions options) {
  auto [ca, cb] = tcpstack::TcpStack::connect(a, b, options);
  auto dir_ab = std::make_shared<Direction>(&a.sim());
  auto dir_ba = std::make_shared<Direction>(&a.sim());
  std::unique_ptr<SvSocket> sa(
      new DetailedTcpSocket(std::move(ca), dir_ab, dir_ba));
  std::unique_ptr<SvSocket> sb(
      new DetailedTcpSocket(std::move(cb), std::move(dir_ba),
                            std::move(dir_ab)));
  return {std::move(sa), std::move(sb)};
}

net::Node& DetailedTcpSocket::local_node() const {
  return conn_->stack().node();
}

void DetailedTcpSocket::send(net::Message m) {
  const std::uint64_t bytes = m.bytes;
  const SimTime start = obs_now();
  m.sent_at = conn_->stack().sim().now();
  const std::uint64_t frame = kHeaderBytes + m.bytes;
  // Metadata rides an in-order side queue; the frame bytes go through the
  // full TCP machinery. Single writer per socket assumed (as in DataCutter).
  outgoing_->metas.push_back(std::move(m));
  outgoing_->meta_available.notify_all();
  conn_->send(frame);
  note_sent(bytes);
  obs_span(start, "send", bytes);
}

std::optional<net::Message> DetailedTcpSocket::recv() {
  const SimTime start = obs_now();
  while (incoming_->metas.empty()) {
    incoming_->meta_available.wait();
  }
  if (is_eof_marker(incoming_->metas.front())) {
    peer_closed_ = true;
    return std::nullopt;
  }
  net::Message m = std::move(incoming_->metas.front());
  incoming_->metas.pop_front();
  conn_->recv_exact(kHeaderBytes + m.bytes);
  m.delivered_at = conn_->stack().sim().now();
  note_received(m.bytes);
  obs_span(start, "recv", m.bytes);
  return m;
}

Result<std::optional<net::Message>> DetailedTcpSocket::recv_for(
    SimTime timeout) {
  if (timeout <= SimTime::zero()) return recv();
  const SimTime start = obs_now();
  const SimTime deadline = conn_->stack().sim().now() + timeout;
  while (incoming_->metas.empty()) {
    const SimTime left = deadline - conn_->stack().sim().now();
    if (left <= SimTime::zero() ||
        !incoming_->meta_available.wait_for(left)) {
      if (!incoming_->metas.empty()) break;  // raced with a late arrival
      note_timeout("timeout.recv");
      return Error::timeout("DetailedTcpSocket: recv timed out");
    }
  }
  if (is_eof_marker(incoming_->metas.front())) {
    peer_closed_ = true;
    return std::optional<net::Message>{};
  }
  // Drain the frame with the remaining budget; the meta entry is consumed
  // only on success so a timed-out socket fails loudly, not subtly.
  const std::uint64_t frame = kHeaderBytes + incoming_->metas.front().bytes;
  const SimTime left = deadline - conn_->stack().sim().now();
  if (left <= SimTime::zero()) {
    note_timeout("timeout.recv");
    return Error::timeout("DetailedTcpSocket: recv timed out");
  }
  auto drained = conn_->recv_exact_for(frame, left);
  if (!drained.ok()) {
    note_timeout("timeout.recv_drain");
    return drained.error();
  }
  net::Message m = std::move(incoming_->metas.front());
  incoming_->metas.pop_front();
  m.delivered_at = conn_->stack().sim().now();
  note_received(m.bytes);
  obs_span(start, "recv", m.bytes);
  return std::optional<net::Message>(std::move(m));
}

Result<void> DetailedTcpSocket::send_for(net::Message m, SimTime timeout) {
  if (timeout <= SimTime::zero()) {
    send(std::move(m));
    return Result<void>::success();
  }
  const std::uint64_t bytes = m.bytes;
  const SimTime start = obs_now();
  m.sent_at = conn_->stack().sim().now();
  const std::uint64_t frame = kHeaderBytes + m.bytes;
  outgoing_->metas.push_back(std::move(m));
  outgoing_->meta_available.notify_all();
  auto r = conn_->send_for(frame, timeout);
  if (r.ok()) {
    note_sent(bytes);
    obs_span(start, "send", bytes);
  } else {
    note_timeout("timeout.sndbuf");
  }
  return r;
}

std::optional<net::Message> DetailedTcpSocket::try_recv() {
  if (incoming_->metas.empty()) return std::nullopt;
  if (is_eof_marker(incoming_->metas.front())) return std::nullopt;
  const net::Message& front = incoming_->metas.front();
  if (conn_->recv_buffered() < kHeaderBytes + front.bytes) {
    return std::nullopt;  // frame not fully buffered yet
  }
  return recv();
}

void DetailedTcpSocket::close_send() {
  outgoing_->metas.push_back(eof_marker());
  outgoing_->meta_available.notify_all();
  conn_->close();
}

}  // namespace sv::sockets
