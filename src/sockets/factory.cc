#include "sockets/factory.h"

#include <stdexcept>

#include "sockets/fast_socket.h"
#include "sockets/tcp_socket.h"
#include "sockets/via_socket.h"

namespace sv::sockets {

SocketFactory::SocketFactory(sim::Simulation* sim, net::Cluster* cluster,
                             Fidelity fidelity)
    : sim_(sim), cluster_(cluster), fidelity_(fidelity) {}

tcpstack::TcpStack& SocketFactory::tcp_stack(std::size_t node) {
  auto it = tcp_stacks_.find(node);
  if (it == tcp_stacks_.end()) {
    it = tcp_stacks_
             .emplace(node, std::make_unique<tcpstack::TcpStack>(
                                sim_, &cluster_->node(node)))
             .first;
  }
  return *it->second;
}

via::Nic& SocketFactory::via_nic(std::size_t node) {
  auto it = via_nics_.find(node);
  if (it == via_nics_.end()) {
    it = via_nics_
             .emplace(node, std::make_unique<via::Nic>(
                                sim_, &cluster_->node(node)))
             .first;
  }
  return *it->second;
}

void SocketFactory::set_copy_policy(const mem::CopyPolicyConfig& config) {
  policy_config_ = config;
  // Existing per-node engines are dropped; sockets already connected keep
  // the policy they were built with (shared_ptr ownership).
  policies_.clear();
}

mem::CopyPolicy* SocketFactory::copy_policy(std::size_t node) {
  if (policy_config_.kind == mem::CopyPolicyKind::kStaticPool) return nullptr;
  auto it = policies_.find(node);
  if (it == policies_.end()) {
    it = policies_
             .emplace(node, std::make_shared<mem::CopyPolicy>(
                                &sim_->obs(), static_cast<int>(node),
                                policy_config_))
             .first;
  }
  return it->second.get();
}

SocketPair SocketFactory::connect(std::size_t src, std::size_t dst,
                                  net::Transport transport) {
  SocketPair pair = [&] {
    if (fidelity_ == Fidelity::kFast) {
      const std::string name = std::string(net::transport_name(transport)) +
                               ".conn" + std::to_string(next_conn_id_++);
      auto profile = net::CalibrationProfile::for_transport(transport);
      if (window_override_ != 0) profile.window_bytes = window_override_;
      return FastSocket::make_pair(sim_, &cluster_->node(src),
                                   &cluster_->node(dst), transport, profile,
                                   name);
    }
    switch (transport) {
      case net::Transport::kKernelTcp:
        return DetailedTcpSocket::make_pair(tcp_stack(src), tcp_stack(dst));
      case net::Transport::kSocketVia:
        return DetailedViaSocket::make_pair(via_nic(src), via_nic(dst));
      case net::Transport::kVia:
        throw std::invalid_argument(
            "SocketFactory: raw VIA has no detailed sockets layer; use "
            "via::Nic directly");
    }
    throw std::invalid_argument("SocketFactory: unknown transport");
  }();
  if (copy_scale_pct_ > 0) {
    const auto profile = net::CalibrationProfile::for_transport(transport);
    pair.first->set_copy_ablation(profile.copy_fixed, profile.copy_per_byte,
                                  copy_scale_pct_);
    pair.second->set_copy_ablation(profile.copy_fixed, profile.copy_per_byte,
                                   copy_scale_pct_);
  }
  if (policy_config_.kind != mem::CopyPolicyKind::kStaticPool &&
      transport != net::Transport::kKernelTcp) {
    (void)copy_policy(src);
    (void)copy_policy(dst);
    pair.first->set_copy_policy(policies_.at(src));
    pair.second->set_copy_policy(policies_.at(dst));
  }
  return pair;
}

}  // namespace sv::sockets
