#include "sockets/socket.h"

#include <utility>

#include "mem/ledger.h"
#include "sim/simulation.h"

namespace sv::sockets {

void SvSocket::init_obs(sim::Simulation* sim, int local_node, int peer_node,
                        std::string_view transport_label) {
  sim_ = sim;
  hub_ = &sim->obs();
  node_id_ = local_node;
  label_ = std::string(transport_label);
  obs::Registry& reg = hub_->registry;
  // Endpoint serial keeps per-socket metric names unique; creation order is
  // deterministic per seed, so names are stable across runs.
  auto& serial = reg.counter("socket.instances");
  serial.inc();
  const std::string sl =
      "{socket=" + label_ + "." + std::to_string(serial.value()) + "}";
  const std::string ll = "{link=" + std::to_string(local_node) + "->" +
                         std::to_string(peer_node) + "}";
  c_msgs_sent_ = &reg.counter("socket.messages_sent" + sl);
  c_bytes_sent_ = &reg.counter("socket.bytes_sent" + sl);
  c_msgs_recv_ = &reg.counter("socket.messages_received" + sl);
  c_bytes_recv_ = &reg.counter("socket.bytes_received" + sl);
  c_timeouts_ = &reg.counter("socket.timeouts" + sl);
  c_msgs_sent_total_ = &reg.counter("socket.messages_sent");
  c_msgs_recv_total_ = &reg.counter("socket.messages_received");
  c_timeouts_total_ = &reg.counter("socket.timeouts");
  c_timeouts_link_ = &reg.counter("socket.timeouts" + ll);
  h_msg_bytes_ = &reg.histogram("socket.msg_bytes",
                                obs::Registry::size_bounds_bytes());
}

SocketStats SvSocket::stats() const {
  SocketStats s;
  if (c_msgs_sent_ == nullptr) return s;
  s.messages_sent = c_msgs_sent_->value();
  s.bytes_sent = c_bytes_sent_->value();
  s.messages_received = c_msgs_recv_->value();
  s.bytes_received = c_bytes_recv_->value();
  s.timeouts = c_timeouts_->value();
  return s;
}

void SvSocket::note_sent(std::uint64_t bytes) {
  if (c_msgs_sent_ == nullptr) return;
  c_msgs_sent_->inc();
  c_bytes_sent_->inc(bytes);
  c_msgs_sent_total_->inc();
  h_msg_bytes_->observe(static_cast<std::int64_t>(bytes));
}

void SvSocket::note_received(std::uint64_t bytes) {
  if (c_msgs_recv_ == nullptr) return;
  c_msgs_recv_->inc();
  c_bytes_recv_->inc(bytes);
  c_msgs_recv_total_->inc();
}

void SvSocket::note_timeout(std::string_view op) {
  if (c_timeouts_ == nullptr) return;
  c_timeouts_->inc();
  c_timeouts_total_->inc();
  c_timeouts_link_->inc();
  if (hub_->tracer.enabled()) {
    std::string name(label_);
    name += '.';
    name += op;
    hub_->tracer.instant(sim_->now(), node_id_, "socket", name);
  }
}

void SvSocket::note_copy(std::string_view stage, std::uint64_t bytes) {
  if (sim_ == nullptr) return;
  mem::charge_copy(hub_, sim_->now(), node_id_, stage, bytes);
  if (copy_scale_pct_ > 0) {
    // Scaled copy time (ablation): integer ns arithmetic keeps the charge
    // bit-reproducible (no float time; svlint SV006).
    const SimTime base = copy_fixed_ + copy_per_byte_.for_bytes(bytes);
    const SimTime extra = SimTime::nanoseconds(
        base.ns() * copy_scale_pct_ / 100);
    if (extra > SimTime::zero()) sim_->delay(extra);
  }
}

void SvSocket::set_copy_ablation(SimTime copy_fixed, PerByteCost copy_per_byte,
                                 int scale_pct) {
  copy_fixed_ = copy_fixed;
  copy_per_byte_ = copy_per_byte;
  copy_scale_pct_ = scale_pct;
}

void SvSocket::set_copy_policy(std::shared_ptr<mem::CopyPolicy> policy) {
  policy_ = std::move(policy);
}

bool SvSocket::policy_acquire(std::uint64_t buffer_id, std::uint64_t bytes) {
  if (policy_ == nullptr || sim_ == nullptr) return false;
  const mem::CopyVerdict v = policy_->acquire(sim_->now(), buffer_id, bytes);
  if (v.cpu_cost > SimTime::zero()) sim_->delay(v.cpu_cost);
  return v.needs_release;
}

void SvSocket::policy_release(std::uint64_t buffer_id, std::uint64_t bytes) {
  if (policy_ == nullptr || sim_ == nullptr) return;
  const SimTime unpin = policy_->release(sim_->now(), buffer_id, bytes);
  if (unpin > SimTime::zero()) sim_->delay(unpin);
}

void SvSocket::obs_span(SimTime start, std::string_view op,
                        std::uint64_t bytes) {
  if (hub_ == nullptr || !hub_->tracer.enabled()) return;
  std::string name(label_);
  name += '.';
  name += op;
  hub_->tracer.span(start, sim_->now(), node_id_, "socket", name, bytes);
}

SimTime SvSocket::obs_now() const {
  return sim_ == nullptr ? SimTime::zero() : sim_->now();
}

}  // namespace sv::sockets
