// Detailed-fidelity kernel socket: length-prefixed message framing over the
// executed TCP byte stream (tcpstack).
//
// Message metadata (tag/meta/payload pointers) travels in an in-order side
// queue; the *bytes* — header + body — travel through the full TCP
// machinery, so all timing comes from executed segments, ACKs and window
// behaviour.
#pragma once

#include <deque>
#include <memory>

#include "sim/sync.h"
#include "sockets/socket.h"
#include "tcpstack/tcp.h"

namespace sv::sockets {

class DetailedTcpSocket final : public SvSocket {
 public:
  /// Establishes a framed connection between two stacks (caller must be a
  /// simulated process; pays the handshake).
  static SocketPair make_pair(tcpstack::TcpStack& a, tcpstack::TcpStack& b,
                              tcpstack::TcpOptions options = {});

  void send(net::Message m) override;
  std::optional<net::Message> recv() override;
  std::optional<net::Message> try_recv() override;
  /// Timed receive. On kTimeout a frame may be partially drained from the
  /// TCP stream; the socket must then be abandoned.
  [[nodiscard]] Result<std::optional<net::Message>> recv_for(SimTime timeout) override;
  [[nodiscard]] Result<void> send_for(net::Message m, SimTime timeout) override;
  void close_send() override;

  [[nodiscard]] net::Transport transport() const override {
    return net::Transport::kKernelTcp;
  }
  [[nodiscard]] net::Node& local_node() const override;

 private:
  /// Per-direction framing state shared between the two endpoints.
  struct Direction {
    explicit Direction(sim::Simulation* sim)
        : meta_available(sim, "tcp_sock.meta") {}
    std::deque<net::Message> metas;
    sim::WaitQueue meta_available;
  };

  static constexpr std::uint64_t kHeaderBytes = 8;

  DetailedTcpSocket(std::shared_ptr<tcpstack::TcpConnection> conn,
                    std::shared_ptr<Direction> outgoing,
                    std::shared_ptr<Direction> incoming)
      : conn_(std::move(conn)),
        outgoing_(std::move(outgoing)),
        incoming_(std::move(incoming)) {
    init_obs(&conn_->stack().sim(), conn_->stack().node().id(),
             conn_->peer_node().id(), "tcp");
  }

  std::shared_ptr<tcpstack::TcpConnection> conn_;
  std::shared_ptr<Direction> outgoing_;
  std::shared_ptr<Direction> incoming_;
  bool peer_closed_ = false;
};

}  // namespace sv::sockets
