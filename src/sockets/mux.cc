#include "sockets/mux.h"

#include <utility>

#include "common/check.h"

namespace sv::sockets {

SendMux::State::State(sim::Simulation* sim_in, net::Cluster* cluster_in,
                      int node_in, SendMuxConfig cfg_in,
                      DeliveryFn on_delivery_in)
    : sim(sim_in),
      cluster(cluster_in),
      node(node_in),
      cfg(cfg_in),
      on_delivery(std::move(on_delivery_in)),
      name("mux.node" + std::to_string(node_in)),
      work_waiters(sim_in, name + ".work") {
  SV_ASSERT(cfg.aggregate_max_bytes > 0 && cfg.aggregate_max_msgs > 0,
            "SendMux: aggregate caps must be positive");
  obs::Registry& reg = sim->obs().registry;
  const std::string nl = "{node=node" + std::to_string(node) + "}";
  reg.counter("mux.senders").inc();
  c_submitted = &reg.counter("mux.submitted" + nl);
  c_submitted_bytes = &reg.counter("mux.submitted_bytes" + nl);
  c_drops = &reg.counter("mux.drops" + nl);
  c_batches = &reg.counter("mux.batches" + nl);
  c_batch_records = &reg.counter("mux.batch_records" + nl);
  c_delivered = &reg.counter("mux.delivered" + nl);
  c_flushed = &reg.counter("mux.flushed" + nl);
  g_queued_bytes = &reg.gauge("mux.queued_bytes" + nl);
  if (cfg.copy_policy.kind != mem::CopyPolicyKind::kStaticPool) {
    policy = std::make_unique<mem::CopyPolicy>(&sim->obs(), node,
                                               cfg.copy_policy);
  }
}

SendMux::SendMux(sim::Simulation* sim, net::Cluster* cluster, int node,
                 SendMuxConfig cfg, DeliveryFn on_delivery)
    : st_(std::make_shared<State>(sim, cluster, node, cfg,
                                  std::move(on_delivery))) {
  sim->spawn(st_->name + ".sender", [st = st_] { st->sender_loop(); });
}

SendMux::~SendMux() {
  // Stop intake; the co-owning sender/sink processes wind down on their
  // own (Pipe-style lifetime).
  if (!st_->stopping) {
    st_->stopping = true;
    st_->work_waiters.notify_all();
  }
}

SendMux::Lane& SendMux::State::lane(int dst) {
  auto it = lanes.find(dst);
  if (it != lanes.end()) return it->second;
  Lane& l = lanes[dst];
  net::CalibrationProfile profile =
      net::CalibrationProfile::for_transport(cfg.transport);
  if (cfg.window_bytes > 0) profile.window_bytes = cfg.window_bytes;
  l.pipe = std::make_unique<net::Pipe>(
      sim, &cluster->node(static_cast<std::size_t>(node)),
      &cluster->node(static_cast<std::size_t>(dst)), profile,
      name + "->" + std::to_string(dst));
  sim->spawn(name + ".sink" + std::to_string(dst),
             [self = shared_from_this(), dst] { self->sink_loop(dst); });
  l.sink_spawned = true;
  return l;
}

void SendMux::State::arm(int dst, Lane& l) {
  if (l.interested || l.q.empty()) return;
  l.interested = true;
  interest.push_back(dst);
  work_waiters.notify_one();
}

std::uint64_t SendMux::open_connection(int dst_node) {
  State& st = *st_;
  SV_ASSERT(!st.stopping, "SendMux::open_connection after shutdown");
  SV_ASSERT(dst_node >= 0 &&
                static_cast<std::size_t>(dst_node) < st.cluster->size(),
            "SendMux::open_connection: unknown destination node");
  st.lane(dst_node);  // materialize the pipe + sink
  const std::uint64_t id = st.next_conn++;
  st.conn_dst.emplace(id, dst_node);
  return id;
}

bool SendMux::submit(std::uint64_t conn, std::uint64_t bytes) {
  return submit(conn, bytes, /*buffer=*/0, mem::Payload{});
}

bool SendMux::submit(std::uint64_t conn, std::uint64_t bytes,
                     std::uint64_t buffer, mem::Payload payload) {
  State& st = *st_;
  if (st.stopping) return false;
  auto it = st.conn_dst.find(conn);
  SV_ASSERT(it != st.conn_dst.end(), "SendMux::submit on a closed conn");
  Lane& l = st.lanes.at(it->second);
  if (l.queued_bytes + bytes > st.cfg.queue_cap_bytes) {
    // `payload` dies here: the drop releases its pooled chunk immediately.
    st.c_drops->inc();
    return false;
  }
  MuxRecord r;
  r.conn = conn;
  r.bytes = bytes;
  r.enqueued = st.sim->now();
  r.buffer = buffer;
  r.payload = std::move(payload);
  l.q.push_back(std::move(r));
  l.queued_bytes += bytes;
  st.g_queued_bytes->add(static_cast<std::int64_t>(bytes));
  st.c_submitted->inc();
  st.c_submitted_bytes->inc(bytes);
  st.arm(it->second, l);
  return true;
}

void SendMux::close_connection(std::uint64_t conn) {
  // Queued records still deliver; only the id is retired.
  st_->conn_dst.erase(conn);
}

std::uint64_t SendMux::flush_lane(int dst_node) {
  State& st = *st_;
  auto it = st.lanes.find(dst_node);
  if (it == st.lanes.end()) return 0;
  Lane& l = it->second;
  const std::uint64_t flushed = l.q.size();
  // Destroying the records releases any pooled payload chunks. The lane's
  // interest entry (if armed) stays in the sender's deque; the sender pops
  // it, finds the queue empty, and disarms — the protocol already handles
  // an empty drain.
  st.g_queued_bytes->add(-static_cast<std::int64_t>(l.queued_bytes));
  l.q.clear();
  l.queued_bytes = 0;
  st.c_flushed->inc(flushed);
  return flushed;
}

std::uint64_t SendMux::flush_registrations() {
  State& st = *st_;
  if (st.policy == nullptr || st.policy->cache() == nullptr) return 0;
  return st.policy->cache()->flush(st.sim->now());
}

void SendMux::shutdown() {
  State& st = *st_;
  if (st.stopping) return;
  st.stopping = true;
  st.work_waiters.notify_all();
}

int SendMux::node() const { return st_->node; }

std::size_t SendMux::open_connection_rows() const {
  return st_->conn_dst.size();
}

std::uint64_t SendMux::batches() const { return st_->c_batches->value(); }

std::uint64_t SendMux::drops() const { return st_->c_drops->value(); }

void SendMux::State::sender_loop() {
  while (true) {
    if (interest.empty()) {
      if (stopping) break;
      work_waiters.wait();
      continue;
    }
    const int dst = interest.front();
    interest.pop_front();
    Lane& l = lanes.at(dst);

    // Drain up to the aggregate caps into one fabric message. The first
    // record always fits (a lone oversized record must still ship).
    auto recs = std::make_shared<std::vector<MuxRecord>>();
    std::uint64_t total = 0;
    SimTime policy_cost = SimTime::zero();
    // (buffer, bytes) pins owed a release once the aggregate has shipped.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pinned;
    while (!l.q.empty() && recs->size() < cfg.aggregate_max_msgs) {
      const std::uint64_t need = cfg.header_bytes + l.q.front().bytes;
      if (!recs->empty() && total + need > cfg.aggregate_max_bytes) break;
      MuxRecord r = std::move(l.q.front());
      l.q.pop_front();
      l.queued_bytes -= r.bytes;
      g_queued_bytes->add(-static_cast<std::int64_t>(r.bytes));
      total += need;
      if (policy != nullptr) {
        // Per-record consult (DESIGN.md §14): staging this record into the
        // aggregate costs whatever the policy decides — a bounce copy, a
        // pin, or a cache lookup.
        const mem::CopyVerdict v =
            policy->acquire(sim->now(), r.buffer, r.bytes);
        policy_cost = policy_cost + v.cpu_cost;
        if (v.needs_release) pinned.emplace_back(r.buffer, r.bytes);
      }
      recs->push_back(std::move(r));
    }
    // Re-arm at the tail while the lane still has work: round-robin
    // fairness across destinations, FIFO within a lane.
    if (!l.q.empty()) {
      interest.push_back(dst);
    } else {
      l.interested = false;
    }
    if (recs->empty()) continue;

    if (policy_cost > SimTime::zero()) sim->delay(policy_cost);

    net::Message m;
    m.bytes = total;
    m.tag = recs->front().conn;
    m.meta = recs;
    c_batches->inc();
    c_batch_records->inc(recs->size());
    // Blocking send: fabric flow control (and, behind it, topology uplink
    // queueing) backpressures the whole mux, not a per-connection thread.
    l.pipe->send(std::move(m));

    // Register-on-the-fly pins unpin only after the aggregate is on the
    // wire; the unpin time bills to this sender process.
    SimTime unpin_cost = SimTime::zero();
    for (const auto& [buf, bytes] : pinned) {
      unpin_cost = unpin_cost + policy->release(sim->now(), buf, bytes);
    }
    if (unpin_cost > SimTime::zero()) sim->delay(unpin_cost);
  }
  for (auto& [dst, l] : lanes) {
    if (l.pipe) l.pipe->close();
  }
  drained = true;
}

void SendMux::State::sink_loop(int dst) {
  net::Pipe* pipe = lanes.at(dst).pipe.get();
  while (auto m = pipe->recv()) {
    auto recs =
        std::any_cast<std::shared_ptr<std::vector<MuxRecord>>>(m->meta);
    for (const MuxRecord& r : *recs) {
      c_delivered->inc();
      if (on_delivery) on_delivery(dst, r, sim->now());
    }
  }
}

}  // namespace sv::sockets
