// The push-model sockets layer the paper names as future work: one-sided
// RDMA writes into a receiver-advertised slot ring, with RDMA-write-with-
// immediate as the notification (VIA spec semantics).
//
// Differences from SocketVIA's two-sided path:
//  - data never consumes receive descriptors or per-byte receive-side
//    protocol processing — it lands by DMA, so a busy receiver host does
//    not throttle the data path;
//  - flow control is slot-ring occupancy (the sender owns slot credits and
//    the receiver returns them in batches), not per-buffer descriptors;
//  - only the small notification completions touch the receiver's
//    descriptor pool.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>

#include "sim/sync.h"
#include "sockets/socket.h"
#include "via/via.h"

namespace sv::sockets {

struct RdmaSocketOptions {
  /// Slot size; messages larger than this are written as multiple slots.
  std::uint64_t slot_bytes = 16 * 1024;
  /// Ring depth per direction (sender-owned slot credits).
  std::uint32_t ring_slots = 8;
  /// Return slot credits after this many slots are consumed.
  std::uint32_t credit_batch = 4;
};

class RdmaPushSocket final : public SvSocket {
 public:
  static SocketPair make_pair(via::Nic& a, via::Nic& b,
                              RdmaSocketOptions options = {});
  ~RdmaPushSocket() override;

  void send(net::Message m) override;
  std::optional<net::Message> recv() override;
  std::optional<net::Message> try_recv() override;
  [[nodiscard]] Result<std::optional<net::Message>> recv_for(SimTime timeout) override;
  /// Timed send with slot-stall detection (the ring analogue of the
  /// SocketVIA credit stall: a stalled receiver stops returning slots).
  [[nodiscard]] Result<void> send_for(net::Message m, SimTime timeout) override;
  void close_send() override;

  [[nodiscard]] net::Transport transport() const override {
    return net::Transport::kVia;  // one-sided VIA primitives
  }
  [[nodiscard]] net::Node& local_node() const override;

  [[nodiscard]] std::uint32_t available_slots() const;

 private:
  enum Kind : std::uint32_t {
    kFirst = 0,
    kCont = 1,
    kCredit = 2,
    kEof = 3,
  };
  static constexpr std::uint32_t kKindShift = 30;
  static constexpr std::uint32_t kValueMask = (1u << kKindShift) - 1;

  struct Side {
    Side(sim::Simulation* sim, int index);

    via::Nic* nic = nullptr;
    std::shared_ptr<via::Vi> vi;
    std::shared_ptr<via::MemoryRegion> send_region;   // staging for writes
    std::shared_ptr<via::MemoryRegion> ring;          // peer writes here
    std::shared_ptr<via::MemoryRegion> control_pool;  // dataless recvs

    // Sender state.
    std::deque<net::Message> outgoing_meta;
    std::uint32_t slots = 0;           // free peer ring slots
    std::uint64_t next_slot = 0;       // monotone slot cursor
    sim::WaitQueue slot_wait;
    bool send_closed = false;

    // Receiver state.
    sim::Channel<net::Message> delivered;
    std::uint64_t pending_chunks = 0;
    std::uint32_t consumed_since_credit = 0;
  };

  struct PairState {
    PairState(sim::Simulation* sim_in, RdmaSocketOptions options_in)
        : sim(sim_in), options(options_in), sides{Side(sim_in, 0),
                                                  Side(sim_in, 1)} {}
    sim::Simulation* sim;
    RdmaSocketOptions options;
    std::array<Side, 2> sides;

    void setup_side(int i, via::Nic& nic, std::shared_ptr<via::Vi> vi);
    void post_control_recv(int i);
    void send_control(int i, Kind kind, std::uint32_t value);
    void demux_loop(int i);
  };

  RdmaPushSocket(std::shared_ptr<PairState> state, int side);

  Result<void> send_impl(net::Message m, bool timed, SimTime deadline);

  [[nodiscard]] Side& mine() const {
    return state_->sides[static_cast<std::size_t>(side_)];
  }

  std::shared_ptr<PairState> state_;
  int side_;
};

}  // namespace sv::sockets
