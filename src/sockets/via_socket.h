// SocketVIA, executed: the user-level sockets layer over the VIA provider.
//
// Implements the design of the paper's substrate (see also Balaji et al.,
// OSU-CISRC-1/03-TR05): each endpoint pre-registers and pre-posts a pool of
// receive buffers; senders chunk messages and spend *credits* (one per
// posted peer buffer) so a VIA send never arrives without a matching
// receive descriptor; receivers return credits in batched credit-update
// messages on the same VI. Message boundaries and kinds ride the VIA
// immediate data. EOF is an in-band control message.
//
// All data and control messages are real via::Vi descriptors, so flow
// control, credit traffic, and completion handling all cost simulated time
// through the calibrated VIA profile.
//
// Lifetime: the demux processes co-own the connection state, so socket
// handles may be destroyed at any simulated time. The via::Nic objects and
// the Simulation must outlive message flow.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>

#include "sim/sync.h"
#include "sockets/socket.h"
#include "via/via.h"

namespace sv::sockets {

struct ViaSocketOptions {
  /// Receive-pool chunk size; messages larger than this are chunked.
  std::uint64_t chunk_bytes = 16 * 1024;
  /// Number of data credits (posted peer buffers). Window = credits*chunk.
  std::uint32_t credits = 8;
  /// Return credits after this many chunks are consumed.
  std::uint32_t credit_batch = 4;
};

class DetailedViaSocket final : public SvSocket {
 public:
  /// Builds a connected SocketVIA pair over two NICs. Registers and posts
  /// the buffer pools (costs time when called inside a process).
  static SocketPair make_pair(via::Nic& a, via::Nic& b,
                              ViaSocketOptions options = {});
  ~DetailedViaSocket() override;

  void send(net::Message m) override;
  std::optional<net::Message> recv() override;
  std::optional<net::Message> try_recv() override;
  /// Timed receive (ok(nullopt) = EOF; kTimeout = nothing delivered).
  [[nodiscard]] Result<std::optional<net::Message>> recv_for(SimTime timeout) override;
  /// Timed send with credit-stall detection: if the receiver stops
  /// returning credits (e.g. its node is stalled) the send gives up after
  /// `timeout` instead of blocking forever on credit_wait.
  [[nodiscard]] Result<void> send_for(net::Message m, SimTime timeout) override;
  void close_send() override;

  [[nodiscard]] net::Transport transport() const override {
    return net::Transport::kSocketVia;
  }
  [[nodiscard]] net::Node& local_node() const override;

  /// Diagnostics for tests.
  [[nodiscard]] std::uint32_t available_credits() const;
  [[nodiscard]] std::uint64_t credit_updates_sent() const;

 private:
  // Immediate-data encoding: kind in the top 2 bits, value in the low 30.
  enum Kind : std::uint32_t {
    kFirst = 0,   // value = total chunk count of the message
    kCont = 1,    // continuation chunk
    kCredit = 2,  // value = credits returned
    kEof = 3,     // sender half-closed
  };
  static constexpr std::uint32_t kKindShift = 30;
  static constexpr std::uint32_t kValueMask = (1u << kKindShift) - 1;

  /// Per-endpoint connection state, co-owned by the demux process.
  struct Side {
    Side(sim::Simulation* sim, int index);

    via::Nic* nic = nullptr;
    std::shared_ptr<via::Vi> vi;
    std::shared_ptr<via::MemoryRegion> send_region;
    std::shared_ptr<via::MemoryRegion> recv_pool;

    // Sender state (this side sending to the peer).
    std::deque<net::Message> outgoing_meta;
    std::uint32_t credits = 0;
    sim::WaitQueue credit_wait;
    bool send_closed = false;

    // Receiver state (this side receiving from the peer).
    sim::Channel<net::Message> delivered;
    std::uint64_t pending_chunks = 0;
    std::uint32_t consumed_since_credit = 0;
    /// Registry counter `via_sock.credit_updates{side=<serial>}`, bound in
    /// setup_side.
    obs::Counter* credit_updates = nullptr;
  };

  struct PairState {
    PairState(sim::Simulation* sim_in, ViaSocketOptions options_in)
        : sim(sim_in), options(options_in), sides{Side(sim_in, 0),
                                                  Side(sim_in, 1)} {}
    sim::Simulation* sim;
    ViaSocketOptions options;
    std::array<Side, 2> sides;

    void setup_side(int i, via::Nic& nic, std::shared_ptr<via::Vi> vi);
    void post_one_recv(int i);
    void send_control(int i, Kind kind, std::uint32_t value);
    void demux_loop(int i);
  };

  DetailedViaSocket(std::shared_ptr<PairState> state, int side);

  /// Shared body of send()/send_for(); `deadline` is ignored when `timed`
  /// is false.
  Result<void> send_impl(net::Message m, bool timed, SimTime deadline);

  [[nodiscard]] Side& mine() const {
    return state_->sides[static_cast<std::size_t>(side_)];
  }

  std::shared_ptr<PairState> state_;
  int side_;
};

}  // namespace sv::sockets
