// The high-performance sockets substrate under study.
//
// Applications (DataCutter, the visualization server, the benches) are
// written once against SvSocket — blocking message send/receive, like the
// sockets code the paper's applications used — and the transport underneath
// is chosen at connect time: kernel TCP or SocketVIA. This mirrors the
// paper's central premise: SocketVIA gives sockets applications VIA
// performance *without any application change*.
//
// Two fidelity levels exist for each transport:
//  - kFast: the staged cost model executed by net::Pipe (default for
//    application experiments; protocol costs in closed form, contention and
//    flow control executed).
//  - kDetailed: the full protocol machinery — tcpstack (segments, ACKs,
//    Nagle) or a SocketVIA implementation over the VIA provider library
//    (descriptor pools, credit-based flow control, credit-update messages).
// Tests assert the two levels agree on message timing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "mem/copy_policy.h"
#include "net/calibration.h"
#include "net/fabric.h"
#include "obs/hub.h"

namespace sv::sockets {

enum class Fidelity { kFast, kDetailed };

/// Value snapshot assembled from the socket's obs::Registry counters by
/// SvSocket::stats(); the live counts are registry-owned (DESIGN.md §9).
struct SocketStats {
  // svlint:allow(SV007) — snapshot POD, not a live counter
  std::uint64_t messages_sent = 0;
  // svlint:allow(SV007) — snapshot POD, not a live counter
  std::uint64_t bytes_sent = 0;
  // svlint:allow(SV007) — snapshot POD, not a live counter
  std::uint64_t messages_received = 0;
  // svlint:allow(SV007) — snapshot POD, not a live counter
  std::uint64_t bytes_received = 0;
  /// Timed operations that returned ErrorCode::kTimeout on this socket.
  // svlint:allow(SV007) — snapshot POD, not a live counter
  std::uint64_t timeouts = 0;
};

/// A connected, bidirectional, message-oriented blocking socket endpoint.
class SvSocket {
 public:
  virtual ~SvSocket() = default;

  /// Blocking send; returns when the message is accepted by the transport
  /// (flow control may block the caller). Must run inside a simulated
  /// process on the socket's node.
  virtual void send(net::Message m) = 0;

  /// Blocking receive; nullopt after the peer closed and all data drained.
  virtual std::optional<net::Message> recv() = 0;
  /// Non-blocking receive.
  virtual std::optional<net::Message> try_recv() = 0;

  /// Timed receive: ok(message) on data, ok(nullopt) on end-of-stream, or
  /// ErrorCode::kTimeout if nothing is deliverable within `timeout`
  /// (<= 0 means wait forever). For byte-stream transports a timeout may
  /// strand a partially-drained frame, so callers must treat a timeout as
  /// fatal for the stream (the stalled-peer recovery story; see fault.h).
  [[nodiscard]] virtual Result<std::optional<net::Message>> recv_for(SimTime timeout) = 0;

  /// Timed send: ErrorCode::kTimeout when the transport cannot accept the
  /// message within `timeout` (<= 0 means wait forever) — e.g. SocketVIA
  /// starved of credits by a stalled receiver, or TCP against a closed
  /// window. Part of the message may already be in flight after a timeout;
  /// treat the stream as failed.
  [[nodiscard]] virtual Result<void> send_for(net::Message m, SimTime timeout) = 0;

  /// Half-close: no further sends from this side; peer sees end-of-stream.
  virtual void close_send() = 0;

  [[nodiscard]] virtual net::Transport transport() const = 0;
  [[nodiscard]] virtual net::Node& local_node() const = 0;
  /// Snapshot of this socket's registry counters (zeros before init_obs).
  [[nodiscard]] SocketStats stats() const;

  /// Installs the copy-cost ablation: each modeled payload copy additionally
  /// delays the caller by (copy_fixed + copy_per_byte*n) * scale_pct / 100.
  /// scale_pct = 0 (default) restores pure accounting — the calibrated
  /// profile already embeds real copy time (DESIGN.md §10). Zero-copy
  /// transports record no copies, so the knob is inert for them; that
  /// asymmetry is the ablation.
  void set_copy_ablation(SimTime copy_fixed, PerByteCost copy_per_byte,
                         int scale_pct);

  /// Installs the selective-copy policy consulted per outbound message on
  /// zero-copy transports (DESIGN.md §14). Null (the default) is the legacy
  /// static-pool path: no consult, no extra cost, digests unchanged. The
  /// policy is shared per node so RegCache state is common to every socket
  /// the node owns. Kernel TCP never consults it — TCP's two copies are
  /// structural, not a choice.
  void set_copy_policy(std::shared_ptr<mem::CopyPolicy> policy);
  [[nodiscard]] bool has_copy_policy() const { return policy_ != nullptr; }

 protected:
  /// Binds this endpoint's counters into the simulation registry: per-socket
  /// `socket.*{socket=<label>.<serial>}`, aggregate `socket.*`, and per-link
  /// `socket.timeouts{link=a->b}`. Concrete transports call this once from
  /// their constructor, as soon as both endpoints' nodes are known.
  void init_obs(sim::Simulation* sim, int local_node, int peer_node,
                std::string_view transport_label);
  /// Counter bumps for every accepted send / delivered receive.
  void note_sent(std::uint64_t bytes);
  void note_received(std::uint64_t bytes);
  /// A timed operation gave up: counts per-socket, per-link and aggregate,
  /// and drops a trace instant naming the stall reason (`op`, e.g.
  /// "timeout.credit_stall").
  void note_timeout(std::string_view op);
  /// Records one modeled payload copy (mem/ledger.h): `mem.copies`/
  /// `mem.copy_bytes` counters plus a trace instant at `stage` (e.g.
  /// "tcp.user_to_kernel"). Accounting only — unless a copy-cost ablation
  /// scale is installed (set_copy_ablation), in which case the scaled copy
  /// time is additionally charged to the calling process. Zero-copy
  /// transports never call this; that absence IS their model.
  void note_copy(std::string_view stage, std::uint64_t bytes);
  /// Records span [start, now] as `socket.<label>.<op>` on the local node.
  void obs_span(SimTime start, std::string_view op, std::uint64_t bytes);
  [[nodiscard]] SimTime obs_now() const;

  /// Consults the installed copy policy (no-op returning false when none)
  /// for an outbound message in region `buffer_id`: charges the verdict's
  /// ledger entries and burns its cpu cost in the calling process. Returns
  /// true when the caller owes a policy_release() after the send completes.
  bool policy_acquire(std::uint64_t buffer_id, std::uint64_t bytes);
  /// Releases a register-on-the-fly pin (charges unpin time). No-op when
  /// no policy is installed or the verdict did not require release.
  void policy_release(std::uint64_t buffer_id, std::uint64_t bytes);

 private:
  sim::Simulation* sim_ = nullptr;
  obs::Hub* hub_ = nullptr;
  int node_id_ = -1;
  std::string label_;
  SimTime copy_fixed_{};
  PerByteCost copy_per_byte_{};
  int copy_scale_pct_ = 0;
  std::shared_ptr<mem::CopyPolicy> policy_;
  obs::Counter* c_msgs_sent_ = nullptr;
  obs::Counter* c_bytes_sent_ = nullptr;
  obs::Counter* c_msgs_recv_ = nullptr;
  obs::Counter* c_bytes_recv_ = nullptr;
  obs::Counter* c_timeouts_ = nullptr;
  obs::Counter* c_msgs_sent_total_ = nullptr;
  obs::Counter* c_msgs_recv_total_ = nullptr;
  obs::Counter* c_timeouts_total_ = nullptr;
  obs::Counter* c_timeouts_link_ = nullptr;
  obs::Histogram* h_msg_bytes_ = nullptr;
};

using SocketPair =
    std::pair<std::unique_ptr<SvSocket>, std::unique_ptr<SvSocket>>;

}  // namespace sv::sockets
