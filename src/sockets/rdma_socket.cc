#include "sockets/rdma_socket.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sv::sockets {

RdmaPushSocket::Side::Side(sim::Simulation* sim, int index)
    : slot_wait(sim, "rdma_sock.slots." + std::to_string(index)),
      delivered(sim, 0, "rdma_sock.delivered." + std::to_string(index)) {}

RdmaPushSocket::~RdmaPushSocket() = default;

RdmaPushSocket::RdmaPushSocket(std::shared_ptr<PairState> state, int side)
    : state_(std::move(state)), side_(side) {
  const Side& me = mine();
  const Side& peer = state_->sides[static_cast<std::size_t>(1 - side_)];
  init_obs(state_->sim, me.nic->node().id(), peer.nic->node().id(), "rdma");
}

SocketPair RdmaPushSocket::make_pair(via::Nic& a, via::Nic& b,
                                     RdmaSocketOptions options) {
  if (options.ring_slots == 0 || options.credit_batch == 0 ||
      options.credit_batch > options.ring_slots) {
    throw std::invalid_argument(
        "RdmaSocketOptions: need ring_slots >= credit_batch >= 1");
  }
  auto state = std::make_shared<PairState>(&a.sim(), options);
  auto va = a.create_vi();
  auto vb = b.create_vi();
  via::Nic::connect(*va, *vb);
  state->setup_side(0, a, std::move(va));
  state->setup_side(1, b, std::move(vb));
  for (int i = 0; i < 2; ++i) {
    a.sim().spawn("rdma_sock.demux" + std::to_string(i),
                  [state, i] { state->demux_loop(i); });
  }
  std::unique_ptr<SvSocket> sa(new RdmaPushSocket(state, 0));
  std::unique_ptr<SvSocket> sb(new RdmaPushSocket(std::move(state), 1));
  return {std::move(sa), std::move(sb)};
}

void RdmaPushSocket::PairState::setup_side(int i, via::Nic& nic,
                                           std::shared_ptr<via::Vi> vi) {
  Side& s = sides[static_cast<std::size_t>(i)];
  s.nic = &nic;
  s.vi = std::move(vi);
  s.slots = options.ring_slots;
  // Sanctioned modeled-DMA setup: connection-lifetime RDMA regions pinned
  // once at connect, not per-message staging; via::Nic charges the ledger.
  s.send_region = nic.register_memory(options.slot_bytes);  // svlint:allow(SV013)
  // The ring the *peer* RDMA-writes into (advertised by handle).
  s.ring = nic.register_memory(  // svlint:allow(SV013)
      static_cast<std::size_t>(options.slot_bytes) * options.ring_slots);
  s.control_pool = nic.register_memory(64);  // svlint:allow(SV013)
  // Control descriptors: notifications (one per incoming slot write) plus
  // credit updates and EOF.
  const std::uint32_t pool = options.ring_slots +
                             options.ring_slots / options.credit_batch + 2;
  for (std::uint32_t k = 0; k < pool; ++k) {
    post_control_recv(i);
  }
}

void RdmaPushSocket::PairState::post_control_recv(int i) {
  Side& s = sides[static_cast<std::size_t>(i)];
  via::Descriptor d;
  d.region = s.control_pool;
  d.offset = 0;
  d.length = 0;  // notifications carry no data of their own
  s.vi->post_recv(std::move(d));
}

void RdmaPushSocket::PairState::send_control(int i, Kind kind,
                                             std::uint32_t value) {
  Side& s = sides[static_cast<std::size_t>(i)];
  via::Descriptor d;
  d.region = s.send_region;
  d.length = 0;
  d.immediate = (static_cast<std::uint32_t>(kind) << kKindShift) |
                (value & kValueMask);
  s.vi->post_send(std::move(d));
  while (s.vi->send_cq().poll()) {
  }
}

void RdmaPushSocket::PairState::demux_loop(int i) {
  Side& me = sides[static_cast<std::size_t>(i)];
  Side& peer = sides[static_cast<std::size_t>(1 - i)];
  while (true) {
    via::Completion c = me.vi->recv_cq().wait();
    if (c.status != via::Status::kSuccess) {
      throw std::logic_error("RdmaPushSocket: VIA receive error: " +
                             std::string(via::status_name(c.status)));
    }
    post_control_recv(i);  // keep the notification pool full
    const auto kind = static_cast<Kind>(c.immediate >> kKindShift);
    const std::uint32_t value = c.immediate & kValueMask;
    switch (kind) {
      case kCredit:
        me.slots += value;
        me.slot_wait.notify_all();
        break;
      case kEof:
        if (!me.delivered.closed()) me.delivered.close();
        break;
      case kFirst:
        me.pending_chunks = value;
        [[fallthrough]];
      case kCont: {
        --me.pending_chunks;
        ++me.consumed_since_credit;
        if (me.pending_chunks == 0) {
          if (peer.outgoing_meta.empty()) {
            throw std::logic_error("RdmaPushSocket: data without metadata");
          }
          net::Message m = std::move(peer.outgoing_meta.front());
          peer.outgoing_meta.pop_front();
          m.delivered_at = sim->now();
          if (!me.delivered.closed()) {
            me.delivered.send(std::move(m));
          }
        }
        if (me.consumed_since_credit >= options.credit_batch) {
          send_control(i, kCredit, me.consumed_since_credit);
          me.consumed_since_credit = 0;
        }
        break;
      }
    }
  }
}

net::Node& RdmaPushSocket::local_node() const { return mine().nic->node(); }

std::uint32_t RdmaPushSocket::available_slots() const { return mine().slots; }

void RdmaPushSocket::send(net::Message m) {
  (void)send_impl(std::move(m), /*timed=*/false, SimTime::zero());
}

Result<void> RdmaPushSocket::send_for(net::Message m, SimTime timeout) {
  if (timeout <= SimTime::zero()) {
    send(std::move(m));
    return Result<void>::success();
  }
  return send_impl(std::move(m), /*timed=*/true,
                   state_->sim->now() + timeout);
}

Result<void> RdmaPushSocket::send_impl(net::Message m, bool timed,
                                       SimTime deadline) {
  Side& me = mine();
  Side& peer = state_->sides[static_cast<std::size_t>(1 - side_)];
  if (me.send_closed) {
    throw std::logic_error("RdmaPushSocket::send after close");
  }
  const SimTime start = obs_now();
  m.sent_at = state_->sim->now();

  // Selective-copy policy consult (DESIGN.md §14); null policy = legacy
  // static ring staging, zero extra cost.
  const std::uint64_t buffer = m.buffer;
  const bool release = policy_acquire(buffer, m.bytes);

  const std::uint64_t slot_bytes = state_->options.slot_bytes;
  const std::uint64_t nchunks =
      std::max<std::uint64_t>(1, (m.bytes + slot_bytes - 1) / slot_bytes);
  if (nchunks > kValueMask) {
    throw std::invalid_argument("RdmaPushSocket::send: message too large");
  }
  const std::uint64_t total = m.bytes;
  me.outgoing_meta.push_back(std::move(m));
  std::uint64_t remaining = total;
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    while (me.slots == 0) {
      if (!timed) {
        me.slot_wait.wait();
        continue;
      }
      const SimTime left = deadline - state_->sim->now();
      if (left > SimTime::zero() && me.slot_wait.wait_for(left)) {
        continue;
      }
      if (me.slots == 0) {
        if (release) policy_release(buffer, total);
        note_timeout("timeout.slot_stall");
        return Error::timeout(
            "RdmaPushSocket: slot stall — receiver returned no ring slots "
            "before the send deadline");
      }
    }
    --me.slots;
    const std::uint64_t len = std::min(remaining, slot_bytes);
    remaining -= len;
    via::Descriptor d;
    d.op = via::Opcode::kRdmaWrite;
    d.region = me.send_region;
    d.offset = 0;
    d.length = len;
    d.remote_handle = peer.ring->handle();
    d.remote_offset =
        (me.next_slot++ % state_->options.ring_slots) * slot_bytes;
    d.remote_notify = true;
    d.immediate =
        i == 0 ? ((kFirst << kKindShift) |
                  (static_cast<std::uint32_t>(nchunks) & kValueMask))
               : (kCont << kKindShift);
    me.vi->post_send(std::move(d));
    while (me.vi->send_cq().poll()) {
    }
  }
  if (release) policy_release(buffer, total);
  note_sent(total);
  obs_span(start, "send", total);
  return Result<void>::success();
}

std::optional<net::Message> RdmaPushSocket::recv() {
  const SimTime start = obs_now();
  auto m = mine().delivered.recv();
  if (m) {
    note_received(m->bytes);
    obs_span(start, "recv", m->bytes);
  }
  return m;
}

Result<std::optional<net::Message>> RdmaPushSocket::recv_for(
    SimTime timeout) {
  const SimTime start = obs_now();
  auto r = mine().delivered.recv_for(timeout);
  if (r.ok() && r.value()) {
    note_received(r.value()->bytes);
    obs_span(start, "recv", r.value()->bytes);
  } else if (!r.ok()) {
    note_timeout("timeout.recv");
  }
  return r;
}

std::optional<net::Message> RdmaPushSocket::try_recv() {
  auto m = mine().delivered.try_recv();
  if (m) {
    note_received(m->bytes);
  }
  return m;
}

void RdmaPushSocket::close_send() {
  Side& me = mine();
  if (me.send_closed) return;
  me.send_closed = true;
  state_->send_control(side_, kEof, 0);
}

}  // namespace sv::sockets
