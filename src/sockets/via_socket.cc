#include "sockets/via_socket.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sv::sockets {

DetailedViaSocket::Side::Side(sim::Simulation* sim, int index)
    : credit_wait(sim, "via_sock.credits." + std::to_string(index)),
      delivered(sim, 0, "via_sock.delivered." + std::to_string(index)) {}

DetailedViaSocket::~DetailedViaSocket() = default;

DetailedViaSocket::DetailedViaSocket(std::shared_ptr<PairState> state,
                                     int side)
    : state_(std::move(state)), side_(side) {
  const Side& me = mine();
  const Side& peer = state_->sides[static_cast<std::size_t>(1 - side_)];
  init_obs(state_->sim, me.nic->node().id(), peer.nic->node().id(), "svia");
}

SocketPair DetailedViaSocket::make_pair(via::Nic& a, via::Nic& b,
                                        ViaSocketOptions options) {
  if (options.credits == 0 || options.credit_batch == 0 ||
      options.credit_batch > options.credits) {
    throw std::invalid_argument(
        "ViaSocketOptions: need credits >= credit_batch >= 1");
  }
  auto state = std::make_shared<PairState>(&a.sim(), options);
  auto va = a.create_vi();
  auto vb = b.create_vi();
  via::Nic::connect(*va, *vb);
  state->setup_side(0, a, std::move(va));
  state->setup_side(1, b, std::move(vb));
  for (int i = 0; i < 2; ++i) {
    a.sim().spawn(
        "via_sock.demux" + std::to_string(i) + ".node" +
            std::to_string(state->sides[static_cast<std::size_t>(i)]
                               .nic->node()
                               .id()),
        [state, i] { state->demux_loop(i); });
  }
  std::unique_ptr<SvSocket> sa(new DetailedViaSocket(state, 0));
  std::unique_ptr<SvSocket> sb(new DetailedViaSocket(std::move(state), 1));
  return {std::move(sa), std::move(sb)};
}

void DetailedViaSocket::PairState::setup_side(int i, via::Nic& nic,
                                              std::shared_ptr<via::Vi> vi) {
  Side& s = sides[static_cast<std::size_t>(i)];
  s.nic = &nic;
  s.vi = std::move(vi);
  s.credits = options.credits;
  obs::Registry& reg = sim->obs().registry;
  auto& serial = reg.counter("via_sock.sides");
  serial.inc();
  s.credit_updates = &reg.counter("via_sock.credit_updates{side=" +
                                  std::to_string(serial.value()) + "}");
  // Control slack: credit updates and EOF do not spend data credits, so the
  // pool holds extra descriptors for them.
  const std::uint32_t control_slack =
      options.credits / options.credit_batch + 2;
  // Sanctioned modeled-DMA setup: these pins are connection-lifetime VIA
  // descriptor regions, not per-message staging, and via::Nic charges them
  // to the registration ledger itself.
  s.send_region = nic.register_memory(options.chunk_bytes);  // svlint:allow(SV013)
  s.recv_pool = nic.register_memory(options.chunk_bytes);  // svlint:allow(SV013)
  for (std::uint32_t k = 0; k < options.credits + control_slack; ++k) {
    post_one_recv(i);
  }
}

void DetailedViaSocket::PairState::post_one_recv(int i) {
  Side& s = sides[static_cast<std::size_t>(i)];
  via::Descriptor d;
  d.region = s.recv_pool;
  d.offset = 0;
  d.length = options.chunk_bytes;
  s.vi->post_recv(std::move(d));
}

void DetailedViaSocket::PairState::send_control(int i, Kind kind,
                                                std::uint32_t value) {
  Side& s = sides[static_cast<std::size_t>(i)];
  via::Descriptor d;
  d.region = s.send_region;
  d.length = 0;
  d.immediate = (static_cast<std::uint32_t>(kind) << kKindShift) |
                (value & kValueMask);
  s.vi->post_send(std::move(d));
  while (s.vi->send_cq().poll()) {
  }
}

void DetailedViaSocket::PairState::demux_loop(int i) {
  Side& me = sides[static_cast<std::size_t>(i)];
  Side& peer = sides[static_cast<std::size_t>(1 - i)];
  while (true) {
    via::Completion c = me.vi->recv_cq().wait();
    if (c.status != via::Status::kSuccess) {
      throw std::logic_error("SocketVIA: unexpected VIA receive error: " +
                             std::string(via::status_name(c.status)));
    }
    // Immediately re-post the consumed descriptor to keep the pool full —
    // the invariant that makes credit-gated sends always land.
    post_one_recv(i);
    const auto kind = static_cast<Kind>(c.immediate >> kKindShift);
    const std::uint32_t value = c.immediate & kValueMask;
    switch (kind) {
      case kCredit:
        // Credits returned for data *this side* previously sent.
        me.credits += value;
        me.credit_wait.notify_all();
        break;
      case kEof:
        if (!me.delivered.closed()) me.delivered.close();
        break;
      case kFirst:
        me.pending_chunks = value;
        [[fallthrough]];
      case kCont: {
        --me.pending_chunks;
        // Receiver-side socket bookkeeping delta over raw VIA.
        sim->delay(SimTime::nanoseconds(100));
        ++me.consumed_since_credit;
        if (me.pending_chunks == 0) {
          // The message is complete; metadata comes from the peer's side
          // queue, in order.
          sim->delay(SimTime::nanoseconds(250));
          if (peer.outgoing_meta.empty()) {
            throw std::logic_error("SocketVIA: data chunk without metadata");
          }
          net::Message m = std::move(peer.outgoing_meta.front());
          peer.outgoing_meta.pop_front();
          m.delivered_at = sim->now();
          if (!me.delivered.closed()) {
            me.delivered.send(std::move(m));
          }
        }
        if (me.consumed_since_credit >= options.credit_batch) {
          send_control(i, kCredit, me.consumed_since_credit);
          me.credit_updates->inc();
          me.consumed_since_credit = 0;
        }
        break;
      }
    }
  }
}

net::Node& DetailedViaSocket::local_node() const {
  return mine().nic->node();
}

std::uint32_t DetailedViaSocket::available_credits() const {
  return mine().credits;
}

std::uint64_t DetailedViaSocket::credit_updates_sent() const {
  return mine().credit_updates == nullptr ? 0
                                          : mine().credit_updates->value();
}

void DetailedViaSocket::send(net::Message m) {
  // Untimed: the credit wait can only end with credits, so always ok.
  (void)send_impl(std::move(m), /*timed=*/false, SimTime::zero());
}

Result<void> DetailedViaSocket::send_for(net::Message m, SimTime timeout) {
  if (timeout <= SimTime::zero()) {
    send(std::move(m));
    return Result<void>::success();
  }
  return send_impl(std::move(m), /*timed=*/true,
                   state_->sim->now() + timeout);
}

Result<void> DetailedViaSocket::send_impl(net::Message m, bool timed,
                                          SimTime deadline) {
  Side& me = mine();
  if (me.send_closed) {
    throw std::logic_error("DetailedViaSocket::send after close");
  }
  const SimTime start = obs_now();
  m.sent_at = state_->sim->now();

  // Selective-copy policy consult (DESIGN.md §14): decides whether this
  // message is staged through the preregistered send_region (legacy /
  // eager) or pinned in place. No policy installed = static-pool default.
  const std::uint64_t buffer = m.buffer;
  const bool release = policy_acquire(buffer, m.bytes);

  const std::uint64_t chunk = state_->options.chunk_bytes;
  const std::uint64_t nchunks =
      std::max<std::uint64_t>(1, (m.bytes + chunk - 1) / chunk);
  if (nchunks > kValueMask) {
    throw std::invalid_argument("DetailedViaSocket::send: message too large");
  }
  // SocketVIA bookkeeping beyond raw VIA (buffer management, header build):
  // the calibrated delta between the SocketVIA and VIA profiles.
  state_->sim->delay(SimTime::nanoseconds(250));

  const std::uint64_t total = m.bytes;
  me.outgoing_meta.push_back(std::move(m));
  std::uint64_t remaining = total;
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    while (me.credits == 0) {
      if (!timed) {
        me.credit_wait.wait();
        continue;
      }
      // Credit-stall detection: a receiver that stops consuming (stalled
      // node, wedged filter) stops returning credits; bail out cleanly
      // instead of blocking this process forever.
      const SimTime left = deadline - state_->sim->now();
      if (left > SimTime::zero() && me.credit_wait.wait_for(left)) {
        continue;
      }
      if (me.credits == 0) {
        // A pinned-on-the-fly region is unpinned even on a failed send.
        if (release) policy_release(buffer, total);
        note_timeout("timeout.credit_stall");
        return Error::timeout(
            "SocketVIA: credit stall — receiver returned no credits "
            "before the send deadline");
      }
    }
    --me.credits;
    const std::uint64_t len = std::min(remaining, chunk);
    remaining -= len;
    via::Descriptor d;
    d.region = me.send_region;
    d.offset = 0;
    d.length = len;
    d.immediate =
        i == 0 ? ((kFirst << kKindShift) |
                  (static_cast<std::uint32_t>(nchunks) & kValueMask))
               : (kCont << kKindShift);
    // Per-chunk socket-layer work (the per-segment calibration delta).
    state_->sim->delay(SimTime::nanoseconds(100));
    me.vi->post_send(std::move(d));
    // Reap send completions opportunistically to keep the CQ shallow.
    while (me.vi->send_cq().poll()) {
    }
  }
  if (release) policy_release(buffer, total);
  note_sent(total);
  obs_span(start, "send", total);
  return Result<void>::success();
}

std::optional<net::Message> DetailedViaSocket::recv() {
  const SimTime start = obs_now();
  auto m = mine().delivered.recv();
  if (m) {
    note_received(m->bytes);
    obs_span(start, "recv", m->bytes);
  }
  return m;
}

Result<std::optional<net::Message>> DetailedViaSocket::recv_for(
    SimTime timeout) {
  const SimTime start = obs_now();
  auto r = mine().delivered.recv_for(timeout);
  if (r.ok() && r.value()) {
    note_received(r.value()->bytes);
    obs_span(start, "recv", r.value()->bytes);
  } else if (!r.ok()) {
    note_timeout("timeout.recv");
  }
  return r;
}

std::optional<net::Message> DetailedViaSocket::try_recv() {
  auto m = mine().delivered.try_recv();
  if (m) {
    note_received(m->bytes);
  }
  return m;
}

void DetailedViaSocket::close_send() {
  Side& me = mine();
  if (me.send_closed) return;
  me.send_closed = true;
  state_->send_control(side_, kEof, 0);
}

}  // namespace sv::sockets
