// SendMux: send-queue aggregation for thousands of connections per node.
//
// The paper's applications open one socket per peer and drive it from a
// dedicated thread — fine at 16 nodes, fatal at viz scale, where a single
// server fans out to thousands of clients. Following the aggregation design
// the Ibdxnet transport documents (arXiv:1812.01963), SendMux multiplexes
// any number of logical connections onto one net::Pipe per (src, dst) node
// pair and ONE sender process per node:
//
//   submit(conn, bytes)  appends a MuxRecord to the destination's send
//                        queue (bounded; overflow drops, like an open-loop
//                        generator's kernel socket buffer would) and marks
//                        the destination "interested".
//   sender process       round-robins over interested destinations,
//                        drains up to aggregate_max_{bytes,msgs} records
//                        into one aggregate net::Message (per-record
//                        framing header included), and blocks in
//                        Pipe::send — so fabric backpressure throttles
//                        the mux without a thread per connection.
//   sink process (1/pipe) receives aggregates at the destination, splits
//                        them, and hands each record to the delivery
//                        callback with its end-to-end enqueue→delivery
//                        latency observable.
//
// The interest-set protocol (a deque of destination ids plus a per-lane
// "interested" flag) makes scheduling deterministic: destinations are
// served in the order they became ready, and a lane re-arms itself at the
// tail only while it still holds queued records.
//
// Threading: process count is O(destinations), not O(connections) — the
// scaling property the open-loop harness (src/harness/openloop.h) relies
// on to model millions of clients.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/copy_policy.h"
#include "mem/payload.h"
#include "net/calibration.h"
#include "net/cluster.h"
#include "net/fabric.h"
#include "sim/sync.h"

namespace sv::sockets {

/// One multiplexed application message inside an aggregate.
struct MuxRecord {
  std::uint64_t conn = 0;   ///< logical connection id (SendMux-assigned)
  std::uint64_t bytes = 0;  ///< application payload size
  SimTime enqueued{};       ///< when submit() queued it at the sender
  /// Buffer-region id for the selective-copy policy (0 = anonymous).
  std::uint64_t buffer = 0;
  /// Optional pooled payload. Refcounted: when the record is dropped at a
  /// full lane (or delivered and discarded), the last reference releases
  /// the chunk back to its BufferPool — `mem.pool_reuse` must reconcile.
  mem::Payload payload{};
};

struct SendMuxConfig {
  net::Transport transport = net::Transport::kSocketVia;
  /// Aggregate size caps: a batch closes at whichever limit hits first.
  std::uint64_t aggregate_max_bytes = 64 * 1024;
  std::size_t aggregate_max_msgs = 64;
  /// Per-record framing overhead charged to the wire (conn id + length).
  std::uint64_t header_bytes = 16;
  /// Per-destination send-queue bound; submit() beyond it drops (the
  /// open-loop analogue of a full kernel socket buffer).
  std::uint64_t queue_cap_bytes = 4 * 1024 * 1024;
  /// Flow-control window override for the underlying pipes (0 = profile
  /// default).
  std::uint64_t window_bytes = 0;
  /// Selective-copy policy consulted per drained record in the sender
  /// process (DESIGN.md §14). kStaticPool (default) = no consult, no
  /// engine, digests unchanged.
  mem::CopyPolicyConfig copy_policy{};
};

class SendMux {
 public:
  /// Called at the destination for every delivered record. `delivered_at`
  /// minus `rec.enqueued` is the client-visible update latency (queueing +
  /// aggregation + fabric).
  using DeliveryFn =
      std::function<void(int dst_node, const MuxRecord& rec,
                         SimTime delivered_at)>;

  /// One mux per sending node. Pipes to destinations are created lazily on
  /// first open_connection(); the sender process starts immediately.
  SendMux(sim::Simulation* sim, net::Cluster* cluster, int node,
          SendMuxConfig cfg, DeliveryFn on_delivery);
  ~SendMux();

  SendMux(const SendMux&) = delete;
  SendMux& operator=(const SendMux&) = delete;

  /// Opens a logical connection to `dst_node`; returns its id. O(1)
  /// simulated cost: connections are bookkeeping rows, not processes.
  std::uint64_t open_connection(int dst_node);

  /// Queues `bytes` on `conn`'s destination lane. Returns false (and
  /// counts a drop) when the lane's queue is at capacity. Never blocks —
  /// open-loop generators must not be flow-controlled by the system under
  /// test.
  bool submit(std::uint64_t conn, std::uint64_t bytes);

  /// As above, carrying a pooled payload and its buffer-region id for the
  /// copy policy. A dropped record destroys its payload immediately, which
  /// returns the chunk to its BufferPool (the refcount contract the
  /// overflow tests pin down).
  bool submit(std::uint64_t conn, std::uint64_t bytes, std::uint64_t buffer,
              mem::Payload payload);

  /// Closes a logical connection; records already queued still deliver.
  void close_connection(std::uint64_t conn);

  /// Drops every record still queued on the lane to `dst_node`, returning
  /// how many were discarded (counted under `mux.flushed`). Dropped
  /// payloads release their pooled chunks immediately. Used by the SLO
  /// control plane when `dst_node` is demoted: stale queued updates to a
  /// degraded replica would only arrive late, so they are shed rather
  /// than delivered. Records already drained into an in-flight aggregate
  /// still deliver. No-op for lanes that were never opened.
  std::uint64_t flush_lane(int dst_node);

  /// Flushes this node's registration cache (DESIGN.md §14), charging the
  /// deregistrations, and returns the bytes unpinned. Demoting a node
  /// must release its pinned memory — a degraded replica holding
  /// pin-down cache entries would defeat the point of shifting load off
  /// it. Returns 0 when no RegCache policy is configured.
  std::uint64_t flush_registrations();

  /// Stops intake; the sender process drains every lane, closes the pipes
  /// (sinks exit after the last delivery), then exits. Idempotent.
  void shutdown();

  [[nodiscard]] int node() const;
  [[nodiscard]] std::size_t open_connection_rows() const;
  /// Aggregates sent so far (reporting).
  [[nodiscard]] std::uint64_t batches() const;
  /// Records dropped at full lanes so far (reporting).
  [[nodiscard]] std::uint64_t drops() const;

 private:
  /// Per-destination lane: the shared pipe, its FIFO of pending records,
  /// and the interest flag for the sender's round-robin.
  struct Lane {
    std::unique_ptr<net::Pipe> pipe;
    std::deque<MuxRecord> q;
    std::uint64_t queued_bytes = 0;
    bool interested = false;
    bool sink_spawned = false;
  };

  /// Mutable state co-owned by the sender/sink processes (Pipe-style), so
  /// the SendMux handle may be destroyed while batches are in flight.
  struct State : std::enable_shared_from_this<State> {
    State(sim::Simulation* sim_in, net::Cluster* cluster_in, int node_in,
          SendMuxConfig cfg_in, DeliveryFn on_delivery_in);

    Lane& lane(int dst);
    void arm(int dst, Lane& l);
    void sender_loop();
    void sink_loop(int dst);

    sim::Simulation* sim;
    net::Cluster* cluster;
    int node;
    SendMuxConfig cfg;
    DeliveryFn on_delivery;
    std::string name;

    std::map<int, Lane> lanes;
    std::deque<int> interest;
    sim::WaitQueue work_waiters;
    bool stopping = false;
    bool drained = false;

    std::uint64_t next_conn = 0;
    /// conn id -> destination node; erased on close_connection.
    std::map<std::uint64_t, int> conn_dst;
    /// Per-record copy-policy engine (null under the static-pool default).
    std::unique_ptr<mem::CopyPolicy> policy;

    obs::Counter* c_submitted;
    obs::Counter* c_submitted_bytes;
    obs::Counter* c_drops;
    obs::Counter* c_batches;
    obs::Counter* c_batch_records;
    obs::Counter* c_delivered;
    obs::Counter* c_flushed;
    obs::Gauge* g_queued_bytes;
  };

  std::shared_ptr<State> st_;
};

}  // namespace sv::sockets
