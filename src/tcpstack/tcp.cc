#include "tcpstack/tcp.h"

#include <algorithm>
#include <stdexcept>

namespace sv::tcpstack {

TcpConnection::TcpConnection(TcpStack* stack, std::string name,
                             TcpOptions options)
    : stack_(stack),
      name_(std::move(name)),
      options_(options),
      send_space_(&stack->sim(), name_ + ".sndbuf"),
      tx_wake_(&stack->sim(), name_ + ".txwake"),
      recv_wait_(&stack->sim(), name_ + ".rcvwait") {}

std::uint64_t TcpConnection::peer_window_available() const {
  const std::uint64_t used = peer_->recv_buf_bytes_ + inflight_bytes_;
  if (used >= options_.recv_buffer) return 0;
  return options_.recv_buffer - used;
}

void TcpConnection::send(std::uint64_t bytes) {
  if (fin_queued_) {
    throw std::logic_error("TcpConnection[" + name_ + "]::send after close");
  }
  // Syscall entry, then copy into the socket buffer incrementally as ACKs
  // free space — like the kernel, so large writes overlap with transmission
  // instead of degenerating to stop-and-wait.
  stack_->node().tx_host().use(stack_->profile().send_fixed);
  // Copy in bounded quanta so transmission of early bytes overlaps the
  // copying of later ones (as the kernel's skb-at-a-time copy does).
  const std::uint64_t quantum = std::uint64_t{2} * options_.mss;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    std::uint64_t used = unsent_bytes_ + inflight_bytes_;
    while (used >= options_.send_buffer) {
      send_space_.wait();
      used = unsent_bytes_ + inflight_bytes_;
    }
    const std::uint64_t take =
        std::min({remaining, options_.send_buffer - used, quantum});
    stack_->node().tx_host().use(
        stack_->profile().send_per_byte.for_bytes(take));
    unsent_bytes_ += take;
    bytes_sent_ += take;
    remaining -= take;
    tx_wake_.notify_all();
    // Yield so the tx loop can interleave segment transmission with the
    // next copy quantum on the shared host path.
    stack_->sim().delay(SimTime::zero());
  }
}

void TcpConnection::close() {
  fin_queued_ = true;
  tx_wake_.notify_all();
}

std::uint64_t TcpConnection::recv(std::uint64_t max) {
  if (max == 0) return 0;
  while (recv_buf_bytes_ == 0 && !fin_received_) {
    recv_wait_.wait();
  }
  if (recv_buf_bytes_ == 0) return 0;  // clean end-of-stream
  // Syscall cost charged once data is deliverable.
  stack_->sim().delay(stack_->profile().recv_fixed);
  const std::uint64_t take = std::min(max, recv_buf_bytes_);
  recv_buf_bytes_ -= take;
  // Window opened: the peer's tx loop may resume.
  peer_->tx_wake_.notify_all();
  return take;
}

std::uint64_t TcpConnection::recv_exact(std::uint64_t n) {
  if (n == 0) return 0;
  // One MSG_WAITALL syscall: a single fixed cost, then drain until n bytes.
  bool charged = false;
  std::uint64_t total = 0;
  while (total < n) {
    while (recv_buf_bytes_ == 0 && !fin_received_) {
      recv_wait_.wait();
    }
    if (recv_buf_bytes_ == 0) break;  // EOF before n bytes
    if (!charged) {
      stack_->sim().delay(stack_->profile().recv_fixed);
      charged = true;
    }
    const std::uint64_t take = std::min(n - total, recv_buf_bytes_);
    recv_buf_bytes_ -= take;
    total += take;
    peer_->tx_wake_.notify_all();
  }
  return total;
}

void TcpConnection::tx_loop() {
  const std::uint64_t mss = options_.mss;
  while (true) {
    if (unsent_bytes_ == 0) {
      if (fin_queued_) break;
      tx_wake_.wait();
      continue;
    }
    const std::uint64_t window = peer_window_available();
    if (window == 0) {
      tx_wake_.wait();
      continue;
    }
    std::uint64_t seg = std::min({mss, unsent_bytes_, window});
    // Nagle: hold back a sub-MSS segment while data is in flight, unless
    // this flushes the stream (close pending with nothing more coming).
    if (options_.nagle && seg < mss && seg == unsent_bytes_ &&
        inflight_bytes_ > 0 && !fin_queued_) {
      tx_wake_.wait();
      continue;
    }
    unsent_bytes_ -= seg;
    inflight_bytes_ += seg;
    ++segments_sent_;
    const bool fin = fin_queued_ && unsent_bytes_ == 0;
    if (fin) fin_sent_ = true;
    // Piggyback any pending ACK for the reverse direction on this data
    // segment (standard TCP behaviour; prevents the Nagle/delayed-ACK
    // stall in request-response traffic).
    std::uint64_t piggyback = 0;
    if (unacked_segments_ > 0) {
      piggyback = unacked_bytes_;
      ++acks_sent_;
      unacked_segments_ = 0;
      unacked_bytes_ = 0;
    }
    stack_->transmit(TcpStack::Segment{this, seg, piggyback, fin});
    if (fin) break;
  }
  if (fin_queued_ && !fin_sent_) {
    fin_sent_ = true;
    stack_->transmit(TcpStack::Segment{this, 0, 0, true});
  }
}

void TcpConnection::on_segment(std::uint64_t bytes, bool fin) {
  recv_buf_bytes_ += bytes;
  bytes_received_ += bytes;
  if (fin) fin_received_ = true;
  recv_wait_.notify_all();
  ++unacked_segments_;
  unacked_bytes_ += bytes;
  maybe_ack();
}

void TcpConnection::maybe_ack() {
  if (!options_.delayed_ack || unacked_segments_ >= 2 || fin_received_) {
    send_ack_now();
    return;
  }
  if (!ack_timer_armed_) {
    ack_timer_armed_ = true;
    stack_->sim().schedule(options_.delayed_ack_timeout, [this] {
      ack_timer_armed_ = false;
      if (unacked_segments_ > 0) send_ack_now();
    });
  }
}

void TcpConnection::send_ack_now() {
  // Pure ACKs bypass the socket buffer; enqueue straight to the wire (the
  // kernel generates them in interrupt context). wire_out_ is unbounded, so
  // this is safe from both process and event contexts.
  stack_->wire_out_.send(TcpStack::Segment{this, 0, unacked_bytes_, false});
  ++acks_sent_;
  unacked_segments_ = 0;
  unacked_bytes_ = 0;
}

void TcpConnection::on_ack(std::uint64_t acked_bytes) {
  inflight_bytes_ -= std::min(inflight_bytes_, acked_bytes);
  send_space_.notify_all();
  tx_wake_.notify_all();
}

TcpStack::TcpStack(sim::Simulation* sim, net::Node* node,
                   net::CalibrationProfile profile)
    : sim_(sim),
      node_(node),
      profile_(std::move(profile)),
      model_(profile_),
      wire_out_(sim, 0, node->name() + ".tcp_wire"),
      rx_queue_(sim, 0, node->name() + ".tcp_rx") {
  sim_->spawn(node->name() + ".tcp_wire_engine", [this] {
    while (auto seg = wire_out_.recv()) {
      TcpStack* dest = seg->sender->peer_->stack_;
      // Data segments occupy the inbound link for payload + headers; pure
      // ACKs cost one header's worth.
      dest->node_->link_in().use(model_.wire_time(seg->bytes));
      auto shared = std::make_shared<Segment>(*seg);
      sim_->schedule(profile_.propagation, [dest, shared] {
        dest->rx_queue_.send(*shared);
      });
    }
  });
  sim_->spawn(node->name() + ".tcp_rx_engine", [this] { rx_loop(); });
}

TcpStack::~TcpStack() {
  wire_out_.close();
  rx_queue_.close();
}

void TcpStack::transmit(Segment seg) {
  // Per-segment kernel TX work (header build, checksum, queueing).
  node_->tx_host().use(profile_.send_per_seg);
  wire_out_.send(seg);
}

void TcpStack::rx_loop() {
  while (auto seg = rx_queue_.recv()) {
    TcpConnection* receiver = seg->sender->peer_;
    if (seg->bytes > 0 || seg->fin) {
      // Interrupt + TCP/IP input + checksum + copy to the socket buffer.
      node_->rx_proto().use(profile_.recv_per_seg +
                            profile_.recv_per_byte.for_bytes(seg->bytes));
      receiver->on_segment(seg->bytes, seg->fin);
    }
    if (seg->ack > 0) {
      // ACK processing is cheap but not free.
      node_->rx_proto().use(SimTime::microseconds(1));
      receiver->on_ack(seg->ack);
    }
  }
}

std::pair<std::shared_ptr<TcpConnection>, std::shared_ptr<TcpConnection>>
TcpStack::connect(TcpStack& client, TcpStack& server, TcpOptions options) {
  // Three-way handshake: 1.5 RTT of small-message exchanges charged to the
  // connecting process.
  if (client.sim_->current() != nullptr) {
    client.sim_->delay(client.model_.one_way(0) * 3);
  }
  const auto id = client.next_conn_id_++;
  auto c = std::make_shared<TcpConnection>(
      &client, client.node_->name() + ".tcp" + std::to_string(id), options);
  auto s = std::make_shared<TcpConnection>(
      &server, server.node_->name() + ".tcp" + std::to_string(id), options);
  c->peer_ = s.get();
  s->peer_ = c.get();
  client.connections_.push_back(c);
  server.connections_.push_back(s);
  client.sim_->spawn(c->name() + ".tx", [conn = c.get()] { conn->tx_loop(); });
  server.sim_->spawn(s->name() + ".tx", [conn = s.get()] { conn->tx_loop(); });
  return {c, s};
}

}  // namespace sv::tcpstack
