#include "tcpstack/tcp.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "net/fault.h"

namespace sv::tcpstack {

TcpConnection::TcpConnection(TcpStack* stack, std::string name,
                             TcpOptions options)
    : stack_(stack),
      name_(std::move(name)),
      options_(options),
      rto_current_(options.rto_initial),
      send_space_(&stack->sim(), name_ + ".sndbuf"),
      tx_wake_(&stack->sim(), name_ + ".txwake"),
      recv_wait_(&stack->sim(), name_ + ".rcvwait") {
  obs::Registry& reg = stack_->sim().obs().registry;
  // Endpoint names can repeat across independent connect() calls; a
  // creation serial keeps the metric family unique per endpoint (creation
  // order is deterministic, so names are stable per seed).
  auto& serial = reg.counter("tcpstack.connections");
  serial.inc();
  const std::string cl =
      "{conn=" + name_ + "#" + std::to_string(serial.value()) + "}";
  c_bytes_sent_ = &reg.counter("tcpstack.bytes_sent" + cl);
  c_bytes_received_ = &reg.counter("tcpstack.bytes_received" + cl);
  c_segments_sent_ = &reg.counter("tcpstack.segments_sent" + cl);
  c_acks_sent_ = &reg.counter("tcpstack.acks_sent" + cl);
  c_retx_ = &reg.counter("tcpstack.segments_retransmitted" + cl);
  c_rto_expirations_ = &reg.counter("tcpstack.rto_expirations" + cl);
  c_fast_retx_ = &reg.counter("tcpstack.fast_retransmits" + cl);
  c_dup_acks_ = &reg.counter("tcpstack.dup_acks_received" + cl);
  c_ooo_ = &reg.counter("tcpstack.ooo_segments_received" + cl);
}

void TcpConnection::bind_link_obs() {
  const std::string ll = "{link=" + std::to_string(stack_->node().id()) +
                         "->" + std::to_string(peer_->stack_->node().id()) +
                         "}";
  c_retx_link_ =
      &stack_->sim().obs().registry.counter("tcpstack.segments_retransmitted" +
                                            ll);
}

obs::Tracer& TcpConnection::tracer() const {
  return stack_->sim().obs().tracer;
}

int TcpConnection::node_id() const { return stack_->node().id(); }

net::Node& TcpConnection::peer_node() const { return peer_->stack_->node(); }

std::uint64_t TcpConnection::peer_window_available() const {
  const std::uint64_t used = peer_->recv_buf_bytes_ + inflight_bytes_;
  if (used >= options_.recv_buffer) return 0;
  return options_.recv_buffer - used;
}

void TcpConnection::send(std::uint64_t bytes) {
  // Timing-only stream: a virtual payload flows through the exact same
  // segmentation/reassembly machinery as materialized bytes.
  (void)send_impl(mem::Payload::virtual_bytes(bytes), SimTime::zero());
}

void TcpConnection::send_payload(mem::Payload payload) {
  (void)send_impl(std::move(payload), SimTime::zero());
}

Result<void> TcpConnection::send_for(std::uint64_t bytes, SimTime timeout) {
  return send_impl(mem::Payload::virtual_bytes(bytes), timeout);
}

Result<void> TcpConnection::send_payload_for(mem::Payload payload,
                                             SimTime timeout) {
  return send_impl(std::move(payload), timeout);
}

Result<void> TcpConnection::send_impl(mem::Payload payload, SimTime timeout) {
  if (fin_queued_) {
    throw std::logic_error("TcpConnection[" + name_ + "]::send after close");
  }
  const bool timed = timeout > SimTime::zero();
  const SimTime deadline = stack_->sim().now() + timeout;
  // Syscall entry, then copy into the socket buffer incrementally as ACKs
  // free space — like the kernel, so large writes overlap with transmission
  // instead of degenerating to stop-and-wait.
  stack_->node().tx_host().use(stack_->profile().send_fixed);
  // Copy in bounded quanta so transmission of early bytes overlaps the
  // copying of later ones (as the kernel's skb-at-a-time copy does). The
  // buffered quantum is a zero-copy slice; the user→kernel copy *time* is
  // the send_per_byte charge below, and the copy *event* is counted once
  // per message by the socket layer (mem/ledger.h).
  const std::uint64_t quantum = std::uint64_t{2} * options_.mss;
  const std::uint64_t bytes = payload.size();
  std::uint64_t offset = 0;
  while (offset < bytes) {
    std::uint64_t used = unsent_bytes_ + inflight_bytes_;
    while (used >= options_.send_buffer) {
      if (timed) {
        const SimTime left = deadline - stack_->sim().now();
        if (left <= SimTime::zero() || !send_space_.wait_for(left)) {
          used = unsent_bytes_ + inflight_bytes_;
          if (used < options_.send_buffer) break;  // raced with an ACK
          return Error::timeout("TcpConnection[" + name_ +
                                "]: send timed out with a full socket buffer "
                                "(peer not ACKing)");
        }
      } else {
        send_space_.wait();
      }
      used = unsent_bytes_ + inflight_bytes_;
    }
    const std::uint64_t take =
        std::min({bytes - offset, options_.send_buffer - used, quantum});
    stack_->node().tx_host().use(
        stack_->profile().send_per_byte.for_bytes(take));
    unsent_stream_.push(payload.slice(offset, take));
    unsent_bytes_ += take;
    c_bytes_sent_->inc(take);
    offset += take;
    tx_wake_.notify_all();
    // Yield so the tx loop can interleave segment transmission with the
    // next copy quantum on the shared host path.
    stack_->sim().delay(SimTime::zero());
  }
  return Result<void>::success();
}

void TcpConnection::close() {
  fin_queued_ = true;
  tx_wake_.notify_all();
}

std::uint64_t TcpConnection::recv(std::uint64_t max) {
  if (max == 0) return 0;
  while (recv_buf_bytes_ == 0 && !fin_received_) {
    recv_wait_.wait();
  }
  if (recv_buf_bytes_ == 0) return 0;  // clean end-of-stream
  // Syscall cost charged once data is deliverable.
  stack_->sim().delay(stack_->profile().recv_fixed);
  const std::uint64_t take = std::min(max, recv_buf_bytes_);
  (void)recv_stream_.pop(take);  // byte-count caller: discard the views
  recv_buf_bytes_ -= take;
  // Window opened: the peer's tx loop may resume.
  peer_->tx_wake_.notify_all();
  return take;
}

std::uint64_t TcpConnection::recv_exact(std::uint64_t n) {
  return recv_exact_impl(n, SimTime::zero(), nullptr).value();
}

mem::Payload TcpConnection::recv_exact_payload(std::uint64_t n) {
  mem::Payload out;
  (void)recv_exact_impl(n, SimTime::zero(), &out);
  return out;
}

Result<std::uint64_t> TcpConnection::recv_exact_for(std::uint64_t n,
                                                    SimTime timeout) {
  return recv_exact_impl(n, timeout, nullptr);
}

Result<mem::Payload> TcpConnection::recv_exact_payload_for(std::uint64_t n,
                                                           SimTime timeout) {
  mem::Payload out;
  auto r = recv_exact_impl(n, timeout, &out);
  if (!r.ok()) return r.error();
  return out;
}

Result<std::uint64_t> TcpConnection::recv_exact_impl(std::uint64_t n,
                                                     SimTime timeout,
                                                     mem::Payload* out) {
  if (n == 0) return std::uint64_t{0};
  const bool timed = timeout > SimTime::zero();
  const SimTime deadline = stack_->sim().now() + timeout;
  // One MSG_WAITALL syscall: a single fixed cost, then drain until n bytes.
  bool charged = false;
  std::uint64_t total = 0;
  while (total < n) {
    while (recv_buf_bytes_ == 0 && !fin_received_) {
      if (timed) {
        const SimTime remaining = deadline - stack_->sim().now();
        if (remaining <= SimTime::zero() ||
            !recv_wait_.wait_for(remaining)) {
          if (recv_buf_bytes_ > 0 || fin_received_) break;  // raced with data
          return Error::timeout("TcpConnection[" + name_ +
                                "]: recv timed out after " +
                                timeout.to_string());
        }
      } else {
        recv_wait_.wait();
      }
    }
    if (recv_buf_bytes_ == 0) break;  // EOF before n bytes
    if (!charged) {
      stack_->sim().delay(stack_->profile().recv_fixed);
      charged = true;
    }
    const std::uint64_t take = std::min(n - total, recv_buf_bytes_);
    mem::Payload part = recv_stream_.pop(take);
    if (out != nullptr) *out = out->concat(part);
    recv_buf_bytes_ -= take;
    total += take;
    peer_->tx_wake_.notify_all();
  }
  return total;
}

void TcpConnection::tx_loop() {
  const std::uint64_t mss = options_.mss;
  while (true) {
    // Loss recovery has priority over new data: the RTO handler and fast
    // retransmit run in event context, where blocking transmission is
    // illegal, so they hand the actual re-send to this process.
    if (retx_pending_) {
      retx_pending_ = false;
      if (!unacked_.empty()) {
        retransmit_front();
        continue;
      }
    }
    if (unsent_bytes_ == 0) {
      if (fin_queued_ && !fin_sent_) {
        send_segment(0, true);  // pure FIN
        continue;
      }
      if (fin_sent_ && unacked_.empty()) break;  // everything delivered+ACKed
      tx_wake_.wait();
      continue;
    }
    const std::uint64_t window = peer_window_available();
    if (window == 0) {
      tx_wake_.wait();
      continue;
    }
    const std::uint64_t seg = std::min({mss, unsent_bytes_, window});
    // Nagle: hold back a sub-MSS segment while data is in flight, unless
    // this flushes the stream (close pending with nothing more coming).
    if (options_.nagle && seg < mss && seg == unsent_bytes_ &&
        inflight_bytes_ > 0 && !fin_queued_) {
      tx_wake_.wait();
      continue;
    }
    unsent_bytes_ -= seg;
    send_segment(seg, fin_queued_ && unsent_bytes_ == 0);
  }
}

void TcpConnection::send_segment(std::uint64_t bytes, bool fin) {
  const std::uint64_t seq = snd_nxt_;
  snd_nxt_ += bytes + (fin ? 1 : 0);  // FIN occupies one sequence number
  inflight_bytes_ += bytes;
  // Slice this segment's bytes off the unsent stream by reference; the
  // retransmit buffer holds the same views (no copy, ever).
  mem::Payload seg_payload;
  if (bytes > 0) {
    SV_DCHECK(unsent_stream_.bytes() >= bytes,
              "unsent stream out of sync with unsent_bytes_");
    seg_payload = unsent_stream_.pop(bytes);
  }
  unacked_.emplace(seq, SentSegment{bytes, fin, seg_payload});
  c_segments_sent_->inc();
  if (fin) {
    fin_sent_ = true;
    tracer().instant(stack_->sim().now(), node_id(), "tcp", "fin_sent", seq);
  }
  // Piggyback any pending ACK for the reverse direction on this data
  // segment (standard TCP behaviour; prevents the Nagle/delayed-ACK
  // stall in request-response traffic).
  bool has_ack = false;
  if (unacked_segments_ > 0) {
    has_ack = true;
    c_acks_sent_->inc();
    unacked_segments_ = 0;
  }
  stack_->transmit(TcpStack::Segment{this, seq, bytes, rcv_nxt_, has_ack, fin,
                                     std::move(seg_payload)});
  arm_rto();
}

void TcpConnection::retransmit_front() {
  const auto it = unacked_.begin();
  SV_DCHECK(it->first == snd_una_,
            "earliest unacked segment must start at snd_una");
  c_retx_->inc();
  if (c_retx_link_ != nullptr) c_retx_link_->inc();
  tracer().instant(stack_->sim().now(), node_id(), "tcp", "retx",
                   it->second.bytes);
  stack_->transmit(TcpStack::Segment{this, it->first, it->second.bytes,
                                     rcv_nxt_, false, it->second.fin,
                                     it->second.payload});
  arm_rto();
}

void TcpConnection::arm_rto() {
  if (rto_armed_ || unacked_.empty()) return;
  rto_armed_ = true;
  rto_event_ =
      stack_->sim().schedule(rto_current_, [this] { on_rto_expiry(); });
}

void TcpConnection::cancel_rto() {
  if (!rto_armed_) return;
  rto_armed_ = false;
  stack_->sim().cancel(rto_event_);
}

void TcpConnection::on_rto_expiry() {
  rto_armed_ = false;
  if (unacked_.empty()) return;  // ACK landed at the same instant
  c_rto_expirations_->inc();
  tracer().instant(stack_->sim().now(), node_id(), "tcp", "rto_expiry",
                   static_cast<std::uint64_t>(rto_current_.ns()));
  if (!in_recovery_episode_) {
    in_recovery_episode_ = true;
    recovery_started_ = stack_->sim().now();
  }
  rto_current_ = std::min(rto_current_ * 2, options_.rto_max);
  retx_pending_ = true;
  tx_wake_.notify_all();
}

void TcpConnection::on_segment(std::uint64_t seq, std::uint64_t bytes,
                               bool fin, mem::Payload payload) {
  const std::uint64_t seg_end = seq + bytes + (fin ? 1 : 0);
  if (seg_end <= rcv_nxt_) {
    // Spurious retransmission of fully-received data: re-ACK so the sender
    // can advance.
    send_ack_now();
    return;
  }
  if (seq > rcv_nxt_) {
    // A gap: hold for reassembly and emit an immediate duplicate ACK (the
    // signal fast retransmit counts). Fixed segment boundaries make the
    // map key collision-free; re-inserts of the same segment are no-ops.
    ooo_segments_.emplace(seq, OooSegment{bytes, fin, std::move(payload)});
    c_ooo_->inc();
    send_ack_now();
    return;
  }
  SV_DCHECK(seq == rcv_nxt_, "partial segment overlap is impossible with "
                             "fixed retransmit boundaries");
  accept_segment(bytes, fin, std::move(payload));
  // Drain the reassembly queue now contiguous with rcv_nxt.
  while (!ooo_segments_.empty()) {
    const auto it = ooo_segments_.begin();
    if (it->first > rcv_nxt_) break;
    if (it->first == rcv_nxt_) {
      accept_segment(it->second.bytes, it->second.fin,
                     std::move(it->second.payload));
    }
    ooo_segments_.erase(it);
  }
  recv_wait_.notify_all();
  maybe_ack();
}

void TcpConnection::accept_segment(std::uint64_t bytes, bool fin,
                                   mem::Payload payload) {
  SV_DCHECK(payload.size() == bytes, "segment payload/byte-count mismatch");
  rcv_nxt_ += bytes + (fin ? 1 : 0);
  recv_buf_bytes_ += bytes;
  recv_stream_.push(std::move(payload));
  c_bytes_received_->inc(bytes);
  if (fin) {
    fin_received_ = true;
    tracer().instant(stack_->sim().now(), node_id(), "tcp", "fin_received",
                     rcv_nxt_);
  }
  ++unacked_segments_;
}

void TcpConnection::maybe_ack() {
  if (!options_.delayed_ack || unacked_segments_ >= 2 || fin_received_) {
    send_ack_now();
    return;
  }
  if (!ack_timer_armed_) {
    ack_timer_armed_ = true;
    stack_->sim().schedule(options_.delayed_ack_timeout, [this] {
      ack_timer_armed_ = false;
      if (unacked_segments_ > 0) send_ack_now();
    });
  }
}

void TcpConnection::send_ack_now() {
  // Pure ACKs bypass the socket buffer; enqueue straight to the wire (the
  // kernel generates them in interrupt context). wire_out_ is unbounded, so
  // this is safe from both process and event contexts.
  stack_->wire_out_.send(
      TcpStack::Segment{this, 0, 0, rcv_nxt_, true, false});
  c_acks_sent_->inc();
  unacked_segments_ = 0;
}

void TcpConnection::on_ack(std::uint64_t ackno, bool pure) {
  if (ackno > snd_una_) {
    // Forward progress: retire fully-covered segments, reset the dup-ACK
    // count and the RTO backoff, and restart the timer for what remains.
    snd_una_ = ackno;
    while (!unacked_.empty()) {
      const auto it = unacked_.begin();
      const std::uint64_t end =
          it->first + it->second.bytes + (it->second.fin ? 1 : 0);
      if (end > ackno) break;
      inflight_bytes_ -= it->second.bytes;
      unacked_.erase(it);
    }
    dup_acks_ = 0;
    if (in_recovery_ && ackno >= recover_seq_) in_recovery_ = false;
    if (in_recovery_episode_ && !in_recovery_) {
      // Forward progress with fast recovery (if any) complete: the episode
      // that began at the first loss signal is over.
      in_recovery_episode_ = false;
      tracer().span(recovery_started_, stack_->sim().now(), node_id(), "tcp",
                    "recovery", ackno);
    }
    cancel_rto();
    rto_current_ = options_.rto_initial;
    arm_rto();  // no-op when everything is acknowledged
    send_space_.notify_all();
    tx_wake_.notify_all();
    return;
  }
  if (pure && ackno == snd_una_ && !unacked_.empty()) {
    c_dup_acks_->inc();
    if (++dup_acks_ == 3) {
      // Fast retransmit: three duplicate ACKs imply the next segment was
      // lost while later ones arrived; re-send without waiting for the RTO.
      // While in recovery, later dup ACKs for the same hole are ignored —
      // they are echoes of segments already in flight, not new losses.
      dup_acks_ = 0;
      if (!in_recovery_) {
        in_recovery_ = true;
        recover_seq_ = snd_nxt_;
        c_fast_retx_->inc();
        tracer().instant(stack_->sim().now(), node_id(), "tcp", "fast_retx",
                         ackno);
        if (!in_recovery_episode_) {
          in_recovery_episode_ = true;
          recovery_started_ = stack_->sim().now();
        }
        retx_pending_ = true;
        tx_wake_.notify_all();
      }
    }
  }
}

TcpStack::TcpStack(sim::Simulation* sim, net::Node* node,
                   net::CalibrationProfile profile)
    : sim_(sim),
      node_(node),
      profile_(std::move(profile)),
      model_(profile_),
      wire_out_(sim, 0, node->name() + ".tcp_wire"),
      rx_queue_(sim, 0, node->name() + ".tcp_rx") {
  sim_->spawn(node->name() + ".tcp_wire_engine", [this] {
    while (auto seg = wire_out_.recv()) {
      TcpStack* dest = seg->sender->peer_->stack_;
      // Data segments occupy the inbound link for payload + headers; pure
      // ACKs cost one header's worth.
      dest->node_->link_in().use(model_.wire_time(seg->bytes));
      SimTime extra = SimTime::zero();
      if (net::FaultInjector* inj = node_->fault_injector()) {
        const net::FaultDecision d =
            inj->on_frame(node_->id(), dest->node_->id());
        if (d.drop) continue;  // lost on the wire: TCP recovery takes over
        extra = d.extra_delay;
      }
      auto shared = std::make_shared<Segment>(*seg);
      sim_->schedule(profile_.propagation + extra, [dest, shared] {
        dest->rx_queue_.send(*shared);
      });
    }
  });
  sim_->spawn(node->name() + ".tcp_rx_engine", [this] { rx_loop(); });
}

TcpStack::~TcpStack() {
  wire_out_.close();
  rx_queue_.close();
}

void TcpStack::transmit(Segment seg) {
  // Per-segment kernel TX work (header build, checksum, queueing).
  node_->tx_host().use(profile_.send_per_seg);
  wire_out_.send(seg);
}

void TcpStack::rx_loop() {
  while (auto seg = rx_queue_.recv()) {
    TcpConnection* receiver = seg->sender->peer_;
    if (seg->bytes > 0 || seg->fin) {
      // Interrupt + TCP/IP input + checksum + copy to the socket buffer.
      node_->rx_proto().use(profile_.recv_per_seg +
                            profile_.recv_per_byte.for_bytes(seg->bytes));
      receiver->on_segment(seg->seq, seg->bytes, seg->fin,
                           std::move(seg->payload));
    }
    if (seg->has_ack) {
      // ACK processing is cheap but not free.
      node_->rx_proto().use(SimTime::microseconds(1));
      receiver->on_ack(seg->ack, seg->bytes == 0 && !seg->fin);
    }
  }
}

std::pair<std::shared_ptr<TcpConnection>, std::shared_ptr<TcpConnection>>
TcpStack::connect(TcpStack& client, TcpStack& server, TcpOptions options) {
  // Three-way handshake: 1.5 RTT of small-message exchanges charged to the
  // connecting process.
  if (client.sim_->current() != nullptr) {
    client.sim_->delay(client.model_.one_way(0) * 3);
  }
  const auto id = client.next_conn_id_++;
  auto c = std::make_shared<TcpConnection>(
      &client, client.node_->name() + ".tcp" + std::to_string(id), options);
  auto s = std::make_shared<TcpConnection>(
      &server, server.node_->name() + ".tcp" + std::to_string(id), options);
  c->peer_ = s.get();
  s->peer_ = c.get();
  c->bind_link_obs();
  s->bind_link_obs();
  client.connections_.push_back(c);
  server.connections_.push_back(s);
  client.sim_->spawn(c->name() + ".tx", [conn = c.get()] { conn->tx_loop(); });
  server.sim_->spawn(s->name() + ".tx", [conn = s.get()] { conn->tx_loop(); });
  return {c, s};
}

}  // namespace sv::tcpstack
