// A simplified in-simulator kernel TCP: the "traditional sockets" baseline.
//
// Executed machinery: MSS segmentation, sliding-window flow control against
// the receiver's buffer, cumulative ACKs with delayed-ACK (ack every 2nd
// segment or after a timeout), Nagle's algorithm, blocking send/recv with
// socket buffers, and FIN/close sequencing. Per-segment and per-syscall
// costs come from the calibrated kernel-TCP profile; segments occupy the
// same per-node tx/link/rx resources as every other transport, so TCP
// contends realistically with itself and with VIA traffic.
//
// Deliberate simplifications (documented in DESIGN.md): the fabric is
// loss-free and in-order, so retransmission and congestion control are not
// modeled (the paper's cLAN/FastEthernet LAN showed no loss either);
// receive-window state is read directly rather than carried in ACK headers
// (window *timing* effects are still modeled via the ACK-gated send buffer).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/calibration.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "sim/sync.h"

namespace sv::tcpstack {

struct TcpOptions {
  std::uint32_t mss = 1460;
  std::uint64_t send_buffer = 64 * 1024;
  std::uint64_t recv_buffer = 64 * 1024;
  bool nagle = true;
  bool delayed_ack = true;
  /// Delayed-ACK flush timeout (Linux-era default ~40 ms is far above any
  /// latency this paper studies; 200 us keeps it visible but realistic for
  /// a LAN benchmark kernel).
  SimTime delayed_ack_timeout = SimTime::microseconds(200);
};

class TcpStack;

/// One endpoint of an established connection. Byte-stream semantics.
class TcpConnection {
 public:
  TcpConnection(TcpStack* stack, std::string name, TcpOptions options);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Blocking send of `bytes` (copied into the socket buffer; blocks while
  /// the buffer is full). Returns when all bytes are buffered.
  void send(std::uint64_t bytes);

  /// Blocking receive: returns 1..max bytes, or 0 at end-of-stream.
  std::uint64_t recv(std::uint64_t max);

  /// MSG_WAITALL-style receive: blocks until exactly `n` bytes are drained
  /// (or end-of-stream; returns bytes actually read).
  std::uint64_t recv_exact(std::uint64_t n);

  /// Half-closes the sending direction (FIN after all queued data).
  void close();

  [[nodiscard]] bool send_closed() const { return fin_queued_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] const TcpOptions& options() const { return options_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TcpStack& stack() const { return *stack_; }
  /// Bytes currently buffered and readable without blocking.
  [[nodiscard]] std::uint64_t recv_buffered() const { return recv_buf_bytes_; }
  [[nodiscard]] bool eof_received() const { return fin_received_; }

 private:
  friend class TcpStack;

  void tx_loop();
  /// Receiver side: deliver segment payload bytes into the receive buffer.
  void on_segment(std::uint64_t bytes, bool fin);
  /// Sender side: cumulative ACK freeing socket-buffer space.
  void on_ack(std::uint64_t acked_bytes);
  void send_ack_now();
  void maybe_ack();
  [[nodiscard]] std::uint64_t peer_window_available() const;

  TcpStack* stack_;
  std::string name_;
  TcpOptions options_;
  TcpConnection* peer_ = nullptr;

  // --- send side ---
  std::uint64_t unsent_bytes_ = 0;    // buffered, not yet segmented
  std::uint64_t inflight_bytes_ = 0;  // segmented, not yet ACKed
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  sim::WaitQueue send_space_;  // senders blocked on a full socket buffer
  sim::WaitQueue tx_wake_;     // tx loop wakeups (data/ack/window)

  // --- receive side ---
  std::uint64_t recv_buf_bytes_ = 0;
  bool fin_received_ = false;
  std::uint64_t unacked_segments_ = 0;
  std::uint64_t unacked_bytes_ = 0;
  bool ack_timer_armed_ = false;
  sim::WaitQueue recv_wait_;

  // --- stats ---
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
};

/// The per-node kernel TCP instance.
class TcpStack {
 public:
  TcpStack(sim::Simulation* sim, net::Node* node,
           net::CalibrationProfile profile =
               net::CalibrationProfile::kernel_tcp());
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Establishes a connection between two stacks (three-way handshake cost
  /// charged to the caller, who must be a simulated process). Returns the
  /// (client_endpoint, server_endpoint) pair.
  static std::pair<std::shared_ptr<TcpConnection>,
                   std::shared_ptr<TcpConnection>>
  connect(TcpStack& client, TcpStack& server, TcpOptions options = {});

  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  [[nodiscard]] net::Node& node() { return *node_; }
  [[nodiscard]] const net::CostModel& model() const { return model_; }
  [[nodiscard]] const net::CalibrationProfile& profile() const {
    return profile_;
  }

 private:
  friend class TcpConnection;

  struct Segment {
    TcpConnection* sender;  // sending endpoint
    std::uint64_t bytes;    // payload bytes (0 for pure ACK)
    std::uint64_t ack;      // cumulative ack field (bytes being acked)
    bool fin = false;
  };

  /// Transmits one segment from `conn` (charges tx_host + wire + rx path).
  void transmit(Segment seg);
  void rx_loop();

  sim::Simulation* sim_;
  net::Node* node_;
  net::CalibrationProfile profile_;
  net::CostModel model_;
  sim::Channel<Segment> wire_out_;
  sim::Channel<Segment> rx_queue_;
  std::vector<std::shared_ptr<TcpConnection>> connections_;
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace sv::tcpstack
