// A simplified in-simulator kernel TCP: the "traditional sockets" baseline.
//
// Executed machinery: MSS segmentation, byte sequence numbers with
// cumulative ACKs, sliding-window flow control against the receiver's
// buffer, delayed-ACK (ack every 2nd segment or after a timeout), Nagle's
// algorithm, blocking send/recv with socket buffers, FIN/close sequencing,
// and real loss recovery: a retransmission timer with exponential backoff,
// duplicate-ACK fast retransmit, and out-of-order reassembly at the
// receiver. Per-segment and per-syscall costs come from the calibrated
// kernel-TCP profile; segments occupy the same per-node tx/link/rx
// resources as every other transport, so TCP contends realistically with
// itself and with VIA traffic.
//
// The fabric drops segments only under an installed net::FaultPlan
// (DESIGN.md §8; net/fault.h): the paper's cLAN/FastEthernet LAN was
// loss-free, so the baseline runs never retransmit, while fault-injection
// experiments exercise RTO expiry and fast retransmit deterministically.
//
// Deliberate simplifications (documented in DESIGN.md): congestion control
// is not modeled (no cwnd — the paper's LAN is a single switch with no
// cross traffic); receive-window state is read directly rather than carried
// in ACK headers (window *timing* effects are still modeled via the
// ACK-gated send buffer).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "mem/payload.h"
#include "net/calibration.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "obs/metrics.h"
#include "sim/sync.h"

namespace sv::tcpstack {

struct TcpOptions {
  std::uint32_t mss = 1460;
  std::uint64_t send_buffer = 64 * 1024;
  std::uint64_t recv_buffer = 64 * 1024;
  bool nagle = true;
  bool delayed_ack = true;
  /// Delayed-ACK flush timeout (Linux-era default ~40 ms is far above any
  /// latency this paper studies; 200 us keeps it visible but realistic for
  /// a LAN benchmark kernel).
  SimTime delayed_ack_timeout = SimTime::microseconds(200);
  /// Initial retransmission timeout. Scaled for a microsecond-RTT LAN
  /// (kernels of the era clamped RTO to >= 200 ms, which would make lossy
  /// runs glacial in simulated time without changing the recovery logic);
  /// comfortably above the delayed-ACK timeout so lone segments do not
  /// spuriously retransmit.
  SimTime rto_initial = SimTime::milliseconds(1);
  /// RTO ceiling for the exponential backoff (doubles per expiry).
  SimTime rto_max = SimTime::milliseconds(64);
};

class TcpStack;

/// One endpoint of an established connection. Byte-stream semantics.
class TcpConnection {
 public:
  TcpConnection(TcpStack* stack, std::string name, TcpOptions options);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Blocking send of `bytes` (copied into the socket buffer; blocks while
  /// the buffer is full). Returns when all bytes are buffered. Timing-only:
  /// the stream carries a virtual payload of `bytes` bytes.
  void send(std::uint64_t bytes);

  /// Blocking send of a payload chain. The stack slices it into segments
  /// by reference (mem/payload.h): retransmit buffers and reassembly hold
  /// views, never copies. The modeled user→kernel copy time is the
  /// send_per_byte charge; the *event* is counted by the socket layer.
  void send_payload(mem::Payload payload);

  /// Timed send: ErrorCode::kTimeout if socket-buffer space stops freeing
  /// up within `timeout` (a peer that stops ACKing, e.g. a stalled node).
  /// Bytes already buffered stay queued, so treat a timeout as fatal for
  /// the stream. `timeout` <= 0 means wait forever.
  [[nodiscard]] Result<void> send_for(std::uint64_t bytes, SimTime timeout);
  Result<void> send_payload_for(mem::Payload payload, SimTime timeout);

  /// Blocking receive: returns 1..max bytes, or 0 at end-of-stream.
  std::uint64_t recv(std::uint64_t max);

  /// MSG_WAITALL-style receive: blocks until exactly `n` bytes are drained
  /// (or end-of-stream; returns bytes actually read).
  std::uint64_t recv_exact(std::uint64_t n);

  /// recv_exact returning the drained bytes as a payload chain assembled
  /// zero-copy from the delivered segments (short on end-of-stream).
  mem::Payload recv_exact_payload(std::uint64_t n);

  /// recv_exact with a deadline: on timeout returns ErrorCode::kTimeout and
  /// the partially-drained byte count is lost to the caller, so treat a
  /// timeout as fatal for the stream (the recovery story the DataCutter
  /// runtime needs for stalled peers). `timeout` <= 0 means wait forever.
  Result<std::uint64_t> recv_exact_for(std::uint64_t n, SimTime timeout);
  Result<mem::Payload> recv_exact_payload_for(std::uint64_t n,
                                              SimTime timeout);

  /// Half-closes the sending direction (FIN after all queued data).
  void close();

  [[nodiscard]] bool send_closed() const { return fin_queued_; }
  // Statistics live in the simulation's obs::Registry under
  // `tcpstack.*{conn=<name>#<serial>}` (DESIGN.md §9); these accessors
  // forward to the registry counters.
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return c_bytes_sent_->value();
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return c_bytes_received_->value();
  }
  [[nodiscard]] std::uint64_t segments_sent() const {
    return c_segments_sent_->value();
  }
  [[nodiscard]] std::uint64_t acks_sent() const { return c_acks_sent_->value(); }
  /// Loss-recovery counters (all zero on a loss-free fabric).
  [[nodiscard]] std::uint64_t segments_retransmitted() const {
    return c_retx_->value();
  }
  [[nodiscard]] std::uint64_t rto_expirations() const {
    return c_rto_expirations_->value();
  }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return c_fast_retx_->value();
  }
  [[nodiscard]] std::uint64_t dup_acks_received() const {
    return c_dup_acks_->value();
  }
  [[nodiscard]] std::uint64_t ooo_segments_received() const {
    return c_ooo_->value();
  }
  /// Current RTO (exposed so tests can observe the exponential backoff).
  [[nodiscard]] SimTime current_rto() const { return rto_current_; }
  [[nodiscard]] const TcpOptions& options() const { return options_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TcpStack& stack() const { return *stack_; }
  /// The remote endpoint's node (valid once connected).
  [[nodiscard]] net::Node& peer_node() const;
  /// Bytes currently buffered and readable without blocking.
  [[nodiscard]] std::uint64_t recv_buffered() const { return recv_buf_bytes_; }
  [[nodiscard]] bool eof_received() const { return fin_received_; }

 private:
  friend class TcpStack;

  // Sent/held segments keep a zero-copy view of their payload slice so
  // retransmits and reassembly re-use the original storage (never copy).
  struct SentSegment {
    std::uint64_t bytes = 0;
    bool fin = false;
    mem::Payload payload{};
  };
  struct OooSegment {
    std::uint64_t bytes = 0;
    bool fin = false;
    mem::Payload payload{};
  };

  /// Common body of send/send_for (timeout <= 0 means wait forever).
  Result<void> send_impl(mem::Payload payload, SimTime timeout);
  /// Common body of the recv_exact family. When `out` is non-null the
  /// drained bytes are appended to it as zero-copy slices.
  Result<std::uint64_t> recv_exact_impl(std::uint64_t n, SimTime timeout,
                                        mem::Payload* out);
  void tx_loop();
  /// Sends a fresh segment of `bytes` payload (seq = snd_nxt_), slicing
  /// its bytes off the front of the unsent stream.
  void send_segment(std::uint64_t bytes, bool fin);
  /// Re-sends the earliest unacknowledged segment (go-back recovery).
  void retransmit_front();
  void arm_rto();
  void cancel_rto();
  void on_rto_expiry();
  /// Receiver side: segment arrived off the wire (any order).
  void on_segment(std::uint64_t seq, std::uint64_t bytes, bool fin,
                  mem::Payload payload);
  /// Delivers one in-sequence segment into the receive buffer.
  void accept_segment(std::uint64_t bytes, bool fin, mem::Payload payload);
  /// Sender side: cumulative ACK. `pure` marks a data-free segment, the
  /// only kind that counts toward the duplicate-ACK threshold.
  void on_ack(std::uint64_t ackno, bool pure);
  void send_ack_now();
  void maybe_ack();
  [[nodiscard]] std::uint64_t peer_window_available() const;
  /// Binds the per-link retransmit counter; requires peer_ (called from
  /// TcpStack::connect once both endpoints exist).
  void bind_link_obs();
  [[nodiscard]] obs::Tracer& tracer() const;
  [[nodiscard]] int node_id() const;

  TcpStack* stack_;
  std::string name_;
  TcpOptions options_;
  TcpConnection* peer_ = nullptr;

  // --- send side (sequence space: payload bytes; FIN occupies one) ---
  std::uint64_t snd_una_ = 0;  // oldest unacknowledged sequence
  std::uint64_t snd_nxt_ = 0;  // next sequence to assign
  /// Sent-but-unacked segments by starting sequence; boundaries are fixed
  /// at first transmission, so retransmits never partially overlap.
  std::map<std::uint64_t, SentSegment> unacked_;
  std::uint64_t unsent_bytes_ = 0;    // buffered, not yet segmented
  /// Payload views of the buffered-but-unsegmented stream, in order;
  /// always holds exactly unsent_bytes_ bytes.
  mem::PayloadQueue unsent_stream_;
  std::uint64_t inflight_bytes_ = 0;  // payload bytes sent, not yet ACKed
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool retx_pending_ = false;  // RTO/fast-retransmit handoff to tx loop
  std::uint32_t dup_acks_ = 0;
  /// Fast-recovery guard (NewReno-style): once a fast retransmit fires,
  /// further duplicate ACKs for the same hole must not retrigger it until
  /// the cumulative ACK passes the highest sequence outstanding at the
  /// time of the retransmit.
  bool in_recovery_ = false;
  std::uint64_t recover_seq_ = 0;
  SimTime rto_current_;
  bool rto_armed_ = false;
  std::uint64_t rto_event_ = 0;
  sim::WaitQueue send_space_;  // senders blocked on a full socket buffer
  sim::WaitQueue tx_wake_;     // tx loop wakeups (data/ack/window/retx)

  // --- receive side ---
  std::uint64_t rcv_nxt_ = 0;  // next expected sequence
  /// Out-of-order segments held for reassembly, by starting sequence.
  std::map<std::uint64_t, OooSegment> ooo_segments_;
  std::uint64_t recv_buf_bytes_ = 0;
  /// In-order delivered payload awaiting recv(); holds recv_buf_bytes_.
  mem::PayloadQueue recv_stream_;
  bool fin_received_ = false;
  std::uint64_t unacked_segments_ = 0;
  bool ack_timer_armed_ = false;
  sim::WaitQueue recv_wait_;

  // --- stats (obs::Registry counters, bound in the constructor) ---
  obs::Counter* c_bytes_sent_;
  obs::Counter* c_bytes_received_;
  obs::Counter* c_segments_sent_;
  obs::Counter* c_acks_sent_;
  obs::Counter* c_retx_;
  obs::Counter* c_rto_expirations_;
  obs::Counter* c_fast_retx_;
  obs::Counter* c_dup_acks_;
  obs::Counter* c_ooo_;
  /// Per-link `tcpstack.segments_retransmitted{link=s->d}` (the number the
  /// fault-invariant tests compare against injector drops); bound once the
  /// peer is known.
  obs::Counter* c_retx_link_ = nullptr;
  // Recovery-episode span tracking (tracer only; no timing effect).
  bool in_recovery_episode_ = false;
  SimTime recovery_started_{};
};

/// The per-node kernel TCP instance.
class TcpStack {
 public:
  TcpStack(sim::Simulation* sim, net::Node* node,
           net::CalibrationProfile profile =
               net::CalibrationProfile::kernel_tcp());
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Establishes a connection between two stacks (three-way handshake cost
  /// charged to the caller, who must be a simulated process). Returns the
  /// (client_endpoint, server_endpoint) pair.
  static std::pair<std::shared_ptr<TcpConnection>,
                   std::shared_ptr<TcpConnection>>
  connect(TcpStack& client, TcpStack& server, TcpOptions options = {});

  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  [[nodiscard]] net::Node& node() { return *node_; }
  [[nodiscard]] const net::CostModel& model() const { return model_; }
  [[nodiscard]] const net::CalibrationProfile& profile() const {
    return profile_;
  }

 private:
  friend class TcpConnection;

  struct Segment {
    TcpConnection* sender;    // sending endpoint
    std::uint64_t seq = 0;    // starting sequence of the payload
    std::uint64_t bytes = 0;  // payload bytes (0 for pure ACK)
    std::uint64_t ack = 0;    // cumulative ack (receiver's rcv_nxt)
    bool has_ack = false;
    bool fin = false;
    /// Zero-copy slice of the sender's stream (empty for pure ACKs).
    mem::Payload payload{};
  };

  /// Transmits one segment from `conn` (charges tx_host + wire + rx path).
  void transmit(Segment seg);
  void rx_loop();

  sim::Simulation* sim_;
  net::Node* node_;
  net::CalibrationProfile profile_;
  net::CostModel model_;
  sim::Channel<Segment> wire_out_;
  sim::Channel<Segment> rx_queue_;
  std::vector<std::shared_ptr<TcpConnection>> connections_;
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace sv::tcpstack
