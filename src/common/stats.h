// Online and sample-based statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace sv {

/// Welford online mean/variance over doubles.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains samples for exact percentiles; convenient for latency series.
class Samples {
 public:
  void add(double x);
  void add(SimTime t) { add(static_cast<double>(t.ns())); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// Exact percentile by nearest-rank; p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double sum() const;

  /// Interpret samples as integer nanoseconds.
  [[nodiscard]] SimTime mean_time() const {
    return SimTime(static_cast<std::int64_t>(mean()));
  }
  [[nodiscard]] SimTime percentile_time(double p) const {
    return SimTime(static_cast<std::int64_t>(percentile(p)));
  }

  [[nodiscard]] const std::vector<double>& raw() const { return xs_; }
  void clear() { xs_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;

  std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram (linear buckets) for distribution summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sv
