#include "common/rng.h"

#include <cmath>

namespace sv {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next()); }

}  // namespace sv
