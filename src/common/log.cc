#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sv {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag.c_str(),
               msg.c_str());
}

}  // namespace sv
