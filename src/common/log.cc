#include "common/log.h"

// The logger is host-side infrastructure below the simulator; it must stay
// safe when the sim's process threads interleave, and it never touches
// simulated state, so OS synchronisation is correct here rather than a
// determinism hazard.
// svlint:allow(SV011): host-side logger, not simulated state.
#include <atomic>
#include <cstdio>
// svlint:allow(SV011): see above — host-side logger, not simulated state.
#include <mutex>

namespace sv {
namespace {

// svlint:allow(SV011): process-global log level, read from any thread.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// svlint:allow(SV011): serialises stderr lines across process threads.
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  if (level < g_level.load()) return;
  // svlint:allow(SV011): host-side I/O lock; no simulated state involved.
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag.c_str(),
               msg.c_str());
}

}  // namespace sv
