#include "common/check.h"

#include <sstream>

namespace sv::detail {
namespace {

std::string format(const char* file, int line, const char* expr,
                   const std::string& msg) {
  // Keep only the basename; full build paths add noise to test output.
  std::string f = file;
  if (const auto slash = f.find_last_of('/'); slash != std::string::npos) {
    f = f.substr(slash + 1);
  }
  std::ostringstream os;
  os << f << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << ": " << msg;
  return os.str();
}

}  // namespace

void check_failed(const char* file, int line, const char* expr) {
  throw CheckFailure(format(file, line, expr, ""));
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  throw CheckFailure(format(file, line, expr, msg));
}

}  // namespace sv::detail
