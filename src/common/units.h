// Strongly-typed simulation units.
//
// All simulated time is integer nanoseconds (SimTime) and all per-byte costs
// are integer picoseconds per byte (PerByteCost), so every experiment in the
// repository is bit-reproducible: no floating point enters the simulated
// clock. Floating point appears only at the reporting boundary (Mbps, ms).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace sv {

/// A point in (or duration of) simulated time, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : ns_(nanos) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime(v); }
  static constexpr SimTime microseconds(std::int64_t v) {
    return SimTime(v * 1000);
  }
  static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime(v * 1000 * 1000);
  }
  static constexpr SimTime seconds(std::int64_t v) {
    return SimTime(v * 1000 * 1000 * 1000);
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ns_ * k); }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(ns_ / k); }
  /// Integer ratio of two durations (how many `o` fit in `*this`).
  constexpr std::int64_t operator/(SimTime o) const { return ns_ / o.ns_; }

  /// Human-readable rendering with an auto-selected unit (ns/us/ms/s).
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

/// A cost proportional to message size, in integer picoseconds per byte.
/// `18 ns/byte` (the Virtual Microscope compute cost) is
/// `PerByteCost::nanos_per_byte(18)`.
class PerByteCost {
 public:
  constexpr PerByteCost() = default;
  constexpr explicit PerByteCost(std::int64_t picos_per_byte)
      : ps_per_byte_(picos_per_byte) {}

  static constexpr PerByteCost zero() { return PerByteCost(0); }
  static constexpr PerByteCost picos_per_byte(std::int64_t v) {
    return PerByteCost(v);
  }
  static constexpr PerByteCost nanos_per_byte(std::int64_t v) {
    return PerByteCost(v * 1000);
  }
  /// Cost equivalent to transferring at `mbps` megabits per second
  /// (10^6 bits/s, the convention the paper uses).
  static constexpr PerByteCost from_mbps(std::int64_t mbps) {
    // ps/byte = 8e12 / (mbps * 1e6) = 8e6 / mbps
    return PerByteCost(8'000'000 / mbps);
  }

  [[nodiscard]] constexpr std::int64_t ps_per_byte() const {
    return ps_per_byte_;
  }
  [[nodiscard]] constexpr double ns_per_byte() const {
    return static_cast<double>(ps_per_byte_) / 1e3;
  }
  /// Implied data rate in Mbps (reporting only).
  [[nodiscard]] constexpr double mbps() const {
    return ps_per_byte_ == 0 ? 0.0
                             : 8e6 / static_cast<double>(ps_per_byte_);
  }

  /// Time to process `bytes` bytes at this per-byte cost (rounded to ns).
  [[nodiscard]] constexpr SimTime for_bytes(std::uint64_t bytes) const {
    const auto total_ps =
        static_cast<std::int64_t>(bytes) * ps_per_byte_;
    return SimTime((total_ps + 500) / 1000);
  }

  constexpr auto operator<=>(const PerByteCost&) const = default;
  constexpr PerByteCost operator+(PerByteCost o) const {
    return PerByteCost(ps_per_byte_ + o.ps_per_byte_);
  }

 private:
  std::int64_t ps_per_byte_ = 0;
};

/// Reporting helper: achieved bandwidth in Mbps for `bytes` over `elapsed`.
[[nodiscard]] constexpr double throughput_mbps(std::uint64_t bytes,
                                               SimTime elapsed) {
  if (elapsed.ns() <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 * 1e3 /
         static_cast<double>(elapsed.ns());
}

constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ULL;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ULL * 1024ULL;
}

}  // namespace sv
