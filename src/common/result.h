// Result<T>: a lightweight ok-or-error return type for operations that can
// fail in expected, recoverable ways — most importantly the timed socket
// and runtime operations added with the fault-injection layer, where a
// stalled peer must surface as a clean error instead of a process blocked
// forever.
//
// This is deliberately smaller than std::expected (C++23): an Error is a
// code plus a human-readable message, and value access on an error (or
// error access on a value) fails an SV_ASSERT rather than being UB.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace sv {

enum class ErrorCode {
  kTimeout,  // the operation's deadline elapsed before it could complete
  kClosed,   // the peer/stream is closed; no further progress possible
  kFailed,   // any other expected failure (message carries the detail)
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kClosed:
      return "closed";
    case ErrorCode::kFailed:
      return "failed";
  }
  return "?";
}

struct Error {
  ErrorCode code = ErrorCode::kFailed;
  std::string message;

  [[nodiscard]] static Error timeout(std::string msg) {
    return Error{ErrorCode::kTimeout, std::move(msg)};
  }
  [[nodiscard]] static Error closed(std::string msg) {
    return Error{ErrorCode::kClosed, std::move(msg)};
  }
  [[nodiscard]] static Error failed(std::string msg) {
    return Error{ErrorCode::kFailed, std::move(msg)};
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Error e) : v_(std::move(e)) {}      // NOLINT(google-explicit-*)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    SV_ASSERT(ok(), "Result::value() on an error result");
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const {
    SV_ASSERT(ok(), "Result::value() on an error result");
    return std::get<T>(v_);
  }
  [[nodiscard]] const Error& error() const {
    SV_ASSERT(!ok(), "Result::error() on an ok result");
    return std::get<Error>(v_);
  }
  [[nodiscard]] ErrorCode code() const { return error().code; }
  [[nodiscard]] bool timed_out() const {
    return !ok() && error().code == ErrorCode::kTimeout;
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void>: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;                    // ok
  Result(Error e) : err_(std::move(e)) {}  // NOLINT(google-explicit-*)

  [[nodiscard]] static Result<void> success() { return Result<void>(); }

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    SV_ASSERT(!ok(), "Result::error() on an ok result");
    return *err_;
  }
  [[nodiscard]] ErrorCode code() const { return error().code; }
  [[nodiscard]] bool timed_out() const {
    return !ok() && err_->code == ErrorCode::kTimeout;
  }

 private:
  std::optional<Error> err_;
};

}  // namespace sv
