// Tiny command-line option parser for benches and examples.
//
// Supports `--name=value`, `--name value`, boolean flags (`--flag`,
// `--no-flag`), and `--help` text generation. Unknown options are an error so
// sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sv {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  void add_flag(const std::string& name, bool* target,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or error.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string usage() const;
  /// Positional (non-option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  struct Option {
    std::string help;
    std::string type;  // "flag", "int", "double", "string"
    std::string default_repr;
    std::function<bool(const std::string&)> set;
    bool* flag_target = nullptr;
  };

  bool apply(const std::string& name, const std::string& value);

  std::string description_;
  std::string program_name_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace sv
