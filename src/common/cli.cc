#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sv {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  Option opt;
  opt.help = help;
  opt.type = "flag";
  opt.default_repr = *target ? "true" : "false";
  opt.flag_target = target;
  opt.set = [target](const std::string& v) {
    if (v == "true" || v == "1" || v.empty()) {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      return false;
    }
    return true;
  };
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  Option opt;
  opt.help = help;
  opt.type = "int";
  opt.default_repr = std::to_string(*target);
  opt.set = [target](const std::string& v) {
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') return false;
    *target = parsed;
    return true;
  };
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  Option opt;
  opt.help = help;
  opt.type = "double";
  opt.default_repr = std::to_string(*target);
  opt.set = [target](const std::string& v) {
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') return false;
    *target = parsed;
    return true;
  };
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  Option opt;
  opt.help = help;
  opt.type = "string";
  opt.default_repr = *target;
  opt.set = [target](const std::string& v) {
    *target = v;
    return true;
  };
  options_[name] = std::move(opt);
  order_.push_back(name);
}

bool CliParser::apply(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  if (it == options_.end()) {
    std::fprintf(stderr, "error: unknown option --%s\n", name.c_str());
    return false;
  }
  if (!it->second.set(value)) {
    std::fprintf(stderr, "error: bad value for --%s: '%s' (expected %s)\n",
                 name.c_str(), value.c_str(), it->second.type.c_str());
    return false;
  }
  return true;
}

bool CliParser::parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      if (!apply(body.substr(0, eq), body.substr(eq + 1))) return false;
      continue;
    }
    // `--no-flag` negation for boolean flags.
    if (body.rfind("no-", 0) == 0) {
      auto it = options_.find(body.substr(3));
      if (it != options_.end() && it->second.type == "flag") {
        if (!apply(body.substr(3), "false")) return false;
        continue;
      }
    }
    auto it = options_.find(body);
    if (it == options_.end()) {
      std::fprintf(stderr, "error: unknown option --%s\n", body.c_str());
      return false;
    }
    if (it->second.type == "flag") {
      if (!apply(body, "true")) return false;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --%s expects a value\n", body.c_str());
        return false;
      }
      if (!apply(body, argv[++i])) return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << program_name_ << " [options]\n\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    os << "  --" << name;
    if (opt.type != "flag") os << "=<" << opt.type << ">";
    os << "  (default: " << opt.default_repr << ")\n      " << opt.help
       << "\n";
  }
  return os.str();
}

}  // namespace sv
