// Plain-text table rendering for benchmark output.
//
// Benches print the same rows/series the paper's figures plot; TablePrinter
// renders them as aligned text and (optionally) CSV so results can be
// re-plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sv {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const {
    return rows_[r][c];
  }

  /// Renders as an aligned text table.
  void print(std::ostream& os) const;
  /// Renders as CSV (RFC-4180-ish quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sv
