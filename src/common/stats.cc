#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sv {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_ = xs_.size() <= 1;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    auto& xs = const_cast<std::vector<double>&>(xs_);
    std::sort(xs.begin(), xs.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return sum() / static_cast<double>(xs_.size());
}

double Samples::sum() const {
  return std::accumulate(xs_.begin(), xs_.end(), 0.0);
}

double Samples::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank.
  const auto n = xs_.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return xs_[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
    ++counts_[i];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace sv
