#include "common/units.h"

#include <cstdio>

namespace sv {

std::string SimTime::to_string() const {
  char buf[64];
  const double a = static_cast<double>(ns_ < 0 ? -ns_ : ns_);
  if (a < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", us());
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", sec());
  }
  return buf;
}

}  // namespace sv
