// Runtime invariant checks for the simulator core.
//
// SV_ASSERT(cond [, msg])  — always on; throws sv::CheckFailure (a
//                            std::logic_error) when cond is false. Use for
//                            cheap invariants whose violation means the
//                            simulation's determinism contract is broken
//                            (DESIGN.md §8) and continuing would silently
//                            corrupt results.
// SV_DCHECK(cond [, msg])  — same, but compiled out of release builds
//                            unless SV_ENABLE_DCHECKS is defined (the
//                            sanitizer configurations define it). Use for
//                            hot-path checks.
//
// Checks throw rather than abort so tests can assert on violations and so a
// failure inside a simulated process unwinds through the normal
// Simulation error path (the offending experiment dies; the test binary
// reports it).
#pragma once

#include <stdexcept>
#include <string>

namespace sv {

/// Thrown when an SV_ASSERT/SV_DCHECK condition fails.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr);
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);
}  // namespace detail

}  // namespace sv

#define SV_ASSERT(cond, ...)                                        \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sv::detail::check_failed(__FILE__, __LINE__,                \
                                 #cond __VA_OPT__(, ) __VA_ARGS__); \
    }                                                               \
  } while (0)

#if !defined(NDEBUG) || defined(SV_ENABLE_DCHECKS)
#define SV_DCHECK(cond, ...) SV_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define SV_DCHECK(cond, ...) \
  do {                       \
  } while (0)
#endif
