// Deterministic, seedable pseudo-random number generation for experiments.
//
// We implement xoshiro256** (public domain, Blackman & Vigna) rather than
// relying on std::mt19937 so that streams are cheap to split per simulated
// node and identical across standard-library implementations.
#pragma once

#include <cstdint>

namespace sv {

/// SplitMix64, used to seed xoshiro state from a single 64-bit seed.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform01();
  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Derive an independent child stream (for per-node/per-filter RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace sv
