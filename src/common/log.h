// Minimal leveled logger; simulation code logs with the simulated timestamp.
#pragma once

#include <sstream>
#include <string>

namespace sv {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global threshold; messages below it are discarded. Default: kWarn, so
/// tests and benches stay quiet unless explicitly made verbose.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one formatted line to stderr (thread-safe; the simulator is
/// effectively single-threaded but tests may log from gtest threads).
void log_line(LogLevel level, const std::string& tag, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string tag)
      : level_(level), tag_(std::move(tag)) {}
  ~LogMessage() { log_line(level_, tag_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sv

#define SV_LOG(level, tag)                      \
  if (::sv::log_level() > (level)) {            \
  } else                                        \
    ::sv::detail::LogMessage((level), (tag))

#define SV_TRACE(tag) SV_LOG(::sv::LogLevel::kTrace, (tag))
#define SV_DEBUG(tag) SV_LOG(::sv::LogLevel::kDebug, (tag))
#define SV_INFO(tag) SV_LOG(::sv::LogLevel::kInfo, (tag))
#define SV_WARN(tag) SV_LOG(::sv::LogLevel::kWarn, (tag))
#define SV_ERROR(tag) SV_LOG(::sv::LogLevel::kError, (tag))
