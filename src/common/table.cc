#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace sv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) -> std::string {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sv
