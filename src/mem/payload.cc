#include "mem/payload.h"

#include <algorithm>

#include "common/check.h"

namespace sv::mem {

Payload Payload::virtual_bytes(std::uint64_t n) {
  Payload p;
  if (n > 0) p.append_span(Span{nullptr, 0, n, false});
  return p;
}

Payload Payload::wrap(Storage bytes, bool registered) {
  Payload p;
  if (bytes != nullptr && !bytes->empty()) {
    const std::uint64_t n = bytes->size();
    p.append_span(Span{std::move(bytes), 0, n, registered});
  }
  return p;
}

Payload Payload::copy_of(const std::byte* src, std::size_t n) {
  if (n == 0) return {};
  SV_ASSERT(src != nullptr, "Payload::copy_of: null source");
  auto bytes = std::make_shared<std::vector<std::byte>>(src, src + n);
  return wrap(std::move(bytes));
}

bool Payload::materialized() const {
  if (empty()) return false;
  return std::all_of(spans_.begin(), spans_.end(),
                     [](const Span& s) { return s.bytes != nullptr; });
}

bool Payload::registered() const {
  if (empty()) return false;
  return std::all_of(spans_.begin(), spans_.end(), [](const Span& s) {
    return s.bytes != nullptr && s.registered;
  });
}

Payload Payload::slice(std::uint64_t offset, std::uint64_t len) const {
  // Overflow-safe: offset + len can wrap, size() - len cannot.
  SV_ASSERT(len <= size() && offset <= size() - len,
            "Payload::slice out of range");
  Payload out;
  if (len == 0) return out;
  std::uint64_t skip = offset;
  std::uint64_t want = len;
  for (const Span& s : spans_) {
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    const std::uint64_t take = std::min(want, s.len - skip);
    out.append_span(Span{s.bytes, s.offset + skip, take, s.registered});
    skip = 0;
    want -= take;
    if (want == 0) break;
  }
  SV_DCHECK(out.size_ == len, "slice assembled wrong length");
  return out;
}

Payload Payload::concat(const Payload& tail) const {
  Payload out = *this;
  for (const Span& s : tail.spans_) out.append_span(s);
  return out;
}

std::byte Payload::read_byte(std::uint64_t i) const {
  return *contiguous_at(i, 1);
}

const std::byte* Payload::contiguous_at(std::uint64_t offset,
                                        std::uint64_t len) const {
  SV_ASSERT(len <= size() && offset <= size() - len,
            "Payload: read past extent");
  SV_ASSERT(len > 0, "Payload: zero-length contiguous view");
  std::uint64_t skip = offset;
  for (const Span& s : spans_) {
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    SV_ASSERT(s.bytes != nullptr, "Payload: byte read on a virtual span");
    SV_ASSERT(len <= s.len - skip,
              "Payload: contiguous view straddles spans (use copy_to)");
    return s.bytes->data() + s.offset + skip;
  }
  SV_ASSERT(false, "Payload: unreachable (bounds already checked)");
  return nullptr;
}

void Payload::copy_to(std::uint64_t offset, std::byte* dst,
                      std::uint64_t len) const {
  SV_ASSERT(len <= size() && offset <= size() - len,
            "Payload::copy_to out of range");
  std::uint64_t skip = offset;
  std::uint64_t want = len;
  for (const Span& s : spans_) {
    if (want == 0) break;
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    SV_ASSERT(s.bytes != nullptr, "Payload::copy_to on a virtual span");
    const std::uint64_t take = std::min(want, s.len - skip);
    const std::byte* src = s.bytes->data() + s.offset + skip;
    dst = std::copy(src, src + take, dst);
    skip = 0;
    want -= take;
  }
}

bool Payload::content_equals(const Payload& other) const {
  if (size() != other.size()) return false;
  if (empty()) return true;
  if (!materialized() || !other.materialized()) return false;
  for (std::uint64_t i = 0; i < size(); ++i) {
    if (read_byte(i) != other.read_byte(i)) return false;
  }
  return true;
}

void Payload::append_span(Span s) {
  if (s.len == 0) return;
  size_ += s.len;
  // Merge adjacent views of the same storage (a pop/slice boundary that
  // landed mid-buffer) so chains stay short on long streams.
  if (!spans_.empty()) {
    Span& back = spans_.back();
    if (back.bytes != nullptr && back.bytes == s.bytes &&
        back.offset + back.len == s.offset && back.registered == s.registered) {
      back.len += s.len;
      return;
    }
    if (back.bytes == nullptr && s.bytes == nullptr) {
      back.len += s.len;
      return;
    }
  }
  spans_.push_back(std::move(s));
}

void PayloadQueue::push(Payload p) {
  if (p.empty()) return;
  bytes_ += p.size();
  parts_.push_back(std::move(p));
}

Payload PayloadQueue::pop(std::uint64_t n) {
  SV_ASSERT(n <= bytes_, "PayloadQueue::pop past end");
  Payload out;
  std::uint64_t want = n;
  while (want > 0) {
    Payload& front = parts_[head_];
    const std::uint64_t avail = front.size() - front_offset_;
    const std::uint64_t take = std::min(want, avail);
    out = out.concat(front.slice(front_offset_, take));
    front_offset_ += take;
    want -= take;
    bytes_ -= take;
    if (front_offset_ == front.size()) {
      front = Payload{};  // release storage refs promptly
      ++head_;
      front_offset_ = 0;
      if (head_ == parts_.size()) {
        parts_.clear();
        head_ = 0;
      }
    }
  }
  return out;
}

}  // namespace sv::mem
