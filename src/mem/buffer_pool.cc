#include "mem/buffer_pool.h"

#include <utility>

#include "common/check.h"
#include "obs/hub.h"

namespace sv::mem {

struct PooledBuffer::State {
  BufferPool::Options opts;
  // Counters are null when the pool runs without a hub.
  obs::Counter* c_alloc = nullptr;
  obs::Counter* c_alloc_total = nullptr;
  obs::Counter* c_reuse = nullptr;
  obs::Counter* c_reuse_total = nullptr;
  obs::Counter* c_registered_bytes = nullptr;
  obs::Gauge* g_free = nullptr;
  obs::Histogram* h_chunk = nullptr;
  /// Idle chunks, most recently released last (LIFO reuse).
  std::vector<std::unique_ptr<std::vector<std::byte>>> free_list;

  void release(std::unique_ptr<std::vector<std::byte>> buf) {
    free_list.push_back(std::move(buf));
    if (g_free != nullptr) g_free->add(1);
  }
};

PooledBuffer::PooledBuffer(std::shared_ptr<State> state,
                           std::unique_ptr<std::vector<std::byte>> buf)
    : state_(std::move(state)), buf_(std::move(buf)) {}

PooledBuffer::~PooledBuffer() {
  if (buf_ != nullptr && state_ != nullptr) {
    state_->release(std::move(buf_));
  }
}

Payload PooledBuffer::seal() && {
  SV_ASSERT(buf_ != nullptr, "PooledBuffer::seal on an empty lease");
  auto state = state_;
  state_.reset();
  std::vector<std::byte>* raw = buf_.release();
  // The Payload's storage deleter routes the chunk back to the pool when
  // the last view dies — refcounting is the return path, not destruction.
  Payload::Storage storage(
      static_cast<const std::vector<std::byte>*>(raw),
      [state](const std::vector<std::byte>* p) {
        state->release(std::unique_ptr<std::vector<std::byte>>(
            const_cast<std::vector<std::byte>*>(p)));
      });
  return Payload::wrap(std::move(storage), state->opts.registered);
}

BufferPool::BufferPool(obs::Hub* hub, Options options)
    : state_(std::make_shared<PooledBuffer::State>()) {
  state_->opts = std::move(options);
  if (hub != nullptr) {
    obs::Registry& reg = hub->registry;
    const std::string pl = "{pool=" + state_->opts.label + "}";
    state_->c_alloc = &reg.counter("mem.pool_alloc" + pl);
    state_->c_alloc_total = &reg.counter("mem.pool_alloc");
    state_->c_reuse = &reg.counter("mem.pool_reuse" + pl);
    state_->c_reuse_total = &reg.counter("mem.pool_reuse");
    state_->g_free = &reg.gauge("mem.pool_free" + pl);
    state_->h_chunk = &reg.histogram("mem.chunk_bytes",
                                     obs::Registry::size_bounds_bytes());
    if (state_->opts.registered) {
      // One registration event per pool; per-chunk pinned bytes are counted
      // as chunks are first allocated (grow-on-demand pinning).
      reg.counter("mem.registrations").inc();
      state_->c_registered_bytes = &reg.counter("mem.registered_bytes");
    }
  }
}

PooledBuffer BufferPool::acquire(std::size_t bytes) {
  SV_ASSERT(bytes > 0, "BufferPool::acquire of zero bytes");
  auto& fl = state_->free_list;
  // LIFO first-fit: newest released chunk whose capacity covers the
  // request. Deterministic (single-threaded, strictly ordered releases).
  for (std::size_t i = fl.size(); i > 0; --i) {
    if (fl[i - 1]->capacity() >= bytes) {
      std::unique_ptr<std::vector<std::byte>> buf = std::move(fl[i - 1]);
      fl.erase(fl.begin() + static_cast<std::ptrdiff_t>(i - 1));
      buf->resize(bytes);
      if (state_->c_reuse != nullptr) {
        state_->c_reuse->inc();
        state_->c_reuse_total->inc();
        state_->g_free->add(-1);
        state_->h_chunk->observe(static_cast<std::int64_t>(bytes));
      }
      return PooledBuffer(state_, std::move(buf));
    }
  }
  auto buf = std::make_unique<std::vector<std::byte>>(bytes);
  if (state_->c_alloc != nullptr) {
    state_->c_alloc->inc();
    state_->c_alloc_total->inc();
    state_->h_chunk->observe(static_cast<std::int64_t>(bytes));
  }
  if (state_->c_registered_bytes != nullptr) {
    state_->c_registered_bytes->inc(bytes);
  }
  return PooledBuffer(state_, std::move(buf));
}

std::size_t BufferPool::free_chunks() const {
  return state_->free_list.size();
}

const BufferPool::Options& BufferPool::options() const {
  return state_->opts;
}

}  // namespace sv::mem
