// BufferPool: per-node pooled payload storage with VIA-style registration
// semantics (DESIGN.md §10).
//
// A pool hands out mutable staging buffers (PooledBuffer); sealing one
// freezes it into an immutable Payload span. When the last Payload view of
// a sealed buffer dies, the storage returns to the pool's LIFO free list
// instead of the allocator — so steady-state producers (the vizapp data
// repositories) allocate only during warm-up, and reuse is a counted,
// deterministic event (`mem.pool_reuse`).
//
// Registration: a pool created with `registered = true` models memory
// pinned for DMA (the paper's VIA descriptor pools). Its Payloads report
// registered() == true, it counts one `mem.registrations` event at
// creation and `mem.registered_bytes` per freshly pinned chunk. The pool
// itself charges no simulated time — time is charged where the paper's
// hardware charged it: via::Nic::register_memory for pinning, and the
// transport's copy ledger for every unregistered byte that crosses the
// user/kernel boundary (mem/ledger.h).
//
// Determinism: the free list is strictly LIFO and the simulator is
// single-threaded, so acquire/release interleaving — and therefore every
// mem.* counter — is identical across runs of the same seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/payload.h"

namespace sv::obs {
struct Hub;
}  // namespace sv::obs

namespace sv::mem {

class BufferPool;

/// A mutable staging buffer leased from a BufferPool. Fill data() and then
/// seal() into an immutable Payload; dropping an unsealed buffer returns
/// the storage to the pool untouched.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&&) noexcept = default;
  PooledBuffer& operator=(PooledBuffer&&) noexcept = default;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  [[nodiscard]] std::byte* data() { return buf_->data(); }
  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool valid() const { return buf_ != nullptr; }

  /// Freezes the buffer into an immutable single-span Payload. The storage
  /// flows back to the pool when the last Payload view of it is released.
  [[nodiscard]] Payload seal() &&;

 private:
  friend class BufferPool;
  struct State;
  PooledBuffer(std::shared_ptr<State> state,
               std::unique_ptr<std::vector<std::byte>> buf);

  std::shared_ptr<State> state_;
  std::unique_ptr<std::vector<std::byte>> buf_;
};

class BufferPool {
 public:
  struct Options {
    /// Metric label: counters register as `mem.pool_*{pool=<label>}`.
    std::string label = "pool";
    /// VIA-style pinned memory (see file comment).
    bool registered = false;
  };

  /// `hub` may be null (no metrics; used by unit micro-paths and benches
  /// that run without a simulation).
  BufferPool(obs::Hub* hub, Options options);

  /// Leases a buffer of exactly `bytes` bytes, reusing the most recently
  /// released chunk that fits (LIFO first-fit) or allocating a fresh one.
  [[nodiscard]] PooledBuffer acquire(std::size_t bytes);

  /// Chunks currently idle on the free list.
  [[nodiscard]] std::size_t free_chunks() const;
  [[nodiscard]] const Options& options() const;

 private:
  std::shared_ptr<PooledBuffer::State> state_;
};

}  // namespace sv::mem
