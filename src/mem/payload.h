// Payload: the one payload type of the whole stack (DESIGN.md §10).
//
// A Payload is an immutable, refcounted chain of byte spans. Every layer —
// net::Message, the TCP stack's segments, VIA descriptors' logical
// contents, dc::DataBuffer, the vizapp filters — carries the same type, so
// "who copied the bytes" stops being an assumption smeared into closed-form
// per-byte costs and becomes an explicit, counted event (mem/ledger.h).
//
// Invariants:
//  * Immutable after construction. slice()/concat() share the underlying
//    storage — they adjust (storage, offset, length) views and refcounts,
//    never bytes. The only byte-touching operations in the tree are
//    copy_to()/copy_of() here and the BufferPool fill path; svlint rule
//    SV008 enforces that no other layer copies payload bytes.
//  * A span is either *backed* (shared storage, possibly from a registered
//    BufferPool) or *virtual* (a length with no bytes). Virtual spans let
//    timing-only experiments flow through the exact same segmentation and
//    reassembly code as materialized ones: the TCP stack slices an 8-byte
//    virtual header plus a 64 KiB virtual body into MSS pieces just as it
//    would real memory.
//  * All accessors use overflow-safe bounds checks
//    (`len <= size && offset <= size - len`), never `offset + len <= size`,
//    which wraps for adversarial inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sv::mem {

class Payload {
 public:
  /// Shared immutable storage for one backed span.
  using Storage = std::shared_ptr<const std::vector<std::byte>>;

  /// Empty payload (zero bytes, zero spans).
  Payload() = default;

  /// A length-only payload: no bytes exist, only timing flows. Slicing and
  /// concatenation work exactly as for backed payloads.
  static Payload virtual_bytes(std::uint64_t n);

  /// Wraps existing immutable storage without copying. `registered` marks
  /// storage pinned for DMA (a registered BufferPool or via::MemoryRegion).
  static Payload wrap(Storage bytes, bool registered = false);

  /// The ONLY sanctioned byte copy into a fresh payload (besides the
  /// BufferPool fill path). Layers outside src/mem/ must not copy payload
  /// bytes themselves (svlint SV008); they call this and charge the copy
  /// through mem::charge_copy.
  static Payload copy_of(const std::byte* src, std::size_t n);

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Number of spans in the chain (1 for a freshly wrapped buffer; slicing
  /// and concatenation grow/shrink it without touching bytes).
  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }

  /// True when every byte is backed by real storage (and the payload is
  /// non-empty). Timing-only payloads — empty or virtual — return false.
  [[nodiscard]] bool materialized() const;

  /// True when the payload is non-empty and every span lives in registered
  /// (DMA-pinned) memory — i.e. a NIC could send it with zero host copies.
  [[nodiscard]] bool registered() const;

  /// Zero-copy sub-range view [offset, offset+len). Shares storage.
  [[nodiscard]] Payload slice(std::uint64_t offset, std::uint64_t len) const;

  /// Zero-copy concatenation: `this` followed by `tail`. Shares storage.
  [[nodiscard]] Payload concat(const Payload& tail) const;

  /// Bounds-guarded single-byte read; SV_ASSERT on virtual spans.
  [[nodiscard]] std::byte read_byte(std::uint64_t i) const;

  /// Contiguous view of [offset, offset+len): valid only when the range
  /// falls inside one backed span (SV_ASSERT otherwise). For ranges that
  /// may straddle spans use copy_to().
  [[nodiscard]] const std::byte* contiguous_at(std::uint64_t offset,
                                               std::uint64_t len) const;

  /// Gathers [offset, offset+len) into `dst`. This IS a byte copy: callers
  /// own charging it through the ledger. SV_ASSERT on virtual spans.
  void copy_to(std::uint64_t offset, std::byte* dst, std::uint64_t len) const;

  /// Byte-wise equality of materialized contents (both must be fully
  /// backed and of equal size). Used by tests; reads, never copies.
  [[nodiscard]] bool content_equals(const Payload& other) const;

 private:
  struct Span {
    Storage bytes;            // null => virtual span
    std::uint64_t offset = 0; // start within *bytes (0 for virtual)
    std::uint64_t len = 0;
    bool registered = false;
  };

  void append_span(Span s);

  std::vector<Span> spans_;
  std::uint64_t size_ = 0;
};

/// FIFO byte-stream assembly of Payload chains: the TCP stack pushes
/// payloads into its send stream and pops MSS-sized slices for segments;
/// the receive side pushes in-order segment payloads and pops whole frames.
/// pop() shares storage with what was pushed — no bytes move.
class PayloadQueue {
 public:
  void push(Payload p);
  /// Removes and returns the first `n` bytes (SV_ASSERT n <= bytes()).
  Payload pop(std::uint64_t n);
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return bytes_ == 0; }

 private:
  std::vector<Payload> parts_;  // FIFO; front is parts_[head_]
  std::size_t head_ = 0;
  std::uint64_t front_offset_ = 0;  // consumed prefix of the front part
  std::uint64_t bytes_ = 0;
};

}  // namespace sv::mem
