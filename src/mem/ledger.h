// The copy/registration ledger: every byte copy and memory registration in
// the modeled system flows through these two functions (DESIGN.md §10).
//
// Charging a copy is an *accounting* act, not a timing one: the calibrated
// per-byte costs in net/calibration.cc already embed the copy work the
// paper's hosts performed (e.g. kernel TCP's 9.0 ns/B user→kernel copy on
// send), so default runs stay inside the calibration band while the
// ledger makes the copies visible: `mem.copies` / `mem.copy_bytes`
// counters (aggregate and per-stage) plus a tracer instant per event.
// Experiments that want copy cost as an independent variable scale it
// explicitly (SocketFactory::set_copy_cost_scale_pct; see
// bench/ablation_copycost.cc) — the added delay is charged at the call
// site, which has process context; the ledger itself never touches
// simulated time.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace sv::obs {
struct Hub;
}  // namespace sv::obs

namespace sv::mem {

/// Records one payload-byte copy of `bytes` bytes at `stage` (e.g.
/// "tcp.user_to_kernel") on `node`. No simulated time is charged.
void charge_copy(obs::Hub* hub, SimTime now, int node, std::string_view stage,
                 std::uint64_t bytes);

/// Records one memory registration (pinning) of `bytes` bytes on `node`.
/// The time cost of pinning is charged by the caller (via::Nic, or the
/// selective-copy policy layer — copy_policy.h).
void charge_registration(obs::Hub* hub, SimTime now, int node,
                         std::uint64_t bytes);

/// Records one memory deregistration (unpinning) of `bytes` bytes on
/// `node`: the other half of the pin-down trade-off. Charged by
/// register-on-the-fly completions and RegCache evictions; like
/// registration, the *time* cost stays with the caller.
void charge_deregistration(obs::Hub* hub, SimTime now, int node,
                           std::uint64_t bytes);

/// Total copies recorded in `hub` so far (aggregate counter; test helper).
[[nodiscard]] std::uint64_t copies_recorded(const obs::Hub& hub);

}  // namespace sv::mem
