// Selective-copy policy engine (DESIGN.md §14).
//
// The paper's transports hard-wire the copy decision: kernel TCP always
// copies through the socket buffer, VIA/RDMA always send from static
// preregistered pools. Libra-style selective copying makes that a *per
// message* choice instead. Every outbound message on a policy-mediated
// path asks CopyPolicy::acquire() how to make its payload
// transfer-ready, and the policy answers with one of:
//
//   kStaticPool      legacy behaviour — the transport's own preregistered
//                    pool, zero extra cost (the default; keeps every
//                    existing digest pin bit-identical)
//   kEagerCopy       copy the payload into a preregistered bounce buffer
//                    (cheap for small messages: fixed + per-byte copy)
//   kRegisterOnFly   pin the user buffer for this message, unpin after
//                    (cheap for large one-shot transfers: the pin cost
//                    amortises over the bytes, no copy at all)
//   kRegCache        consult a pin-down RegCache keyed by buffer id
//                    (cheap under reuse locality: hits skip the pin)
//
// The policy charges the *ledger* (copies / registrations /
// deregistrations) itself, because those are accounting facts; the
// returned cpu_cost is simulated host time the caller must burn in
// process context (sim->delay), because only the call site knows whose
// clock advances.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/units.h"
#include "mem/reg_cache.h"

namespace sv::obs {
struct Hub;
class Counter;
}  // namespace sv::obs

namespace sv::mem {

enum class CopyPolicyKind : std::uint8_t {
  kStaticPool = 0,
  kEagerCopy,
  kRegisterOnFly,
  kRegCache,
};

[[nodiscard]] std::string_view copy_policy_name(CopyPolicyKind kind);
/// Parses "static_pool" | "eager_copy" | "register_on_fly" | "regcache".
/// Returns false (leaving *out untouched) on anything else.
[[nodiscard]] bool parse_copy_policy(std::string_view text,
                                     CopyPolicyKind* out);

struct CopyPolicyConfig {
  CopyPolicyKind kind = CopyPolicyKind::kStaticPool;

  // Eager-copy cost model: one bounce-buffer copy per message. The
  // per-byte cost matches the calibrated kernel-TCP user→kernel copy
  // (net/calibration.cc) so "one copy" means the same thing everywhere.
  SimTime copy_fixed = SimTime::nanoseconds(250);
  PerByteCost copy_per_byte = PerByteCost::nanos_per_byte(9);

  // Pin/unpin cost model: VIA-era registration is ~20 us of kernel work
  // (via::Nic charges the same fixed cost for pool setup) plus a small
  // per-byte page-table walk; unpinning is cheaper but not free.
  SimTime pin_fixed = SimTime::microseconds(20);
  PerByteCost pin_per_byte = PerByteCost::picos_per_byte(100);
  SimTime unpin_fixed = SimTime::microseconds(10);

  // RegCache lookup overhead (hit or miss) and shape.
  SimTime cache_lookup = SimTime::nanoseconds(200);
  RegCache::Config cache{};

  // Scales pin/unpin costs (ablation knob): 100 = calibrated, 400 =
  // 4x-slower registration hardware.
  int reg_cost_scale_pct = 100;
};

/// What acquire() decided for one message.
struct CopyVerdict {
  CopyPolicyKind action = CopyPolicyKind::kStaticPool;
  /// Host time the caller must charge in process context before the
  /// payload is transfer-ready.
  SimTime cpu_cost = SimTime::zero();
  /// Bytes copied into a bounce buffer (eager only; already in ledger).
  std::uint64_t copied_bytes = 0;
  /// Bytes newly pinned (already in ledger).
  std::uint64_t registered_bytes = 0;
  /// True when the caller must call release() after the send completes
  /// (register-on-the-fly, and regcache with capacity 0).
  bool needs_release = false;
};

class CopyPolicy {
 public:
  CopyPolicy(obs::Hub* hub, int node, CopyPolicyConfig config);

  /// Decides how to make `bytes` bytes in region `buffer_id`
  /// transfer-ready. Charges the ledger; returns the time bill.
  CopyVerdict acquire(SimTime now, std::uint64_t buffer_id,
                      std::uint64_t bytes);

  /// Unpins a register-on-the-fly region after its send completes.
  /// Returns the unpin time the caller must charge. No-op (zero) unless
  /// the matching verdict had needs_release set.
  SimTime release(SimTime now, std::uint64_t buffer_id, std::uint64_t bytes);

  [[nodiscard]] const CopyPolicyConfig& config() const { return config_; }
  [[nodiscard]] CopyPolicyKind kind() const { return config_.kind; }
  /// Underlying cache (null unless kind == kRegCache; test hook).
  [[nodiscard]] RegCache* cache() { return cache_.get(); }

 private:
  [[nodiscard]] SimTime scaled(SimTime t) const;
  [[nodiscard]] SimTime pin_cost(std::uint64_t bytes) const;

  obs::Hub* hub_ = nullptr;
  int node_ = 0;
  CopyPolicyConfig config_;
  std::unique_ptr<RegCache> cache_;
  obs::Counter* c_decisions_ = nullptr;
};

}  // namespace sv::mem
