// Pin-down registration cache (DESIGN.md §14).
//
// The classic VIA-era result: memory registration (pinning) costs tens of
// microseconds, so high-performance socket layers keep a bounded cache of
// registered regions and only pin on miss. RegCache models exactly that —
// an LRU map from buffer-region id to its pinned extent, with a hard
// capacity in regions. A hit costs nothing in registered bytes; a miss
// pins the region (charged to the ledger as a registration) and, at
// capacity, evicts the least-recently-used region first (charged as a
// deregistration). Capacity 0 degenerates to register-on-the-fly: every
// lookup is a miss that immediately unpins, which is the identity the
// policy tests pin down.
//
// All state is deterministic: eviction order depends only on the sequence
// of lookup() calls, never on wall clock or hashing order.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace sv::obs {
struct Hub;
class Counter;
class Gauge;
}  // namespace sv::obs

namespace sv::mem {

class RegCache {
 public:
  struct Config {
    /// Maximum number of simultaneously pinned regions. 0 means every
    /// lookup misses and the pinned region is evicted by the *next*
    /// lookup — i.e. register-on-the-fly with one region in flight.
    std::size_t capacity_regions = 64;
    /// Label for the {cache=...} counter dimension.
    std::string label = "regcache";
  };

  /// Result of one lookup: what got pinned and what got thrown out.
  struct Lookup {
    bool hit = false;
    /// Bytes newly registered by this lookup (0 on a hit).
    std::uint64_t registered_bytes = 0;
    /// Total bytes deregistered by evictions this lookup caused.
    std::uint64_t evicted_bytes = 0;
    /// Region ids evicted, in eviction (LRU-first) order.
    std::vector<std::uint64_t> evicted_ids;
  };

  RegCache(obs::Hub* hub, int node, Config config);

  /// Looks up region `buffer_id` of `bytes` bytes, pinning it on miss and
  /// evicting LRU entries to stay within capacity. A resident entry only
  /// hits if its pinned extent covers `bytes`; a larger request re-pins
  /// (miss) at the new size. Ledger charging (registration /
  /// deregistration counters) happens here; the *time* cost is the
  /// caller's to charge — see CopyPolicy.
  Lookup lookup(SimTime now, std::uint64_t buffer_id, std::uint64_t bytes);

  /// Evicts everything, charging deregistrations. Returns bytes unpinned.
  std::uint64_t flush(SimTime now);

  [[nodiscard]] bool contains(std::uint64_t buffer_id) const {
    return index_.count(buffer_id) != 0;
  }
  [[nodiscard]] std::size_t resident() const { return lru_.size(); }
  [[nodiscard]] std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Resident region ids, most-recently-used first (test helper: the LRU
  /// order is part of the determinism contract).
  [[nodiscard]] std::vector<std::uint64_t> mru_order() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
  };

  void evict_lru(SimTime now, Lookup* out);
  void update_gauges();

  obs::Hub* hub_ = nullptr;
  int node_ = 0;
  Config config_;
  std::uint64_t pinned_bytes_ = 0;

  // MRU at front; index maps region id -> its node in the list.
  std::list<Entry> lru_;
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;

  obs::Counter* c_hits_ = nullptr;
  obs::Counter* c_misses_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Gauge* g_pinned_bytes_ = nullptr;
  obs::Gauge* g_resident_ = nullptr;
};

}  // namespace sv::mem
