#include "mem/reg_cache.h"

#include <utility>

#include "mem/ledger.h"
#include "obs/hub.h"

namespace sv::mem {

RegCache::RegCache(obs::Hub* hub, int node, Config config)
    : hub_(hub), node_(node), config_(std::move(config)) {
  if (hub_ != nullptr) {
    obs::Registry& reg = hub_->registry;
    const std::string dim = "{cache=" + config_.label + "}";
    c_hits_ = &reg.counter("mem.regcache_hits" + dim);
    c_misses_ = &reg.counter("mem.regcache_misses" + dim);
    c_evictions_ = &reg.counter("mem.regcache_evictions" + dim);
    g_pinned_bytes_ = &reg.gauge("mem.regcache_pinned_bytes" + dim);
    g_resident_ = &reg.gauge("mem.regcache_resident" + dim);
  }
}

RegCache::Lookup RegCache::lookup(SimTime now, std::uint64_t buffer_id,
                                  std::uint64_t bytes) {
  Lookup out;
  auto it = index_.find(buffer_id);
  if (it != index_.end() && it->second->bytes >= bytes) {
    // Hit: refresh recency, pin nothing.
    out.hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (c_hits_ != nullptr) c_hits_->inc();
    return out;
  }

  // Miss. A resident-but-too-small entry is unpinned first so the region
  // is re-registered at the larger extent (counts as an eviction).
  if (it != index_.end()) {
    out.evicted_ids.push_back(it->second->id);
    out.evicted_bytes += it->second->bytes;
    pinned_bytes_ -= it->second->bytes;
    charge_deregistration(hub_, now, node_, it->second->bytes);
    if (c_evictions_ != nullptr) c_evictions_->inc();
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (c_misses_ != nullptr) c_misses_->inc();

  if (config_.capacity_regions == 0) {
    // Degenerate cache: pin for this message only. The caller unpins via
    // CopyPolicy::release(), so nothing becomes resident here.
    out.registered_bytes = bytes;
    charge_registration(hub_, now, node_, bytes);
    update_gauges();
    return out;
  }

  while (lru_.size() >= config_.capacity_regions) evict_lru(now, &out);

  lru_.push_front(Entry{buffer_id, bytes});
  index_[buffer_id] = lru_.begin();
  pinned_bytes_ += bytes;
  out.registered_bytes = bytes;
  charge_registration(hub_, now, node_, bytes);
  update_gauges();
  return out;
}

std::uint64_t RegCache::flush(SimTime now) {
  Lookup scratch;
  while (!lru_.empty()) evict_lru(now, &scratch);
  update_gauges();
  return scratch.evicted_bytes;
}

std::vector<std::uint64_t> RegCache::mru_order() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(lru_.size());
  for (const Entry& e : lru_) ids.push_back(e.id);
  return ids;
}

void RegCache::evict_lru(SimTime now, Lookup* out) {
  const Entry& victim = lru_.back();
  out->evicted_ids.push_back(victim.id);
  out->evicted_bytes += victim.bytes;
  pinned_bytes_ -= victim.bytes;
  charge_deregistration(hub_, now, node_, victim.bytes);
  if (c_evictions_ != nullptr) c_evictions_->inc();
  index_.erase(victim.id);
  lru_.pop_back();
}

void RegCache::update_gauges() {
  if (g_pinned_bytes_ != nullptr) {
    g_pinned_bytes_->set(static_cast<std::int64_t>(pinned_bytes_));
  }
  if (g_resident_ != nullptr) {
    g_resident_->set(static_cast<std::int64_t>(lru_.size()));
  }
}

}  // namespace sv::mem
