#include "mem/ledger.h"

#include <string>

#include "obs/hub.h"

namespace sv::mem {

void charge_copy(obs::Hub* hub, SimTime now, int node, std::string_view stage,
                 std::uint64_t bytes) {
  if (hub == nullptr) return;
  obs::Registry& reg = hub->registry;
  const std::string at = "{at=" + std::string(stage) + "}";
  reg.counter("mem.copies").inc();
  reg.counter("mem.copies" + at).inc();
  reg.counter("mem.copy_bytes").inc(bytes);
  reg.counter("mem.copy_bytes" + at).inc(bytes);
  if (hub->tracer.enabled()) {
    std::string name = "copy.";
    name += stage;
    hub->tracer.instant(now, node, "mem", name, bytes);
  }
}

void charge_registration(obs::Hub* hub, SimTime now, int node,
                         std::uint64_t bytes) {
  if (hub == nullptr) return;
  hub->registry.counter("mem.registrations").inc();
  hub->registry.counter("mem.registered_bytes").inc(bytes);
  if (hub->tracer.enabled()) {
    hub->tracer.instant(now, node, "mem", "registration", bytes);
  }
}

void charge_deregistration(obs::Hub* hub, SimTime now, int node,
                           std::uint64_t bytes) {
  if (hub == nullptr) return;
  hub->registry.counter("mem.deregistrations").inc();
  hub->registry.counter("mem.deregistered_bytes").inc(bytes);
  if (hub->tracer.enabled()) {
    hub->tracer.instant(now, node, "mem", "deregistration", bytes);
  }
}

std::uint64_t copies_recorded(const obs::Hub& hub) {
  return hub.registry.counter_value("mem.copies");
}

}  // namespace sv::mem
