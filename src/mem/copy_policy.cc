#include "mem/copy_policy.h"

#include <utility>

#include "mem/ledger.h"
#include "obs/hub.h"

namespace sv::mem {

std::string_view copy_policy_name(CopyPolicyKind kind) {
  switch (kind) {
    case CopyPolicyKind::kStaticPool:
      return "static_pool";
    case CopyPolicyKind::kEagerCopy:
      return "eager_copy";
    case CopyPolicyKind::kRegisterOnFly:
      return "register_on_fly";
    case CopyPolicyKind::kRegCache:
      return "regcache";
  }
  return "static_pool";
}

bool parse_copy_policy(std::string_view text, CopyPolicyKind* out) {
  if (text == "static_pool") {
    *out = CopyPolicyKind::kStaticPool;
  } else if (text == "eager_copy") {
    *out = CopyPolicyKind::kEagerCopy;
  } else if (text == "register_on_fly") {
    *out = CopyPolicyKind::kRegisterOnFly;
  } else if (text == "regcache") {
    *out = CopyPolicyKind::kRegCache;
  } else {
    return false;
  }
  return true;
}

CopyPolicy::CopyPolicy(obs::Hub* hub, int node, CopyPolicyConfig config)
    : hub_(hub), node_(node), config_(std::move(config)) {
  if (config_.kind == CopyPolicyKind::kRegCache) {
    cache_ = std::make_unique<RegCache>(hub_, node_, config_.cache);
  }
  if (hub_ != nullptr) {
    const std::string dim =
        "{policy=" + std::string(copy_policy_name(config_.kind)) + "}";
    c_decisions_ = &hub_->registry.counter("mem.policy_decisions" + dim);
  }
}

CopyVerdict CopyPolicy::acquire(SimTime now, std::uint64_t buffer_id,
                                std::uint64_t bytes) {
  CopyVerdict v;
  v.action = config_.kind;
  if (c_decisions_ != nullptr) c_decisions_->inc();

  switch (config_.kind) {
    case CopyPolicyKind::kStaticPool:
      // Legacy: the transport's own preregistered pool already covers the
      // message; nothing extra to charge.
      break;

    case CopyPolicyKind::kEagerCopy:
      v.cpu_cost = config_.copy_fixed + config_.copy_per_byte.for_bytes(bytes);
      v.copied_bytes = bytes;
      charge_copy(hub_, now, node_, "policy.stage_copy", bytes);
      break;

    case CopyPolicyKind::kRegisterOnFly:
      v.cpu_cost = pin_cost(bytes);
      v.registered_bytes = bytes;
      v.needs_release = true;
      charge_registration(hub_, now, node_, bytes);
      break;

    case CopyPolicyKind::kRegCache: {
      if (buffer_id == 0) {
        // Anonymous one-shot buffer: caching it would alias every other
        // anonymous message onto one cache line. Pin per-message instead.
        v.cpu_cost = config_.cache_lookup + pin_cost(bytes);
        v.registered_bytes = bytes;
        v.needs_release = true;
        charge_registration(hub_, now, node_, bytes);
        break;
      }
      v.cpu_cost = config_.cache_lookup;
      RegCache::Lookup look = cache_->lookup(now, buffer_id, bytes);
      if (!look.hit) {
        v.cpu_cost = v.cpu_cost + pin_cost(bytes);
        v.registered_bytes = look.registered_bytes;
        // Evictions bill their unpin time here too: the miss path stalls
        // until the victim regions are deregistered.
        for (std::size_t i = 0; i < look.evicted_ids.size(); ++i) {
          v.cpu_cost = v.cpu_cost + scaled(config_.unpin_fixed);
        }
        // Capacity 0 pins per-message; the caller must unpin after send.
        v.needs_release = cache_->config().capacity_regions == 0;
      }
      break;
    }
  }
  return v;
}

SimTime CopyPolicy::release(SimTime now, std::uint64_t buffer_id,
                            std::uint64_t bytes) {
  switch (config_.kind) {
    case CopyPolicyKind::kRegisterOnFly:
      charge_deregistration(hub_, now, node_, bytes);
      return scaled(config_.unpin_fixed);
    case CopyPolicyKind::kRegCache:
      // Per-message pins (anonymous buffer, or a capacity-0 cache) are
      // unpinned here; resident entries stay pinned until evicted.
      if (buffer_id == 0 || cache_->config().capacity_regions == 0) {
        charge_deregistration(hub_, now, node_, bytes);
        return scaled(config_.unpin_fixed);
      }
      return SimTime::zero();
    case CopyPolicyKind::kStaticPool:
    case CopyPolicyKind::kEagerCopy:
      return SimTime::zero();
  }
  return SimTime::zero();
}

SimTime CopyPolicy::scaled(SimTime t) const {
  if (config_.reg_cost_scale_pct == 100) return t;
  return SimTime::nanoseconds(t.ns() * config_.reg_cost_scale_pct / 100);
}

SimTime CopyPolicy::pin_cost(std::uint64_t bytes) const {
  return scaled(config_.pin_fixed + config_.pin_per_byte.for_bytes(bytes));
}

}  // namespace sv::mem
