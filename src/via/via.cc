#include "via/via.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mem/ledger.h"

namespace sv::via {

const char* status_name(Status s) {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kNoReceiveDescriptor: return "no-receive-descriptor";
    case Status::kLengthError: return "length-error";
    case Status::kFlushed: return "flushed";
  }
  return "?";
}

Vi::Vi(Nic* nic, std::uint64_t id, std::shared_ptr<CompletionQueue> send_cq,
       std::shared_ptr<CompletionQueue> recv_cq)
    : nic_(nic),
      id_(id),
      send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)) {}

void Vi::post_recv(Descriptor d) {
  if (!d.region) {
    throw std::invalid_argument("post_recv: descriptor without region");
  }
  if (d.offset + d.length > d.region->size()) {
    throw std::invalid_argument("post_recv: descriptor exceeds region");
  }
  recv_queue_.push_back(std::move(d));
}

void Vi::post_send(Descriptor d) {
  if (!connected()) {
    throw std::logic_error("post_send: VI not connected");
  }
  if (d.op == Opcode::kSend) {
    if (!d.region) {
      throw std::invalid_argument("post_send: descriptor without region");
    }
    if (d.offset + d.length > d.region->size()) {
      throw std::invalid_argument("post_send: descriptor exceeds region");
    }
  }
  nic_->post_send_internal(this, std::move(d));
}

Nic::Nic(sim::Simulation* sim, net::Node* node, net::CalibrationProfile profile)
    : sim_(sim),
      node_(node),
      profile_(std::move(profile)),
      model_(profile_),
      tx_queue_(sim, 0, node->name() + ".via_tx"),
      rx_queue_(sim, 0, node->name() + ".via_rx") {
  sim_->spawn(node->name() + ".via_tx_engine", [this] { tx_loop(); });
  sim_->spawn(node->name() + ".via_rx_engine", [this] { rx_loop(); });
}

Nic::~Nic() {
  tx_queue_.close();
  rx_queue_.close();
}

std::shared_ptr<MemoryRegion> Nic::register_memory(std::size_t size) {
  // Registration pins pages; on the paper's era hardware this was a
  // multi-microsecond kernel operation. Charge a fixed cost when called
  // from a process; setup code outside processes registers for free.
  if (sim_->current() != nullptr) {
    sim_->delay(SimTime::microseconds(20));
  }
  mem::charge_registration(&sim_->obs(), sim_->now(), node_->id(), size);
  auto region = std::make_shared<MemoryRegion>(next_handle_++, size);
  regions_.push_back(region);
  return region;
}

std::shared_ptr<MemoryRegion> Nic::find_region(std::uint64_t handle) const {
  for (const auto& r : regions_) {
    if (r->handle() == handle) return r;
  }
  return nullptr;
}

void Nic::deregister_memory(std::uint64_t handle) {
  std::erase_if(regions_,
                [handle](const auto& r) { return r->handle() == handle; });
}

std::shared_ptr<Vi> Nic::create_vi() {
  auto send_cq = std::make_shared<CompletionQueue>(
      sim_, node_->name() + ".scq" + std::to_string(next_vi_id_));
  auto recv_cq = std::make_shared<CompletionQueue>(
      sim_, node_->name() + ".rcq" + std::to_string(next_vi_id_));
  return create_vi(std::move(send_cq), std::move(recv_cq));
}

std::shared_ptr<Vi> Nic::create_vi(std::shared_ptr<CompletionQueue> send_cq,
                                   std::shared_ptr<CompletionQueue> recv_cq) {
  auto vi = std::make_shared<Vi>(this, next_vi_id_++, std::move(send_cq),
                                 std::move(recv_cq));
  vis_.push_back(vi);
  return vi;
}

void Nic::connect(Vi& a, Vi& b) {
  if (a.peer_ != nullptr || b.peer_ != nullptr) {
    throw std::logic_error("Nic::connect: VI already connected");
  }
  a.peer_ = &b;
  b.peer_ = &a;
}

void Nic::post_send_internal(Vi* vi, Descriptor d) {
  // Doorbell + sender-side library work, serialized on the host TX path.
  node_->tx_host().use(model_.sender_time(d.length));
  tx_queue_.send(TxWork{vi, std::move(d)});
}

void Nic::tx_loop() {
  while (auto work = tx_queue_.recv()) {
    Vi* vi = work->vi;
    Vi* peer = vi->peer_;
    Nic* peer_nic = peer->nic_;
    // DMA out of host memory and across the wire into the peer NIC.
    peer_nic->node_->link_in().use(model_.wire_time(work->desc.length));
    auto shared = std::make_shared<TxWork>(std::move(*work));
    sim_->schedule(profile_.propagation, [peer_nic, shared] {
      peer_nic->rx_queue_.send(RxWork{shared->vi, std::move(shared->desc)});
    });
  }
}

void Nic::rx_loop() {
  while (auto work = rx_queue_.recv()) {
    Vi* sender_vi = work->vi;
    Vi* receiver_vi = sender_vi->peer_;
    Descriptor& d = work->desc;
    // Receiver-side completion processing. RDMA writes land by DMA with no
    // receive-descriptor matching or host per-byte work — that is their
    // point; only a small NIC handling cost applies.
    if (d.op == Opcode::kRdmaWrite) {
      node_->rx_proto().use(profile_.recv_per_seg);
    } else {
      node_->rx_proto().use(model_.recv_time(d.length));
    }
    const SimTime now = sim_->now();

    if (d.op == Opcode::kRdmaWrite) {
      Completion c;
      c.op = Opcode::kRdmaWrite;
      c.cookie = d.cookie;
      c.bytes = d.length;
      c.timestamp = now;
      auto remote = find_region(d.remote_handle);
      if (!remote || d.remote_offset + d.length > remote->size()) {
        c.status = Status::kLengthError;
      } else {
        if (d.region) {
          // Models the NIC's DMA between registered regions, not a host
          // CPU copy; never charged to the ledger. svlint:allow(SV008)
          std::memcpy(remote->data() + d.remote_offset,
                      d.region->data() + d.offset, d.length);
        }
        c.status = Status::kSuccess;
        if (d.remote_notify) {
          // RDMA write with immediate: consume one posted receive
          // descriptor (dataless) and surface a receive completion.
          if (receiver_vi->recv_queue_.empty()) {
            ++recv_misses_;
            c.status = Status::kNoReceiveDescriptor;
          } else {
            Descriptor rd = std::move(receiver_vi->recv_queue_.front());
            receiver_vi->recv_queue_.pop_front();
            Completion recv_c;
            recv_c.op = Opcode::kRdmaWrite;
            recv_c.status = Status::kSuccess;
            recv_c.bytes = d.length;
            recv_c.immediate = d.immediate;
            recv_c.cookie = rd.cookie;
            recv_c.timestamp = now;
            receiver_vi->recv_cq_->push(recv_c);
          }
        }
      }
      sender_vi->send_cq_->push(c);
      if (c.status == Status::kSuccess) ++sends_completed_;
      continue;
    }

    // Two-sided send: must match a posted receive descriptor.
    if (receiver_vi->recv_queue_.empty()) {
      ++recv_misses_;
      Completion c;
      c.op = Opcode::kSend;
      c.status = Status::kNoReceiveDescriptor;
      c.cookie = d.cookie;
      c.bytes = d.length;
      c.timestamp = now;
      sender_vi->send_cq_->push(c);
      continue;
    }
    Descriptor rd = std::move(receiver_vi->recv_queue_.front());
    receiver_vi->recv_queue_.pop_front();

    Completion send_c;
    send_c.op = Opcode::kSend;
    send_c.cookie = d.cookie;
    send_c.bytes = d.length;
    send_c.timestamp = now;
    Completion recv_c;
    recv_c.op = Opcode::kSend;
    recv_c.cookie = rd.cookie;
    recv_c.bytes = d.length;
    recv_c.immediate = d.immediate;
    recv_c.timestamp = now;

    if (d.length > rd.length) {
      send_c.status = Status::kLengthError;
      recv_c.status = Status::kLengthError;
    } else {
      send_c.status = Status::kSuccess;
      recv_c.status = Status::kSuccess;
      if (d.region && rd.region) {
        // Models the NIC's DMA from the sender's registered region into the
        // posted receive descriptor's region. svlint:allow(SV008)
        std::memcpy(rd.region->data() + rd.offset, d.region->data() + d.offset,
                    d.length);
      }
      ++sends_completed_;
    }
    sender_vi->send_cq_->push(send_c);
    receiver_vi->recv_cq_->push(recv_c);
  }
}

}  // namespace sv::via
