// A functional Virtual Interface Architecture (VIA) provider library.
//
// Models the user-level NIC interface of the GigaNet cLAN: applications
// register memory, create VI endpoints, post send/receive descriptors to
// work queues, ring a doorbell, and reap completions from completion
// queues. All protocol machinery is executed (descriptor matching, queue
// depths, completion ordering, RDMA writes); only the *time* each step
// takes comes from the calibrated VIA profile (net/calibration.h).
//
// Semantics follow the VIA spec where it matters to the paper:
//  - Reliable delivery: data arrives in order, exactly once.
//  - A send arriving with no posted receive descriptor is an error
//    (completes with Status::kNoReceiveDescriptor at the *sender* CQ); the
//    sockets layer above avoids this with credit-based flow control,
//    exactly as SocketVIA did.
//  - RDMA write requires no receive descriptor and completes at the sender
//    only (the paper's future-work push/pull model builds on this).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/calibration.h"
#include "net/cluster.h"
#include "net/cost_model.h"
#include "sim/sync.h"

namespace sv::via {

/// Registered memory: VIA requires all transfer buffers to be registered
/// (pinned) before use. Backing storage is materialized so payload-carrying
/// transfers actually move bytes.
class MemoryRegion {
 public:
  MemoryRegion(std::uint64_t handle, std::size_t size)
      : handle_(handle), data_(size) {}

  [[nodiscard]] std::uint64_t handle() const { return handle_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::byte* data() { return data_.data(); }
  [[nodiscard]] const std::byte* data() const { return data_.data(); }

 private:
  std::uint64_t handle_;
  std::vector<std::byte> data_;
};

enum class Opcode { kSend, kRdmaWrite };

enum class Status {
  kSuccess,
  kNoReceiveDescriptor,  // send arrived with empty receive queue
  kLengthError,          // receive buffer too small for incoming data
  kFlushed,              // endpoint torn down with work outstanding
};

[[nodiscard]] const char* status_name(Status s);

/// A work descriptor (the VIP_DESCRIPTOR analogue).
struct Descriptor {
  Opcode op = Opcode::kSend;
  std::shared_ptr<MemoryRegion> region;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  /// 32-bit immediate delivered with the payload (like VIP immediate data).
  std::uint32_t immediate = 0;
  /// For RDMA write: remote region handle + offset.
  std::uint64_t remote_handle = 0;
  std::uint64_t remote_offset = 0;
  /// RDMA write with immediate data (VIA spec): after the data lands, a
  /// posted receive descriptor at the target is consumed and a receive
  /// completion carrying `immediate` is generated. Without it, RDMA writes
  /// are silent at the target.
  bool remote_notify = false;
  /// Application cookie returned in the completion.
  std::uint64_t cookie = 0;
};

struct Completion {
  Status status = Status::kSuccess;
  Opcode op = Opcode::kSend;
  std::uint64_t bytes = 0;
  std::uint32_t immediate = 0;
  std::uint64_t cookie = 0;
  SimTime timestamp;
};

/// Completion queue: multiple VIs may share one (as VIPL allows).
class CompletionQueue {
 public:
  CompletionQueue(sim::Simulation* sim, std::string name)
      : items_(sim, 0, std::move(name)) {}

  /// Blocks until a completion is available (VipCQWait).
  Completion wait() {
    auto c = items_.recv();
    if (!c) {
      throw std::logic_error("CompletionQueue: closed while waiting");
    }
    return *c;
  }
  /// Non-blocking poll (VipCQDone).
  std::optional<Completion> poll() { return items_.try_recv(); }
  [[nodiscard]] std::size_t pending() const { return items_.size(); }

  void push(Completion c) { items_.send(std::move(c)); }

 private:
  sim::Channel<Completion> items_;
};

class Nic;

/// A connected Virtual Interface endpoint pair member.
class Vi {
 public:
  Vi(Nic* nic, std::uint64_t id, std::shared_ptr<CompletionQueue> send_cq,
     std::shared_ptr<CompletionQueue> recv_cq);

  /// Connects this VI to a remote VI (both directions set symmetrically by
  /// Nic::connect). Must be connected before posting sends.
  [[nodiscard]] bool connected() const { return peer_ != nullptr; }

  /// Posts a receive descriptor (VipPostRecv). Never blocks.
  void post_recv(Descriptor d);
  /// Posts a send/RDMA descriptor and rings the doorbell (VipPostSend).
  /// Costs the doorbell time; the transfer itself is asynchronous.
  void post_send(Descriptor d);

  [[nodiscard]] CompletionQueue& send_cq() { return *send_cq_; }
  [[nodiscard]] CompletionQueue& recv_cq() { return *recv_cq_; }
  [[nodiscard]] std::size_t recv_queue_depth() const {
    return recv_queue_.size();
  }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Nic& nic() { return *nic_; }

 private:
  friend class Nic;

  Nic* nic_;
  std::uint64_t id_;
  Vi* peer_ = nullptr;
  std::shared_ptr<CompletionQueue> send_cq_;
  std::shared_ptr<CompletionQueue> recv_cq_;
  std::deque<Descriptor> recv_queue_;
};

/// The per-node VIA NIC: owns memory registration and the TX engine that
/// drains posted send descriptors in FIFO order.
class Nic {
 public:
  Nic(sim::Simulation* sim, net::Node* node,
      net::CalibrationProfile profile = net::CalibrationProfile::via());
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Registers (pins) memory; costs registration time.
  std::shared_ptr<MemoryRegion> register_memory(std::size_t size);
  /// Looks up a registered region by handle (RDMA target resolution).
  [[nodiscard]] std::shared_ptr<MemoryRegion> find_region(
      std::uint64_t handle) const;
  void deregister_memory(std::uint64_t handle);

  /// Creates an unconnected VI with fresh CQs (or caller-shared CQs).
  std::shared_ptr<Vi> create_vi();
  std::shared_ptr<Vi> create_vi(std::shared_ptr<CompletionQueue> send_cq,
                                std::shared_ptr<CompletionQueue> recv_cq);

  /// Connects two VIs (possibly on different NICs) as a reliable pair.
  static void connect(Vi& a, Vi& b);

  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  [[nodiscard]] net::Node& node() { return *node_; }
  [[nodiscard]] const net::CostModel& model() const { return model_; }
  [[nodiscard]] std::uint64_t sends_completed() const {
    return sends_completed_;
  }
  [[nodiscard]] std::uint64_t recv_misses() const { return recv_misses_; }

 private:
  friend class Vi;

  struct TxWork {
    Vi* vi;  // the *sending* VI
    Descriptor desc;
  };
  struct RxWork {
    Vi* vi;  // the *sending* VI (receiver resolved via its peer link)
    Descriptor desc;
  };

  void post_send_internal(Vi* vi, Descriptor d);
  void tx_loop();
  void rx_loop();

  sim::Simulation* sim_;
  net::Node* node_;
  net::CalibrationProfile profile_;
  net::CostModel model_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t next_vi_id_ = 1;
  std::vector<std::shared_ptr<MemoryRegion>> regions_;
  std::vector<std::shared_ptr<Vi>> vis_;
  sim::Channel<TxWork> tx_queue_;
  sim::Channel<RxWork> rx_queue_;
  std::uint64_t sends_completed_ = 0;
  std::uint64_t recv_misses_ = 0;
};

}  // namespace sv::via
