// Shared measurement harnesses for the paper's application experiments
// (Figures 7, 8, 9). Each function builds a fresh simulation, runs the
// visualization pipeline under the prescribed workload, and returns the
// measurements the paper plots.
//
// Methodology notes (mirroring Section 5.2.2):
//  - Complete-update traffic and partial-update probes run as *separate
//    filter-group instances* over the same nodes (DataCutter's concurrency
//    model for multiple queries), so probes contend for NIC and protocol
//    resources with the update stream — the source of the latency blow-up
//    near capacity.
//  - Complete updates are submitted open-loop at the target rate; the
//    achieved rate is computed from completion timestamps, so an
//    infeasible target shows up as achieved < target.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "datacutter/group.h"
#include "harness/obsout.h"
#include "mem/copy_policy.h"
#include "net/calibration.h"
#include "net/fault.h"
#include "sim/event_queue.h"
#include "vizapp/query.h"

namespace sv::harness {

struct VizWorkloadConfig {
  net::Transport transport = net::Transport::kSocketVia;
  std::uint64_t image_bytes = 16 * 1024 * 1024;
  std::uint64_t block_bytes = 64 * 1024;
  /// 18 ns/B for the "linear computation" panels; zero otherwise.
  PerByteCost compute = PerByteCost::zero();
  int cluster_nodes = 16;
  std::uint64_t seed = 1;
  /// Fault injection (frame loss, jitter, node stalls), installed on the
  /// cluster before the apps start. Defaults to no faults; every fault
  /// decision derives from `seed`, so (config, seed) still pins the
  /// trace digest bit-for-bit.
  net::FaultPlan faults = net::FaultPlan::none();
  /// Trace / metrics artifact destinations for this run (tracing is
  /// passive, so setting these cannot change the measured results).
  ObsArtifacts obs;
  /// Event-queue implementation for the run's Simulation (DESIGN.md §12).
  /// Both kinds are digest-identical (tests/integration/digest_pins_test.cc
  /// proves it per release); the knob exists for that proof and for
  /// differential benchmarking.
  sim::QueueKind queue_kind = sim::QueueKind::kTimingWheel;
  /// Selective-copy policy for the run's zero-copy sockets (DESIGN.md §14).
  /// kStaticPool (default) keeps the legacy path and every digest pin.
  mem::CopyPolicyConfig copy_policy{};
};

/// Figure 7 point: run complete updates at `target_ups` while probing with
/// partial-update queries; report achieved rate and mean partial latency.
struct PacedResult {
  double target_ups = 0;
  double achieved_ups = 0;
  Samples partial_latencies;
  /// True when the pipeline kept up with the submission rate (within 5%).
  bool met_target = false;
  /// Determinism evidence: total events executed and the engine's FNV-1a
  /// event-trace digest. Two runs with identical config + seed must match
  /// on all three of (events_fired, trace_digest, end_time) bit-for-bit
  /// (tests/integration/determinism_replay_test.cc).
  std::uint64_t events_fired = 0;
  std::uint64_t trace_digest = 0;
  SimTime end_time;
};
[[nodiscard]] PacedResult run_paced_updates(const VizWorkloadConfig& cfg,
                                            double target_ups,
                                            int updates = 8,
                                            int warmup = 2);

/// Figure 8 point: maximum sustainable complete-update rate (closed loop
/// with `pipeline_depth` queries outstanding), plus the uncontended partial
/// latency at this block size (the guarantee actually delivered).
struct SaturationResult {
  double updates_per_sec = 0;
  SimTime uncontended_partial_latency;
};
[[nodiscard]] SaturationResult run_saturation(const VizWorkloadConfig& cfg,
                                              int updates = 8, int warmup = 2,
                                              int pipeline_depth = 2);

/// Figure 9 point: closed-loop mix of zoom (4 chunks) and complete-update
/// queries; `complete_fraction` of the queries are complete updates.
/// Returns per-query response times.
[[nodiscard]] Samples run_query_mix(const VizWorkloadConfig& cfg,
                                    double complete_fraction,
                                    int queries = 30);

/// One-shot: latency of a single partial update on an otherwise idle
/// pipeline (the uncontended guarantee).
[[nodiscard]] SimTime measure_idle_partial_latency(
    const VizWorkloadConfig& cfg);

}  // namespace sv::harness
