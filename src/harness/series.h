// Figure series collection and paper-style printing.
#pragma once

#include <iosfwd>
#include <deque>
#include <string>
#include <vector>

#include "common/table.h"

namespace sv::harness {

/// One plotted line: (x, y) points with a legend name.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] double x(std::size_t i) const { return points_[i].first; }
  [[nodiscard]] double y(std::size_t i) const { return points_[i].second; }
  /// y at the given x, or NaN when absent.
  [[nodiscard]] double y_at(double x) const;

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

/// A figure: several series over a shared x axis, rendered as one table
/// (x column + one column per series), matching the paper's plots.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  Series& add_series(std::string name);
  [[nodiscard]] const std::deque<Series>& series() const { return series_; }

  /// Prints the title, axis labels, and the combined table. `precision`
  /// controls y formatting; missing points print "-".
  void print(std::ostream& os, int precision = 2) const;
  void print_csv(std::ostream& os, int precision = 4) const;

 private:
  [[nodiscard]] Table to_table(int precision) const;

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  // deque: stable references across add_series() calls
  std::deque<Series> series_;
};

}  // namespace sv::harness
