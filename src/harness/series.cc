#include "harness/series.h"

#include <cmath>
#include <limits>
#include <ostream>
#include <set>

namespace sv::harness {

double Series::y_at(double x) const {
  for (const auto& [px, py] : points_) {
    if (std::abs(px - x) < 1e-9) return py;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Series& Figure::add_series(std::string name) {
  series_.emplace_back(std::move(name));
  return series_.back();
}

Table Figure::to_table(int precision) const {
  std::vector<std::string> headers{x_label_};
  for (const auto& s : series_) headers.push_back(s.name());
  Table t(std::move(headers));

  // Union of x values, in first-appearance order per series, then sorted.
  std::set<double> xs;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) xs.insert(s.x(i));
  }
  for (double x : xs) {
    std::vector<std::string> row;
    row.push_back(Table::num(x, 2));
    for (const auto& s : series_) {
      const double y = s.y_at(x);
      row.push_back(std::isnan(y) ? "-" : Table::num(y, precision));
    }
    t.add_row(std::move(row));
  }
  return t;
}

void Figure::print(std::ostream& os, int precision) const {
  os << "== " << title_ << " ==\n";
  os << "   y: " << y_label_ << "\n";
  to_table(precision).print(os);
  os << "\n";
}

void Figure::print_csv(std::ostream& os, int precision) const {
  os << "# " << title_ << " (y: " << y_label_ << ")\n";
  to_table(precision).print_csv(os);
}

}  // namespace sv::harness
