// Observability artifact plumbing shared by the bench targets: every
// `bench/fig*` and `ablation_*` binary accepts `--trace-out=PATH` and
// `--metrics-out=PATH` and, when set, writes the Chrome trace_event JSON
// and the obs::Registry snapshot of its (final) simulation there.
//
// The tracer is passive (DESIGN.md §9): enabling it for an artifact run
// cannot change simulated results, so a bench's printed numbers are
// identical with and without these flags.
#pragma once

#include "common/cli.h"
#include "obs/artifacts.h"
#include "sim/simulation.h"

namespace sv::harness {

/// Artifact destinations parsed from a bench command line; empty paths mean
/// "don't write".
using ObsArtifacts = obs::Artifacts;

/// Registers `--trace-out` / `--metrics-out` / `--metrics-every` on a
/// bench's parser. Benches that sweep several configurations export the
/// last swept run.
void add_obs_flags(CliParser& cli, ObsArtifacts* out);

/// Turns the tracer on for `sim` when a trace artifact was requested, and
/// starts the sim-time snapshot pump when `--metrics-every` asked for live
/// mid-run snapshots (numbered `<metrics-out>.NNNN` files; byte-identical
/// across same-seed replays). Call after constructing the Simulation,
/// before traffic starts.
void begin_obs(sim::Simulation& sim, const ObsArtifacts& artifacts);

/// Writes the requested artifacts from `sim`'s hub; throws std::runtime_error
/// when a destination cannot be opened.
void export_obs(sim::Simulation& sim, const ObsArtifacts& artifacts);

}  // namespace sv::harness
