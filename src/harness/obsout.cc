#include "harness/obsout.h"

namespace sv::harness {

void add_obs_flags(CliParser& cli, ObsArtifacts* out) {
  cli.add_string("trace-out", &out->trace_path,
                 "write Chrome trace_event JSON of the (last) run here");
  cli.add_string("metrics-out", &out->metrics_path,
                 "write the metrics registry snapshot (JSON) here");
}

void begin_obs(sim::Simulation& sim, const ObsArtifacts& artifacts) {
  obs::begin_artifacts(sim.obs(), artifacts);
}

void export_obs(sim::Simulation& sim, const ObsArtifacts& artifacts) {
  obs::export_artifacts(sim.obs(), artifacts);
}

}  // namespace sv::harness
