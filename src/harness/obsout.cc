#include "harness/obsout.h"

namespace sv::harness {

void add_obs_flags(CliParser& cli, ObsArtifacts* out) {
  cli.add_string("trace-out", &out->trace_path,
                 "write Chrome trace_event JSON of the (last) run here");
  cli.add_string("metrics-out", &out->metrics_path,
                 "write the metrics registry snapshot (JSON) here");
  cli.add_int("metrics-every", &out->metrics_every_ms,
              "also write numbered mid-run snapshots <metrics-out>.NNNN "
              "every this many simulated ms (0 = off)");
}

void begin_obs(sim::Simulation& sim, const ObsArtifacts& artifacts) {
  obs::begin_artifacts(sim.obs(), artifacts);
  if (artifacts.want_live_metrics() && !sim.metrics_pump_active()) {
    sim.publish_metrics_every(
        SimTime::milliseconds(artifacts.metrics_every_ms));
  }
}

void export_obs(sim::Simulation& sim, const ObsArtifacts& artifacts) {
  obs::export_artifacts(sim.obs(), artifacts);
}

}  // namespace sv::harness
