#include "harness/openloop.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "net/cluster.h"
#include "sim/sync.h"

namespace sv::harness {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
  }
  return "?";
}

double ArrivalSpec::peak_rate_per_sec() const {
  double peak = rate_per_sec;
  if (kind == ArrivalKind::kMmpp) {
    peak = std::max(peak, high_rate_per_sec());
  }
  peak *= 1.0 + diurnal_amplitude;
  for (const FlashCrowd& fc : flash_crowds) {
    peak *= static_cast<double>(fc.multiplier);
  }
  return peak;
}

namespace {

/// Strictly-positive exponential draw in integer nanoseconds.
SimTime exp_gap_ns(Rng& rng, double mean_ns) {
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(rng.exponential(mean_ns)) + 1);
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, std::uint64_t seed)
    : spec_(spec), peak_(spec.peak_rate_per_sec()) {
  SV_ASSERT(spec_.rate_per_sec > 0.0, "ArrivalSpec: rate must be positive");
  SV_ASSERT(spec_.diurnal_amplitude >= 0.0 && spec_.diurnal_amplitude < 1.0,
            "ArrivalSpec: diurnal amplitude must be in [0, 1)");
  std::uint64_t st = seed;
  arrivals_ = Rng(splitmix64_next(st));
  states_ = Rng(splitmix64_next(st));
  if (spec_.kind == ArrivalKind::kMmpp) {
    state_until_ = exp_gap_ns(
        states_, static_cast<double>(spec_.mmpp_sojourn_low.ns()));
  }
}

double ArrivalProcess::rate_at(SimTime t) {
  double r = spec_.rate_per_sec;
  if (spec_.kind == ArrivalKind::kMmpp) {
    // Advance the sojourn trajectory to t. The state path consumes only
    // the `states_` stream, so it is the same trajectory regardless of
    // how many thinning candidates were drawn along the way.
    while (t >= state_until_) {
      high_ = !high_;
      const SimTime mean =
          high_ ? spec_.mmpp_sojourn_high : spec_.mmpp_sojourn_low;
      state_until_ += exp_gap_ns(states_, static_cast<double>(mean.ns()));
    }
    if (high_) r = spec_.high_rate_per_sec();
  }
  if (spec_.diurnal_period > SimTime::zero()) {
    // Triangular wave: phase fraction in [0,1) from integer ns, peak at
    // half-period. Scales the rate across [1-a, 1+a].
    const std::int64_t phase = t.ns() % spec_.diurnal_period.ns();
    const double frac =
        static_cast<double>(phase) /
        static_cast<double>(spec_.diurnal_period.ns());
    const double tri = frac < 0.5 ? 2.0 * frac : 2.0 - 2.0 * frac;
    r *= 1.0 - spec_.diurnal_amplitude + 2.0 * spec_.diurnal_amplitude * tri;
  }
  for (const FlashCrowd& fc : spec_.flash_crowds) {
    if (t >= fc.at && t < fc.at + fc.duration) {
      r *= static_cast<double>(fc.multiplier);
    }
  }
  return r;
}

SimTime ArrivalProcess::next() {
  const double mean_gap_ns = 1e9 / peak_;
  for (;;) {
    t_ += exp_gap_ns(arrivals_, mean_gap_ns);
    const double r = rate_at(t_);
    if (arrivals_.uniform01() * peak_ < r) return t_;
  }
}

OpenLoopResult run_open_loop(const OpenLoopConfig& cfg) {
  SV_ASSERT(cfg.cluster_nodes >= 2, "run_open_loop: need at least 2 nodes");
  SV_ASSERT(cfg.duration > SimTime::zero(),
            "run_open_loop: duration must be positive");
  const int nodes = cfg.cluster_nodes;
  const int fanout = std::max(1, std::min(cfg.fanout, nodes - 1));
  const bool incast = cfg.incast_fraction > 0.0;

  OpenLoopResult res;
  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, nodes, net::NodeConfig{}, cfg.topology);
  cluster.install_faults(cfg.faults, cfg.seed);
  begin_obs(s, cfg.obs);

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  std::uint64_t throttled = 0;
  Samples latency;

  // --- SLO control plane (DESIGN.md §15) -------------------------------
  // All of this is inert when cfg.slo is null: no extra metrics, no pump,
  // no extra RNG draws — the historical schedule, digest pins untouched.
  const bool slo_on = cfg.slo != nullptr;
  obs::Counter* c_offered = nullptr;
  obs::Counter* c_throttled = nullptr;
  // Per-destination windowed-latency histograms the controller watches.
  // Bounds are finer than the registry's decade default so p99-vs-target
  // comparisons resolve around millisecond-scale SLOs.
  std::vector<obs::Histogram*> lat_hist;
  if (slo_on) {
    obs::Registry& reg = s.obs().registry;
    c_offered = &reg.counter("slo.offered");
    c_throttled = &reg.counter("slo.throttled");
    const std::vector<std::int64_t> slo_bounds = {
        250'000,    500'000,    1'000'000,   2'000'000,  3'000'000,
        4'000'000,  5'000'000,  7'500'000,   10'000'000, 15'000'000,
        20'000'000, 30'000'000, 50'000'000,  100'000'000};
    lat_hist.resize(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      lat_hist[static_cast<std::size_t>(n)] = &reg.histogram(
          "slo.update_latency_ns{node=node" + std::to_string(n) + "}",
          slo_bounds);
    }
  }

  sockets::SendMuxConfig mux_cfg = cfg.mux;
  mux_cfg.transport = cfg.transport;
  std::vector<std::unique_ptr<sockets::SendMux>> muxes;
  muxes.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    muxes.push_back(std::make_unique<sockets::SendMux>(
        &s, &cluster, n, mux_cfg,
        [&s, &delivered, &latency, &lat_hist, slo_on](
            int dst, const sockets::MuxRecord& rec, SimTime at) {
          ++delivered;
          const SimTime l = at - rec.enqueued;
          latency.add(l);
          if (slo_on) {
            lat_hist[static_cast<std::size_t>(dst)]->observe(l.ns());
          }
        }));
  }

  // Per-node connection tables: `fanout` steady destinations (+ one shared
  // hot-node connection when incast redirection is on). Churn rewrites
  // entries in place, so generators always see a live conn id.
  std::vector<std::vector<std::uint64_t>> conns(
      static_cast<std::size_t>(nodes));
  std::vector<std::vector<int>> conn_dsts(static_cast<std::size_t>(nodes));
  std::vector<std::uint64_t> hot_conns(static_cast<std::size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    const auto un = static_cast<std::size_t>(n);
    for (int j = 0; j < fanout; ++j) {
      const int dst = (n + 1 + j) % nodes;
      conns[un].push_back(muxes[un]->open_connection(dst));
      conn_dsts[un].push_back(dst);
    }
    if (incast && n != cfg.hot_node) {
      hot_conns[un] = muxes[un]->open_connection(cfg.hot_node);
    }
  }

  // Workload mix: cumulative integer weights for the per-arrival class
  // pick. Empty classes = the implicit single class, picked without an
  // RNG draw (historical stream).
  const bool has_classes = !cfg.classes.empty();
  std::vector<std::uint64_t> cum_weight;
  std::uint64_t weight_sum = 0;
  for (const QueryClass& qc : cfg.classes) {
    SV_ASSERT(qc.weight > 0, "run_open_loop: class weight must be positive");
    weight_sum += static_cast<std::uint64_t>(qc.weight);
    cum_weight.push_back(weight_sum);
  }

  // Controller state shared with the generators. `demoted` re-routes the
  // steady fanout away from degraded replicas; `chunk_bytes` is the live
  // DR chunk size (0 = chunk actuator disabled, submit whole updates).
  std::vector<char> demoted(static_cast<std::size_t>(nodes), 0);
  std::uint64_t chunk_bytes = 0;
  std::unique_ptr<control::AdmissionControl> admission;
  std::unique_ptr<control::Controller> controller;
  if (slo_on) {
    // Admission buckets sized at each class's expected share of the
    // cluster-wide offered rate, plus headroom: at full admission the
    // buckets refill faster than arrivals drain them.
    std::vector<control::AdmissionControl::ClassSpec> specs;
    const double total_rate =
        cfg.arrivals.peak_rate_per_sec() * static_cast<double>(nodes);
    const auto scaled_rate = [&](int weight) {
      const double share = has_classes
                               ? static_cast<double>(weight) /
                                     static_cast<double>(weight_sum)
                               : 1.0;
      const double r = total_rate * share *
                       static_cast<double>(cfg.slo->admission_headroom_pct) /
                       100.0;
      return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(r));
    };
    if (has_classes) {
      for (const QueryClass& qc : cfg.classes) {
        specs.push_back({qc.name, scaled_rate(qc.weight),
                         cfg.slo->bucket_burst, qc.sheddable});
      }
    } else {
      specs.push_back(
          {"default", scaled_rate(1), cfg.slo->bucket_burst, true});
    }
    admission = std::make_unique<control::AdmissionControl>(std::move(specs));

    chunk_bytes = cfg.slo->controller.chunk_max_bytes;
    control::Actuators acts;
    acts.admission = admission.get();
    acts.apply_chunk_bytes = [&chunk_bytes](std::uint64_t b) {
      chunk_bytes = b;
    };
    acts.apply_demotion = [&muxes, &demoted, nodes](int node) {
      // Quiesce the degraded replica in both directions: flag it so the
      // generators re-route new updates (and shed its own arrivals),
      // discard every stale queued update headed toward it AND the
      // backlog its stalled sender can no longer ship, and release its
      // pin-down cache (mem.regcache_evictions reconciles).
      demoted[static_cast<std::size_t>(node)] = 1;
      for (auto& m : muxes) m->flush_lane(node);
      for (int d = 0; d < nodes; ++d) {
        muxes[static_cast<std::size_t>(node)]->flush_lane(d);
      }
      muxes[static_cast<std::size_t>(node)]->flush_registrations();
    };
    acts.apply_promotion = [&demoted](int node) {
      demoted[static_cast<std::size_t>(node)] = 0;
    };
    controller = std::make_unique<control::Controller>(
        &s.obs(), cfg.slo->controller, std::move(acts));
    for (int n = 0; n < nodes; ++n) controller->watch_node(n);
    s.obs().attach(controller.get());
    // Decision cadence: ride an existing --metrics-every pump, else run
    // our own at the controller window.
    if (!s.metrics_pump_active()) s.publish_metrics_every(cfg.slo->window);
  }

  // Clients spread evenly: node n models clients_of(n) logical clients;
  // each arrival belongs to a uniformly drawn client of that node.
  const auto clients_of = [&cfg, nodes](int n) {
    const auto base = cfg.clients / static_cast<std::uint64_t>(nodes);
    const auto extra = cfg.clients % static_cast<std::uint64_t>(nodes);
    return std::max<std::uint64_t>(
        1, base + (static_cast<std::uint64_t>(n) < extra ? 1 : 0));
  };

  sim::Channel<int> done(&s, 0, "openloop.done");
  for (int n = 0; n < nodes; ++n) {
    // Per-node streams derived purely from (seed, node id).
    std::uint64_t st =
        cfg.seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(n) + 1);
    const std::uint64_t arrival_seed = splitmix64_next(st);
    const std::uint64_t pick_seed = splitmix64_next(st);
    const std::uint64_t churn_seed = splitmix64_next(st);

    s.spawn("openloop.gen" + std::to_string(n), [&, n, arrival_seed,
                                                 pick_seed] {
      const auto un = static_cast<std::size_t>(n);
      ArrivalProcess ap(cfg.arrivals, arrival_seed);
      Rng pick(pick_seed);
      const std::uint64_t population = clients_of(n);
      for (;;) {
        const SimTime t = ap.next();
        if (t > cfg.duration) break;
        s.delay(t - s.now());
        ++offered;
        const std::uint64_t client = pick.next_below(population);

        // Class pick by cumulative weight (extra draw only with a mix).
        std::size_t cls = 0;
        std::uint64_t bytes = cfg.update_bytes;
        if (has_classes) {
          const std::uint64_t w = pick.next_below(weight_sum);
          while (cum_weight[cls] <= w) ++cls;
          bytes = cfg.classes[cls].update_bytes;
        }
        if (slo_on) c_offered->inc();

        // A demoted node is out of the replication set in both directions:
        // its own updates are shed too (its sender path is what degraded),
        // not queued behind a dead tx path to deliver stale later.
        if (slo_on && demoted[un] != 0) {
          ++throttled;
          c_throttled->inc();
          continue;
        }

        // Admission gate: a throttled arrival is shed at the generator —
        // it never reaches a mux queue (graceful degradation, not
        // open-loop queue collapse).
        if (admission != nullptr && !admission->admit(cls, s.now())) {
          ++throttled;
          c_throttled->inc();
          continue;
        }

        std::uint64_t conn;
        bool to_hot =
            incast && n != cfg.hot_node && pick.bernoulli(cfg.incast_fraction);
        if (to_hot && slo_on && demoted[static_cast<std::size_t>(
                                    cfg.hot_node)] != 0) {
          to_hot = false;  // hot replica demoted: fall back to the fanout
        }
        if (to_hot) {
          conn = hot_conns[un];
        } else {
          std::size_t j =
              static_cast<std::size_t>(client) % conns[un].size();
          if (slo_on) {
            // Deterministic re-route: first non-demoted destination
            // scanning forward from the client's home slot. All demoted
            // (can't happen under max_demoted < fanout) keeps the slot.
            for (std::size_t k = 0; k < conn_dsts[un].size(); ++k) {
              const std::size_t cand = (j + k) % conn_dsts[un].size();
              if (demoted[static_cast<std::size_t>(conn_dsts[un][cand])] ==
                  0) {
                j = cand;
                break;
              }
            }
          }
          conn = conns[un][j];
        }

        // Chunked submit: the DR chunk knob (paper §5) made adaptive —
        // the controller shrinks chunk_bytes under violation so each
        // update pipelines through the fabric in smaller frames.
        const std::uint64_t chunk =
            chunk_bytes > 0 && chunk_bytes < bytes ? chunk_bytes : bytes;
        for (std::uint64_t off = 0; off < bytes; off += chunk) {
          const std::uint64_t piece = std::min(chunk, bytes - off);
          if (!muxes[un]->submit(conn, piece)) ++drops;
        }
      }
      done.send(n);
    });

    if (cfg.churn_per_sec > 0.0) {
      s.spawn("openloop.churn" + std::to_string(n), [&, n, churn_seed] {
        const auto un = static_cast<std::size_t>(n);
        Rng crng(churn_seed);
        const double mean_gap_ns = 1e9 / cfg.churn_per_sec;
        for (;;) {
          const SimTime gap = exp_gap_ns(crng, mean_gap_ns);
          if (s.now() + gap > cfg.duration) break;
          s.delay(gap);
          // Close one steady connection and reopen it to the same peer:
          // the row is replaced, queued records still deliver.
          const std::size_t j = static_cast<std::size_t>(
              crng.next_below(conns[un].size()));
          muxes[un]->close_connection(conns[un][j]);
          conns[un][j] = muxes[un]->open_connection(conn_dsts[un][j]);
        }
      });
    }
  }

  // When every generator has finished its arrival schedule, stop intake;
  // the muxes drain their queues, close their pipes, and the run ends.
  s.spawn("openloop.closer", [&] {
    for (int n = 0; n < nodes; ++n) (void)done.recv();
    for (auto& m : muxes) m->shutdown();
  });

  s.run();
  if (controller != nullptr) s.obs().detach(controller.get());
  export_obs(s, cfg.obs);

  res.offered = offered;
  res.delivered = delivered;
  res.drops = drops;
  res.update_latency = std::move(latency);
  res.events_fired = s.events_fired();
  res.trace_digest = s.engine().trace_digest();
  res.end_time = s.now();
  res.throttled = throttled;
  if (controller != nullptr) {
    res.slo_action_log = controller->action_log();
    res.slo_actions = controller->actions().size();
    for (const auto& a : controller->actions()) {
      using Kind = control::Controller::Action::Kind;
      if (a.kind == Kind::kDemote) ++res.slo_demotions;
      if (a.kind == Kind::kPromote) ++res.slo_promotions;
    }
    res.final_admit_permille = controller->admit_permille();
    res.final_chunk_bytes = controller->chunk_bytes();
    res.final_cluster_p99_ns = controller->last_cluster_p99_ns();
  }
  return res;
}

}  // namespace sv::harness
