#include "harness/openloop.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "net/cluster.h"
#include "sim/sync.h"

namespace sv::harness {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
  }
  return "?";
}

double ArrivalSpec::peak_rate_per_sec() const {
  double peak = rate_per_sec;
  if (kind == ArrivalKind::kMmpp) {
    peak = std::max(peak, high_rate_per_sec());
  }
  peak *= 1.0 + diurnal_amplitude;
  for (const FlashCrowd& fc : flash_crowds) {
    peak *= static_cast<double>(fc.multiplier);
  }
  return peak;
}

namespace {

/// Strictly-positive exponential draw in integer nanoseconds.
SimTime exp_gap_ns(Rng& rng, double mean_ns) {
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(rng.exponential(mean_ns)) + 1);
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, std::uint64_t seed)
    : spec_(spec), peak_(spec.peak_rate_per_sec()) {
  SV_ASSERT(spec_.rate_per_sec > 0.0, "ArrivalSpec: rate must be positive");
  SV_ASSERT(spec_.diurnal_amplitude >= 0.0 && spec_.diurnal_amplitude < 1.0,
            "ArrivalSpec: diurnal amplitude must be in [0, 1)");
  std::uint64_t st = seed;
  arrivals_ = Rng(splitmix64_next(st));
  states_ = Rng(splitmix64_next(st));
  if (spec_.kind == ArrivalKind::kMmpp) {
    state_until_ = exp_gap_ns(
        states_, static_cast<double>(spec_.mmpp_sojourn_low.ns()));
  }
}

double ArrivalProcess::rate_at(SimTime t) {
  double r = spec_.rate_per_sec;
  if (spec_.kind == ArrivalKind::kMmpp) {
    // Advance the sojourn trajectory to t. The state path consumes only
    // the `states_` stream, so it is the same trajectory regardless of
    // how many thinning candidates were drawn along the way.
    while (t >= state_until_) {
      high_ = !high_;
      const SimTime mean =
          high_ ? spec_.mmpp_sojourn_high : spec_.mmpp_sojourn_low;
      state_until_ += exp_gap_ns(states_, static_cast<double>(mean.ns()));
    }
    if (high_) r = spec_.high_rate_per_sec();
  }
  if (spec_.diurnal_period > SimTime::zero()) {
    // Triangular wave: phase fraction in [0,1) from integer ns, peak at
    // half-period. Scales the rate across [1-a, 1+a].
    const std::int64_t phase = t.ns() % spec_.diurnal_period.ns();
    const double frac =
        static_cast<double>(phase) /
        static_cast<double>(spec_.diurnal_period.ns());
    const double tri = frac < 0.5 ? 2.0 * frac : 2.0 - 2.0 * frac;
    r *= 1.0 - spec_.diurnal_amplitude + 2.0 * spec_.diurnal_amplitude * tri;
  }
  for (const FlashCrowd& fc : spec_.flash_crowds) {
    if (t >= fc.at && t < fc.at + fc.duration) {
      r *= static_cast<double>(fc.multiplier);
    }
  }
  return r;
}

SimTime ArrivalProcess::next() {
  const double mean_gap_ns = 1e9 / peak_;
  for (;;) {
    t_ += exp_gap_ns(arrivals_, mean_gap_ns);
    const double r = rate_at(t_);
    if (arrivals_.uniform01() * peak_ < r) return t_;
  }
}

OpenLoopResult run_open_loop(const OpenLoopConfig& cfg) {
  SV_ASSERT(cfg.cluster_nodes >= 2, "run_open_loop: need at least 2 nodes");
  SV_ASSERT(cfg.duration > SimTime::zero(),
            "run_open_loop: duration must be positive");
  const int nodes = cfg.cluster_nodes;
  const int fanout = std::max(1, std::min(cfg.fanout, nodes - 1));
  const bool incast = cfg.incast_fraction > 0.0;

  OpenLoopResult res;
  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, nodes, net::NodeConfig{}, cfg.topology);
  cluster.install_faults(cfg.faults, cfg.seed);
  begin_obs(s, cfg.obs);

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  Samples latency;

  sockets::SendMuxConfig mux_cfg = cfg.mux;
  mux_cfg.transport = cfg.transport;
  std::vector<std::unique_ptr<sockets::SendMux>> muxes;
  muxes.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    muxes.push_back(std::make_unique<sockets::SendMux>(
        &s, &cluster, n, mux_cfg,
        [&s, &delivered, &latency](int, const sockets::MuxRecord& rec,
                                   SimTime at) {
          ++delivered;
          latency.add(at - rec.enqueued);
        }));
  }

  // Per-node connection tables: `fanout` steady destinations (+ one shared
  // hot-node connection when incast redirection is on). Churn rewrites
  // entries in place, so generators always see a live conn id.
  std::vector<std::vector<std::uint64_t>> conns(
      static_cast<std::size_t>(nodes));
  std::vector<std::vector<int>> conn_dsts(static_cast<std::size_t>(nodes));
  std::vector<std::uint64_t> hot_conns(static_cast<std::size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    const auto un = static_cast<std::size_t>(n);
    for (int j = 0; j < fanout; ++j) {
      const int dst = (n + 1 + j) % nodes;
      conns[un].push_back(muxes[un]->open_connection(dst));
      conn_dsts[un].push_back(dst);
    }
    if (incast && n != cfg.hot_node) {
      hot_conns[un] = muxes[un]->open_connection(cfg.hot_node);
    }
  }

  // Clients spread evenly: node n models clients_of(n) logical clients;
  // each arrival belongs to a uniformly drawn client of that node.
  const auto clients_of = [&cfg, nodes](int n) {
    const auto base = cfg.clients / static_cast<std::uint64_t>(nodes);
    const auto extra = cfg.clients % static_cast<std::uint64_t>(nodes);
    return std::max<std::uint64_t>(
        1, base + (static_cast<std::uint64_t>(n) < extra ? 1 : 0));
  };

  sim::Channel<int> done(&s, 0, "openloop.done");
  for (int n = 0; n < nodes; ++n) {
    // Per-node streams derived purely from (seed, node id).
    std::uint64_t st =
        cfg.seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(n) + 1);
    const std::uint64_t arrival_seed = splitmix64_next(st);
    const std::uint64_t pick_seed = splitmix64_next(st);
    const std::uint64_t churn_seed = splitmix64_next(st);

    s.spawn("openloop.gen" + std::to_string(n), [&, n, arrival_seed,
                                                 pick_seed] {
      const auto un = static_cast<std::size_t>(n);
      ArrivalProcess ap(cfg.arrivals, arrival_seed);
      Rng pick(pick_seed);
      const std::uint64_t population = clients_of(n);
      for (;;) {
        const SimTime t = ap.next();
        if (t > cfg.duration) break;
        s.delay(t - s.now());
        ++offered;
        const std::uint64_t client = pick.next_below(population);
        std::uint64_t conn;
        if (incast && n != cfg.hot_node &&
            pick.bernoulli(cfg.incast_fraction)) {
          conn = hot_conns[un];
        } else {
          conn = conns[un][static_cast<std::size_t>(client) %
                           conns[un].size()];
        }
        if (!muxes[un]->submit(conn, cfg.update_bytes)) ++drops;
      }
      done.send(n);
    });

    if (cfg.churn_per_sec > 0.0) {
      s.spawn("openloop.churn" + std::to_string(n), [&, n, churn_seed] {
        const auto un = static_cast<std::size_t>(n);
        Rng crng(churn_seed);
        const double mean_gap_ns = 1e9 / cfg.churn_per_sec;
        for (;;) {
          const SimTime gap = exp_gap_ns(crng, mean_gap_ns);
          if (s.now() + gap > cfg.duration) break;
          s.delay(gap);
          // Close one steady connection and reopen it to the same peer:
          // the row is replaced, queued records still deliver.
          const std::size_t j = static_cast<std::size_t>(
              crng.next_below(conns[un].size()));
          muxes[un]->close_connection(conns[un][j]);
          conns[un][j] = muxes[un]->open_connection(conn_dsts[un][j]);
        }
      });
    }
  }

  // When every generator has finished its arrival schedule, stop intake;
  // the muxes drain their queues, close their pipes, and the run ends.
  s.spawn("openloop.closer", [&] {
    for (int n = 0; n < nodes; ++n) (void)done.recv();
    for (auto& m : muxes) m->shutdown();
  });

  s.run();
  export_obs(s, cfg.obs);

  res.offered = offered;
  res.delivered = delivered;
  res.drops = drops;
  res.update_latency = std::move(latency);
  res.events_fired = s.events_fired();
  res.trace_digest = s.engine().trace_digest();
  res.end_time = s.now();
  return res;
}

}  // namespace sv::harness
