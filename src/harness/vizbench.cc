#include "harness/vizbench.h"

#include "common/rng.h"
#include "vizapp/server.h"

namespace sv::harness {
namespace {

viz::VizConfig make_app_config(const VizWorkloadConfig& cfg) {
  viz::VizConfig app;
  app.transport = cfg.transport;
  app.image_bytes = cfg.image_bytes;
  app.block_bytes = cfg.block_bytes;
  app.stage_compute = cfg.compute;
  app.viz_compute = cfg.compute;
  return app;
}

// No-op for the default (empty) plan, so fault-free configs keep their
// historical digests.
void install_faults(net::Cluster& cluster, const VizWorkloadConfig& cfg) {
  cluster.install_faults(cfg.faults, cfg.seed);
}

}  // namespace

PacedResult run_paced_updates(const VizWorkloadConfig& cfg, double target_ups,
                              int updates, int warmup) {
  PacedResult result;
  result.target_ups = target_ups;

  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, cfg.cluster_nodes);
  install_faults(cluster, cfg);
  begin_obs(s, cfg.obs);
  sockets::SocketFactory factory(&s, &cluster);
  factory.set_copy_policy(cfg.copy_policy);
  viz::VizApp update_app(&s, &cluster, &factory, make_app_config(cfg));
  viz::VizApp probe_app(&s, &cluster, &factory, make_app_config(cfg));
  update_app.start();
  probe_app.start();

  const auto interval =
      SimTime::nanoseconds(static_cast<std::int64_t>(1e9 / target_ups));
  std::vector<SimTime> completions;
  bool updates_finished = false;

  s.spawn("update_submitter", [&] {
    for (int i = 0; i < updates; ++i) {
      update_app.submit(viz::Query{viz::QueryType::kComplete, 0, 4});
      if (i + 1 < updates) s.delay(interval);
    }
  });
  s.spawn("update_collector", [&] {
    for (int i = 0; i < updates; ++i) {
      auto done = update_app.wait_done();
      if (!done) break;
      completions.push_back(done->second);
    }
    updates_finished = true;
    update_app.close();
    probe_app.close();
  });
  s.spawn("probe_client", [&] {
    Rng rng(cfg.seed);
    const auto blocks = probe_app.image().block_count();
    // Let the update stream establish itself before probing.
    s.delay(interval / 2);
    while (!updates_finished) {
      const SimTime t0 = s.now();
      probe_app.submit(viz::Query{viz::QueryType::kPartial,
                                  rng.next_below(blocks), 4});
      auto done = probe_app.wait_done();
      if (!done) break;
      if (!updates_finished) {
        result.partial_latencies.add(s.now() - t0);
      }
      // Probe cadence well below the update interval so probes perturb,
      // not dominate, the workload.
      s.delay(interval / 4);
    }
  });
  s.run();
  export_obs(s, cfg.obs);
  result.events_fired = s.events_fired();
  result.trace_digest = s.engine().trace_digest();
  result.end_time = s.now();

  if (static_cast<int>(completions.size()) > warmup + 1) {
    const auto span = completions.back() -
                      completions[static_cast<std::size_t>(warmup)];
    const auto n = completions.size() - static_cast<std::size_t>(warmup) - 1;
    if (span.ns() > 0) {
      result.achieved_ups =
          static_cast<double>(n) * 1e9 / static_cast<double>(span.ns());
    }
  }
  result.met_target = result.achieved_ups >= target_ups * 0.95;
  return result;
}

SaturationResult run_saturation(const VizWorkloadConfig& cfg, int updates,
                                int warmup, int pipeline_depth) {
  SaturationResult result;
  // The idle probe is a separate throwaway simulation; artifacts describe
  // the saturation run itself.
  VizWorkloadConfig idle_cfg = cfg;
  idle_cfg.obs = ObsArtifacts{};
  result.uncontended_partial_latency = measure_idle_partial_latency(idle_cfg);

  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, cfg.cluster_nodes);
  install_faults(cluster, cfg);
  begin_obs(s, cfg.obs);
  sockets::SocketFactory factory(&s, &cluster);
  factory.set_copy_policy(cfg.copy_policy);
  viz::VizApp app(&s, &cluster, &factory, make_app_config(cfg));
  app.start();

  std::vector<SimTime> completions;
  s.spawn("client", [&] {
    int submitted = 0;
    for (; submitted < pipeline_depth && submitted < updates; ++submitted) {
      app.submit(viz::Query{viz::QueryType::kComplete, 0, 4});
    }
    for (int done = 0; done < updates; ++done) {
      auto c = app.wait_done();
      if (!c) break;
      completions.push_back(c->second);
      if (submitted < updates) {
        app.submit(viz::Query{viz::QueryType::kComplete, 0, 4});
        ++submitted;
      }
    }
    app.close();
  });
  s.run();
  export_obs(s, cfg.obs);

  if (static_cast<int>(completions.size()) > warmup + 1) {
    const auto span = completions.back() -
                      completions[static_cast<std::size_t>(warmup)];
    const auto n = completions.size() - static_cast<std::size_t>(warmup) - 1;
    if (span.ns() > 0) {
      result.updates_per_sec =
          static_cast<double>(n) * 1e9 / static_cast<double>(span.ns());
    }
  }
  return result;
}

Samples run_query_mix(const VizWorkloadConfig& cfg, double complete_fraction,
                      int queries) {
  Samples responses;
  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, cfg.cluster_nodes);
  install_faults(cluster, cfg);
  begin_obs(s, cfg.obs);
  sockets::SocketFactory factory(&s, &cluster);
  factory.set_copy_policy(cfg.copy_policy);
  viz::VizApp app(&s, &cluster, &factory, make_app_config(cfg));
  app.start();

  s.spawn("client", [&] {
    Rng rng(cfg.seed);
    const auto blocks = app.image().block_count();
    for (int i = 0; i < queries; ++i) {
      const bool complete = rng.bernoulli(complete_fraction);
      viz::Query q;
      q.type = complete ? viz::QueryType::kComplete : viz::QueryType::kZoom;
      q.start_block = rng.next_below(blocks);
      q.zoom_chunks = 4;
      const SimTime t0 = s.now();
      app.submit(q);
      app.wait_done();
      responses.add(s.now() - t0);
    }
    app.close();
  });
  s.run();
  export_obs(s, cfg.obs);
  return responses;
}

SimTime measure_idle_partial_latency(const VizWorkloadConfig& cfg) {
  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, cfg.cluster_nodes);
  install_faults(cluster, cfg);
  begin_obs(s, cfg.obs);
  sockets::SocketFactory factory(&s, &cluster);
  factory.set_copy_policy(cfg.copy_policy);
  viz::VizApp app(&s, &cluster, &factory, make_app_config(cfg));
  app.start();
  SimTime latency;
  s.spawn("client", [&] {
    const SimTime t0 = s.now();
    app.submit(viz::Query{viz::QueryType::kPartial, 0, 4});
    app.wait_done();
    latency = s.now() - t0;
    app.close();
  });
  s.run();
  export_obs(s, cfg.obs);
  return latency;
}

}  // namespace sv::harness
