// Open-loop workload generation: millions of viz clients as arrival math.
//
// The paper's harnesses are closed-loop (a fixed set of in-simulation
// clients waits for each reply before sending again). Closed loops
// self-throttle, which hides exactly the overload behavior a
// millions-of-users deployment must survive. This header models the client
// population the other way: as deterministic *arrival processes* whose
// update submissions do not wait for the system — the open-loop discipline
// the ROADMAP's scale work needs.
//
//   ArrivalProcess   pure arrival-time math: Poisson or 2-state MMPP base
//                    rate, triangular diurnal modulation, flash-crowd
//                    windows. Strictly a function of (spec, seed) — no
//                    wall clock, no global RNG — implemented by thinning
//                    against the peak-rate envelope, so every modulation
//                    compounds without approximation error in the
//                    acceptance test.
//   run_open_loop    builds a Simulation + Cluster (with an explicit
//                    net::Topology) and drives one generator process per
//                    node. Clients are bookkeeping rows on a per-node
//                    sockets::SendMux (thousands of logical connections,
//                    O(nodes) processes), with optional incast redirection
//                    onto a hot node and connection churn. Returns update
//                    latency percentiles plus the engine digest, so
//                    same-seed runs are provably bit-identical.
//
// Everything here derives from (config, seed): the statistical tests
// (tests/harness/openloop_test.cc) re-run specs across seeds and check
// measured rates against configured ones, and the replay tests pin digests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "control/slo.h"
#include "harness/obsout.h"
#include "net/calibration.h"
#include "net/fault.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sockets/mux.h"

namespace sv::harness {

enum class ArrivalKind { kPoisson, kMmpp };

[[nodiscard]] const char* arrival_kind_name(ArrivalKind k);

/// A flash crowd: the arrival rate multiplies by `multiplier` inside
/// [at, at + duration). Windows may overlap; multipliers compound.
struct FlashCrowd {
  SimTime at{};
  SimTime duration{};
  int multiplier = 4;
};

/// One node-population's aggregate arrival law.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;

  /// Mean event rate (per simulated second). For kMmpp this is the LOW
  /// state's rate.
  double rate_per_sec = 1000.0;

  /// kMmpp: high-state rate (0 = 4x rate_per_sec) and mean sojourn times.
  double mmpp_high_per_sec = 0.0;
  SimTime mmpp_sojourn_low = SimTime::milliseconds(20);
  SimTime mmpp_sojourn_high = SimTime::milliseconds(5);

  /// Diurnal modulation: a triangular wave of this period scales the rate
  /// across [1 - amplitude, 1 + amplitude] (integer-exact phase math; a
  /// sinusoid would drag libm rounding into the digest). Period 0 = off.
  SimTime diurnal_period{};
  double diurnal_amplitude = 0.0;

  std::vector<FlashCrowd> flash_crowds;

  /// The thinning envelope: an upper bound on the instantaneous rate
  /// (state max x diurnal max x all flash multipliers compounded).
  [[nodiscard]] double peak_rate_per_sec() const;
  [[nodiscard]] double high_rate_per_sec() const {
    return mmpp_high_per_sec > 0.0 ? mmpp_high_per_sec : 4.0 * rate_per_sec;
  }
};

/// Deterministic arrival-time stream. next() yields strictly increasing
/// absolute times whose local rate follows the spec's modulated law.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, std::uint64_t seed);

  /// The next arrival time. Thinning: candidate gaps are exponential at
  /// the peak envelope rate; a candidate at time t survives with
  /// probability rate_at(t) / peak. Never returns the same time twice.
  [[nodiscard]] SimTime next();

  /// Instantaneous modulated rate at `t` (advances the MMPP state
  /// trajectory, so calls must use non-decreasing t).
  [[nodiscard]] double rate_at(SimTime t);

  [[nodiscard]] bool mmpp_high() const { return high_; }

 private:
  ArrivalSpec spec_;
  /// Two independent streams: `arrivals_` draws candidates + acceptance,
  /// `states_` drives the MMPP sojourn trajectory. Separate streams keep
  /// the state path independent of how many candidates were thinned.
  Rng arrivals_;
  Rng states_;
  double peak_;
  SimTime t_{};
  bool high_ = false;
  SimTime state_until_{};
};

/// One query class of the workload mix (the paper's interactive queries vs
/// bulk update traffic). Arrivals pick a class by weight; the SLO
/// controller's admission actuator throttles only the sheddable classes.
struct QueryClass {
  std::string name = "default";
  /// Relative share of arrivals (picked by integer weight, one extra RNG
  /// draw per arrival — configs without classes draw exactly as before).
  int weight = 1;
  std::uint64_t update_bytes = 1024;
  bool sheddable = true;
};

/// Closed-loop SLO control for an open-loop run (DESIGN.md §15).
struct SloControlConfig {
  control::ControllerConfig controller{};
  /// Snapshot/decision window (sim time). When `--metrics-every` already
  /// runs a pump, the controller rides that cadence instead.
  SimTime window = SimTime::milliseconds(5);
  /// Admission buckets are sized at the expected per-class offered rate
  /// times this headroom, so full admission (1000‰) never throttles.
  int admission_headroom_pct = 120;
  std::uint64_t bucket_burst = 64;
};

/// Configuration for a full open-loop scale run.
struct OpenLoopConfig {
  net::Transport transport = net::Transport::kSocketVia;
  int cluster_nodes = 64;
  /// The switch fabric. Defaults to a k=8 fat-tree (64 hosts at full
  /// fill); pass TopologySpec::single_crossbar() for the historical model.
  net::TopologySpec topology = net::TopologySpec::fat_tree(8);
  std::uint64_t seed = 1;
  sim::QueueKind queue_kind = sim::QueueKind::kTimingWheel;
  net::FaultPlan faults = net::FaultPlan::none();
  ObsArtifacts obs;

  /// Modeled viz clients, spread evenly across nodes. Each client is a
  /// logical connection row on its node's SendMux — not a process — so
  /// this scales to millions.
  std::uint64_t clients = 100'000;
  /// Aggregate arrival law of ONE node's client population.
  ArrivalSpec arrivals{};
  /// Size of one client update.
  std::uint64_t update_bytes = 1024;
  /// Each node spreads its clients across `fanout` peer destinations
  /// (client c on node n targets peer (n + 1 + c % fanout) % nodes).
  int fanout = 4;
  /// Fraction of updates redirected onto `hot_node` (incast). 0 = off.
  double incast_fraction = 0.0;
  int hot_node = 0;
  /// Mean connection close+reopen events per node per second (0 = off).
  double churn_per_sec = 0.0;
  /// Generators stop issuing arrivals after this much simulated time; the
  /// run then drains deterministically.
  SimTime duration = SimTime::milliseconds(200);
  /// Mux tuning (transport is overridden from `transport` above).
  sockets::SendMuxConfig mux{};

  /// Workload mix. Empty = one implicit class of `update_bytes`,
  /// sheddable, with zero extra RNG draws — the historical arrival stream,
  /// so every pre-existing digest pin is untouched.
  std::vector<QueryClass> classes;
  /// Install the SLO control plane (null = uncontrolled; the default, and
  /// the digest-pinned historical behavior).
  const SloControlConfig* slo = nullptr;
};

struct OpenLoopResult {
  /// Arrivals the generators produced (the offered load).
  std::uint64_t offered = 0;
  /// Updates delivered through the fabric to their destination.
  std::uint64_t delivered = 0;
  /// Updates rejected at a full mux send queue (open-loop overload).
  std::uint64_t drops = 0;
  /// Per-update enqueue-to-delivery latency (ns).
  Samples update_latency;
  /// Determinism evidence (same contract as PacedResult).
  std::uint64_t events_fired = 0;
  std::uint64_t trace_digest = 0;
  SimTime end_time{};

  // --- populated only when cfg.slo was installed ---
  /// Arrivals rejected by admission control (shed, never submitted).
  std::uint64_t throttled = 0;
  /// Controller decisions, in order (`<ns> <kind> <node> <value>` lines);
  /// byte-compare this to prove two runs made identical decisions.
  std::string slo_action_log;
  std::uint64_t slo_actions = 0;
  std::uint64_t slo_demotions = 0;
  std::uint64_t slo_promotions = 0;
  std::uint32_t final_admit_permille = 1000;
  std::uint64_t final_chunk_bytes = 0;
  std::int64_t final_cluster_p99_ns = 0;
};

[[nodiscard]] OpenLoopResult run_open_loop(const OpenLoopConfig& cfg);

}  // namespace sv::harness
