#include "vizapp/loadbalance.h"

#include <memory>

#include "datacutter/runtime.h"
#include "vizapp/filters.h"

namespace sv::viz {
namespace {

/// Source: the data repository + load balancer. Emits the dataset as
/// pipelining blocks; distribution to workers is the stream policy's job.
class BalancerSource : public dc::Filter {
 public:
  BalancerSource(std::uint64_t total, std::uint64_t block)
      : total_(total), block_(block) {}

  void process(dc::FilterContext& ctx) override {
    std::uint64_t remaining = total_;
    std::uint64_t tag = 0;
    while (remaining > 0) {
      const std::uint64_t len = std::min(remaining, block_);
      remaining -= len;
      dc::DataBuffer b;
      b.bytes = len;
      b.tag = tag++;
      ctx.write(std::move(b));
    }
  }

 private:
  std::uint64_t total_;
  std::uint64_t block_;
};

/// Worker: computes over each block; slow per configuration. Records
/// service times into the shared result.
class Worker : public dc::Filter {
 public:
  Worker(const LoadBalanceConfig* cfg, LoadBalanceResult* result,
         std::uint64_t seed)
      : cfg_(cfg), result_(result), rng_(seed) {}

  void process(dc::FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const SimTime arrival = ctx.sim().now();
      const bool is_slow_node =
          static_cast<int>(ctx.copy_index()) == cfg_->slow_worker;
      bool slow_now = false;
      if (is_slow_node) {
        slow_now = cfg_->slow_probability > 0.0
                       ? rng_.bernoulli(cfg_->slow_probability)
                       : true;
      }
      SimTime work = cfg_->compute.for_bytes(b->bytes);
      if (slow_now) work = work * cfg_->slow_factor;
      ctx.compute(work);
      const SimTime service = ctx.sim().now() - arrival;
      if (is_slow_node) {
        result_->slow_service_times.add(service);
      } else {
        result_->fast_service_times.add(service);
      }
      ++result_->blocks_per_worker[ctx.copy_index()];
    }
  }

 private:
  const LoadBalanceConfig* cfg_;
  LoadBalanceResult* result_;
  Rng rng_;
};

}  // namespace

LoadBalanceResult run_load_balance(const LoadBalanceConfig& cfg) {
  LoadBalanceResult result;
  result.blocks_per_worker.assign(static_cast<std::size_t>(cfg.workers), 0);

  sim::Simulation s(cfg.queue_kind);
  net::Cluster cluster(&s, cfg.workers + 1);
  obs::begin_artifacts(s.obs(), cfg.obs);
  sockets::SocketFactory factory(&s, &cluster);

  dc::FilterGroup group;
  std::vector<std::size_t> worker_nodes;
  for (int w = 0; w < cfg.workers; ++w) {
    worker_nodes.push_back(static_cast<std::size_t>(w) + 1);
  }
  const LoadBalanceConfig* cfg_ptr = &cfg;
  LoadBalanceResult* res_ptr = &result;
  const std::uint64_t seed = cfg.seed;
  group.add_filter("balancer",
                   [&cfg] {
                     return std::make_unique<BalancerSource>(cfg.total_bytes,
                                                             cfg.block_bytes);
                   },
                   {0});
  group.add_filter("worker",
                   [cfg_ptr, res_ptr, seed] {
                     return std::make_unique<Worker>(cfg_ptr, res_ptr, seed);
                   },
                   worker_nodes);
  group.add_stream("balancer", "worker", cfg.policy);

  dc::RuntimeOptions opts;
  opts.transport = cfg.transport;
  dc::Runtime rt(&s, &cluster, &factory, std::move(group), opts);
  rt.start();
  rt.submit(dc::Uow{1, {}});
  rt.close_input();
  s.run();
  obs::export_artifacts(s.obs(), cfg.obs);
  result.exec_time = s.now();
  result.events_fired = s.events_fired();
  result.trace_digest = s.engine().trace_digest();
  return result;
}

}  // namespace sv::viz
