#include "vizapp/server.h"

#include <stdexcept>

namespace sv::viz {

VizApp::VizApp(sim::Simulation* sim, net::Cluster* cluster,
               sockets::SocketFactory* factory, VizConfig config)
    : config_(config), image_(config.image_bytes, config.block_bytes) {
  if (cluster->size() < config_.first_node + 3 * config_.copies + 1) {
    throw std::invalid_argument(
        "VizApp: cluster too small for 3 stages x copies + viz node");
  }
  dc::FilterGroup group;
  std::vector<std::size_t> repo_nodes, s1_nodes, s2_nodes;
  std::size_t next = config_.first_node;
  for (std::size_t i = 0; i < config_.copies; ++i) repo_nodes.push_back(next++);
  for (std::size_t i = 0; i < config_.copies; ++i) s1_nodes.push_back(next++);
  for (std::size_t i = 0; i < config_.copies; ++i) s2_nodes.push_back(next++);
  const std::size_t viz_node_idx = next;

  const BlockedImage image = image_;
  const std::size_t copies = config_.copies;
  const PerByteCost stage_compute = config_.stage_compute;
  const PerByteCost viz_compute = config_.viz_compute;
  const bool materialize = config_.materialize_payloads;
  group.add_filter(
      "repo",
      [image, copies, materialize] {
        return std::make_unique<RepoFilter>(image, copies,
                                            PerByteCost::zero(), materialize);
      },
      repo_nodes);
  group.add_filter(
      "clip",
      [stage_compute] { return std::make_unique<StageFilter>(stage_compute); },
      s1_nodes);
  group.add_filter(
      "subsample",
      [stage_compute] { return std::make_unique<StageFilter>(stage_compute); },
      s2_nodes);
  group.add_filter(
      "viz",
      [viz_compute, this] {
        auto f = std::make_unique<VizFilter>(viz_compute);
        viz_filter_ = f.get();
        return f;
      },
      {viz_node_idx});
  group.add_stream("repo", "clip", config_.policy);
  group.add_stream("clip", "subsample", config_.policy);
  group.add_stream("subsample", "viz", config_.policy);

  dc::RuntimeOptions opts;
  opts.transport = config_.transport;
  runtime_ = std::make_unique<dc::Runtime>(sim, cluster, factory,
                                           std::move(group), opts);
}

void VizApp::start() { runtime_->start(); }

std::uint64_t VizApp::submit(const Query& q) {
  const std::uint64_t id = next_query_id_++;
  runtime_->submit(dc::Uow{id, q});
  return id;
}

void VizApp::close() { runtime_->close_input(); }

std::optional<std::pair<std::uint64_t, SimTime>> VizApp::wait_done() {
  auto c = runtime_->wait_completion();
  if (!c) return std::nullopt;
  return std::make_pair(c->uow_id, c->at);
}

std::size_t VizApp::viz_node() const {
  return config_.first_node + 3 * config_.copies;
}

}  // namespace sv::viz
