#include "vizapp/filters.h"

#include <any>

namespace sv::viz {

void RepoFilter::init(dc::FilterContext& ctx) {
  if (!materialize_) return;
  mem::BufferPool::Options opts;
  opts.label = "viz.repo" + std::to_string(ctx.copy_index());
  pool_.emplace(&ctx.sim().obs(), opts);
}

void RepoFilter::process(dc::FilterContext& ctx) {
  const auto& query = std::any_cast<const Query&>(ctx.uow().work);
  for (auto block : plan_query(image_, query)) {
    if (block % copies_ != ctx.copy_index()) continue;  // not ours
    const std::uint64_t bytes = image_.block_size(block);
    if (io_cost_ != PerByteCost::zero()) {
      ctx.compute(io_cost_.for_bytes(bytes));
    }
    dc::DataBuffer b;
    b.bytes = bytes;
    b.tag = block;
    if (materialize_) {
      // Lease a pooled block and generate pixels straight into it; seal()
      // freezes it into an immutable payload that returns to the pool when
      // the last downstream view is released.
      // Sanctioned source-side staging: the generator writes fresh pixels,
      // so there is no application buffer for a CopyPolicy to avoid copying.
      mem::PooledBuffer lease = pool_->acquire(bytes);  // svlint:allow(SV013)
      std::byte* dst = lease.data();
      for (std::uint64_t j = 0; j < bytes; ++j) {
        dst[j] = pixel(block, j);
      }
      b.payload = std::move(lease).seal();
    }
    ctx.write(std::move(b));
  }
}

void StageFilter::process(dc::FilterContext& ctx) {
  while (auto b = ctx.read()) {
    if (compute_ != PerByteCost::zero()) {
      ctx.compute(compute_.for_bytes(b->bytes));
    }
    ctx.write(std::move(*b));
  }
}

void VizFilter::process(dc::FilterContext& ctx) {
  while (auto b = ctx.read()) {
    if (compute_ != PerByteCost::zero()) {
      ctx.compute(compute_.for_bytes(b->bytes));
    }
    if (b->materialized()) {
      ++payloads_verified_;
      // Guarded reads: going past the written extent is a caught contract
      // violation rather than UB (see DataBuffer::read_at).
      for (std::uint64_t j = 0; j < b->payload.size(); ++j) {
        if (b->read_byte(j) != RepoFilter::pixel(b->tag, j)) {
          ++payload_mismatches_;
          break;
        }
      }
    }
    bytes_drawn_ += b->bytes;
    ++buffers_drawn_;
  }
}

}  // namespace sv::viz
