// The visualization-server application: assembles the paper's 4-stage
// pipeline (Figure 5) on the cluster and provides a query interface.
//
//   repo x copies  -->  stage1 x copies  -->  stage2 x copies  -->  viz x 1
//
// Each stage's copies are placed on distinct nodes; the visualization
// filter runs alone on its node (the client's workstation in the paper).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "datacutter/runtime.h"
#include "vizapp/filters.h"
#include "vizapp/image.h"
#include "vizapp/query.h"

namespace sv::viz {

struct VizConfig {
  net::Transport transport = net::Transport::kSocketVia;
  std::uint64_t image_bytes = 16 * 1024 * 1024;  // one image per the paper
  std::uint64_t block_bytes = 256 * 1024;        // distribution block size
  std::size_t copies = 3;  // transparent copies of repo/stage filters
  /// Linear computation at the processing stages and the viz server
  /// ("no computation" = zero; "linear computation" = 18 ns/B).
  PerByteCost stage_compute = PerByteCost::zero();
  PerByteCost viz_compute = PerByteCost::zero();
  dc::SchedPolicy policy = dc::SchedPolicy::kDemandDriven;
  /// First cluster node used; stages occupy consecutive nodes.
  std::size_t first_node = 0;
  /// Generate real pixel payloads at the repositories (verified at the viz
  /// filter); timing is unaffected, used for integrity testing.
  bool materialize_payloads = false;
};

/// The standard linear computation the paper measured for the Virtual
/// Microscope: 18 ns per byte.
[[nodiscard]] constexpr PerByteCost virtual_microscope_compute() {
  return PerByteCost::nanos_per_byte(18);
}

class VizApp {
 public:
  /// Requires a cluster with at least 3*copies + 1 nodes from first_node.
  VizApp(sim::Simulation* sim, net::Cluster* cluster,
         sockets::SocketFactory* factory, VizConfig config);

  /// Builds connections and spawns the pipeline. Call once.
  void start();

  /// Submits a query; returns its UOW id.
  std::uint64_t submit(const Query& q);
  /// No further queries; pipeline drains and shuts down.
  void close();

  /// Blocking wait (from a process) for the next completed query.
  /// Returns (uow id, completion time).
  std::optional<std::pair<std::uint64_t, SimTime>> wait_done();

  [[nodiscard]] const BlockedImage& image() const { return image_; }
  [[nodiscard]] const VizConfig& config() const { return config_; }
  [[nodiscard]] dc::Runtime& runtime() { return *runtime_; }
  /// Node index hosting the visualization filter.
  [[nodiscard]] std::size_t viz_node() const;
  /// The sink filter instance (valid after start(); single copy).
  [[nodiscard]] const VizFilter* viz_filter() const { return viz_filter_; }

 private:
  VizConfig config_;
  BlockedImage image_;
  std::unique_ptr<dc::Runtime> runtime_;
  std::uint64_t next_query_id_ = 1;
  VizFilter* viz_filter_ = nullptr;
};

}  // namespace sv::viz
