// Query model for the visualization server (Section 2 / Section 5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "vizapp/image.h"

namespace sv::viz {

enum class QueryType {
  /// A completely new image: every block is fetched. Bandwidth-sensitive.
  kComplete,
  /// The viewport moved slightly: only the excess blocks are fetched
  /// (modeled as one block, as in the paper's guarantee experiments).
  /// Latency-sensitive.
  kPartial,
  /// Magnification covering a small region: 4 data chunks (Section 5.2.2,
  /// third experiment).
  kZoom,
};

[[nodiscard]] constexpr const char* query_type_name(QueryType t) {
  switch (t) {
    case QueryType::kComplete: return "complete";
    case QueryType::kPartial: return "partial";
    case QueryType::kZoom: return "zoom";
  }
  return "?";
}

struct Query {
  QueryType type = QueryType::kComplete;
  /// Starting block for partial/zoom queries (wraps around the image).
  std::uint64_t start_block = 0;
  /// Chunk count for zoom queries (paper: 4).
  std::uint64_t zoom_chunks = 4;
};

/// Blocks a query must fetch from the blocked store.
[[nodiscard]] inline std::vector<std::uint64_t> plan_query(
    const BlockedImage& image, const Query& q) {
  std::vector<std::uint64_t> ids;
  switch (q.type) {
    case QueryType::kComplete:
      ids.reserve(image.block_count());
      for (std::uint64_t b = 0; b < image.block_count(); ++b) {
        ids.push_back(b);
      }
      break;
    case QueryType::kPartial:
      ids.push_back(q.start_block % image.block_count());
      break;
    case QueryType::kZoom: {
      const std::uint64_t n =
          std::min<std::uint64_t>(q.zoom_chunks, image.block_count());
      for (std::uint64_t i = 0; i < n; ++i) {
        ids.push_back((q.start_block + i) % image.block_count());
      }
      break;
    }
  }
  return ids;
}

/// Total bytes a query retrieves (whole blocks, including overfetch).
[[nodiscard]] inline std::uint64_t query_bytes(const BlockedImage& image,
                                               const Query& q) {
  std::uint64_t total = 0;
  for (auto b : plan_query(image, q)) total += image.block_size(b);
  return total;
}

}  // namespace sv::viz
