// The software load-balancing application of Sections 5.2.3 (Figures 6,
// 10, 11): a data repository + load balancer distributing pipelining
// blocks to compute workers, some of which are (statically or
// stochastically) slower.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "datacutter/group.h"
#include "net/calibration.h"
#include "obs/artifacts.h"
#include "sim/event_queue.h"

namespace sv::viz {

struct LoadBalanceConfig {
  net::Transport transport = net::Transport::kSocketVia;
  /// Pipelining block size (paper: 16 KB for TCP, 2 KB for SocketVIA).
  std::uint64_t block_bytes = 2 * 1024;
  std::uint64_t total_bytes = 16 * 1024 * 1024;
  int workers = 3;
  dc::SchedPolicy policy = dc::SchedPolicy::kDemandDriven;
  /// Per-byte computation at each worker (paper: 18 ns/B).
  PerByteCost compute = PerByteCost::nanos_per_byte(18);
  /// Heterogeneity factor: ratio of fastest to slowest processing speed.
  int slow_factor = 1;
  /// Figure 10: index of a statically slow worker (-1 = none).
  int slow_worker = -1;
  /// Figure 11: probability that any given block is processed at the slow
  /// speed on worker `slow_worker` (dynamic slowdown).
  double slow_probability = 0.0;
  std::uint64_t seed = 1;
  /// Trace / metrics destinations for this run (passive; cannot change the
  /// measured results).
  obs::Artifacts obs;
  /// Event-queue implementation for the run's Simulation; digest-identical
  /// across kinds (see tests/integration/digest_pins_test.cc).
  sim::QueueKind queue_kind = sim::QueueKind::kTimingWheel;
};

struct LoadBalanceResult {
  /// Time until every block is fully processed.
  SimTime exec_time;
  /// Per-block service time (arrival to processing-done) on the slow
  /// worker: the load balancer's blindness window after a "mistake"
  /// (Figure 10's reaction time).
  Samples slow_service_times;
  /// Per-block service time on the fast workers, for comparison.
  Samples fast_service_times;
  /// Blocks each worker processed.
  std::vector<std::uint64_t> blocks_per_worker;
  /// Determinism evidence: events executed and the engine's FNV-1a event
  /// trace digest (same contract as harness::PacedResult; pinned by
  /// tests/integration/digest_pins_test.cc).
  std::uint64_t events_fired = 0;
  std::uint64_t trace_digest = 0;
};

/// Runs the experiment in its own simulation and returns the measurements.
[[nodiscard]] LoadBalanceResult run_load_balance(const LoadBalanceConfig& cfg);

}  // namespace sv::viz
