// Data-repartitioning ("DR") policies: choosing the distribution block size
// from the transport's calibrated characteristics.
//
// This is the paper's central mechanism: a substrate with different
// latency/bandwidth characteristics admits a different (smaller) block
// size for the same bandwidth requirement (Figure 2), which in turn cuts
// partial-update latency and enables finer-grained load balancing.
#pragma once

#include <cstdint>

#include "net/cost_model.h"

namespace sv::viz {

/// Per-buffer runtime cost outside the transport itself (DataCutter's
/// read-side handling plus scheduling acknowledgment), used when sizing
/// blocks so the policy does not pick degenerate sub-KB chunks.
inline constexpr SimTime kRuntimePerBuffer = SimTime::microseconds(2);

/// Sustainable aggregate receive rate (bytes/sec) at a single node fed by
/// multiple streams of `block`-byte messages: the inbound link and the
/// receive-protocol path (plus `per_message_overhead` of runtime handling)
/// are each serially shared, so the tighter of the two bounds aggregate
/// throughput.
[[nodiscard]] double receiver_capacity_bps(
    const net::CostModel& model, std::uint64_t block,
    SimTime per_message_overhead = kRuntimePerBuffer);

/// Smallest block size whose receiver capacity reaches
/// `required_bytes_per_sec`; returns `limit` when unreachable (the
/// transport cannot sustain the rate at any block size).
[[nodiscard]] std::uint64_t min_block_for_receiver_rate(
    const net::CostModel& model, double required_bytes_per_sec,
    std::uint64_t limit, SimTime per_message_overhead = kRuntimePerBuffer);

/// The paper's update-rate guarantee policy: block size for sustaining
/// `updates_per_sec` complete updates of `image_bytes` into one
/// visualization node. `headroom` covers marker/ack/probe traffic; the
/// result is floored at `min_block` (no sub-KB chunking in practice).
/// Returns `image_bytes` (one giant block) when the rate is unreachable.
[[nodiscard]] std::uint64_t block_for_update_rate(const net::CostModel& model,
                                                  double updates_per_sec,
                                                  std::uint64_t image_bytes,
                                                  double headroom = 1.15,
                                                  std::uint64_t min_block =
                                                      2048);

/// Update-rate policy when the sink filter also computes `compute` per
/// byte on a single thread: besides the receiver-capacity bound, the block
/// must be large enough that the sink's per-buffer handling cost
/// (acknowledgment + runtime dispatch, ~sender_time(16B) + 2 us) fits in
/// the time left over after computation. Returns `image_bytes` when the
/// rate is infeasible at any block size.
[[nodiscard]] std::uint64_t block_for_update_rate_with_compute(
    const net::CostModel& model, double updates_per_sec,
    std::uint64_t image_bytes, PerByteCost compute, double headroom = 1.15,
    std::uint64_t min_block = 2048);

/// The paper's latency-guarantee policy: largest block whose partial-update
/// path (pipeline_hops one-way transfers, plus per-hop filter computation
/// of `compute` per byte, plus per-hop runtime overhead) stays within
/// `bound`. Returns 0 when even one byte misses the bound ("TCP drops
/// out" at 100 us in Figure 8).
///
/// A realistic `per_hop_overhead` for the DataCutter pipeline includes the
/// end-of-work marker barrier (one small-message exchange per stage) and
/// the scheduler acknowledgment: see default_hop_overhead(). Following the
/// paper, the guarantee is transport-level — pass `compute` only when the
/// guarantee should also cover per-hop filter computation. Blocks are
/// floored at `min_block` (no sub-KB chunking); infeasible bounds return 0.
[[nodiscard]] std::uint64_t block_for_latency_bound(
    const net::CostModel& model, SimTime bound, int pipeline_hops,
    SimTime per_hop_overhead, PerByteCost compute = PerByteCost::zero(),
    std::uint64_t min_block = 1024);

/// Per-hop fixed overhead of a DataCutter unit of work on this transport:
/// the end-of-work marker exchange plus runtime dispatch and ack costs.
[[nodiscard]] SimTime default_hop_overhead(const net::CostModel& model);

}  // namespace sv::viz
