#include "vizapp/policy.h"

#include <algorithm>

namespace sv::viz {

double receiver_capacity_bps(const net::CostModel& model, std::uint64_t block,
                             SimTime per_message_overhead) {
  if (block == 0) return 0.0;
  const SimTime per_msg = std::max(
      model.wire_time(block), model.recv_time(block) + per_message_overhead);
  if (per_msg.ns() <= 0) return 0.0;
  return static_cast<double>(block) * 1e9 /
         static_cast<double>(per_msg.ns());
}

std::uint64_t min_block_for_receiver_rate(const net::CostModel& model,
                                          double required_bytes_per_sec,
                                          std::uint64_t limit,
                                          SimTime per_message_overhead) {
  if (receiver_capacity_bps(model, limit, per_message_overhead) <
      required_bytes_per_sec) {
    return limit;
  }
  std::uint64_t lo = 1, hi = limit;
  // Capacity is monotone non-decreasing in block size (fixed per-message
  // costs amortize) up to integer-rounding noise.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (receiver_capacity_bps(model, mid, per_message_overhead) >=
        required_bytes_per_sec) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::uint64_t block_for_update_rate(const net::CostModel& model,
                                    double updates_per_sec,
                                    std::uint64_t image_bytes,
                                    double headroom,
                                    std::uint64_t min_block) {
  const double required =
      updates_per_sec * static_cast<double>(image_bytes) * headroom;
  const std::uint64_t block =
      min_block_for_receiver_rate(model, required, image_bytes);
  return std::clamp<std::uint64_t>(block, std::min(min_block, image_bytes),
                                   image_bytes);
}

std::uint64_t block_for_update_rate_with_compute(const net::CostModel& model,
                                                 double updates_per_sec,
                                                 std::uint64_t image_bytes,
                                                 PerByteCost compute,
                                                 double headroom,
                                                 std::uint64_t min_block) {
  const std::uint64_t bw_block = block_for_update_rate(
      model, updates_per_sec, image_bytes, headroom, min_block);
  if (bw_block >= image_bytes || compute == PerByteCost::zero()) {
    return bw_block;
  }
  // Single-threaded sink budget per update: 1/U seconds must cover the
  // whole image's computation plus per-buffer handling. Headroom applies
  // to contended resources (the transport), not to the deterministic
  // computation itself.
  const double budget_ns = 1e9 / updates_per_sec;
  const double compute_ns =
      static_cast<double>(compute.for_bytes(image_bytes).ns());
  if (compute_ns >= budget_ns) return image_bytes;  // compute-infeasible
  const double per_buffer_ns =
      static_cast<double>((model.sender_time(16) + kRuntimePerBuffer).ns());
  const double max_buffers = (budget_ns - compute_ns) / per_buffer_ns;
  if (max_buffers < 1.0) return image_bytes;
  const auto handling_block = static_cast<std::uint64_t>(
      static_cast<double>(image_bytes) / max_buffers);
  return std::min<std::uint64_t>(std::max(bw_block, handling_block),
                                 image_bytes);
}

SimTime default_hop_overhead(const net::CostModel& model) {
  // DD acknowledgment send + runtime dispatch on both sides. The
  // end-of-work marker exchange mostly overlaps the data chunk's own path
  // (it pipelines immediately behind it), so it is not budgeted serially.
  return model.sender_time(16) + 2 * kRuntimePerBuffer;
}

std::uint64_t block_for_latency_bound(const net::CostModel& model,
                                      SimTime bound, int pipeline_hops,
                                      SimTime per_hop_overhead,
                                      PerByteCost compute,
                                      std::uint64_t min_block) {
  const SimTime fixed = per_hop_overhead * pipeline_hops;
  if (fixed >= bound) return 0;
  const SimTime per_hop_budget = (bound - fixed) / pipeline_hops;
  auto hop_time = [&](std::uint64_t b) {
    return model.one_way(b) + compute.for_bytes(b);
  };
  if (hop_time(min_block) > per_hop_budget) return 0;
  std::uint64_t lo = min_block, hi = min_block;
  while (hop_time(hi) <= per_hop_budget && hi < (1ULL << 40)) hi *= 2;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (hop_time(mid) <= per_hop_budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace sv::viz
