// The visualization pipeline's filters (Figure 5): data repositories
// feeding processing stages feeding a single visualization server.
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.h"
#include "datacutter/filter.h"
#include "mem/buffer_pool.h"
#include "vizapp/image.h"
#include "vizapp/query.h"

namespace sv::viz {

/// Source: each transparent copy owns the blocks with
/// `block_id % copies == copy_index` (declustered storage for parallel
/// I/O) and emits the owned blocks of each query.
class RepoFilter : public dc::Filter {
 public:
  RepoFilter(BlockedImage image, std::size_t copies,
             PerByteCost io_cost = PerByteCost::zero(),
             bool materialize_payloads = false)
      : image_(image),
        copies_(copies),
        io_cost_(io_cost),
        materialize_(materialize_payloads) {}

  /// Creates this copy's block pool (pooled host memory; blocks are
  /// re-leased as downstream consumers release their payload views).
  void init(dc::FilterContext& ctx) override;
  void process(dc::FilterContext& ctx) override;

  /// Deterministic pixel value for byte `offset` of block `block` (used to
  /// generate and to verify real payloads).
  static std::byte pixel(std::uint64_t block, std::uint64_t offset) {
    return static_cast<std::byte>((block * 167 + offset * 13 + 7) & 0xff);
  }

 private:
  BlockedImage image_;
  std::size_t copies_;
  PerByteCost io_cost_;
  bool materialize_;
  /// Pool for materialized blocks (created in init; unregistered host
  /// memory — the repository is an application, not a NIC).
  std::optional<mem::BufferPool> pool_;
};

/// Intermediate processing stage (Clipping / Subsampling in the paper's
/// Virtual Microscope): charges a linear per-byte computation and forwards.
class StageFilter : public dc::Filter {
 public:
  explicit StageFilter(PerByteCost compute) : compute_(compute) {}

  void process(dc::FilterContext& ctx) override;

 private:
  PerByteCost compute_;
};

/// Sink: the visualization server. Charges the viewing computation per
/// byte; the runtime emits a UOW completion when the whole query is drawn.
class VizFilter : public dc::Filter {
 public:
  explicit VizFilter(PerByteCost compute) : compute_(compute) {}

  void process(dc::FilterContext& ctx) override;

  [[nodiscard]] std::uint64_t bytes_drawn() const { return bytes_drawn_; }
  [[nodiscard]] std::uint64_t buffers_drawn() const { return buffers_drawn_; }
  /// Count of payload-carrying buffers whose bytes did NOT match the
  /// deterministic pattern (end-to-end integrity check; 0 when healthy).
  [[nodiscard]] std::uint64_t payload_mismatches() const {
    return payload_mismatches_;
  }
  [[nodiscard]] std::uint64_t payloads_verified() const {
    return payloads_verified_;
  }

 private:
  PerByteCost compute_;
  std::uint64_t bytes_drawn_ = 0;
  std::uint64_t buffers_drawn_ = 0;
  std::uint64_t payload_mismatches_ = 0;
  std::uint64_t payloads_verified_ = 0;
};

}  // namespace sv::viz
