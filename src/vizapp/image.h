// The blocked image store of the digitized-microscopy server.
//
// A dataset (one slide image, 16 MB in the paper's experiments) is stored
// as fixed-size chunks — the "distribution block size". Queries fetch whole
// blocks even when only part of a block is needed (Figure 1), which is the
// tradeoff the paper's experiments revolve around.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sv::viz {

class BlockedImage {
 public:
  BlockedImage(std::uint64_t total_bytes, std::uint64_t block_bytes)
      : total_bytes_(total_bytes), block_bytes_(block_bytes) {
    if (total_bytes == 0 || block_bytes == 0) {
      throw std::invalid_argument("BlockedImage: sizes must be positive");
    }
    block_count_ = (total_bytes + block_bytes - 1) / block_bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::uint64_t block_count() const { return block_count_; }

  /// Size of block `i` (the final block may be partial).
  [[nodiscard]] std::uint64_t block_size(std::uint64_t i) const {
    if (i >= block_count_) {
      throw std::out_of_range("BlockedImage: block index out of range");
    }
    if (i + 1 == block_count_) {
      const std::uint64_t rem = total_bytes_ % block_bytes_;
      return rem == 0 ? block_bytes_ : rem;
    }
    return block_bytes_;
  }

  /// Block ids covering the byte range [offset, offset+len).
  [[nodiscard]] std::vector<std::uint64_t> blocks_for_range(
      std::uint64_t offset, std::uint64_t len) const {
    if (offset >= total_bytes_ || len == 0) return {};
    const std::uint64_t end = std::min(offset + len, total_bytes_);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t b = offset / block_bytes_;
         b * block_bytes_ < end && b < block_count_; ++b) {
      ids.push_back(b);
    }
    return ids;
  }

 private:
  std::uint64_t total_bytes_;
  std::uint64_t block_bytes_;
  // svlint:allow(SV007): immutable image geometry, not a statistic
  std::uint64_t block_count_;
};

/// 2D view of a blocked image (for the examples and partial-update
/// geometry): W x H pixels at 1 byte/pixel, blocks arranged in a grid.
class GridImage {
 public:
  GridImage(std::uint32_t width, std::uint32_t height,
            std::uint32_t block_width, std::uint32_t block_height)
      : width_(width),
        height_(height),
        block_w_(block_width),
        block_h_(block_height) {
    if (!width || !height || !block_width || !block_height) {
      throw std::invalid_argument("GridImage: sizes must be positive");
    }
    cols_ = (width + block_width - 1) / block_width;
    rows_ = (height + block_height - 1) / block_height;
  }

  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint64_t block_count() const {
    return std::uint64_t{cols_} * rows_;
  }
  [[nodiscard]] std::uint64_t block_bytes() const {
    return std::uint64_t{block_w_} * block_h_;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return std::uint64_t{width_} * height_;
  }

  /// Blocks intersecting the viewport rectangle [x, x+w) x [y, y+h)
  /// (Figure 1: a partial query touches every block it overlaps).
  [[nodiscard]] std::vector<std::uint64_t> blocks_for_viewport(
      std::uint32_t x, std::uint32_t y, std::uint32_t w,
      std::uint32_t h) const {
    std::vector<std::uint64_t> ids;
    if (w == 0 || h == 0 || x >= width_ || y >= height_) return ids;
    const std::uint32_t x2 = std::min(width_, x + w);
    const std::uint32_t y2 = std::min(height_, y + h);
    for (std::uint32_t r = y / block_h_; r * block_h_ < y2 && r < rows_; ++r) {
      for (std::uint32_t c = x / block_w_; c * block_w_ < x2 && c < cols_;
           ++c) {
        ids.push_back(std::uint64_t{r} * cols_ + c);
      }
    }
    return ids;
  }

  /// Bytes fetched vs bytes actually needed for a viewport — the waste the
  /// paper attributes to large blocks under partial queries.
  [[nodiscard]] double overfetch_ratio(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t w,
                                       std::uint32_t h) const {
    const auto ids = blocks_for_viewport(x, y, w, h);
    const std::uint32_t x2 = std::min(width_, x + w);
    const std::uint32_t y2 = std::min(height_, y + h);
    const std::uint64_t needed =
        std::uint64_t{x2 - std::min(x, x2)} * (y2 - std::min(y, y2));
    if (needed == 0) return 0.0;
    return static_cast<double>(ids.size() * block_bytes()) /
           static_cast<double>(needed);
  }

 private:
  std::uint32_t width_;
  std::uint32_t height_;
  std::uint32_t block_w_;
  std::uint32_t block_h_;
  std::uint32_t cols_ = 0;
  std::uint32_t rows_ = 0;
};

}  // namespace sv::viz
