// The simulated cluster: nodes with CPU and network-path resources.
//
// Mirrors the paper's testbed shape: N nodes, each with `cpus` cores (the
// Dell Precision 420s were dual 1 GHz PIII) and a NIC. Per node we model
// three contended service points:
//   cpu      - application computation (filters), capacity = cores
//   tx_host  - sender-side host path (syscall/copy or doorbell), capacity 1
//   link_in  - inbound link/DMA path at the receiver, capacity 1
//   rx_proto - receiver-side protocol processing, capacity 1
// Concurrent connections into one node share these, which is what makes a
// busy visualization server a bottleneck in the paper's experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/topology.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace sv::net {

struct NodeConfig {
  int cpus = 2;
  /// Relative CPU speed divisor; 1 = nominal. The heterogeneity experiments
  /// (Figures 10/11) slow a node by running computations `slow_factor`x
  /// longer. This is the static factor; dynamic slowdown is applied by the
  /// application layer.
  int slow_factor = 1;
};

class Node {
 public:
  Node(sim::Simulation* sim, int id, const NodeConfig& cfg);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulation& sim() const { return *sim_; }

  /// Runs `work` of computation on this node (blocks the calling process
  /// for the scaled duration while holding a core). Any active fault-plan
  /// slowdown window multiplies the duration.
  void compute(SimTime work);

  /// The cluster's fault injector, or nullptr when no faults are installed.
  /// Transports crossing this node consult it per frame.
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// The switch fabric this node attaches to, or nullptr for the implicit
  /// single crossbar (the historical model). Pipes crossing this node
  /// traverse it per frame.
  [[nodiscard]] Topology* topology() const { return topology_; }
  void set_topology(Topology* topology) { topology_ = topology; }

  sim::Resource& cpu() { return cpu_; }
  sim::Resource& tx_host() { return tx_host_; }
  sim::Resource& link_in() { return link_in_; }
  sim::Resource& rx_proto() { return rx_proto_; }

 private:
  sim::Simulation* sim_;
  int id_;
  NodeConfig cfg_;
  std::string name_;
  FaultInjector* injector_ = nullptr;
  Topology* topology_ = nullptr;
  sim::Resource cpu_;
  sim::Resource tx_host_;
  sim::Resource link_in_;
  sim::Resource rx_proto_;
};

class Cluster {
 public:
  /// `topo` selects the switch fabric above the hosts. The default
  /// single-crossbar spec builds no Topology object at all, so the executed
  /// event schedule (and every digest pin) is identical to the
  /// pre-topology fabric.
  Cluster(sim::Simulation* sim, int node_count,
          const NodeConfig& cfg = NodeConfig{},
          const TopologySpec& topo = TopologySpec{});

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] sim::Simulation& sim() { return *sim_; }

  /// Installs a fault plan: every node gets a pointer to the (seeded)
  /// injector, and each full-stall window in the plan spawns holder
  /// processes that pin the node's resources for the window's duration, so
  /// all transports through the node stall naturally. A disabled plan is a
  /// no-op (the baseline event schedule is untouched). Call at most once,
  /// before traffic starts.
  void install_faults(const FaultPlan& plan, std::uint64_t seed);

  /// The installed injector, or nullptr.
  [[nodiscard]] FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// The explicit switch fabric, or nullptr for the single crossbar.
  [[nodiscard]] Topology* topology() const { return topology_.get(); }

 private:
  sim::Simulation* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Topology> topology_;
};

}  // namespace sv::net
