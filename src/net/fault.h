// Deterministic fault injection for the simulated fabric.
//
// The paper's measurements assume a loss-free LAN; this layer lets an
// experiment relax that assumption reproducibly. A FaultPlan describes
// per-link frame loss (independent or bursty), extra delay jitter, and
// scheduled node slowdown/stall windows. A FaultInjector turns the plan
// into concrete per-frame decisions using RNG streams derived purely from
// (experiment seed, src node, dst node), so decisions do not depend on the
// order in which links first carry traffic: the same (seed, plan) always
// yields the same drops at the same frames, and Engine::trace_digest() is
// bit-identical across runs.
//
// Consumers:
//   net::Pipe       - fast fabric: a dropped frame is re-sent internally
//                     after LinkFault::recovery_delay (the fast model stays
//                     reliable and in-order; it models "transport after
//                     recovery").
//   tcpstack        - segments are actually lost; TCP's RTO / fast
//                     retransmit machinery recovers them.
//   net::Node       - compute() is scaled by any active slowdown window;
//                     full stalls additionally pin the node's resources
//                     (Cluster::install_faults).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace sv::net {

/// Fault behaviour of one directed link (src -> dst).
struct LinkFault {
  /// Probability a frame entering the wire is lost.
  double loss = 0.0;
  /// Once a frame is lost, probability each following frame is also lost
  /// (Gilbert-style burst loss). 0 = independent losses.
  double burst_continue = 0.0;
  /// Extra per-frame delay, uniform in [0, max_jitter].
  SimTime max_jitter = SimTime::zero();
  /// Fast-fabric recovery pause charged per internal re-send of a lost
  /// frame (stands in for a transport-level retransmission round trip).
  SimTime recovery_delay = SimTime::microseconds(500);
  /// Explicit frame indices (0-based, per link, in wire order) to drop
  /// regardless of `loss` — for unit tests that need a precise loss.
  std::vector<std::uint64_t> drop_frames{};

  [[nodiscard]] bool enabled() const {
    return loss > 0.0 || max_jitter > SimTime::zero() || !drop_frames.empty();
  }
};

/// A scheduled degradation window for one node.
struct NodeFault {
  int node = 0;
  SimTime start = SimTime::zero();
  SimTime duration = SimTime::zero();
  /// 0 = full stall (the node's resources are held for the whole window);
  /// k > 1 = computations run k times slower during the window.
  std::int64_t slow_factor = 0;

  [[nodiscard]] bool is_stall() const { return slow_factor == 0; }
};

/// The complete fault schedule for an experiment. Value-semantic and
/// seed-free: all randomness comes from the seed handed to FaultInjector.
struct FaultPlan {
  /// Default fault behaviour for every link.
  LinkFault all_links{};
  /// Per-link overrides, keyed by (src node id, dst node id).
  std::map<std::pair<int, int>, LinkFault> links{};
  /// Node slowdown/stall windows.
  std::vector<NodeFault> nodes{};

  /// The no-fault plan (the repo's historical loss-free-LAN behaviour).
  [[nodiscard]] static FaultPlan none() { return FaultPlan{}; }
  /// Independent loss at probability `p` on every link.
  [[nodiscard]] static FaultPlan uniform_loss(double p) {
    FaultPlan plan;
    plan.all_links.loss = p;
    return plan;
  }

  /// The fault spec governing link (src, dst).
  [[nodiscard]] const LinkFault& link(int src, int dst) const {
    auto it = links.find({src, dst});
    return it == links.end() ? all_links : it->second;
  }

  [[nodiscard]] bool enabled() const;
};

/// Per-frame verdict from the injector.
struct FaultDecision {
  bool drop = false;
  /// Extra wire delay (jitter); zero when not delayed.
  SimTime extra_delay = SimTime::zero();
  /// Recovery pause the fast fabric should charge per re-send attempt.
  SimTime recovery_delay = SimTime::zero();
};

/// Turns a FaultPlan plus an experiment seed into deterministic per-frame
/// decisions. One injector is shared by a whole Cluster; link streams are
/// created on demand but their state depends only on (seed, src, dst).
class FaultInjector {
 public:
  /// `registry` receives the injector's counters (aggregate
  /// `fault.frames_*` plus per-link `fault.frames_*{link=s->d}`); pass the
  /// simulation's registry so drops/jitter show up in snapshots next to
  /// every other metric. When null the injector owns a private registry,
  /// keeping the accessors below working standalone.
  FaultInjector(FaultPlan plan, std::uint64_t seed,
                obs::Registry* registry = nullptr);

  /// Decides the fate of the next frame crossing link (src, dst).
  FaultDecision on_frame(int src, int dst);

  /// Multiplier for compute work on `node` at time `now` (1 when no
  /// slowdown window is active; stall windows are enforced by resource
  /// holds, not here).
  [[nodiscard]] std::int64_t compute_factor(int node, SimTime now) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Aggregate counters (forward to the registry; per-link breakdowns live
  /// under `fault.frames_*{link=s->d}` in snapshots).
  [[nodiscard]] std::uint64_t frames_seen() const {
    return frames_seen_->value();
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_->value();
  }
  [[nodiscard]] std::uint64_t frames_delayed() const {
    return frames_delayed_->value();
  }
  [[nodiscard]] obs::Registry& registry() { return *registry_; }

 private:
  struct LinkState {
    Rng rng;
    std::uint64_t next_frame = 0;
    bool in_burst = false;
    // Per-link registry counters, bound when the link is first touched.
    obs::Counter* seen = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* delayed = nullptr;

    explicit LinkState(std::uint64_t link_seed) : rng(link_seed) {}
  };

  LinkState& link_state(int src, int dst);

  FaultPlan plan_;
  std::uint64_t seed_;
  std::unique_ptr<obs::Registry> owned_registry_;  // fallback when detached
  obs::Registry* registry_;
  // Ordered map keyed by node-id pairs: iteration order (never used for
  // decisions anyway) is value-determined, per the determinism contract.
  std::map<std::pair<int, int>, LinkState> link_states_;
  obs::Counter* frames_seen_;
  obs::Counter* frames_dropped_;
  obs::Counter* frames_delayed_;
};

}  // namespace sv::net
